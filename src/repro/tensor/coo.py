"""Coordinate (COO) representation of sparse tensors.

The COO tensor is the interchange format of this library: FROSTT ``.tns``
files parse into it, synthetic generators emit it, and the CSF builder
(:mod:`repro.tensor.csf`) consumes it.  It stores one ``(d, nnz)`` integer
index matrix plus an ``(nnz,)`` value vector.

Design notes
------------
* Indices are kept as ``int64`` throughout.  Mode lengths in the paper's
  dataset reach 38M (freebase_sampled) and linearized orderings multiply
  mode lengths together, so 32-bit offsets are not safe.
* All structural operations (deduplication, sorting, permutation) are
  vectorized; nothing in this module loops per non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = ["CooTensor"]


@dataclass(frozen=True)
class CooTensor:
    """A sparse tensor in coordinate format.

    Parameters
    ----------
    indices:
        Integer array of shape ``(ndim, nnz)``; column ``p`` holds the
        multi-index of non-zero ``p``.
    values:
        Float array of shape ``(nnz,)``.
    shape:
        The dense extent of every mode.

    The constructor does *not* sort or deduplicate; use
    :meth:`from_arrays` for validated construction.
    """

    indices: np.ndarray
    values: np.ndarray
    shape: Tuple[int, ...]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        indices: np.ndarray,
        values: np.ndarray,
        shape: Sequence[int] | None = None,
        *,
        sum_duplicates: bool = True,
    ) -> "CooTensor":
        """Build a canonical COO tensor from raw index/value arrays.

        Indices are validated against ``shape`` (inferred as ``max+1`` per
        mode when omitted), duplicates are summed, and entries are sorted
        lexicographically by mode 0, then 1, ...

        Raises
        ------
        ValueError
            If shapes disagree, indices are negative, or indices exceed
            ``shape``.
        """
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if indices.ndim != 2:
            raise ValueError(f"indices must be 2-D (ndim, nnz), got {indices.shape}")
        ndim, nnz = indices.shape
        if values.shape != (nnz,):
            raise ValueError(
                f"values shape {values.shape} does not match nnz={nnz}"
            )
        if nnz and indices.min() < 0:
            raise ValueError("negative indices are not allowed")
        if shape is None:
            shape = tuple(int(indices[m].max()) + 1 if nnz else 1 for m in range(ndim))
        else:
            shape = tuple(int(s) for s in shape)
            if len(shape) != ndim:
                raise ValueError(
                    f"shape has {len(shape)} modes but indices have {ndim}"
                )
            for m in range(ndim):
                if nnz and indices[m].max() >= shape[m]:
                    raise ValueError(
                        f"index {indices[m].max()} out of bounds for mode {m} "
                        f"of length {shape[m]}"
                    )
        tensor = cls(indices, values, shape)
        if sum_duplicates:
            tensor = tensor._canonicalize()
        return tensor

    def _canonicalize(self) -> "CooTensor":
        """Sort lexicographically and merge duplicate coordinates."""
        if self.nnz == 0:
            return self
        # np.lexsort sorts by the *last* key first; feed modes reversed so
        # mode 0 is the primary key.
        order = np.lexsort(self.indices[::-1])
        idx = self.indices[:, order]
        val = self.values[order]
        # Duplicate detection on the sorted stream.
        same = np.all(idx[:, 1:] == idx[:, :-1], axis=0)
        if same.any():
            # Segment ids: a new segment starts wherever the coordinate
            # differs from its predecessor.
            seg = np.concatenate(([0], np.cumsum(~same)))
            n_seg = seg[-1] + 1
            first = np.concatenate(([True], ~same))
            idx = idx[:, first]
            val = np.bincount(seg, weights=val, minlength=n_seg)
        return CooTensor(idx, val, self.shape)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of modes."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return self.values.shape[0]

    @property
    def density(self) -> float:
        """nnz divided by the dense size (may underflow to 0.0 for huge shapes)."""
        dense = float(np.prod([float(s) for s in self.shape]))
        return self.nnz / dense if dense else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CooTensor(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3e})"
        )

    # ------------------------------------------------------------------
    # structural transforms
    # ------------------------------------------------------------------
    def permute_modes(self, perm: Sequence[int]) -> "CooTensor":
        """Return a tensor with modes reordered by ``perm``.

        ``perm[k]`` names the original mode that becomes mode ``k``. The
        result is re-canonicalized (sorted in the new mode order).
        """
        perm = list(perm)
        if sorted(perm) != list(range(self.ndim)):
            raise ValueError(f"{perm} is not a permutation of 0..{self.ndim - 1}")
        idx = self.indices[perm]
        shape = tuple(self.shape[m] for m in perm)
        return CooTensor.from_arrays(idx, self.values, shape, sum_duplicates=False)

    def sorted_by(self, mode_order: Sequence[int]) -> "CooTensor":
        """Return a copy whose entries are sorted lexicographically in
        ``mode_order`` *without* relabelling the modes."""
        mode_order = list(mode_order)
        if sorted(mode_order) != list(range(self.ndim)):
            raise ValueError(
                f"{mode_order} is not a permutation of 0..{self.ndim - 1}"
            )
        keys = self.indices[mode_order[::-1]]
        order = np.lexsort(keys)
        return CooTensor(self.indices[:, order], self.values[order], self.shape)

    # ------------------------------------------------------------------
    # dense interop (test oracles; only for small tensors)
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize the dense ndarray.  Intended for test oracles only."""
        size = int(np.prod(self.shape))
        if size > 50_000_000:
            raise MemoryError(
                f"refusing to densify a tensor with {size} dense entries"
            )
        if self.nnz == 0:
            return np.zeros(self.shape, dtype=np.float64)
        # Duplicate-safe scatter via bincount on the raveled coordinates —
        # the segmented-reduce idiom of repro.core.csf_kernels, orders of
        # magnitude faster than the per-element np.add.at it replaced.
        flat = np.ravel_multi_index(tuple(self.indices), self.shape)
        out = np.bincount(flat, weights=self.values, minlength=size)
        return out.reshape(self.shape)

    @classmethod
    def from_dense(cls, array: np.ndarray, *, tol: float = 0.0) -> "CooTensor":
        """Extract the sparse structure of a dense ndarray."""
        array = np.asarray(array, dtype=np.float64)
        mask = np.abs(array) > tol
        idx = np.array(np.nonzero(mask), dtype=np.int64)
        return cls.from_arrays(idx, array[mask], array.shape)

    # ------------------------------------------------------------------
    # statistics used by mode-ordering heuristics
    # ------------------------------------------------------------------
    def nonzero_slices(self, mode: int) -> int:
        """Number of distinct indices appearing in ``mode``."""
        return int(np.unique(self.indices[mode]).size)

    def fiber_count(self, mode_order: Sequence[int], level: int) -> int:
        """Number of distinct fibers at ``level`` of a CSF built in
        ``mode_order``.

        Level 0 counts distinct root indices; level ``d-1`` equals ``nnz``
        (each non-zero is its own leaf).  This is the quantity ``m_i`` used
        by the Section IV data-movement model.
        """
        mode_order = list(mode_order)
        if level < 0 or level >= self.ndim:
            raise ValueError(f"level {level} out of range for ndim={self.ndim}")
        if level == self.ndim - 1:
            return self.nnz
        sub = self.indices[mode_order[: level + 1]]
        return int(np.unique(sub, axis=1).shape[1])

    def average_fiber_length(self, mode_order: Sequence[int], level: int) -> float:
        """Average branching factor between CSF level ``level-1`` and
        ``level`` (for ``level==0``: root fiber count itself)."""
        if level == 0:
            return float(self.fiber_count(mode_order, 0))
        return self.fiber_count(mode_order, level) / max(
            1, self.fiber_count(mode_order, level - 1)
        )

    # ------------------------------------------------------------------
    # iteration helpers
    # ------------------------------------------------------------------
    def iter_entries(self) -> Iterable[Tuple[Tuple[int, ...], float]]:
        """Yield ``(multi_index, value)`` pairs.  Test/debug use only."""
        for p in range(self.nnz):
            yield tuple(int(i) for i in self.indices[:, p]), float(self.values[p])

    def astype(self, dtype) -> "CooTensor":
        """Return a copy with values cast to ``dtype``."""
        return CooTensor(self.indices, self.values.astype(dtype), self.shape)

    def scale(self, factor: float) -> "CooTensor":
        """Return a copy with all values multiplied by ``factor``."""
        return CooTensor(self.indices, self.values * factor, self.shape)

    def norm(self) -> float:
        """Frobenius norm of the stored values."""
        return float(np.linalg.norm(self.values))
