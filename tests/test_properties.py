"""Property-based tests (hypothesis) on core data structures & invariants.

These are the library's contract tests: random tensors of random shape,
dimensionality, sparsity and duplication are pushed through every layer,
asserting structural invariants and oracle equivalence.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    MemoPlan,
    MemoizedMttkrp,
    count_swapped_fibers,
    enumerate_plans,
)
from repro.ops import mttkrp_coo_reference, mttkrp_dense
from repro.parallel import ReplicatedArray, nnz_partition
from repro.tensor import AltoTensor, CooTensor, CsfTensor

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------


@st.composite
def coo_tensors(draw, min_ndim=2, max_ndim=4, max_dim=9, max_nnz=60):
    """Random COO tensors with possible duplicate coordinates."""
    ndim = draw(st.integers(min_ndim, max_ndim))
    shape = tuple(draw(st.integers(2, max_dim)) for _ in range(ndim))
    nnz = draw(st.integers(1, max_nnz))
    idx = np.empty((ndim, nnz), dtype=np.int64)
    for m in range(ndim):
        col = draw(
            st.lists(
                st.integers(0, shape[m] - 1), min_size=nnz, max_size=nnz
            )
        )
        idx[m] = col
    values = np.array(
        draw(
            st.lists(
                st.floats(-10, 10, allow_nan=False, width=32),
                min_size=nnz,
                max_size=nnz,
            )
        )
    )
    return CooTensor.from_arrays(idx, values, shape)


def factors_for(tensor, rank, seed):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((n, rank)) for n in tensor.shape]


# ---------------------------------------------------------------------------
# storage invariants
# ---------------------------------------------------------------------------


@given(coo_tensors())
@settings(max_examples=40, deadline=None)
def test_coo_canonical_sorted_and_unique(t):
    if t.nnz > 1:
        keys = list(zip(*[t.indices[m] for m in range(t.ndim)]))
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)


@given(coo_tensors(), st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_csf_roundtrip_any_order(t, seed):
    rng = np.random.default_rng(seed)
    order = tuple(rng.permutation(t.ndim))
    csf = CsfTensor.from_coo(t, order)
    assert np.allclose(csf.to_coo().to_dense(), t.to_dense())


@given(coo_tensors())
@settings(max_examples=30, deadline=None)
def test_csf_fiber_counts_monotone_and_leaf_is_nnz(t):
    csf = CsfTensor.from_coo(t)
    fc = csf.fiber_counts
    assert fc[-1] == t.nnz
    assert all(a <= b for a, b in zip(fc, fc[1:]))


@given(coo_tensors())
@settings(max_examples=30, deadline=None)
def test_alto_roundtrip(t):
    at = AltoTensor.from_coo(t)
    assert np.allclose(at.to_coo().to_dense(), t.to_dense())


# ---------------------------------------------------------------------------
# kernel equivalence
# ---------------------------------------------------------------------------


@given(coo_tensors(), st.integers(1, 5), st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_coo_reference_matches_dense_oracle(t, rank, seed):
    factors = factors_for(t, rank, seed)
    dense = t.to_dense()
    for u in range(t.ndim):
        assert np.allclose(
            mttkrp_coo_reference(t, factors, u),
            mttkrp_dense(dense, factors, u),
            atol=1e-8,
        )


@given(coo_tensors(min_ndim=3), st.integers(1, 8), st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_memoized_engine_equals_oracle_for_every_plan(t, threads, seed):
    """Memoized MTTKRP == plain MTTKRP for EVERY save-set and thread
    count — the core correctness claim of Algorithms 4-8."""
    rank = 3
    factors = factors_for(t, rank, seed)
    dense = t.to_dense()
    csf = CsfTensor.from_coo(t)
    for plan in enumerate_plans(t.ndim):
        engine = MemoizedMttkrp(csf, rank, plan=plan, num_threads=threads)
        for mode, result in engine.iteration_results(factors):
            assert np.allclose(
                result, mttkrp_dense(dense, factors, mode), atol=1e-8
            ), (plan, mode)


@given(coo_tensors(min_ndim=3), st.integers(2, 7))
@settings(max_examples=20, deadline=None)
def test_parallel_equals_serial(t, threads):
    """Any thread count produces bit-identical results to one thread
    (boundary replication correctness)."""
    rank = 2
    factors = factors_for(t, rank, seed=7)
    csf = CsfTensor.from_coo(t)
    plan = MemoPlan(tuple(range(1, t.ndim - 1)))
    serial = MemoizedMttkrp(csf, rank, plan=plan, num_threads=1)
    par = MemoizedMttkrp(csf, rank, plan=plan, num_threads=threads)
    rs = serial.iteration_results(factors)
    rp = par.iteration_results(factors)
    for (m1, a), (m2, b) in zip(rs, rp):
        assert m1 == m2
        assert np.allclose(a, b, atol=1e-9)


# ---------------------------------------------------------------------------
# partition invariants
# ---------------------------------------------------------------------------


@given(coo_tensors(min_ndim=2), st.integers(1, 12))
@settings(max_examples=30, deadline=None)
def test_nnz_partition_invariants(t, threads):
    csf = CsfTensor.from_coo(t)
    part = nnz_partition(csf, threads)
    # Leaf coverage: disjoint, exhaustive, ordered.
    assert part.starts[0, -1] == 0
    assert part.starts[-1, -1] == csf.nnz
    assert np.all(np.diff(part.starts[:, -1]) >= 0)
    # Balance within one leaf.
    loads = part.per_thread_leaf_counts()
    assert loads.max() - loads.min() <= 1
    # Starts at level i are parents of starts at level i+1.
    for lvl in range(csf.ndim - 1):
        for th in range(threads):
            pos = part.starts[th, lvl + 1]
            if pos < csf.fiber_counts[lvl + 1]:
                node = part.starts[th, lvl]
                assert csf.ptr[lvl][node] <= pos < csf.ptr[lvl][node + 1]


@given(
    st.integers(1, 30),
    st.integers(1, 4),
    st.integers(1, 6),
    st.integers(0, 10**6),
)
@settings(max_examples=40, deadline=None)
def test_replicated_array_merge_equals_direct_sum(n_rows, rank, threads, seed):
    """Random overlapping-at-boundary writes through the shifted buffer
    merge to exactly the direct accumulation."""
    rng = np.random.default_rng(seed)
    rep = ReplicatedArray(n_rows, rank, threads)
    direct = np.zeros((n_rows, rank))
    bounds = np.sort(rng.integers(0, n_rows + 1, threads - 1)) if threads > 1 else np.array([], dtype=int)
    edges = np.concatenate(([0], bounds, [n_rows]))
    for th in range(threads):
        lo = int(edges[th])
        hi = min(int(edges[th + 1]) + 1, n_rows)  # overlap one boundary row
        if hi <= lo:
            continue
        data = rng.standard_normal((hi - lo, rank))
        rep.view(th, lo, hi)[:] += data
        direct[lo:hi] += data
    assert np.allclose(rep.merge(), direct)


# ---------------------------------------------------------------------------
# mode-order invariants
# ---------------------------------------------------------------------------


@given(coo_tensors(min_ndim=3))
@settings(max_examples=30, deadline=None)
def test_algorithm9_matches_rebuild(t):
    """The streaming swapped-fiber count equals the fiber count of the
    actually rebuilt swapped CSF — Algorithm 9's correctness claim."""
    csf = CsfTensor.from_coo(t)
    assert count_swapped_fibers(csf) == csf.swapped_last_two().fiber_counts[-2]


@given(coo_tensors(min_ndim=3), st.integers(1, 5))
@settings(max_examples=20, deadline=None)
def test_memo_space_accounting_consistent(t, threads):
    """memo_bytes reported by the engine equals the plan's accounting."""
    csf = CsfTensor.from_coo(t)
    rank = 2
    plan = MemoPlan(tuple(range(1, t.ndim - 1)))
    engine = MemoizedMttkrp(csf, rank, plan=plan, num_threads=threads)
    factors = factors_for(t, rank, seed=1)
    engine.mode0(factors)
    # Engine stores merged arrays (without the +T replication rows).
    expected = sum(csf.fiber_counts[i] * rank * 8 for i in plan.save_levels)
    assert engine.memo_bytes() == expected
