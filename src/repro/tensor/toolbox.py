"""Sparse tensor toolbox: elementwise algebra and structural queries.

Operations a downstream user of a tensor library expects beyond
decomposition itself: linear combinations and Hadamard products of COO
tensors (merge-join on canonical coordinate order), mode marginals,
slice extraction, and distance/agreement measures.  All vectorized; all
results canonical COO.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .coo import CooTensor

__all__ = [
    "add",
    "subtract",
    "hadamard_product",
    "frobenius_distance",
    "mode_marginals",
    "extract_slice",
    "top_slices",
]


def _require_same_shape(a: CooTensor, b: CooTensor) -> None:
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")


def add(a: CooTensor, b: CooTensor, alpha: float = 1.0, beta: float = 1.0) -> CooTensor:
    """Linear combination ``alpha·A + beta·B`` (union of supports)."""
    _require_same_shape(a, b)
    idx = np.hstack([a.indices, b.indices])
    vals = np.concatenate([alpha * a.values, beta * b.values])
    return CooTensor.from_arrays(idx, vals, a.shape)


def subtract(a: CooTensor, b: CooTensor) -> CooTensor:
    """``A - B``."""
    return add(a, b, 1.0, -1.0)


def _match_coordinates(a: CooTensor, b: CooTensor) -> Tuple[np.ndarray, np.ndarray]:
    """Positions of coordinates present in *both* tensors (both canonical:
    sorted, duplicate-free), via linearized-key intersection."""
    strides = np.ones(a.ndim, dtype=np.float64)
    for m in range(a.ndim - 2, -1, -1):
        strides[m] = strides[m + 1] * a.shape[m + 1]
    if strides[0] * a.shape[0] < 2**62:
        st = strides.astype(np.int64)
        ka = (a.indices * st[:, None]).sum(axis=0)
        kb = (b.indices * st[:, None]).sum(axis=0)
        common, ia, ib = np.intersect1d(ka, kb, return_indices=True)
        return ia, ib
    # Huge index spaces: structured comparison via void view.
    def keys(t: CooTensor) -> np.ndarray:
        arr = np.ascontiguousarray(t.indices.T)
        return arr.view([("", arr.dtype)] * t.ndim).ravel()

    _, ia, ib = np.intersect1d(keys(a), keys(b), return_indices=True)
    return ia, ib


def hadamard_product(a: CooTensor, b: CooTensor) -> CooTensor:
    """Elementwise product ``A * B`` (intersection of supports)."""
    _require_same_shape(a, b)
    ia, ib = _match_coordinates(a, b)
    return CooTensor.from_arrays(
        a.indices[:, ia], a.values[ia] * b.values[ib], a.shape,
        sum_duplicates=False,
    )


def frobenius_distance(a: CooTensor, b: CooTensor) -> float:
    """``‖A - B‖_F`` computed sparsely via
    ``‖A‖² - 2⟨A,B⟩ + ‖B‖²`` (inner product over the common support)."""
    _require_same_shape(a, b)
    ia, ib = _match_coordinates(a, b)
    inner = float(a.values[ia] @ b.values[ib])
    sq = float(a.values @ a.values) - 2.0 * inner + float(b.values @ b.values)
    return float(np.sqrt(max(0.0, sq)))


def mode_marginals(tensor: CooTensor, mode: int) -> np.ndarray:
    """Per-index sums along ``mode``: ``out[i] = Σ_{coords with i} value``
    (the "activity" profile used for factor interpretation)."""
    if not 0 <= mode < tensor.ndim:
        raise ValueError(f"mode {mode} out of range")
    return np.bincount(
        tensor.indices[mode], weights=tensor.values, minlength=tensor.shape[mode]
    )


def extract_slice(tensor: CooTensor, mode: int, index: int) -> CooTensor:
    """The ``(d-1)``-dimensional slice ``T[..., index, ...]`` at ``mode``."""
    if not 0 <= mode < tensor.ndim:
        raise ValueError(f"mode {mode} out of range")
    if not 0 <= index < tensor.shape[mode]:
        raise ValueError(f"index {index} out of range for mode {mode}")
    mask = tensor.indices[mode] == index
    keep = [m for m in range(tensor.ndim) if m != mode]
    return CooTensor.from_arrays(
        tensor.indices[keep][:, mask],
        tensor.values[mask],
        tuple(tensor.shape[m] for m in keep),
        sum_duplicates=False,
    )


def top_slices(tensor: CooTensor, mode: int, k: int = 5) -> np.ndarray:
    """Indices of the ``k`` heaviest slices along ``mode`` (by absolute
    marginal mass), heaviest first."""
    marg = np.abs(
        np.bincount(
            tensor.indices[mode],
            weights=np.abs(tensor.values),
            minlength=tensor.shape[mode],
        )
    )
    k = min(k, tensor.shape[mode])
    return np.argsort(-marg)[:k]
