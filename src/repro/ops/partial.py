"""Partially contracted sparse tensors and the TTM / mTTV / MTTV operators.

Section II-A of the paper defines three contraction operators on a sparse
tensor and its partially contracted descendants ``P^(i)``:

* **TTM** — contract the tensor's *last* mode with a factor matrix,
  producing ``P^(d-2)``: one dense ``R``-vector per distinct
  ``(i_0, ..., i_{d-2})`` fiber.
* **mTTV** — contract the last remaining index of a ``P^(i)`` with a factor
  matrix (rank index ``r`` is a batch dimension), producing ``P^(i-1)``.
* **MTTV** — contract *all leading* indices of a ``P^(i)`` with the row-wise
  KRP of their factor matrices, producing the MTTKRP output for the last
  remaining mode.

A :class:`PartialTensor` stores the result sparsely: an integer prefix
coordinate matrix (unique rows) plus an aligned ``(m, R)`` dense payload.
These operators are used directly by the SPLATT-style baselines and as a
second oracle for the fused CSF kernels in :mod:`repro.core.csf_kernels`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..kernels.dispatch import (
    TIER_NUMPY,
    gather_multiply_rows,
    scatter_rows_add,
    segment_sum_rows,
    value_gather_rows,
)
from ..parallel.counters import NULL_COUNTER, TrafficCounter
from ..tensor.coo import CooTensor
from .krp import krp_rows


def _scatter_rows(
    out: np.ndarray, idx: np.ndarray, rows: np.ndarray, tier: str = TIER_NUMPY
) -> None:
    """Duplicate-safe ``out[idx] += rows`` — delegated to the kernel ABI
    (same routine :func:`repro.core.csf_kernels.scatter_add_rows` uses)."""
    scatter_rows_add(out, idx, rows, tier=tier)

__all__ = [
    "PartialTensor",
    "ttm_last_mode",
    "mttv",
    "mttv_reduce",
    "from_coo",
    "contract_modes",
    "reduce_to_matrix",
]


def _group_rows(indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Group columns of an index matrix (already lexicographically sorted).

    Returns ``(unique_indices, segment_ids)`` where ``segment_ids[p]`` maps
    input column ``p`` to its row in ``unique_indices``.
    """
    if indices.shape[1] == 0:
        return indices, np.empty(0, dtype=np.int64)
    change = np.any(indices[:, 1:] != indices[:, :-1], axis=0)
    seg = np.concatenate(([0], np.cumsum(change))).astype(np.int64)
    first = np.concatenate(([True], change))
    return indices[:, first], seg


def _segment_sum(
    data: np.ndarray, seg: np.ndarray, n_seg: int, tier: str = TIER_NUMPY
) -> np.ndarray:
    """Sum rows of ``data`` into ``n_seg`` buckets given sorted segment ids
    — delegated to the kernel ABI."""
    return segment_sum_rows(data, seg, n_seg, tier=tier)


@dataclass(frozen=True)
class PartialTensor:
    """A partially contracted tensor ``P^(k)`` in sparse fiber form.

    Attributes
    ----------
    modes:
        The original tensor modes of the remaining index positions, in
        storage order (the CSF mode order prefix).
    indices:
        ``(k+1, m)`` unique fiber coordinates, sorted lexicographically.
    data:
        ``(m, R)`` dense payload: the ``R``-vector attached to each fiber.
    shape:
        Dense extents of the remaining modes (aligned with ``modes``).
    """

    modes: Tuple[int, ...]
    indices: np.ndarray
    data: np.ndarray
    shape: Tuple[int, ...]

    @property
    def num_fibers(self) -> int:
        """Number of stored fibers (rows of ``data``)."""
        return self.data.shape[0]

    @property
    def rank(self) -> int:
        """Payload width ``R``."""
        return self.data.shape[1]

    def nbytes(self) -> int:
        """Memory footprint of indices plus payload."""
        return int(self.indices.nbytes + self.data.nbytes)

    def to_dense(self) -> np.ndarray:
        """Materialize as an ndarray of shape ``shape + (R,)`` (tests only)."""
        out = np.zeros((int(np.prod(self.shape, dtype=np.int64)), self.rank))
        if self.num_fibers:
            flat = np.ravel_multi_index(tuple(self.indices), self.shape)
            _scatter_rows(out, flat, self.data)
        return out.reshape(tuple(self.shape) + (self.rank,))


def ttm_last_mode(
    tensor: CooTensor,
    factor: np.ndarray,
    mode_order: Sequence[int],
    tier: str = TIER_NUMPY,
    counter: TrafficCounter = NULL_COUNTER,
) -> PartialTensor:
    """TTM contracting the *last* mode of ``mode_order`` with ``factor``.

    ``factor`` must be the factor matrix of mode ``mode_order[-1]``.  The
    output fibers are the distinct prefixes ``mode_order[:-1]``; each
    carries ``sum_l T[..., l] * factor[l, :]``.

    ``counter`` charges the contraction's streamed legs — the coordinate
    walk (``structure``), the value stream (``values``), and the factor
    row gathers (``factor``).  Callers that bracket this helper with their
    own charges must leave the default no-op counter.
    """
    mode_order = list(mode_order)
    if len(mode_order) != tensor.ndim:
        raise ValueError("mode_order must cover every tensor mode")
    rank = int(np.asarray(factor).shape[1])
    counter.read(float(tensor.ndim * tensor.nnz), "structure")
    counter.read(float(tensor.nnz), "values")
    counter.read(float(tensor.nnz * rank), "factor")
    counter.flop(float(2 * tensor.nnz * rank), "sweep")
    sorted_t = tensor.sorted_by(mode_order)
    prefix_modes = mode_order[:-1]
    prefix = sorted_t.indices[prefix_modes]
    uniq, seg = _group_rows(prefix)
    contrib = value_gather_rows(
        sorted_t.values,
        np.asarray(factor),
        sorted_t.indices[mode_order[-1]],
        0,
        sorted_t.values.shape[0],
        tier=tier,
    )
    data = _segment_sum(contrib, seg, uniq.shape[1], tier=tier)
    return PartialTensor(
        modes=tuple(prefix_modes),
        indices=uniq,
        data=data,
        shape=tuple(tensor.shape[m] for m in prefix_modes),
    )


def mttv(
    partial: PartialTensor, factor: np.ndarray, tier: str = TIER_NUMPY
) -> PartialTensor:
    """mTTV: contract the last remaining index of ``partial`` with
    ``factor`` (the factor matrix of ``partial.modes[-1]``), batching over
    the rank index — ``P^(i) -> P^(i-1)`` of Section II-A."""
    if partial.indices.shape[0] < 2:
        raise ValueError("mTTV needs at least two remaining modes")
    last = partial.indices[-1]
    contrib = gather_multiply_rows(
        partial.data, np.asarray(factor), last, 0, last.shape[0], tier=tier
    )
    prefix = partial.indices[:-1]
    uniq, seg = _group_rows(prefix)
    data = _segment_sum(contrib, seg, uniq.shape[1], tier=tier)
    return PartialTensor(
        modes=partial.modes[:-1],
        indices=uniq,
        data=data,
        shape=partial.shape[:-1],
    )


def from_coo(tensor: CooTensor, rank: int) -> PartialTensor:
    """Lift a COO tensor into a rank-``rank`` PartialTensor whose payload
    is the value replicated across columns — the dimension-tree root
    ``P_{all modes}`` (no factors contracted yet).

    Broadcasting the scalar across ``R`` columns mirrors how the batched
    contractions treat the original tensor (every rank column sees the
    same values); storage-conscious implementations keep the scalar and
    this lift is charged accordingly by the backend using it.
    """
    data = np.repeat(tensor.values[:, None], rank, axis=1)
    return PartialTensor(
        modes=tuple(range(tensor.ndim)),
        indices=tensor.indices.copy(),
        data=data,
        shape=tensor.shape,
    )


def contract_modes(
    partial: PartialTensor,
    contract: Sequence[int],
    factors: Sequence[np.ndarray],
    tier: str = TIER_NUMPY,
) -> PartialTensor:
    """Contract an arbitrary subset of a PartialTensor's modes with the
    row-wise KRP of their factor matrices (the dimension-tree edge
    operation: child ``P_{S1}`` = parent ``P_S`` contracted over
    ``S2 = S ∖ S1``).

    ``contract`` names *original tensor modes* present in
    ``partial.modes``; ``factors[i]`` is the factor matrix for
    ``contract[i]``.  The result keeps the remaining modes in their
    current order.
    """
    contract = list(contract)
    if len(contract) != len(factors):
        raise ValueError("need one factor per contracted mode")
    positions = []
    for m in contract:
        if m not in partial.modes:
            raise ValueError(f"mode {m} not present in {partial.modes}")
        positions.append(partial.modes.index(m))
    keep = [p for p in range(len(partial.modes)) if p not in positions]
    if not keep:
        raise ValueError("contraction would remove every mode; use "
                         "reduce_to_matrix for the final step")
    weights = krp_rows(list(factors), [partial.indices[p] for p in positions], tier=tier)
    contrib = partial.data * weights
    remaining = partial.indices[keep]
    order = np.lexsort(remaining[::-1])
    remaining = remaining[:, order]
    contrib = contrib[order]
    uniq, seg = _group_rows(remaining)
    data = _segment_sum(contrib, seg, uniq.shape[1], tier=tier)
    return PartialTensor(
        modes=tuple(partial.modes[p] for p in keep),
        indices=uniq,
        data=data,
        shape=tuple(partial.shape[p] for p in keep),
    )


def reduce_to_matrix(
    partial: PartialTensor,
    target_mode: int,
    factors: Sequence[np.ndarray],
    contract: Sequence[int],
    tier: str = TIER_NUMPY,
) -> np.ndarray:
    """Finish an MTTKRP: contract every mode in ``contract`` (all
    remaining modes except ``target_mode``) and scatter into the dense
    ``N_target × R`` output."""
    contract = list(contract)
    if target_mode not in partial.modes:
        raise ValueError(f"target mode {target_mode} absent from partial")
    if set(contract) | {target_mode} != set(partial.modes):
        raise ValueError("contract + target must cover the partial's modes")
    t_pos = partial.modes.index(target_mode)
    out = np.zeros((partial.shape[t_pos], partial.rank))
    if not contract:
        _scatter_rows(out, partial.indices[t_pos], partial.data, tier=tier)
        return out
    positions = [partial.modes.index(m) for m in contract]
    weights = krp_rows(list(factors), [partial.indices[p] for p in positions], tier=tier)
    _scatter_rows(out, partial.indices[t_pos], partial.data * weights, tier=tier)
    return out


def mttv_reduce(
    partial: PartialTensor,
    factors: Sequence[np.ndarray],
    tier: str = TIER_NUMPY,
) -> np.ndarray:
    """MTTV: contract all *leading* indices of ``partial`` with the row-wise
    KRP of their factor matrices, producing the MTTKRP output for the last
    remaining mode (Fig. 1b's single-step path).

    ``factors`` must supply the factor matrix for every mode in
    ``partial.modes[:-1]``, in that order.
    """
    lead = partial.indices[:-1]
    if len(factors) != lead.shape[0]:
        raise ValueError(
            f"need {lead.shape[0]} leading factors, got {len(factors)}"
        )
    k = krp_rows(list(factors), list(lead), tier=tier)
    out = np.zeros((partial.shape[-1], partial.rank))
    _scatter_rows(out, partial.indices[-1], partial.data * k, tier=tier)
    return out
