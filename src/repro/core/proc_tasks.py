"""Module-level kernel task bodies for the ``processes`` backend.

A process worker is a separate interpreter: it cannot execute the closure
thread bodies :class:`~repro.core.mttkrp.MemoizedMttkrp` uses under the
``serial``/``threads`` backends (closures are unpicklable, and closing
over coordinator state would re-serialize the tensor per call).  Instead,
each kernel has a module-level *task function* here, dispatched with
:meth:`SimulatedPool.run_tasks`, that

* rebuilds a read-only :class:`~repro.tensor.csf.CsfTensor` from
  shared-memory tokens (zero-copy; the attach cache in
  :mod:`repro.parallel.shm` makes repeat calls dict-lookups),
* runs exactly the same sweep primitives
  (:func:`~repro.core.csf_kernels.thread_upward_sweep` /
  :func:`thread_downward_k`) on exactly the same operands as the closure
  bodies — which is what makes the ``processes`` backend bit-identical to
  ``serial`` rather than merely close,
* writes results through slot-disjoint
  :class:`~repro.parallel.executor.ReplicatedArray` stripes (mode 0) or a
  per-thread scratch segment (modes ``u > 0``), and
* charges its traffic legs to a *local* counter whose state is returned
  to the coordinator, which folds it into the matching
  :class:`~repro.parallel.counters.ShardedTrafficCounter` shard — so
  per-thread traffic totals stay exact across the process boundary.

The traffic-charge helpers (:func:`charge_sweep`, :func:`charge_mode_u`)
are shared with the coordinator-side closure bodies: one definition, so
the serial, threads and processes backends cannot drift apart in what
they charge.

:class:`ProcessEngineContext` is the coordinator-side companion: it owns
the engine's :class:`~repro.parallel.shm.SharedArena`, shares the CSF
once, refreshes factor/memo slots in place before each dispatch, and
builds the small picklable payloads the tasks consume.
"""

from __future__ import annotations

import secrets
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..kernels.dispatch import TIER_NUMPY, scale_rows_by_values
from ..parallel.counters import TrafficCounter
from ..parallel.shm import SharedArena, ShmToken, attach
from ..tensor.csf import CsfTensor
from .csf_kernels import thread_downward_k, thread_upward_sweep

__all__ = [
    "ProcessEngineContext",
    "charge_sweep",
    "charge_mode_u",
    "counter_state",
    "merge_counter_state",
    "emit_contrib",
    "mode0_task",
    "memo_direct_task",
    "recompute_task",
    "leaf_task",
]


# ----------------------------------------------------------------------
# traffic charges — one definition for every execution backend
# ----------------------------------------------------------------------
def charge_sweep(counter: TrafficCounter, owned: np.ndarray, rank: int) -> None:
    """Per-thread legs of the mode-0 sweep: structure reads over the
    thread's owned nodes at every level and one fused multiply-add per
    owned child fiber per rank column.  Owned counts tile each level
    exactly, so merged totals match the serial tallies at any T."""
    counter.read(2.0 * int(owned.sum()), "structure")
    counter.flop(2.0 * rank * int(owned[1:].sum()), "sweep")


def charge_mode_u(
    counter: TrafficCounter,
    owned: np.ndarray,
    u: int,
    source: int,
    d: int,
    rank: int,
) -> None:
    """Per-thread legs of a mode-``u`` kernel: the structure walk down to
    the source data, the memo reads of the thread's node range, and the
    downward-``k`` / recompute / Hadamard arithmetic."""
    flops = rank * int(owned[1 : u + 1].sum())
    if source == d - 1:
        counter.read(2.0 * int(owned.sum()), "structure")
        flops += 2 * rank * int(owned[u + 1 : d].sum())
    else:
        counter.read(2.0 * int(owned[:source].sum()), "structure")
        counter.read(float(int(owned[source]) * rank), "memo")
        flops += 2 * rank * int(owned[u + 1 : source + 1].sum())
    flops += 2 * rank * int(owned[u])
    counter.flop(flops, "mode-u")


def counter_state(counter: TrafficCounter) -> Tuple[float, float, float, Dict[str, float]]:
    """Picklable snapshot of a worker-local counter's tallies."""
    return counter.reads, counter.writes, counter.flops, dict(counter.by_category)


def merge_counter_state(
    shard: TrafficCounter, state: Tuple[float, float, float, Dict[str, float]]
) -> None:
    """Fold a worker's returned tallies into the coordinator-side shard.

    The shard was reset at kernel start, so adding the worker's exact
    charges reproduces the serial shard contents bit-for-bit."""
    reads, writes, flops, by_category = state
    shard.reads += reads
    shard.writes += writes
    shard.flops += flops
    for key, val in by_category.items():
        shard.by_category[key] = shard.by_category.get(key, 0.0) + val


# ----------------------------------------------------------------------
# worker-side resolution
# ----------------------------------------------------------------------
def _resolve_csf(ctx: Dict[str, Any]) -> CsfTensor:
    spec = ctx["csf"]
    return CsfTensor(
        spec["mode_order"],
        [attach(t) for t in spec["idx"]],
        [attach(t) for t in spec["ptr"]],
        attach(spec["values"]),
        spec["shape"],
        spec["fiber_counts"],
    )


def _resolve_factors(ctx: Dict[str, Any]) -> List[np.ndarray]:
    return [attach(t) for t in ctx["factors"]]


def _local_counter(ctx: Dict[str, Any]) -> TrafficCounter:
    return TrafficCounter(
        cache_elements=ctx["cache_elements"], enabled=ctx["enabled"]
    )


def _owned(ctx: Dict[str, Any], th: int) -> np.ndarray:
    starts = ctx["starts"]
    return (starts[th + 1] - starts[th]).astype(np.int64)


def _tier(ctx: Dict[str, Any]) -> str:
    """Kernel-ABI tier for this dispatch (the coordinator resolved the
    engine's ``jit=`` knob; workers never re-probe Numba themselves)."""
    return ctx.get("tier", TIER_NUMPY)


def emit_contrib(
    scratch_token: ShmToken,
    nlo: int,
    contrib: np.ndarray,
    counter: TrafficCounter,
) -> Tuple[str, int, Any, Tuple[float, float, float, Dict[str, float]]]:
    """Hand a per-thread contribution back to the coordinator.

    The fast path writes into the thread's scratch segment (zero-copy);
    contributions whose dtype or size does not fit the scratch fall back
    to pickling the array so exactness is never sacrificed for speed.
    Shared with the baseline backends' process tasks.
    """
    scratch = attach(scratch_token)
    n = contrib.shape[0]
    if contrib.dtype == scratch.dtype and n <= scratch.shape[0]:
        scratch[:n] = contrib
        return ("shm", nlo, n, counter_state(counter))
    return ("obj", nlo, contrib, counter_state(counter))


def _emit_contrib(
    ctx: Dict[str, Any], th: int, nlo: int, contrib: np.ndarray, counter: TrafficCounter
) -> Tuple[str, int, Any, Tuple[float, float, float, Dict[str, float]]]:
    return emit_contrib(ctx["scratch"][th], nlo, contrib, counter)


# ----------------------------------------------------------------------
# the task bodies (one per kernel shape)
# ----------------------------------------------------------------------
def mode0_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Mode-0 upward sweep for one thread: writes the kept partials into
    the shared ReplicatedArray stripes, returns range metadata and
    traffic.  Mirrors ``MemoizedMttkrp.mode0``'s closure body exactly."""
    ctx, th = payload["ctx"], payload["th"]
    csf = _resolve_csf(ctx)
    lf = _resolve_factors(ctx)
    counter = _local_counter(ctx)
    charge_sweep(counter, _owned(ctx, th), ctx["rank"])
    starts = ctx["starts"]
    d = csf.ndim
    lo, hi = int(starts[th, d - 1]), int(starts[th + 1, d - 1])
    res = thread_upward_sweep(csf, lf, lo, hi, stop_level=0, tier=_tier(ctx))
    ranges: Dict[int, Tuple[int, int]] = {}
    for lvl in payload["keep_levels"]:
        nlo, tp = res[lvl]
        ranges[lvl] = (nlo, tp.shape[0])
        if tp.shape[0]:
            buf = attach(payload["rep"][lvl])
            buf[nlo + th : nlo + tp.shape[0] + th] += tp
    return {"ranges": ranges, "traffic": counter_state(counter)}


def memo_direct_task(payload: Dict[str, Any]) -> Tuple[str, int, Any, tuple]:
    """Fig. 1b: ``k_{u-1} ⊙ P^(u)`` over this thread's node ownership."""
    ctx, th, u = payload["ctx"], payload["th"], payload["u"]
    csf = _resolve_csf(ctx)
    lf = _resolve_factors(ctx)
    counter = _local_counter(ctx)
    charge_mode_u(counter, _owned(ctx, th), u, u, csf.ndim, ctx["rank"])
    starts = ctx["starts"]
    a, b = int(starts[th, u]), int(starts[th + 1, u])
    k = thread_downward_k(csf, lf, u, a, b, tier=_tier(ctx))
    memo = attach(ctx["memo"][u])
    return _emit_contrib(ctx, th, a, k * memo[a:b], counter)


def recompute_task(payload: Dict[str, Any]) -> Tuple[str, int, Any, tuple]:
    """Fig. 1c/1d: rebuild ``t_u`` from ``P^(source)`` (or the tensor when
    ``source == d-1``) and fuse with the downward ``k`` sweep."""
    ctx, th = payload["ctx"], payload["th"]
    u, source = payload["u"], payload["source"]
    csf = _resolve_csf(ctx)
    lf = _resolve_factors(ctx)
    counter = _local_counter(ctx)
    charge_mode_u(counter, _owned(ctx, th), u, source, csf.ndim, ctx["rank"])
    starts = ctx["starts"]
    d = csf.ndim
    if source == d - 1:
        lo, hi = int(starts[th, d - 1]), int(starts[th + 1, d - 1])
        res = thread_upward_sweep(
            csf, lf, lo, hi, stop_level=u, tier=_tier(ctx)
        )
    else:
        a, b = int(starts[th, source]), int(starts[th + 1, source])
        init = attach(ctx["memo"][source])
        res = thread_upward_sweep(
            csf,
            lf,
            a,
            b,
            start_level=source,
            init=init,
            stop_level=u,
            tier=_tier(ctx),
        )
    nlo, tp = res[u]
    k = thread_downward_k(csf, lf, u, nlo, nlo + tp.shape[0], tier=_tier(ctx))
    return _emit_contrib(ctx, th, nlo, k * tp, counter)


def leaf_task(payload: Dict[str, Any]) -> Tuple[str, int, Any, tuple]:
    """Leaf-mode kernel: ``val · k_{d-2}`` per owned leaf."""
    ctx, th = payload["ctx"], payload["th"]
    csf = _resolve_csf(ctx)
    lf = _resolve_factors(ctx)
    counter = _local_counter(ctx)
    d = csf.ndim
    charge_mode_u(counter, _owned(ctx, th), d - 1, d - 1, d, ctx["rank"])
    starts = ctx["starts"]
    lo, hi = int(starts[th, d - 1]), int(starts[th + 1, d - 1])
    tier = _tier(ctx)
    k = thread_downward_k(csf, lf, d - 1, lo, hi, tier=tier)
    return _emit_contrib(
        ctx, th, lo, scale_rows_by_values(csf.values, k, lo, hi, tier=tier), counter
    )


# ----------------------------------------------------------------------
# coordinator-side context
# ----------------------------------------------------------------------
class ProcessEngineContext:
    """Shared-memory state of one engine under the processes backend.

    Owns the arena, shares the (immutable) CSF arrays once, and keeps
    mutable *slots* — factor matrices, memoized partials, per-thread
    scratch, ReplicatedArray buffers — that the coordinator refreshes in
    place so workers always read current data with zero serialization.
    """

    def __init__(
        self,
        csf: CsfTensor,
        rank: int,
        starts: np.ndarray,
        num_threads: int,
        cache_elements: Optional[int],
        enabled: bool,
        tier: str = TIER_NUMPY,
    ) -> None:
        self.arena = SharedArena()
        self.rank = rank
        self.num_threads = num_threads
        self.tier = tier
        self._csf_spec = {
            "mode_order": csf.mode_order,
            "shape": csf.shape,
            "fiber_counts": csf.fiber_counts,
            "idx": [self.arena.share(a) for a in csf.idx],
            "ptr": [self.arena.share(p) for p in csf.ptr],
            "values": self.arena.share(csf.values),
        }
        self._starts = np.ascontiguousarray(starts)
        self._cache_elements = cache_elements
        self._enabled = enabled
        self._factor_tokens: Optional[List[ShmToken]] = None
        self._memo_tokens: Dict[int, ShmToken] = {}
        self._scratch_tokens: Optional[List[ShmToken]] = None
        # Upper bound on any mode-u contribution's row count: the widest
        # per-thread node range at any level, +1 for the shared boundary
        # node recompute sweeps may touch.
        diffs = np.diff(self._starts, axis=0)
        self._max_rows = int(diffs.max()) + 1 if diffs.size else 1
        self.rep_tokens: Dict[int, ShmToken] = {}

    # ------------------------------------------------------------------
    def refresh_factors(self, lf: Sequence[np.ndarray]) -> None:
        """Copy the current level-ordered factors into their slots."""
        if self._factor_tokens is None:
            self._factor_tokens = [
                self.arena.zeros(np.asarray(f).shape, np.asarray(f).dtype)
                for f in lf
            ]
        for token, f in zip(self._factor_tokens, lf):
            f = np.asarray(f)
            if token.shape != f.shape or np.dtype(token.dtype) != f.dtype:
                raise ValueError(
                    f"factor slot {token.shape}/{token.dtype} cannot hold "
                    f"{f.shape}/{f.dtype}"
                )
            self.arena.array(token)[...] = f

    def refresh_memo(self, level: int, arr: np.ndarray) -> None:
        """Copy a freshly merged ``P^(level)`` into its shared slot."""
        token = self._memo_tokens.get(level)
        if token is None or token.shape != arr.shape:
            token = self.arena.zeros(arr.shape, arr.dtype)
            self._memo_tokens[level] = token
        self.arena.array(token)[...] = arr

    def rep_buffer(self, level: int, n_rows: int) -> np.ndarray:
        """Shared storage for the level's ReplicatedArray buffer."""
        token = self.rep_tokens.get(level)
        if token is None:
            token = self.arena.zeros(
                (n_rows + self.num_threads, self.rank), np.float64
            )
            self.rep_tokens[level] = token
        return self.arena.array(token)

    def _scratch(self) -> List[ShmToken]:
        if self._scratch_tokens is None:
            self._scratch_tokens = [
                self.arena.zeros((self._max_rows, self.rank), np.float64)
                for _ in range(self.num_threads)
            ]
        return self._scratch_tokens

    def scratch_view(self, th: int, n_rows: int) -> np.ndarray:
        """Coordinator view of thread ``th``'s scratch contribution."""
        return self.arena.array(self._scratch()[th])[:n_rows]

    # ------------------------------------------------------------------
    def base_ctx(self) -> Dict[str, Any]:
        """The shared portion of every task payload (tokens + layout)."""
        if self._factor_tokens is None:
            raise RuntimeError("refresh_factors() must run before dispatch")
        return {
            "csf": self._csf_spec,
            "starts": self._starts,
            "rank": self.rank,
            "factors": self._factor_tokens,
            "memo": dict(self._memo_tokens),
            "scratch": self._scratch(),
            "cache_elements": self._cache_elements,
            "enabled": self._enabled,
            "tier": self.tier,
        }

    def close(self) -> None:
        """Release every shared segment (idempotent)."""
        self.arena.close()
