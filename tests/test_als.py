"""Tests for the CPD-ALS driver (Algorithm 2)."""

import numpy as np
import pytest

from repro.baselines import ALL_BACKENDS, SplattAll
from repro.core import Stef
from repro.cpd import cp_als
from repro.tensor import low_rank_tensor, random_tensor


@pytest.fixture(scope="module")
def lowrank3():
    # Dense-ish sample (~70% of cells): sparse CPD treats unobserved cells
    # as zeros, so a mostly-observed tensor is needed for high fits.
    return low_rank_tensor((10, 9, 8), rank=3, nnz=650, noise=0.05, seed=0)


class TestConvergence:
    def test_fits_nondecreasing(self, lowrank3):
        res = cp_als(lowrank3, 3, engine=SplattAll(lowrank3, 3), max_iters=10, tol=0)
        fits = np.array(res.fits)
        assert np.all(np.diff(fits) > -1e-9)  # ALS monotone up to fp noise

    def test_recovers_low_rank_structure(self, lowrank3):
        res = cp_als(lowrank3, 3, engine=SplattAll(lowrank3, 3), max_iters=25, tol=0)
        assert res.final_fit > 0.5

    def test_tol_stops_early(self, lowrank3):
        res = cp_als(
            lowrank3, 3, engine=SplattAll(lowrank3, 3), max_iters=100, tol=1e-3
        )
        assert res.converged
        assert res.iterations < 100

    def test_max_iters_respected(self, lowrank3):
        res = cp_als(lowrank3, 2, engine=SplattAll(lowrank3, 2), max_iters=4, tol=0)
        assert res.iterations == 4
        assert not res.converged

    def test_compute_fit_false(self, lowrank3):
        res = cp_als(
            lowrank3, 2, engine=SplattAll(lowrank3, 2), max_iters=3,
            compute_fit=False,
        )
        assert res.fits == []
        assert res.iterations == 3

    def test_callback_invoked(self, lowrank3):
        seen = []
        cp_als(
            lowrank3, 2, engine=SplattAll(lowrank3, 2), max_iters=3, tol=0,
            callback=lambda it, fit: seen.append((it, fit)),
        )
        assert [s[0] for s in seen] == [0, 1, 2]


class TestBackendEquivalence:
    def test_same_trajectory_within_update_order_group(self):
        """Backends that update modes in the same order must produce
        bit-identical ALS trajectories — they compute the same math."""
        t = random_tensor((12, 10, 8), nnz=300, seed=11)
        groups = {}
        for name, cls in ALL_BACKENDS.items():
            b = cls(t, 3, num_threads=3)
            res = cp_als(t, 3, engine=b, max_iters=4, tol=0, seed=5)
            groups.setdefault(tuple(b.mode_order), {})[name] = res.fits
        assert len(groups) >= 2  # both update orders exercised
        for order, fits in groups.items():
            base = next(iter(fits.values()))
            for name, f in fits.items():
                assert np.allclose(f, base, atol=1e-8), (order, name)

    def test_all_backends_reach_similar_final_fit(self, lowrank3):
        finals = {}
        for name, cls in ALL_BACKENDS.items():
            b = cls(lowrank3, 3, num_threads=2)
            res = cp_als(lowrank3, 3, engine=b, max_iters=10, tol=0, seed=1)
            finals[name] = res.final_fit
        vals = list(finals.values())
        assert max(vals) - min(vals) < 0.15, finals


class TestDefaults:
    def test_default_backend_is_stef(self, lowrank3):
        res = cp_als(lowrank3, 2, max_iters=2, tol=0)
        assert len(res.fits) == 2

    def test_unknown_init_raises(self, lowrank3):
        with pytest.raises(ValueError, match="init"):
            cp_als(lowrank3, 2, init="zeros")

    def test_result_model_shape(self, lowrank3):
        res = cp_als(lowrank3, 3, max_iters=2, tol=0)
        assert res.model.shape == lowrank3.shape
        assert res.model.rank == 3
        assert len(res.seconds_per_iteration) == res.iterations

    def test_hosvd_init_runs(self, lowrank3):
        res = cp_als(lowrank3, 2, max_iters=2, tol=0, init="hosvd")
        assert len(res.fits) == 2
