"""Small AST helpers shared by the lint rules.

The rules reason about three recurring shapes:

* **dotted receivers** — ``self.pool.map`` / ``self.counter.read`` chains
  (:func:`dotted_name`, :func:`receiver_of`);
* **thread bodies** — functions handed to ``SimulatedPool.map`` (or
  ``run_partitioned``), i.e. code that runs once per simulated thread and
  must obey the write-conflict invariants (:func:`find_thread_bodies`);
* **local bindings** — which names a function body owns, so stores to
  closure/instance state can be told apart from thread-private temporaries
  (:func:`local_names`).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Union

__all__ = [
    "dotted_name",
    "receiver_of",
    "expr_text",
    "find_thread_bodies",
    "local_names",
    "walk_with_loop_depth",
    "FunctionNode",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for pure Name/Attribute chains, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def expr_text(node: ast.AST) -> str:
    """Best-effort source text of an expression (for heuristic matching)."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failures are exotic
        return ""


def receiver_of(call: ast.Call) -> Optional[ast.AST]:
    """The object a method call is invoked on (``x`` of ``x.m(...)``)."""
    if isinstance(call.func, ast.Attribute):
        return call.func.value
    return None


def _functions_in(tree: ast.AST) -> List[ast.FunctionDef]:
    return [
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def find_thread_bodies(tree: ast.Module) -> Dict[FunctionNode, ast.Call]:
    """Functions used as per-thread bodies, mapped to the spawning call.

    A function is a thread body when it is the single argument of a
    ``<pool>.map(fn)`` call (the :class:`~repro.parallel.executor.
    SimulatedPool` protocol — ``ThreadPoolExecutor.map`` style calls take
    an extra iterable and are excluded by the single-argument requirement)
    or the second argument of ``run_partitioned(pool, fn)``.  Lambdas are
    analyzed in place; names are resolved to the nearest preceding
    ``def`` with that name (same module — cross-module bodies cannot be
    resolved statically and are out of scope).
    """
    defs = _functions_in(tree)
    bodies: Dict[FunctionNode, ast.Call] = {}

    def resolve(arg: ast.AST, call: ast.Call) -> None:
        if isinstance(arg, ast.Lambda):
            bodies.setdefault(arg, call)
            return
        if not isinstance(arg, ast.Name):
            return
        candidates = [
            fn for fn in defs
            if fn.name == arg.id and fn.lineno <= getattr(call, "lineno", fn.lineno)
        ]
        if candidates:
            # Nearest preceding definition wins (shadowing).
            target = max(candidates, key=lambda fn: fn.lineno)
            bodies.setdefault(target, call)

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "map"
            and len(node.args) == 1
            and not node.keywords
        ):
            resolve(node.args[0], node)
        elif (
            isinstance(func, ast.Name)
            and func.id == "run_partitioned"
            and len(node.args) >= 2
        ):
            resolve(node.args[1], node)
    return bodies


def local_names(fn: FunctionNode) -> Set[str]:
    """Names bound inside ``fn``: parameters plus any assignment target.

    Nested function bodies are included (an over-approximation that errs
    toward fewer false positives: a name assigned anywhere inside the
    thread body is treated as thread-private).
    """
    names: Set[str] = set()
    args = fn.args
    for a in args.posonlyargs + args.args + args.kwonlyargs:
        names.add(a.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
                for a in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
                    names.add(a.arg)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                names.add(node.id)
            elif isinstance(node, ast.alias):
                names.add(node.asname or node.name.split(".")[0])
    return names


def walk_with_loop_depth(tree: ast.AST) -> Iterator[tuple]:
    """Yield ``(node, loop_depth)`` pairs, tracking ``for``/``while``
    nesting — how the hot-path rule tells a one-off ``np.concatenate``
    from a quadratic grow-in-a-loop."""
    stack: List[tuple] = [(tree, 0)]
    while stack:
        node, depth = stack.pop()
        yield node, depth
        child_depth = depth + 1 if isinstance(node, (ast.For, ast.While)) else depth
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_depth))
