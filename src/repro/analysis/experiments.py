"""Experiment harness shared by the benchmark suite.

One measured quantity underlies Figures 3, 4 and 6: the cost of a *full
MTTKRP set* (all ``d`` MTTKRPs of one CPD iteration) for a given method on
a given tensor/rank/machine.  The harness reports it through two channels:

* **wall seconds** — Python wall-clock of the vectorized kernels.  Useful
  as a sanity channel, but it ranks methods partly by interpreter
  overhead, not by the memory traffic that dominates the paper's C/OpenMP
  kernels.
* **simulated seconds** — counted element traffic converted to time by the
  machine's bandwidth, stretched per level by the schedule's
  load-imbalance factor:  ``Σ_levels traffic(level)·bytes/BW ·
  max_over_mean(level)``.  This single-resource (bandwidth-bound) model is
  the channel the figure-shape claims are validated on; DESIGN.md §2
  records the substitution.

:func:`measure_method` runs one method once; :func:`run_comparison`
produces the Figure-3/4 style table (performance relative to splatt-all,
higher = better).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines import ALL_BACKENDS
from ..cpd.init import random_init
from ..engines import create_engine
from ..parallel.counters import TrafficCounter
from ..parallel.machine import MachineSpec
from ..tensor.coo import CooTensor

__all__ = [
    "LevelCost",
    "MethodMeasurement",
    "measure_method",
    "run_comparison",
    "scale_for_tensor",
]


@dataclass(frozen=True)
class LevelCost:
    """Cost of one MTTKRP in the set."""

    mode: int
    traffic_elements: float
    flops: float
    load_factor: float
    wall_seconds: float


@dataclass
class MethodMeasurement:
    """Cost of one full MTTKRP set for one method."""

    method: str
    tensor_name: str
    rank: int
    machine: str
    levels: List[LevelCost] = field(default_factory=list)
    wall_seconds: float = 0.0
    simulated_seconds: float = 0.0
    traffic_reads: float = 0.0
    traffic_writes: float = 0.0
    setup_seconds: float = 0.0

    @property
    def traffic_total(self) -> float:
        return self.traffic_reads + self.traffic_writes


def scale_for_tensor(tensor: CooTensor, tensor_name: str) -> float:
    """Per-tensor cache scale: the same factor the generator applied to
    the mode lengths, ``(nnz_scaled / nnz_paper) ** (1/d)``.

    Scaling the machine cache by this factor preserves which factor
    matrices are cache-resident at paper scale — without it every scaled
    factor fits in a real L3 and all ``DM_factor`` effects vanish.
    Unknown tensor names scale by 1 (real-size inputs).
    """
    from ..tensor.synthetic import TABLE1_SPECS

    spec = TABLE1_SPECS.get(tensor_name)
    if spec is None or tensor.nnz == 0:
        return 1.0
    return float((tensor.nnz / spec.paper_nnz) ** (1.0 / tensor.ndim))


def measure_method(
    method: str,
    tensor: CooTensor,
    rank: int,
    machine: MachineSpec,
    *,
    num_threads: Optional[int] = None,
    tensor_name: str = "?",
    seed: int = 0,
    backend_kwargs: Optional[dict] = None,
    cache_scale: Optional[float] = None,
) -> MethodMeasurement:
    """Run one full MTTKRP set for ``method`` and collect both channels.

    ``method`` is a registered engine name (see
    :func:`repro.engines.create_engine`); ``backend_kwargs`` forwards
    extra constructor arguments (used by the ablation benches to force
    plans/partitions).  ``cache_scale`` defaults to the per-tensor
    factor of :func:`scale_for_tensor`.
    """
    if cache_scale is None:
        cache_scale = scale_for_tensor(tensor, tensor_name)
    machine_eff = machine.with_cache_scale(cache_scale)
    counter = TrafficCounter(cache_elements=machine_eff.cache_elements)
    threads = num_threads if num_threads is not None else machine.num_threads
    t0 = time.perf_counter()
    backend = create_engine(
        method,
        tensor,
        rank,
        machine=machine_eff,
        num_threads=threads,
        counter=counter,
        **(backend_kwargs or {}),
    )
    setup = time.perf_counter() - t0
    factors = random_init(tensor.shape, rank, seed)

    meas = MethodMeasurement(
        method=method,
        tensor_name=tensor_name,
        rank=rank,
        machine=machine.name,
        setup_seconds=setup,
    )
    with backend:
        for level in range(tensor.ndim):
            before_t = counter.total
            before_f = counter.flops
            t1 = time.perf_counter()
            backend.mttkrp_level(factors, level)
            wall = time.perf_counter() - t1
            delta_t = counter.total - before_t
            delta_f = counter.flops - before_f
            load = backend.level_load_factor(level)
            meas.levels.append(
                LevelCost(
                    mode=backend.mode_order[level],
                    traffic_elements=delta_t,
                    flops=delta_f,
                    load_factor=load,
                    wall_seconds=wall,
                )
            )
            meas.wall_seconds += wall
            meas.simulated_seconds += (
                machine_eff.roofline_seconds(delta_t, delta_f, threads) * load
            )
    meas.traffic_reads = counter.reads
    meas.traffic_writes = counter.writes
    return meas


def run_comparison(
    tensors: Dict[str, CooTensor],
    rank: int,
    machine: MachineSpec,
    *,
    methods: Sequence[str] = tuple(ALL_BACKENDS),
    baseline: str = "splatt-all",
    num_threads: Optional[int] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, MethodMeasurement]]:
    """Measure every method on every tensor (Figures 3/4 inner loop).

    Returns ``{tensor_name: {method: measurement}}``; relative performance
    against ``baseline`` is derived by the report layer.
    """
    if baseline not in methods:
        raise ValueError(f"baseline {baseline!r} must be among the methods")
    out: Dict[str, Dict[str, MethodMeasurement]] = {}
    for name, tensor in tensors.items():
        row: Dict[str, MethodMeasurement] = {}
        for method in methods:
            row[method] = measure_method(
                method,
                tensor,
                rank,
                machine,
                num_threads=num_threads,
                tensor_name=name,
                seed=seed,
            )
        out[name] = row
    return out
