"""EngineBase — shared lifecycle and protocol defaults for MTTKRP engines.

Every engine (STeF, STeF2, and the baselines) mixes this in to satisfy
the :class:`~repro.engines.MttkrpEngine` protocol uniformly:

* **context management** — ``with create_engine(...) as eng:`` releases
  shared-memory segments even when the body raises; ``__exit__`` calls
  :meth:`close`, which subclasses with real resources (the ``processes``
  backend's shm arenas) override.  Bare ``close()`` keeps working — the
  context-manager form just makes the release exception-safe.
* **iteration_results** — the generic "all ``d`` MTTKRPs in level order"
  loop over :meth:`mttkrp_level` (engines with a cheaper fused path
  override it).
* **per_thread_traffic** — the sharded counter's per-thread totals when
  the engine has shards, else one empty lane per thread.
* **describe** — a one-line configuration summary, defaulting to the
  engine's registry name.

The ``engine-protocol`` lint rule requires every registered engine class
to inherit from this base (directly or transitively) so the protocol can
never be satisfied by accident on one engine and missed on another.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["EngineBase", "resolve_num_threads"]


def resolve_num_threads(machine, num_threads: Optional[int]) -> int:
    """The effective thread count: an explicit override wins, else the
    machine model's count, else 1 (the cache-less single-thread model)."""
    if num_threads is not None:
        return int(num_threads)
    return int(machine.num_threads) if machine is not None else 1


class EngineBase:
    """Protocol-default mixin for MTTKRP engines (see module docstring)."""

    #: Registry name; subclasses set their harness/plot name.
    name: str = "?"
    #: Update-position → original-mode mapping; subclasses set this.
    mode_order: Tuple[int, ...] = ()

    # -- capability metadata (read by create_engine / engine_names) ----
    #: Whether the engine's kernels route through the flat-array kernel
    #: ABI and accept the ``jit=`` keyword.
    jit_capable: bool = False
    #: Default ``jit=`` mode when the caller passes ``None`` — ``"off"``
    #: for the plain engines, ``"auto"`` for the registered ``*-jit``
    #: variants.
    jit_default: str = "off"
    #: Pool-execution modes the engine accepts.
    exec_backends: Tuple[str, ...] = ("serial", "threads", "processes")
    #: Whether the engine memoizes partial results (accepts ``plan=`` /
    #: the factory's ``memoize=`` knob).
    memoize_capable: bool = False

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Release engine resources (shared-memory segments under the
        ``processes`` exec backend; a no-op for engines without any)."""
        return None

    # -- pooling (repro.serve engine cache) ----------------------------
    @property
    def leased(self) -> bool:
        """Whether a pool has checked this engine out to a job."""
        return getattr(self, "_lease_owner", None) is not None

    @property
    def lease_owner(self) -> Optional[str]:
        """Identity of the current lease holder (``None`` when idle)."""
        return getattr(self, "_lease_owner", None)

    def lease(self, owner: str) -> "EngineBase":
        """Check the engine out for exclusive use by ``owner``.

        Pooled engines (the serve-layer fingerprint cache) are planned
        once and reused across jobs, but a single engine must never run
        two jobs concurrently — its counter snapshots and scoped tracer
        target are per-job state.  Double-leasing is a pool bug, so it
        raises rather than queues; stored via an attribute (not
        ``__init__`` state) so every existing engine class participates
        without a constructor change.
        """
        current = getattr(self, "_lease_owner", None)
        if current is not None:
            raise RuntimeError(
                f"engine {self.name!r} already leased by {current!r}; "
                f"refusing lease for {owner!r}"
            )
        self._lease_owner = owner
        return self

    def release(self) -> None:
        """Return a leased engine to its pool (idempotent)."""
        self._lease_owner = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- protocol defaults ---------------------------------------------
    def iteration_results(
        self, factors: Sequence[np.ndarray]
    ) -> List[Tuple[int, np.ndarray]]:
        """All ``d`` MTTKRPs of one CPD iteration in level order, without
        factor updates in between (kernel benchmarking; the ALS driver
        interleaves the dense updates itself).

        Returns ``[(original_mode, result), ...]``.
        """
        return [
            (self.mode_order[level], self.mttkrp_level(factors, level))
            for level in range(len(self.mode_order))
        ]

    def per_thread_traffic(self) -> List[float]:
        """Most recent kernel's per-thread traffic totals — the sharded
        counter's observability channel (empty lanes when the engine does
        not shard its accounting)."""
        shards = getattr(self, "shards", None)
        if shards is not None:
            return shards.per_thread_totals()
        return [0.0] * getattr(self, "num_threads", 1)

    def describe(self) -> str:
        """One-line configuration summary for harness output."""
        return self.name

    # Subclasses implement the one real kernel entry point.
    def mttkrp_level(self, factors: Sequence[np.ndarray], level: int) -> np.ndarray:
        raise NotImplementedError
