"""Khatri-Rao products (KRP).

The KRP ``A ⊙ B`` of ``A ∈ R^{I×R}`` and ``B ∈ R^{J×R}`` is the
``(I·J)×R`` matrix of column-wise Kronecker products:
``M[i·J + j, r] = A[i, r]·B[j, r]`` (Section II-A).

CPD-ALS never materializes the full KRP of all-but-one factor matrices —
that is exactly what MTTKRP kernels avoid — but the *row-wise* KRP
(``k_i`` vectors in Algorithm 5) and small explicit KRPs (test oracles,
the dense reference path) are needed throughout.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..kernels.dispatch import TIER_NUMPY, gather_multiply_rows, take_factor_rows
from ..parallel.counters import NULL_COUNTER, TrafficCounter

__all__ = ["khatri_rao", "khatri_rao_chain", "khatri_rao_excluding", "krp_rows"]


def khatri_rao(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Column-wise Kronecker (Khatri-Rao) product of two matrices.

    Raises
    ------
    ValueError
        If the operands do not share a column count.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError(
            f"KRP needs matrices with equal column counts, got {a.shape} and {b.shape}"
        )
    i, r = a.shape
    j, _ = b.shape
    return (a[:, None, :] * b[None, :, :]).reshape(i * j, r)


def khatri_rao_chain(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Left-to-right chained KRP ``K^(i) = K^(i-1) ⊙ A^(i)`` (Section II-A).

    ``khatri_rao_chain([A0])`` is ``A0`` itself (the ``K^(0)`` base case).
    """
    mats: List[np.ndarray] = [np.asarray(m) for m in matrices]
    if not mats:
        raise ValueError("need at least one matrix")
    out = mats[0]
    for m in mats[1:]:
        out = khatri_rao(out, m)
    return out


def khatri_rao_excluding(
    matrices: Sequence[np.ndarray], exclude: int
) -> np.ndarray:
    """KRP of every factor matrix except ``exclude``.

    This is the explicit operand of the textbook MTTKRP
    ``Ā^(u) = T_(u) · (⊙_{m≠u} A^(m))`` used by the dense reference and by
    the TACO-style COO baseline.  Matrices are combined in increasing mode
    order, matching the row-major unfolding ``T_(u)``.
    """
    mats = [np.asarray(m) for i, m in enumerate(matrices) if i != exclude]
    if not mats:
        raise ValueError("cannot exclude the only matrix")
    return khatri_rao_chain(mats)


def krp_rows(
    matrices: Sequence[np.ndarray],
    rows: Sequence[np.ndarray],
    tier: str = TIER_NUMPY,
    counter: TrafficCounter = NULL_COUNTER,
) -> np.ndarray:
    """Row-wise KRP: Hadamard product of selected rows of each matrix.

    ``krp_rows([A, B], [ia, ib])[p] == A[ia[p]] * B[ib[p]]`` — the ``k_i``
    vectors of Algorithm 5, vectorized over ``p``.  This is the form every
    sparse kernel in this library consumes; the full KRP matrix is never
    built.  The gathers run through the flat-array kernel ABI
    (:mod:`repro.kernels.dispatch`), so ``tier=`` selects the NumPy or
    compiled implementation like every other ported kernel.

    ``counter`` charges the factor-row gathers (one ``R``-row per selected
    index per matrix, streamed) and the Hadamard arithmetic.  Callers that
    account the gathers themselves — the dimension-tree backend brackets
    its edge contractions with ``read_factor_rows`` charges, which also
    apply the cache-reuse rule — must leave the default no-op counter to
    avoid double counting.
    """
    if len(matrices) != len(rows):
        raise ValueError("need one row-index array per matrix")
    if not matrices:
        raise ValueError("need at least one matrix")
    first = np.asarray(matrices[0])
    idx0 = np.asarray(rows[0])
    rank = int(first.shape[1])
    gathered = sum(int(np.asarray(r).shape[0]) for r in rows)
    counter.read(float(gathered * rank), "factor")
    counter.flop(float((len(matrices) - 1) * idx0.shape[0] * rank), "sweep")
    out = take_factor_rows(first, idx0, 0, idx0.shape[0], tier=tier)
    for m, r in zip(matrices[1:], rows[1:]):
        r = np.asarray(r)
        out = gather_multiply_rows(out, np.asarray(m), r, 0, r.shape[0], tier=tier)
    return out
