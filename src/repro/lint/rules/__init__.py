"""Built-in rule suite — importing this package registers every rule.

One module per rule family; each ``@register``-decorated class lands in
the framework registry at import time:

* :mod:`.thread_safety` — ``thread-body-safety``
* :mod:`.process_safety` — ``process-task-safety``
* :mod:`.counter_discipline` — ``counter-category``
* :mod:`.hot_path` — ``hot-path``
* :mod:`.dtype_discipline` — ``dtype-discipline``
* :mod:`.engine_protocol` — ``engine-protocol``
"""

from . import (
    counter_discipline,
    dtype_discipline,
    engine_protocol,
    hot_path,
    process_safety,
    thread_safety,
)

__all__ = [
    "counter_discipline",
    "dtype_discipline",
    "engine_protocol",
    "hot_path",
    "process_safety",
    "thread_safety",
]
