"""Tier dispatch for the flat-array kernel ABI.

The kernel wrappers in :mod:`repro.core.csf_kernels`,
:mod:`repro.core.proc_tasks` and :mod:`repro.ops.partial` call the ABI
functions defined here by plain name with an explicit ``tier=`` argument;
this module routes each call to the NumPy reference tier
(:mod:`repro.kernels.numpy_tier`) or the Numba-compiled tier
(:mod:`repro.kernels.numba_tier`).

Tier selection is the engines' ``jit=`` keyword, resolved once at
construction by :func:`resolve_tier`:

* ``"off"`` (the plain engines' default) — always the NumPy tier;
* ``"auto"`` (the ``*-jit`` engines' default) — the compiled tier when
  Numba imports and ``REPRO_NO_JIT`` is unset, else a silent fallback
  to the NumPy tier;
* ``"on"`` — the compiled tier, raising :class:`RuntimeError` when it
  is unavailable (CI's with-numba arm uses this so a broken install
  cannot silently fall back).

Setting ``REPRO_NO_JIT=1`` disables the compiled tier globally (the
no-numba CI arm and the forced-fallback tests).

The tier contract is **exact**: both tiers produce bit-identical arrays
for every ABI call, and traffic is charged in the Python wrappers around
these calls, so :class:`~repro.parallel.counters.TrafficCounter` totals
are equal across tiers by construction.  See
:mod:`repro.kernels.numba_tier` for how the reduction primitives keep
the accumulation order tier-invariant.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from . import numpy_tier as _np_tier

__all__ = [
    "TIER_NUMPY",
    "TIER_NUMBA",
    "JIT_MODES",
    "jit_available",
    "resolve_tier",
    "segment_reduce_rows",
    "segment_sum_rows",
    "scatter_rows_add",
    "gather_multiply_rows",
    "value_gather_rows",
    "scale_rows_by_values",
    "take_factor_rows",
    "repeat_rows",
    "parent_of",
]

TIER_NUMPY = "numpy"
TIER_NUMBA = "numba"
#: Valid values of the engines' ``jit=`` keyword.
JIT_MODES = ("auto", "on", "off")

#: Cached result of the numba import probe (None = not yet probed).
_NUMBA_IMPORTABLE: Optional[bool] = None
_NUMBA_TIER = None


def _numba_importable() -> bool:
    global _NUMBA_IMPORTABLE
    if _NUMBA_IMPORTABLE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_IMPORTABLE = True
        except ImportError:
            _NUMBA_IMPORTABLE = False
    return _NUMBA_IMPORTABLE


def jit_available() -> bool:
    """Whether the compiled tier can be selected right now: Numba imports
    and ``REPRO_NO_JIT`` is unset/empty/``0`` (the environment knob is
    re-read on every call so tests can toggle it)."""
    if os.environ.get("REPRO_NO_JIT", "0") not in ("", "0"):
        return False
    return _numba_importable()


def resolve_tier(jit: str = "auto") -> str:
    """Resolve an engine's ``jit=`` keyword to a kernel tier name.

    Raises ``RuntimeError`` for ``jit="on"`` when the compiled tier is
    unavailable, and ``ValueError`` for spellings outside
    :data:`JIT_MODES`.
    """
    if jit == "off":
        return TIER_NUMPY
    if jit == "on":
        if not jit_available():
            raise RuntimeError(
                "jit='on' but the compiled kernel tier is unavailable "
                "(numba not importable, or REPRO_NO_JIT is set); install "
                "the [jit] extra or use jit='auto' for a silent fallback"
            )
        return TIER_NUMBA
    if jit == "auto":
        return TIER_NUMBA if jit_available() else TIER_NUMPY
    raise ValueError(f"jit must be one of {JIT_MODES}, got {jit!r}")


def _tier_module(tier: str):
    if tier == TIER_NUMPY:
        return _np_tier
    if tier == TIER_NUMBA:
        global _NUMBA_TIER
        if _NUMBA_TIER is None:
            from . import numba_tier

            _NUMBA_TIER = numba_tier
        return _NUMBA_TIER
    raise ValueError(f"unknown kernel tier {tier!r}")


# ----------------------------------------------------------------------
# ABI entry points — flat arrays and scalars only, plus the tier name
# ----------------------------------------------------------------------
def segment_reduce_rows(
    rows: np.ndarray, starts: np.ndarray, tier: str = TIER_NUMPY
) -> np.ndarray:
    """Segmented row sums over ``starts`` boundaries (the mTTV reduce)."""
    return _tier_module(tier).segment_reduce_rows(rows, starts)


def segment_sum_rows(
    data: np.ndarray, seg: np.ndarray, n_seg: int, tier: str = TIER_NUMPY
) -> np.ndarray:
    """Sum rows into ``n_seg`` buckets given sorted segment ids."""
    return _tier_module(tier).segment_sum_rows(data, seg, n_seg)


def scatter_rows_add(
    out: np.ndarray, idx: np.ndarray, rows: np.ndarray, tier: str = TIER_NUMPY
) -> None:
    """Duplicate-safe ``out[idx] += rows`` (sort + segmented reduce)."""
    _tier_module(tier).scatter_rows_add(out, idx, rows)


def gather_multiply_rows(
    rows: np.ndarray,
    factor: np.ndarray,
    idx: np.ndarray,
    lo: int,
    hi: int,
    tier: str = TIER_NUMPY,
) -> np.ndarray:
    """``rows * factor[idx[lo:hi]]`` with ``rows`` already ``(hi-lo, R)``."""
    return _tier_module(tier).gather_multiply_rows(rows, factor, idx, lo, hi)


def value_gather_rows(
    values: np.ndarray,
    factor: np.ndarray,
    idx: np.ndarray,
    lo: int,
    hi: int,
    tier: str = TIER_NUMPY,
) -> np.ndarray:
    """``values[lo:hi, None] * factor[idx[lo:hi]]`` (the TTM seed)."""
    return _tier_module(tier).value_gather_rows(values, factor, idx, lo, hi)


def scale_rows_by_values(
    values: np.ndarray, rows: np.ndarray, lo: int, hi: int, tier: str = TIER_NUMPY
) -> np.ndarray:
    """``values[lo:hi, None] * rows`` (the leaf-mode MTTV kernel)."""
    return _tier_module(tier).scale_rows_by_values(values, rows, lo, hi)


def take_factor_rows(
    factor: np.ndarray, idx: np.ndarray, lo: int, hi: int, tier: str = TIER_NUMPY
) -> np.ndarray:
    """``factor[idx[lo:hi]]`` — a plain factor-row gather."""
    return _tier_module(tier).take_factor_rows(factor, idx, lo, hi)


def repeat_rows(
    rows: np.ndarray, counts: np.ndarray, tier: str = TIER_NUMPY
) -> np.ndarray:
    """``np.repeat(rows, counts, axis=0)`` (downward-``k`` expansion)."""
    return _tier_module(tier).repeat_rows(rows, counts)


def parent_of(ptr: np.ndarray, pos: int) -> int:
    """Parent-level node whose child span in ``ptr`` contains ``pos``
    (binary search; tier-invariant)."""
    return _np_tier.parent_of(ptr, pos)
