"""``process-task-safety`` — picklability invariants of the processes
backend (DESIGN.md §10).

Tasks handed to :meth:`SimulatedPool.run_tasks` cross a process boundary:
the task function is *pickled by reference* (module + qualified name) and
re-imported inside each worker, and a worker's interpreter shares no
objects with the coordinator.  The contract is therefore stricter than
the thread-body one:

1. the task must be a **module-level function** — a lambda or a ``def``
   nested inside another function cannot be pickled at all, and a bound
   method (``self._task``) drags its whole instance — the mutable
   coordinator state the backend exists to *not* share — through the
   pickle layer;
2. a task body must not declare ``global`` — module globals are
   per-process copies under ``fork``, so a "shared" global silently
   diverges between coordinator and workers;
3. a task body must not write attributes of names it does not own —
   mutating module state from a worker never reaches the coordinator.

Closure bodies remain the job of ``thread-body-safety`` (``pool.map``);
this rule covers the dispatch point that replaces them.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..astutils import expr_text, local_names
from ..framework import FileContext, Finding, Rule, register


def _run_tasks_calls(tree: ast.Module) -> List[ast.Call]:
    """All ``<pool>.run_tasks(task, payloads)`` dispatch points."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "run_tasks"
        and node.args
    ]


def _module_level_defs(tree: ast.Module) -> Set[str]:
    """Names defined by ``def`` directly at module scope."""
    return {
        n.name
        for n in tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _nested_defs(tree: ast.Module) -> Set[str]:
    """Names defined by ``def`` somewhere *below* module scope."""
    top = _module_level_defs(tree)
    return {
        n.name
        for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        and n.name not in top
    }


@register
class ProcessTaskSafetyRule(Rule):
    id = "process-task-safety"
    description = (
        "run_tasks() tasks must be module-level functions that neither "
        "close over nor mutate coordinator state"
    )
    paper_ref = "DESIGN.md §10 (shared-memory process backend)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        tree = ctx.tree
        top_defs = {
            n.name: n
            for n in tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        nested = _nested_defs(tree)
        checked_bodies: Set[str] = set()
        for call in _run_tasks_calls(tree):
            task = call.args[0]
            problem = self._task_arg_problem(task, top_defs, nested)
            if problem is not None:
                yield ctx.finding(self.id, call, problem)
                continue
            if isinstance(task, ast.Name) and task.id in top_defs:
                if task.id not in checked_bodies:
                    checked_bodies.add(task.id)
                    yield from self._check_task_body(ctx, top_defs[task.id])

    # ------------------------------------------------------------------
    def _task_arg_problem(
        self,
        task: ast.AST,
        top_defs: Dict[str, ast.AST],
        nested: Set[str],
    ) -> Optional[str]:
        if isinstance(task, ast.Lambda):
            return (
                "run_tasks() task is a lambda: lambdas cannot be pickled "
                "across the process boundary — define a module-level task "
                "function"
            )
        if isinstance(task, ast.Attribute):
            return (
                f"run_tasks() task `{expr_text(task)}` is an attribute "
                "(bound method or instance callable): pickling it drags "
                "the whole instance — and its mutable coordinator state — "
                "into every worker; define a module-level task function "
                "and pass the needed state through the payload"
            )
        if isinstance(task, ast.Name) and task.id in nested and task.id not in top_defs:
            return (
                f"run_tasks() task `{task.id}` is defined inside another "
                "function: nested defs close over coordinator state and "
                "cannot be pickled — move it to module level"
            )
        return None

    def _check_task_body(
        self, ctx: FileContext, fn: ast.FunctionDef
    ) -> Iterator[Finding]:
        owned = local_names(fn)
        for stmt in fn.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Global):
                    yield ctx.finding(
                        self.id,
                        node,
                        f"process task `{fn.name}` declares `global "
                        f"{', '.join(node.names)}`: module globals are "
                        "per-process copies under fork — pass state through "
                        "the payload and return results instead",
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        yield from self._check_store(ctx, fn, node, target, owned)

    def _check_store(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef,
        stmt: ast.AST,
        target: ast.AST,
        owned: Set[str],
    ) -> Iterator[Finding]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from self._check_store(ctx, fn, stmt, elt, owned)
            return
        if not isinstance(target, ast.Attribute):
            return
        root: ast.AST = target
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if isinstance(root, ast.Name) and root.id in owned:
            return
        yield ctx.finding(
            self.id,
            stmt,
            f"process task `{fn.name}` writes attribute "
            f"`{expr_text(target)}` of module-level state: worker-side "
            "mutations never reach the coordinator — return the value "
            "through the task result",
        )


__all__ = ["ProcessTaskSafetyRule"]
