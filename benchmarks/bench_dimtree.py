"""Extension: the comparison the paper could not run.

Section V: Kaya & Uçar's dimension-tree approach (HyperTensor) "has not
yet been released to open-source, making an empirical comparison
impossible for this work."  With the BDT policy reimplemented
(:mod:`repro.baselines.dimtree`), this bench runs that comparison on the
simulated channel: dimtree vs AdaTM (the other memoizing baseline), the
SPLATT family, and STeF, across the 4-D/5-D tensors where the tree
actually has internal nodes to reuse.
"""

import pytest

from common import bench_suite, emit
from repro.analysis import format_table, relative_performance, run_comparison
from repro.parallel import INTEL_CLX_18

METHODS = ("stef", "dimtree", "adatm", "splatt-1", "splatt-all")
TENSORS = (
    "chicago-crime-comm",
    "chicago-crime-geo",
    "delicious-4d",
    "enron",
    "flickr-4d",
    "lbln-network",
    "nips",
    "uber",
    "vast-2015-mc1-5d",
)


def test_dimtree_comparison(benchmark):
    tensors = {k: v for k, v in bench_suite(TENSORS).items()}
    grid = benchmark.pedantic(
        run_comparison,
        args=(tensors,),
        kwargs=dict(
            rank=32, machine=INTEL_CLX_18, methods=METHODS, num_threads=18
        ),
        rounds=1,
        iterations=1,
    )
    rel = relative_performance(grid)
    table = format_table(
        rel,
        list(METHODS),
        title=(
            "Dimension-tree (BDT) vs memoizing baselines — the Section V "
            "comparison HyperTensor's closed source prevented "
            "(Intel, R=32, simulated channel, relative to splatt-all)"
        ),
    )
    emit("dimtree_comparison.txt", table)

    # Shape expectations: the tree's reuse beats recompute-everything
    # splatt-1 on 4-D+ tensors on average, while STeF's model-driven
    # selection and fine-grained balancing keep it ahead overall.
    from repro.analysis import geomean_speedups

    sp = geomean_speedups(rel, "dimtree", ["splatt-1", "stef"])
    assert sp["splatt-1"] > 1.0
    assert sp["stef"] < 1.0
