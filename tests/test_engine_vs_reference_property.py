"""The ultimate fidelity property test: on hypothesis-generated tensors,
the vectorized engine, the per-node Algorithm 4-8 rendering, and the
dense oracle all agree for random plans and thread counts."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import MemoPlan, MemoizedMttkrp
from repro.core.reference import ReferenceEngine
from repro.ops import mttkrp_dense
from repro.tensor import CooTensor, CsfTensor


@st.composite
def tensor_plan_threads(draw):
    ndim = draw(st.integers(3, 4))
    shape = tuple(draw(st.integers(2, 6)) for _ in range(ndim))
    nnz = draw(st.integers(2, 40))
    idx = np.empty((ndim, nnz), dtype=np.int64)
    for m in range(ndim):
        idx[m] = draw(
            st.lists(st.integers(0, shape[m] - 1), min_size=nnz, max_size=nnz)
        )
    values = np.array(
        draw(
            st.lists(
                st.floats(-4, 4, allow_nan=False, width=32),
                min_size=nnz,
                max_size=nnz,
            )
        )
    )
    tensor = CooTensor.from_arrays(idx, values, shape)
    saveable = list(range(1, ndim - 1))
    save = tuple(
        lvl for lvl in saveable if draw(st.booleans())
    )
    threads = draw(st.integers(1, 5))
    return tensor, MemoPlan(save), threads


@given(tensor_plan_threads(), st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_three_way_agreement(case, seed):
    tensor, plan, threads = case
    rng = np.random.default_rng(seed)
    rank = 2
    factors = [rng.standard_normal((n, rank)) for n in tensor.shape]
    dense = tensor.to_dense()
    csf = CsfTensor.from_coo(tensor)

    engine = MemoizedMttkrp(csf, rank, plan=plan, num_threads=threads)
    reference = ReferenceEngine(csf, rank, plan=plan, num_threads=threads)

    eng_results = engine.iteration_results(factors)
    ref_results = reference.iteration_results(factors)

    for (m1, a), (m2, b) in zip(eng_results, ref_results):
        assert m1 == m2
        oracle = mttkrp_dense(dense, factors, m1)
        assert np.allclose(a, oracle, atol=1e-7), ("engine", plan, threads, m1)
        assert np.allclose(b, oracle, atol=1e-7), ("reference", plan, threads, m1)
        assert np.allclose(a, b, atol=1e-9), ("cross", plan, threads, m1)
