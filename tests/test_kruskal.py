"""Unit tests for Kruskal tensors."""

import numpy as np
import pytest

from repro.cpd import KruskalTensor
from repro.tensor import CooTensor, low_rank_tensor, random_tensor
from tests.conftest import make_factors


def random_model(shape, rank, seed=0):
    rng = np.random.default_rng(seed)
    return KruskalTensor(
        rng.random(rank) + 0.5,
        [rng.standard_normal((n, rank)) for n in shape],
    )


class TestBasics:
    def test_properties(self):
        kt = random_model((4, 5, 6), 3)
        assert kt.rank == 3
        assert kt.ndim == 3
        assert kt.shape == (4, 5, 6)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            KruskalTensor(np.ones(2), [np.ones((3, 2)), np.ones((4, 3))])

    def test_norm_matches_dense(self):
        kt = random_model((4, 3, 5), 2, seed=1)
        assert np.isclose(kt.norm(), np.linalg.norm(kt.to_dense()))

    def test_values_at_matches_dense(self):
        kt = random_model((5, 4, 3), 2, seed=2)
        dense = kt.to_dense()
        idx = np.array([[0, 4, 2], [1, 3, 0], [2, 0, 1]])
        vals = kt.values_at(idx)
        for p in range(3):
            assert np.isclose(vals[p], dense[tuple(idx[:, p])])

    def test_with_factor(self):
        kt = random_model((4, 4), 2, seed=3)
        new = np.zeros((4, 2))
        kt2 = kt.with_factor(0, new)
        assert np.allclose(kt2.factors[0], 0.0)
        assert np.allclose(kt.factors[1], kt2.factors[1])


class TestFit:
    def test_exact_model_fits_perfectly(self):
        t, factors = low_rank_tensor(
            (8, 7, 6), rank=2, nnz=150, noise=0.0, seed=5, return_factors=True
        )
        kt = KruskalTensor(np.ones(2), factors)
        # The model reproduces the sampled values exactly, but the sparse
        # tensor treats unsampled cells as zero while the model does not,
        # so fit < 1; inner product must still match exactly.
        assert np.isclose(kt.inner(t), float(t.values @ t.values))

    def test_fit_of_zero_model(self, coo3):
        kt = KruskalTensor(np.zeros(2), [np.zeros((n, 2)) for n in coo3.shape])
        assert np.isclose(kt.fit(coo3), 0.0)

    def test_fit_matches_dense_computation(self, coo3):
        kt = random_model(coo3.shape, 3, seed=6)
        dense = coo3.to_dense()
        resid = np.linalg.norm(dense - kt.to_dense())
        expected = 1.0 - resid / np.linalg.norm(dense)
        assert np.isclose(kt.fit(coo3), expected, atol=1e-10)

    def test_relative_error(self, coo3):
        kt = random_model(coo3.shape, 2, seed=7)
        assert np.isclose(kt.relative_error(coo3), 1.0 - kt.fit(coo3))

    def test_empty_tensor_fit_is_one(self):
        t = CooTensor.from_arrays(
            np.empty((2, 0), dtype=np.int64), np.empty(0), shape=(3, 3)
        )
        kt = random_model((3, 3), 2, seed=8)
        assert kt.fit(t) == 1.0


class TestNormalized:
    def test_columns_unit_norm(self):
        kt = random_model((6, 5, 4), 3, seed=9)
        nk = kt.normalized()
        for f in nk.factors:
            assert np.allclose(np.linalg.norm(f, axis=0), 1.0)

    def test_model_unchanged(self):
        kt = random_model((5, 4, 3), 2, seed=10)
        nk = kt.normalized()
        assert np.allclose(kt.to_dense(), nk.to_dense())
