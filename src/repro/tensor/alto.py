"""ALTO: Adaptive Linearized Tensor Order storage (Helal et al., ICS 2021).

ALTO is one of the paper's baselines (Section V / Figures 3-4).  It stores
every non-zero as a single linearized integer formed by *bit-interleaving*
the per-mode coordinates: mode ``m`` contributes ``ceil(log2(I_m))`` bits,
and the bit positions of the different modes are interleaved so that
non-zeros that are close in the linearized order are close in *every* mode
— this is what gives ALTO its locality and its natural, perfectly balanced
work partitioning (split the sorted linear index evenly).

We implement:

* :func:`bits_for_mode` / :class:`AltoMask` — the per-mode bit masks.
* :class:`AltoTensor` — encode a COO tensor into linearized form (sorted),
  decode back, extract per-mode coordinates vectorized, and split into
  equal non-zero partitions.

The MTTKRP kernel over this format lives in
:mod:`repro.baselines.alto_mttkrp`; this module is pure storage.

The paper's ALTO uses 64- or 128-bit indices depending on the tensor; we
use Python/NumPy ``uint64`` when the total bit budget fits and fall back to
Python big-int ``object`` arrays otherwise (matching the 64/128-bit switch
in spirit — the harness reports which variant was used, as the paper does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .coo import CooTensor

__all__ = ["bits_for_mode", "AltoMask", "AltoTensor"]


def bits_for_mode(length: int) -> int:
    """Number of bits needed to encode coordinates in ``[0, length)``."""
    if length <= 1:
        return 1
    return int(length - 1).bit_length()


@dataclass(frozen=True)
class AltoMask:
    """Interleaved bit layout for one tensor shape.

    ``positions[m]`` lists the global bit positions (LSB = 0) assigned to
    mode ``m``, from the mode's least significant bit upward.  Bits are
    assigned round-robin across modes starting from the mode with the most
    bits, mirroring ALTO's balanced interleaving.
    """

    shape: Tuple[int, ...]
    positions: Tuple[Tuple[int, ...], ...]

    @classmethod
    def for_shape(cls, shape: Sequence[int]) -> "AltoMask":
        shape = tuple(int(s) for s in shape)
        nbits = [bits_for_mode(s) for s in shape]
        remaining = list(nbits)
        positions: List[List[int]] = [[] for _ in shape]
        bit = 0
        # Round-robin over modes that still need bits; visit longer modes
        # first inside each round so their low bits sit lowest.
        order = sorted(range(len(shape)), key=lambda m: -nbits[m])
        while any(r > 0 for r in remaining):
            for m in order:
                if remaining[m] > 0:
                    positions[m].append(bit)
                    bit += 1
                    remaining[m] -= 1
        return cls(shape, tuple(tuple(p) for p in positions))

    @property
    def total_bits(self) -> int:
        """Width of the linearized index in bits."""
        return sum(len(p) for p in self.positions)

    def encode(self, indices: np.ndarray) -> np.ndarray:
        """Interleave a ``(ndim, nnz)`` coordinate matrix into linear ids.

        Returns ``uint64`` when the layout fits in 64 bits, otherwise an
        ``object`` array of Python ints (the "128-bit" pathway).
        """
        wide = self.total_bits > 64
        if wide:
            out = np.zeros(indices.shape[1], dtype=object)
            cols = [int_col.astype(object) for int_col in indices]
        else:
            out = np.zeros(indices.shape[1], dtype=np.uint64)
            cols = [c.astype(np.uint64) for c in indices]
        for m, pos in enumerate(self.positions):
            col = cols[m]
            for local_bit, global_bit in enumerate(pos):
                if wide:
                    out |= ((col >> local_bit) & 1) << global_bit
                else:
                    bitval = (col >> np.uint64(local_bit)) & np.uint64(1)
                    out |= bitval << np.uint64(global_bit)
        return out

    def decode_mode(self, linear: np.ndarray, mode: int) -> np.ndarray:
        """Extract mode-``mode`` coordinates from linearized ids."""
        pos = self.positions[mode]
        wide = linear.dtype == object
        if wide:
            out = np.zeros(linear.shape[0], dtype=object)
            for local_bit, global_bit in enumerate(pos):
                out |= ((linear >> global_bit) & 1) << local_bit
            return out.astype(np.int64)
        out = np.zeros(linear.shape[0], dtype=np.uint64)
        for local_bit, global_bit in enumerate(pos):
            bitval = (linear >> np.uint64(global_bit)) & np.uint64(1)
            out |= bitval << np.uint64(local_bit)
        return out.astype(np.int64)

    def decode(self, linear: np.ndarray) -> np.ndarray:
        """Full ``(ndim, nnz)`` coordinate matrix from linearized ids."""
        return np.vstack([self.decode_mode(linear, m) for m in range(len(self.shape))])


@dataclass(frozen=True)
class AltoTensor:
    """A sparse tensor stored in ALTO linearized order.

    ``linear`` is sorted ascending; ``values`` is aligned with it.  The
    coordinate matrix for any mode is recovered on demand via the mask.
    """

    mask: AltoMask
    linear: np.ndarray
    values: np.ndarray

    @classmethod
    def from_coo(cls, coo: CooTensor) -> "AltoTensor":
        mask = AltoMask.for_shape(coo.shape)
        lin = mask.encode(coo.indices)
        order = np.argsort(lin, kind="stable")
        return cls(mask, lin[order], coo.values[order].copy())

    @property
    def shape(self) -> Tuple[int, ...]:
        """Dense extents."""
        return self.mask.shape

    @property
    def ndim(self) -> int:
        """Number of modes."""
        return len(self.mask.shape)

    @property
    def nnz(self) -> int:
        """Stored non-zero count."""
        return self.values.shape[0]

    @property
    def index_bits(self) -> int:
        """Bits per linearized index (64 vs 128 reporting, as in the paper)."""
        return 64 if self.mask.total_bits <= 64 else 128

    def mode_indices(self, mode: int) -> np.ndarray:
        """Per-non-zero coordinates of ``mode`` (decoded, int64)."""
        return self.mask.decode_mode(self.linear, mode)

    def to_coo(self) -> CooTensor:
        """Round-trip back to COO (original mode numbering)."""
        return CooTensor.from_arrays(
            self.mask.decode(self.linear), self.values, self.shape,
            sum_duplicates=False,
        )

    def partitions(self, num_parts: int) -> List[Tuple[int, int]]:
        """Equal-nnz half-open ranges over the linearized stream.

        This is ALTO's headline load-balancing property: because the storage
        is a flat sorted array, splitting work evenly is trivial.
        """
        if num_parts < 1:
            raise ValueError("num_parts must be >= 1")
        bounds = np.linspace(0, self.nnz, num_parts + 1).astype(np.int64)
        return [(int(bounds[i]), int(bounds[i + 1])) for i in range(num_parts)]

    def footprint_bytes(self) -> int:
        """Storage footprint: linear ids + values."""
        per_index = 8 if self.index_bits == 64 else 16
        return self.nnz * per_index + int(self.values.nbytes)
