"""NumPy reference tier of the flat-array kernel ABI.

Each function here is the *exact* vectorized expression the kernel
wrappers in :mod:`repro.core.csf_kernels` / :mod:`repro.ops.partial`
used inline before the ABI extraction — moved verbatim, not rewritten —
so routing a kernel through the dispatch layer at ``tier="numpy"``
changes nothing about its arithmetic, temporaries, or floating-point
summation order.  The compiled tier (:mod:`repro.kernels.numba_tier`)
replicates these summation orders loop-for-loop; the bit-identicality
tests compare the two tiers against this module as the oracle.

Everything takes only ndarrays and scalars — no objects with methods —
which is the ABI's entire point: the same signatures compile under
Numba's nopython mode and, later, lower to GPU kernels.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "segment_reduce_rows",
    "segment_sum_rows",
    "scatter_rows_add",
    "gather_multiply_rows",
    "value_gather_rows",
    "scale_rows_by_values",
    "take_factor_rows",
    "repeat_rows",
    "parent_of",
]


def segment_reduce_rows(rows: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Segmented row sums: ``out[s] = rows[starts[s]:starts[s+1]].sum(0)``
    (last segment runs to the end).  The mTTV reduce step."""
    return np.add.reduceat(rows, starts, axis=0)


def segment_sum_rows(data: np.ndarray, seg: np.ndarray, n_seg: int) -> np.ndarray:
    """Sum rows of ``data`` into ``n_seg`` buckets given *sorted* segment
    ids (the PartialTensor grouping reduce)."""
    rank = data.shape[1]
    out = np.zeros((n_seg, rank))
    # seg is sorted, so reduceat on segment starts is both exact and fast.
    if data.shape[0]:
        starts = np.flatnonzero(np.diff(seg, prepend=-1))
        sums = np.add.reduceat(data, starts, axis=0)
        out[seg[starts]] = sums
    return out


def scatter_rows_add(out: np.ndarray, idx: np.ndarray, rows: np.ndarray) -> None:
    """``out[idx[p], :] += rows[p, :]`` with duplicate indices: stable
    sort by target row, one segmented reduce, one add per touched row."""
    if idx.size == 0:
        return
    order = np.argsort(idx, kind="stable")
    sidx = idx[order]
    starts = np.flatnonzero(np.diff(sidx, prepend=-1))
    sums = np.add.reduceat(rows[order], starts, axis=0)
    out[sidx[starts]] += sums


def gather_multiply_rows(
    rows: np.ndarray, factor: np.ndarray, idx: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """``rows * factor[idx[lo:hi]]`` — the per-level gather-multiply of
    the upward/downward sweeps (``rows`` is already ``(hi-lo, R)``)."""
    return rows * factor[idx[lo:hi]]


def value_gather_rows(
    values: np.ndarray, factor: np.ndarray, idx: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """``values[lo:hi, None] * factor[idx[lo:hi]]`` — the TTM seed of an
    upward sweep (tensor values times leaf-level factor rows)."""
    return values[lo:hi, None] * factor[idx[lo:hi]]


def scale_rows_by_values(
    values: np.ndarray, rows: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """``values[lo:hi, None] * rows`` — the leaf-mode MTTV kernel
    (``rows`` is already ``(hi-lo, R)``)."""
    return values[lo:hi, None] * rows


def take_factor_rows(
    factor: np.ndarray, idx: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """``factor[idx[lo:hi]]`` — a plain factor-row gather."""
    return factor[idx[lo:hi]]


def repeat_rows(rows: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """``np.repeat(rows, counts, axis=0)`` — the downward-``k`` expansion
    by per-node child counts."""
    return np.repeat(rows, counts, axis=0)


def parent_of(ptr: np.ndarray, pos: int) -> int:
    """Index of the node at the *parent* level whose half-open child span
    in ``ptr`` contains position ``pos``."""
    return int(np.searchsorted(ptr, pos, side="right")) - 1
