"""SARIF 2.1.0 reporter — lint findings for code-scanning UIs.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning (and most IDE problem
panes) ingest; the CI ``lint-flow`` job uploads this report as an
artifact so flow findings annotate PRs without anyone re-running the
analyzer locally.

The emitted document keeps to the minimal required shape: one ``run``
with a ``tool.driver`` listing every registered rule (so suppressed-to-
zero runs still describe the rule set), one ``result`` per finding with a
``physicalLocation``, and ``error``/``note`` levels mapped from live
versus baselined findings.  Analysis *errors* (unparseable files) become
``toolExecutionNotifications`` — they fail the run via exit code 2, and
SARIF viewers surface them separately from results.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .framework import LintReport, all_rules

__all__ = ["format_sarif", "SARIF_VERSION", "SARIF_SCHEMA"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _uri(path: str) -> str:
    return path.replace("\\", "/")


def format_sarif(report: LintReport) -> str:
    """Serialize ``report`` as a SARIF 2.1.0 document."""
    rules: List[Dict[str, Any]] = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.description},
            "help": {"text": f"Invariant source: {rule.paper_ref}"},
        }
        for rule in all_rules()
    ]
    results: List[Dict[str, Any]] = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _uri(f.path)},
                        "region": {"startLine": f.line, "startColumn": f.col},
                    }
                }
            ],
        }
        for f in report.findings
    ]
    invocation: Dict[str, Any] = {
        "executionSuccessful": not report.errors,
        "toolExecutionNotifications": [
            {
                "level": "error",
                "message": {"text": e.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": _uri(e.path)}
                        }
                    }
                ],
            }
            for e in report.errors
        ],
    }
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": rules,
                    }
                },
                "invocations": [invocation],
                "results": results,
                "properties": {
                    "filesChecked": report.files_checked,
                    "suppressed": report.suppressed,
                    "baselined": report.baselined,
                },
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
