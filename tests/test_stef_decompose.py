"""Tests for the Stef.decompose convenience and engine traffic paths."""

import numpy as np
import pytest

from repro.core import MemoPlan, MemoizedMttkrp, Stef
from repro.parallel import TrafficCounter
from repro.tensor import CsfTensor, low_rank_tensor, random_tensor
from tests.conftest import make_factors


class TestDecomposeConvenience:
    def test_decompose_runs(self):
        t = low_rank_tensor((10, 9, 8), rank=2, nnz=500, noise=0.1, seed=0)
        s = Stef(t, 2, num_threads=2)
        res = s.decompose(max_iters=4, tol=0, seed=1)
        assert len(res.fits) == 4
        assert res.model.shape == t.shape

    def test_decompose_matches_cp_als(self):
        from repro.cpd import cp_als

        t = low_rank_tensor((10, 9, 8), rank=2, nnz=500, noise=0.1, seed=0)
        r1 = Stef(t, 2, num_threads=2).decompose(max_iters=3, tol=0, seed=5)
        r2 = cp_als(t, 2, engine=Stef(t, 2, num_threads=2), max_iters=3,
                    tol=0, seed=5)
        assert np.allclose(r1.fits, r2.fits)


class TestTrafficPaths:
    """Each mode-u source path charges distinguishable traffic."""

    @pytest.fixture
    def setup(self, coo4, factors4):
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        return csf, factors4

    def _mode_traffic(self, csf, factors, plan_levels, u):
        c = TrafficCounter()
        engine = MemoizedMttkrp(
            csf, 4, plan=MemoPlan(plan_levels), num_threads=2, counter=c
        )
        engine.mode0(factors)
        c.reset()
        engine.mode_level(factors, u)
        return c

    def test_direct_memo_read_charges_memo(self, setup):
        csf, factors = setup
        c = self._mode_traffic(csf, factors, (1,), 1)  # Fig. 1b
        assert c.by_category.get("r:memo", 0) > 0

    def test_resumed_contraction_charges_memo_and_factors(self, setup):
        csf, factors = setup
        c = self._mode_traffic(csf, factors, (2,), 1)  # Fig. 1c
        assert c.by_category.get("r:memo", 0) > 0
        assert c.by_category.get("r:factor", 0) > 0

    def test_from_scratch_charges_full_traversal(self, setup):
        csf, factors = setup
        c_scratch = self._mode_traffic(csf, factors, (), 1)  # Fig. 1d
        c_memo = self._mode_traffic(csf, factors, (1,), 1)
        assert c_scratch.by_category.get("r:memo", 0) == 0
        assert (
            c_scratch.by_category["r:structure"]
            > c_memo.by_category["r:structure"]
        )

    def test_leaf_mode_never_reads_memo(self, setup):
        csf, factors = setup
        c = self._mode_traffic(csf, factors, (1, 2), 3)
        assert c.by_category.get("r:memo", 0) == 0
