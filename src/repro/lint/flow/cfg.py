"""Statement-level control-flow graphs with dominator facts.

The flow analyses reason about *paths* — "is this array write always
preceded (or always followed) by a traffic charge?" — which a per-file
AST walk cannot answer.  This module builds, per function, a CFG whose
nodes are individual statements (kernel functions are small, so statement
granularity keeps the dominator machinery trivial while giving findings
exact anchors):

* :func:`build_cfg` — one :class:`CFG` per function body, with virtual
  ``ENTRY``/``EXIT`` nodes and edges for ``if``/``for``/``while``/
  ``try``/``with``/``return``/``raise``/``break``/``continue``;
* :meth:`CFG.dominators` / :meth:`CFG.postdominators` — standard
  iterative set-intersection dataflow (functions here are tens of
  statements, so the O(n²) worklist is more than fast enough);
* :meth:`CFG.covered_by` — the coverage predicate the traffic-conformance
  analysis uses: node ``n`` is covered by node set ``C`` when some ``c``
  in ``C`` dominates ``n`` *or* postdominates it (charge-before or
  charge-after along every path through ``n``).

Loops contribute back edges, so a charge inside a loop body neither
dominates nor postdominates statements after the loop unless the loop is
the only way there — exactly the conservative answer we want.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

__all__ = ["CFG", "build_cfg", "FunctionDefNode"]

FunctionDefNode = ast.AST  # FunctionDef | AsyncFunctionDef

#: Virtual node ids.
ENTRY = -1
EXIT = -2


class CFG:
    """A function's statement-level control-flow graph.

    ``nodes`` maps node id -> the AST statement it represents (virtual
    ENTRY/EXIT excluded); ``succ``/``pred`` are adjacency maps over all
    ids including the virtual ones.
    """

    def __init__(self) -> None:
        self.nodes: Dict[int, ast.stmt] = {}
        self.succ: Dict[int, Set[int]] = {ENTRY: set(), EXIT: set()}
        self.pred: Dict[int, Set[int]] = {ENTRY: set(), EXIT: set()}
        self._dom: Optional[Dict[int, FrozenSet[int]]] = None
        self._postdom: Optional[Dict[int, FrozenSet[int]]] = None
        self._node_of_stmt: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def add_node(self, stmt: ast.stmt) -> int:
        nid = len(self.nodes)
        self.nodes[nid] = stmt
        self.succ.setdefault(nid, set())
        self.pred.setdefault(nid, set())
        self._node_of_stmt[id(stmt)] = nid
        return nid

    def add_edge(self, a: int, b: int) -> None:
        self.succ.setdefault(a, set()).add(b)
        self.pred.setdefault(b, set()).add(a)

    def node_of(self, stmt: ast.stmt) -> Optional[int]:
        """The node id of a statement object in this CFG (or ``None``)."""
        return self._node_of_stmt.get(id(stmt))

    # ------------------------------------------------------------------
    def _solve(self, forward: bool) -> Dict[int, FrozenSet[int]]:
        """Iterative dominator (forward) / postdominator (backward) sets."""
        root = ENTRY if forward else EXIT
        preds = self.pred if forward else self.succ
        ids = [root] + [n for n in self.succ if n != root]
        universe = frozenset(ids)
        dom: Dict[int, FrozenSet[int]] = {n: universe for n in ids}
        dom[root] = frozenset({root})
        changed = True
        while changed:
            changed = False
            for n in ids:
                if n == root:
                    continue
                ps = [dom[p] for p in preds.get(n, ()) if p in dom]
                new = frozenset.intersection(*ps) | {n} if ps else frozenset({n})
                if new != dom[n]:
                    dom[n] = new
                    changed = True
        return dom

    def dominators(self) -> Dict[int, FrozenSet[int]]:
        if self._dom is None:
            self._dom = self._solve(forward=True)
        return self._dom

    def postdominators(self) -> Dict[int, FrozenSet[int]]:
        if self._postdom is None:
            self._postdom = self._solve(forward=False)
        return self._postdom

    def covered_by(self, nid: int, cover: Iterable[int]) -> bool:
        """True when some node in ``cover`` dominates or postdominates
        ``nid`` (or is ``nid`` itself)."""
        cover = set(cover)
        if not cover:
            return False
        if nid in cover:
            return True
        dom = self.dominators().get(nid, frozenset())
        postdom = self.postdominators().get(nid, frozenset())
        return bool(cover & (set(dom) | set(postdom)))

    def reaches_exit_without(self, blockers: Iterable[int]) -> bool:
        """True when some ENTRY→EXIT path avoids every node in
        ``blockers`` — i.e. the blockers do *not* postdominate entry."""
        blocked = set(blockers)
        seen: Set[int] = set()
        stack = [ENTRY]
        while stack:
            n = stack.pop()
            if n in seen or n in blocked:
                continue
            if n == EXIT:
                return True
            seen.add(n)
            stack.extend(self.succ.get(n, ()))
        return False


class _Builder:
    """Recursive-descent CFG construction over a statement list."""

    def __init__(self) -> None:
        self.cfg = CFG()
        # (break targets, continue targets) stacks for loop statements.
        self._breaks: List[List[int]] = []
        self._continues: List[List[int]] = []

    # ------------------------------------------------------------------
    def build(self, body: List[ast.stmt]) -> CFG:
        exits = self._body([ENTRY], body)
        for n in exits:
            self.cfg.add_edge(n, EXIT)
        return self.cfg

    def _link(self, froms: List[int], to: int) -> None:
        for f in froms:
            self.cfg.add_edge(f, to)

    def _body(self, entry: List[int], stmts: List[ast.stmt]) -> List[int]:
        """Wire ``stmts`` sequentially after ``entry``; returns the open
        (fall-through) exits."""
        current = entry
        for stmt in stmts:
            if not current:
                break  # unreachable code after return/raise/break
            current = self._stmt(current, stmt)
        return current

    # ------------------------------------------------------------------
    def _stmt(self, entry: List[int], stmt: ast.stmt) -> List[int]:
        nid = self.cfg.add_node(stmt)
        self._link(entry, nid)

        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.cfg.add_edge(nid, EXIT)
            return []
        if isinstance(stmt, ast.Break):
            if self._breaks:
                self._breaks[-1].append(nid)
            else:  # malformed code; treat as exit
                self.cfg.add_edge(nid, EXIT)
            return []
        if isinstance(stmt, ast.Continue):
            if self._continues:
                self._continues[-1].append(nid)
            else:
                self.cfg.add_edge(nid, EXIT)
            return []
        if isinstance(stmt, ast.If):
            then_exits = self._body([nid], stmt.body)
            else_exits = self._body([nid], stmt.orelse) if stmt.orelse else [nid]
            return then_exits + else_exits
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            self._breaks.append([])
            self._continues.append([])
            body_exits = self._body([nid], stmt.body)
            breaks = self._breaks.pop()
            continues = self._continues.pop()
            # Back edges: end of body (and continue) re-test the loop head.
            self._link(body_exits + continues, nid)
            # Normal exit: loop condition false; plus else-clause path.
            after = [nid]
            if stmt.orelse:
                after = self._body([nid], stmt.orelse)
            return after + breaks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._body([nid], stmt.body)
        if isinstance(stmt, ast.Try):
            body_exits = self._body([nid], stmt.body)
            handler_exits: List[int] = []
            for handler in stmt.handlers:
                # Any statement in the try body may jump to a handler;
                # approximating the jump source as the try head keeps the
                # dominator story conservative (nothing inside the try
                # dominates the handler).
                handler_exits += self._body([nid], handler.body)
            else_exits = (
                self._body(body_exits, stmt.orelse) if stmt.orelse else body_exits
            )
            merged = else_exits + handler_exits
            if stmt.finalbody:
                return self._body(merged if merged else [nid], stmt.finalbody)
            return merged if merged else []
        # Plain statement (Expr, Assign, AugAssign, Assert, nested def, ...)
        return [nid]


def build_cfg(fn: FunctionDefNode) -> CFG:
    """CFG of ``fn``'s body (nested function bodies are *not* inlined —
    they get their own CFGs; a nested ``def`` is one opaque statement
    here)."""
    body = fn.body if isinstance(fn.body, list) else [ast.Expr(fn.body)]
    return _Builder().build(body)
