"""Kernel microbenchmarks — the performance-regression suite.

Wall-times the primitives everything else is built from: CSF
construction, the upward/downward sweeps, the scatter, Algorithm 9,
ALTO encode/decode, partition construction, and the full memoized
MTTKRP set.  Useful for catching performance regressions in the
vectorized kernels (the paper's wall-clock story lives or dies on
these loops being level-vectorized rather than per-node).
"""

import numpy as np
import pytest

from common import bench_tensor
from repro.core import (
    MemoPlan,
    MemoizedMttkrp,
    count_swapped_fibers,
    plan_decomposition,
    serial_upward_sweep,
    thread_downward_k,
)
from repro.core.csf_kernels import scatter_add_rows
from repro.cpd import random_init
from repro.parallel import nnz_partition, slice_partition
from repro.tensor import AltoTensor, CsfTensor

TENSOR = "flickr-4d"
RANK = 32


@pytest.fixture(scope="module")
def setup():
    tensor = bench_tensor(TENSOR, nnz=20_000)
    csf = CsfTensor.from_coo(tensor)
    factors = random_init(tensor.shape, RANK, 0)
    lf = [factors[m] for m in csf.mode_order]
    return tensor, csf, factors, lf


def test_csf_construction(benchmark, setup):
    tensor, _, _, _ = setup
    benchmark(CsfTensor.from_coo, tensor)


def test_upward_sweep(benchmark, setup):
    _, csf, _, lf = setup
    benchmark(serial_upward_sweep, csf, lf)


def test_downward_k_full(benchmark, setup):
    _, csf, _, lf = setup
    level = csf.ndim - 1
    benchmark(thread_downward_k, csf, lf, level, 0, csf.nnz)


def test_scatter_add(benchmark, setup):
    tensor, csf, _, _ = setup
    rng = np.random.default_rng(0)
    rows = rng.standard_normal((csf.nnz, RANK))
    idx = csf.idx[csf.ndim - 1]
    n = csf.level_shape(csf.ndim - 1)

    def run():
        out = np.zeros((n, RANK))
        scatter_add_rows(out, idx, rows)
        return out

    benchmark(run)


def test_algorithm9(benchmark, setup):
    _, csf, _, _ = setup
    benchmark(count_swapped_fibers, csf)


def test_planner_search(benchmark, setup):
    _, csf, _, _ = setup
    benchmark(plan_decomposition, csf, RANK)


def test_alto_encode(benchmark, setup):
    tensor, _, _, _ = setup
    benchmark(AltoTensor.from_coo, tensor)


def test_alto_decode_mode(benchmark, setup):
    tensor, _, _, _ = setup
    alto = AltoTensor.from_coo(tensor)
    benchmark(alto.mode_indices, 1)


@pytest.mark.parametrize("strategy", ["nnz", "slice"])
def test_partition_construction(benchmark, setup, strategy):
    _, csf, _, _ = setup
    fn = nnz_partition if strategy == "nnz" else slice_partition
    benchmark(fn, csf, 64)


@pytest.mark.parametrize("plan_levels", [(), (1, 2)])
def test_full_mttkrp_set(benchmark, setup, plan_levels):
    _, csf, factors, _ = setup
    engine = MemoizedMttkrp(
        csf, RANK, plan=MemoPlan(plan_levels), num_threads=8
    )
    benchmark.pedantic(
        engine.iteration_results, args=(factors,), rounds=3, iterations=1,
        warmup_rounds=1,
    )
