"""The ``*-jit`` engine tier: registered names for compiled-kernel runs.

Each class here is its base engine with one class attribute flipped:
``jit_default = "auto"``, so constructing it (directly or through
``create_engine``) selects the Numba-compiled kernel tier when the
``[jit]`` extra is installed and falls back to the NumPy tier otherwise
(or when ``REPRO_NO_JIT=1``).  Nothing else changes — partitioning,
traffic accounting, memoization plans and exec backends are inherited,
and the tier contract (bit-identical outputs, exactly equal
TrafficCounter totals) makes the ``*-jit`` names drop-in substitutes in
every harness arm.

Passing ``jit=`` explicitly still wins over the class default, so
``create_engine("stef-jit", ..., jit="on")`` is the hard-require
spelling CI's with-numba arm uses.
"""

from __future__ import annotations

from ..baselines.dimtree import DimTreeBackend
from ..baselines.taco import TacoBackend
from ..core.stef import Stef
from ..core.stef2 import Stef2

__all__ = ["StefJit", "Stef2Jit", "TacoJit", "DimTreeJit"]


class StefJit(Stef):
    """STeF with the compiled kernel tier selected by default."""

    name = "stef-jit"
    jit_default = "auto"


class Stef2Jit(Stef2):
    """STeF2 with the compiled kernel tier selected by default."""

    name = "stef2-jit"
    jit_default = "auto"


class TacoJit(TacoBackend):
    """TACO-style baseline with the compiled kernel tier by default."""

    name = "taco-jit"
    jit_default = "auto"


class DimTreeJit(DimTreeBackend):
    """Dimension-tree baseline with the compiled kernel tier by default."""

    name = "dimtree-jit"
    jit_default = "auto"
