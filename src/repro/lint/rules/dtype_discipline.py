"""``dtype-discipline`` — factor/memo buffers are float64 end-to-end.

Every numeric buffer in the pipeline — factor matrices, memoized partial
results ``P^(i)``, replicated accumulation stripes, MTTKRP outputs — is
``float64``.  That single-precision never appears matters twice:

* **correctness of the equivalence contracts**: the serial/threads
  backends promise *bit-identical* outputs, and the memoized engine is
  validated against dense oracles at float64 tolerances; a float32 buffer
  upcast at a mix point changes rounding and breaks both silently;
* **honesty of the traffic channel**: the counters charge *elements*, and
  the roofline converts them at 8 bytes/element — a float32 buffer would
  halve real traffic while the model still charges full width.

This rule flags float32 (and ``single``/``f4``/``half``/``float16``)
entering the kernel, CPD, or parallel-substrate modules, via either an
explicit ``dtype=`` argument or an ``.astype(...)`` cast.  Deliberate
mixed-precision experiments belong behind an explicit suppression with a
comment explaining how the traffic accounting is adjusted.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..astutils import dotted_name, expr_text
from ..framework import FileContext, Finding, Rule, register

#: Modules holding factor/memo/accumulation buffers.
BUFFER_PATH_MARKERS = (
    "/repro/core/",
    "/repro/ops/",
    "/repro/baselines/",
    "/repro/cpd/",
    "/repro/parallel/",
    "/lint_fixtures/ops/",  # test fixtures exercising this rule
)

#: dtype spellings that drop below float64.
_NARROW_NAMES = frozenset({"float32", "single", "float16", "half"})
_NARROW_STRINGS = frozenset({"float32", "f4", "<f4", ">f4", "single", "float16", "f2", "half"})


def _narrow_dtype(node: ast.AST) -> Optional[str]:
    """The narrow-dtype spelling ``node`` denotes, or ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value if node.value in _NARROW_STRINGS else None
    name = dotted_name(node)
    if name is None:
        return None
    leaf = name.rsplit(".", 1)[-1]
    return name if leaf in _NARROW_NAMES else None


@register
class DtypeDisciplineRule(Rule):
    id = "dtype-discipline"
    description = (
        "no float32/float64 mixing: factor and memo buffers stay float64 "
        "(bit-identical backends; 8-byte traffic accounting)"
    )
    paper_ref = "Section IV-C (8-byte element traffic) + DESIGN.md §8"

    def applies_to(self, ctx: FileContext) -> bool:
        return any(marker in ctx.posix_path for marker in BUFFER_PATH_MARKERS)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            # any call carrying dtype=<narrow>
            for kw in node.keywords:
                if kw.arg == "dtype":
                    narrow = _narrow_dtype(kw.value)
                    if narrow:
                        yield ctx.finding(
                            self.id,
                            kw.value,
                            f"buffer allocated with dtype={narrow}: factor/"
                            "memo buffers are float64 end-to-end (a mix "
                            "point upcasts silently and the traffic "
                            "counters charge 8-byte elements)",
                        )
            # x.astype(<narrow>)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
            ):
                narrow = _narrow_dtype(node.args[0])
                if narrow:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"`{expr_text(node.func.value)}.astype({narrow})` "
                        "drops to single precision in a buffer module; "
                        "keep float64 (or suppress with a note on how "
                        "traffic accounting is adjusted)",
                    )
