"""Mode ordering: the length heuristic and the last-two-mode swap.

The base CSF layout sorts modes by increasing length (maximal compression
when non-zeros are uniform).  Section II-E observes that the *average
fiber length* along a mode — what actually determines compression — is not
always aligned with mode length (delicious-4d: the 17M-long mode averages
1.5 non-zeros per fiber while the 2M mode averages 3), and that the best
fiber mode is almost always one of the two longest modes.  STeF therefore
considers exactly one alternative layout: the base order with its last two
levels swapped.

Deciding the swap needs ``m_{d-2}`` of the *swapped* order — the number of
fibers after the first contraction — which the CSF of the original order
does not contain.  Algorithm 9 computes it in one O(nnz) streaming pass
over the existing CSF, without building the swapped CSF:  walk the leaves;
for each leaf, the pair (prefix node at level ``d-3``, leaf index) names a
swapped-order fiber; count distinct pairs.  The paper parallelizes this
with one ``observed`` buffer per thread over a root-slice distribution; the
vectorized equivalent here builds per-leaf ancestor ids with ``np.repeat``
and counts unique 64-bit keys.  :func:`count_swapped_fibers_threaded`
additionally exposes the per-thread formulation so the Fig. 5 preprocessing
bench can time the same work distribution the paper uses.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..tensor.csf import CsfTensor

__all__ = [
    "count_swapped_fibers",
    "count_swapped_fibers_threaded",
    "average_leaf_fiber_length",
]


def _leaf_ancestor_ids(csf: CsfTensor, level: int) -> np.ndarray:
    """Per-leaf id of the ancestor node at ``level`` (vectorized repeat)."""
    ids = np.arange(csf.fiber_counts[level], dtype=np.int64)
    return csf.expand_to_level(level, csf.ndim - 1, ids)


def count_swapped_fibers(csf: CsfTensor) -> int:
    """``m_{d-2}`` of the layout with the last two modes swapped
    (Algorithm 9, vectorized).

    For a 4-D CSF in order ``1-2-3-4`` this is the fiber count of order
    ``1-2-4-3``: the number of distinct ``(i, j, l)`` triples, computed as
    distinct (level ``d-3`` ancestor id, leaf index) pairs in one pass.
    """
    d = csf.ndim
    if d < 3:
        raise ValueError("swapping the last two modes needs a 3-D+ tensor")
    if csf.nnz == 0:
        return 0
    anc = _leaf_ancestor_ids(csf, d - 3)
    leaf = csf.idx[d - 1]
    n_leaf = csf.level_shape(d - 1)
    keys = anc * np.int64(n_leaf) + leaf
    return int(np.unique(keys).size)


def count_swapped_fibers_threaded(
    csf: CsfTensor, num_threads: int
) -> Tuple[int, List[int]]:
    """Algorithm 9 with its per-thread ``observed``/``num_fibers`` buffers.

    The root mode is dealt to threads in contiguous slice ranges (Line 5);
    each thread deduplicates the (prefix, leaf-index) pairs of its slices
    independently; counts are then summed (Lines 13-15).  Because a prefix
    belongs to exactly one root slice, no pair is counted twice.

    Returns ``(total, per_thread_counts)`` — the per-thread counts feed the
    preprocessing-overhead bench.
    """
    d = csf.ndim
    if d < 3:
        raise ValueError("swapping the last two modes needs a 3-D+ tensor")
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    if csf.nnz == 0:
        return 0, [0] * num_threads
    anc = _leaf_ancestor_ids(csf, d - 3)
    root = _leaf_ancestor_ids(csf, 0)
    leaf = csf.idx[d - 1]
    n_leaf = csf.level_shape(d - 1)
    keys = anc * np.int64(n_leaf) + leaf

    n_slices = csf.fiber_counts[0]
    bounds = (np.arange(num_threads + 1, dtype=np.int64) * n_slices) // num_threads
    per_thread: List[int] = []
    for th in range(num_threads):
        mask_lo = np.searchsorted(root, bounds[th], side="left")
        mask_hi = np.searchsorted(root, bounds[th + 1], side="left")
        per_thread.append(int(np.unique(keys[mask_lo:mask_hi]).size))
    return int(sum(per_thread)), per_thread


def average_leaf_fiber_length(csf: CsfTensor) -> float:
    """Average non-zeros per leaf-level fiber in the current layout:
    ``nnz / m_{d-2}`` — the compression the last contraction achieves."""
    m = csf.fiber_counts
    return csf.nnz / max(1, m[csf.ndim - 2])
