"""Lexi-Order index relabeling (Li et al., ICS 2019).

The paper's related-work section singles out Lexi-Order as a reordering
that "seems to improve speedup significantly in each case" and is
*complementary* to STeF's contributions (Section V).  This module
implements it so the complementarity claim can be tested: relabel the
indices of each mode so that slices with similar sparsity patterns get
adjacent ids, clustering non-zeros, lengthening fibers and reducing the
number of occupied HiCOO blocks.

Algorithm
---------
One round visits every mode ``m`` in turn: the tensor is viewed as a
(mode-m rows) × (linearized remaining modes) sparse matrix, rows are
sorted *lexicographically by their column patterns* (doubly-lexical
style), and mode-``m`` ids are relabeled in that order.  Because
relabeling one mode changes the column patterns of the others, the round
is repeated (``iterations`` times; Li et al. use a small constant).

The reference algorithm uses partition refinement for O(nnz) per round;
this implementation sorts per-row column tuples, which is O(nnz log nnz)
and fully adequate at laptop scale while being obviously correct.

Outputs are per-mode permutations plus the relabeled tensor;
:func:`apply_relabeling` also maps factor matrices back to the original
index space after a decomposition (rows of the factors are permuted, the
model itself is unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..tensor.coo import CooTensor

__all__ = ["Relabeling", "lexi_order", "random_relabel", "apply_relabeling"]


@dataclass(frozen=True)
class Relabeling:
    """Per-mode index permutations.

    ``perms[m][old_id] = new_id``.  Ids that never appear among the
    non-zeros keep a stable relabeling after all appearing ids.
    """

    perms: List[np.ndarray]

    def apply(self, tensor: CooTensor) -> CooTensor:
        """Relabel a tensor's indices (values untouched)."""
        if len(self.perms) != tensor.ndim:
            raise ValueError("relabeling arity does not match tensor")
        idx = np.vstack(
            [self.perms[m][tensor.indices[m]] for m in range(tensor.ndim)]
        )
        return CooTensor.from_arrays(
            idx, tensor.values, tensor.shape, sum_duplicates=False
        )

    def invert(self) -> "Relabeling":
        """The inverse permutations (new -> old)."""
        inv = []
        for p in self.perms:
            q = np.empty_like(p)
            q[p] = np.arange(p.shape[0])
            inv.append(q)
        return Relabeling(inv)

    def unrelabel_factors(
        self, factors: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """Permute factor-matrix rows back to the original index space:
        a decomposition of the relabeled tensor becomes a decomposition of
        the original one."""
        if len(factors) != len(self.perms):
            raise ValueError("factor count does not match relabeling arity")
        return [np.asarray(f)[self.perms[m]] for m, f in enumerate(factors)]


def _identity(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64)


def _relabel_one_mode(tensor: CooTensor, mode: int) -> np.ndarray:
    """One Lexi-Order step: permutation for ``mode`` (old -> new)."""
    n = tensor.shape[mode]
    if tensor.nnz == 0:
        return _identity(n)
    rows = tensor.indices[mode]
    # Linearize the remaining modes into column ids (row-major).
    cols = np.zeros(tensor.nnz, dtype=np.int64)
    stride = 1
    for m in range(tensor.ndim - 1, -1, -1):
        if m == mode:
            continue
        cols += tensor.indices[m] * stride
        stride *= tensor.shape[m]
    order = np.lexsort((cols, rows))
    r_sorted, c_sorted = rows[order], cols[order]
    # Build per-row column tuples.
    starts = np.flatnonzero(np.diff(r_sorted, prepend=-1))
    bounds = np.append(starts, tensor.nnz)
    keys = {}
    for i in range(starts.size):
        row = int(r_sorted[starts[i]])
        keys[row] = tuple(c_sorted[bounds[i] : bounds[i + 1]].tolist())
    appearing = sorted(keys, key=lambda r: keys[r])
    perm = np.full(n, -1, dtype=np.int64)
    for new_id, old_id in enumerate(appearing):
        perm[old_id] = new_id
    # Empty slices keep stable order after the appearing ones.
    empty = np.flatnonzero(perm < 0)
    perm[empty] = np.arange(len(appearing), n, dtype=np.int64)
    return perm


def lexi_order(tensor: CooTensor, iterations: int = 2) -> Relabeling:
    """Compute Lexi-Order relabelings for every mode.

    ``iterations`` full rounds over the modes; each step sees the
    relabelings chosen so far (the iterative refinement of the original
    algorithm).
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    perms = [_identity(n) for n in tensor.shape]
    current = tensor
    for _ in range(iterations):
        for mode in range(tensor.ndim):
            step = _relabel_one_mode(current, mode)
            perms[mode] = step[perms[mode]]
            current = Relabeling(
                [step if m == mode else _identity(current.shape[m])
                 for m in range(tensor.ndim)]
            ).apply(current)
    return Relabeling(perms)


def random_relabel(tensor: CooTensor, seed: int = 0) -> Relabeling:
    """Uniformly random permutations — the de-clustering control arm for
    reordering experiments."""
    rng = np.random.default_rng(seed)
    return Relabeling(
        [rng.permutation(n).astype(np.int64) for n in tensor.shape]
    )


def apply_relabeling(tensor: CooTensor, relabeling: Relabeling) -> CooTensor:
    """Convenience alias for ``relabeling.apply(tensor)``."""
    return relabeling.apply(tensor)
