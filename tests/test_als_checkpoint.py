"""Tests for ALS checkpoint/resume."""

import os

import numpy as np
import pytest

from repro.baselines import SplattAll
from repro.cpd import cp_als
from repro.tensor import low_rank_tensor


@pytest.fixture
def workload():
    return low_rank_tensor((10, 9, 8), rank=2, nnz=500, noise=0.1, seed=0)


class TestCheckpoint:
    def test_checkpoint_written(self, workload, tmp_path):
        path = str(tmp_path / "ck.npz")
        cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=4, tol=0,
            checkpoint_path=path, checkpoint_every=2,
        )
        assert os.path.exists(path)
        with np.load(path) as data:
            assert int(data["iteration"]) == 4
            assert "factor_0" in data and "factor_2" in data

    def test_resume_continues_trajectory(self, workload, tmp_path):
        """Run 6 iterations straight vs 3 + resume 3: identical final
        factors (the checkpoint captures the full ALS state)."""
        path = str(tmp_path / "ck.npz")
        straight = cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=6, tol=0,
            seed=3,
        )
        cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=3, tol=0,
            seed=3, checkpoint_path=path, checkpoint_every=3,
        )
        resumed = cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=6, tol=0,
            seed=999,  # ignored: factors come from the checkpoint
            checkpoint_path=path, resume=True,
        )
        assert resumed.iterations == 6  # cumulative across the resume
        assert len(resumed.seconds_per_iteration) == 3  # this run's share
        for a, b in zip(straight.model.factors, resumed.model.factors):
            assert np.allclose(a, b, atol=1e-10)

    def test_resume_without_path_raises(self, workload):
        with pytest.raises(ValueError, match="checkpoint_path"):
            cp_als(workload, 2, engine=SplattAll(workload, 2), resume=True)

    def test_resume_missing_file_starts_fresh(self, workload, tmp_path):
        path = str(tmp_path / "absent.npz")
        res = cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=2, tol=0,
            checkpoint_path=path, resume=True,
        )
        assert res.iterations == 2

    def test_resume_mismatched_rank_raises(self, workload, tmp_path):
        path = str(tmp_path / "ck.npz")
        cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=2, tol=0,
            checkpoint_path=path,
        )
        with pytest.raises(ValueError, match="does not match"):
            cp_als(
                workload, 5, engine=SplattAll(workload, 5), max_iters=2,
                tol=0, checkpoint_path=path, resume=True,
            )

    def test_resume_past_max_iters_is_noop(self, workload, tmp_path):
        path = str(tmp_path / "ck.npz")
        finished = cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=4, tol=0,
            checkpoint_path=path,
        )
        res = cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=3, tol=0,
            checkpoint_path=path, resume=True,
        )
        assert res.iterations == 4  # the checkpointed count, nothing new
        assert res.seconds_per_iteration == []
        # Regression: the returned model must BE the checkpointed model —
        # before the fix λ came back as ones.
        assert np.array_equal(res.model.weights, finished.model.weights)
        for a, b in zip(res.model.factors, finished.model.factors):
            assert np.array_equal(a, b)


class TestCheckpointRoundTrip:
    """Satellite coverage: λ preservation, no-op file semantics, and
    monotone cumulative iteration counts across resume chains."""

    def test_resume_preserves_weights_mid_run(self, workload, tmp_path):
        """Straight 6-iteration λ == 3 + resume-3 λ: the weights are part
        of the resumed state, not recomputed from ones."""
        path = str(tmp_path / "ck.npz")
        straight = cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=6, tol=0,
            seed=3,
        )
        cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=3, tol=0,
            seed=3, checkpoint_path=path, checkpoint_every=3,
        )
        resumed = cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=6, tol=0,
            checkpoint_path=path, resume=True,
        )
        assert np.allclose(
            resumed.model.weights, straight.model.weights, atol=1e-10
        )

    def test_finished_run_resume_leaves_checkpoint_untouched(
        self, workload, tmp_path
    ):
        """Re-invoking a finished run must not rewrite the file at all
        (the old post-loop write clobbered weights with λ = ones)."""
        path = str(tmp_path / "ck.npz")
        cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=4, tol=0,
            checkpoint_path=path,
        )
        before = os.stat(path).st_mtime_ns
        with np.load(path) as data:
            weights_before = data["weights"].copy()
        cp_als(
            workload, 2, engine=SplattAll(workload, 2), max_iters=4, tol=0,
            checkpoint_path=path, resume=True,
        )
        assert os.stat(path).st_mtime_ns == before
        with np.load(path) as data:
            assert np.array_equal(data["weights"], weights_before)
            assert int(data["iteration"]) == 4

    def test_cumulative_iterations_monotone_across_resumes(
        self, workload, tmp_path
    ):
        """A resume chain 2 -> 4 -> 6 reports strictly increasing
        cumulative counts, each matching the checkpoint's record."""
        path = str(tmp_path / "ck.npz")
        counts = []
        for cap in (2, 4, 6):
            res = cp_als(
                workload, 2, engine=SplattAll(workload, 2), max_iters=cap,
                tol=0, checkpoint_path=path, checkpoint_every=100,
                resume=os.path.exists(path),
            )
            counts.append(res.iterations)
            with np.load(path) as data:
                assert int(data["iteration"]) == res.iterations
        assert counts == [2, 4, 6]
