"""Unit tests for traffic counters (incl. the DM_factor cache rule)."""

import pytest

from repro.parallel import NULL_COUNTER, TrafficCounter


class TestBasicCharges:
    def test_read_write_totals(self):
        c = TrafficCounter()
        c.read(100, "structure")
        c.write(40, "output")
        assert c.reads == 100
        assert c.writes == 40
        assert c.total == 140

    def test_categories_tracked(self):
        c = TrafficCounter()
        c.read(10, "a")
        c.read(5, "a")
        c.write(7, "b")
        assert c.by_category["r:a"] == 15
        assert c.by_category["w:b"] == 7

    def test_negative_or_zero_ignored(self):
        c = TrafficCounter()
        c.read(0)
        c.read(-5)
        assert c.total == 0

    def test_reset(self):
        c = TrafficCounter(cache_elements=100)
        c.read(10)
        c.reset()
        assert c.total == 0
        assert c.cache_elements == 100

    def test_merge(self):
        a, b = TrafficCounter(), TrafficCounter()
        a.read(5, "x")
        b.read(3, "x")
        b.write(2, "y")
        a.merge(b)
        assert a.reads == 8
        assert a.writes == 2
        assert a.by_category["r:x"] == 8

    def test_snapshot(self):
        c = TrafficCounter()
        c.read(4, "z")
        snap = c.snapshot()
        assert snap["reads"] == 4
        assert snap["total"] == 4
        assert snap["r:z"] == 4


class TestCacheRule:
    def test_resident_matrix_charged_once(self):
        # Matrix footprint 10*4=40 <= cache 100: min(40, 1000*4) = 40.
        c = TrafficCounter(cache_elements=100)
        c.read_factor_rows(accesses=1000, n_rows=10, rank=4)
        assert c.reads == 40

    def test_resident_matrix_few_accesses(self):
        # Fewer accesses than rows: min(footprint, stream) = stream.
        c = TrafficCounter(cache_elements=100)
        c.read_factor_rows(accesses=3, n_rows=10, rank=4)
        assert c.reads == 12

    def test_streaming_matrix_charged_per_access(self):
        # Footprint 1000*4 > cache 100: full stream.
        c = TrafficCounter(cache_elements=100)
        c.read_factor_rows(accesses=50, n_rows=1000, rank=4)
        assert c.reads == 200

    def test_no_cache_means_streaming(self):
        c = TrafficCounter(cache_elements=None)
        c.read_factor_rows(accesses=5, n_rows=2, rank=4)
        assert c.reads == 20

    def test_write_side_rule(self):
        c = TrafficCounter(cache_elements=100)
        c.write_factor_rows(accesses=1000, n_rows=10, rank=4)
        assert c.writes == 40


class TestNullCounter:
    def test_ignores_everything(self):
        NULL_COUNTER.read(10)
        NULL_COUNTER.write(10)
        NULL_COUNTER.read_factor_rows(10, 10, 10)
        assert NULL_COUNTER.total == 0


class TestShardedTrafficCounter:
    def _make(self, threads=4):
        from repro.parallel import ShardedTrafficCounter

        return ShardedTrafficCounter(threads, cache_elements=64)

    def test_like_inherits_settings(self):
        from repro.parallel import ShardedTrafficCounter

        base = TrafficCounter(cache_elements=77)
        sh = ShardedTrafficCounter.like(base, 3)
        assert sh.num_threads == 3
        assert all(s.cache_elements == 77 for s in sh.shards)
        assert sh.enabled

    def test_like_null_counter_disabled(self):
        from repro.parallel import ShardedTrafficCounter

        sh = ShardedTrafficCounter.like(NULL_COUNTER, 3)
        assert not sh.enabled
        sh.shard(0).read(100, "structure")
        assert sh.total == 0.0

    def test_shards_are_isolated(self):
        sh = self._make()
        sh.shard(0).read(10, "a")
        sh.shard(2).read(5, "a")
        assert sh.shard(1).reads == 0
        assert sh.per_thread_totals() == [10.0, 0.0, 5.0, 0.0]

    def test_shard_bounds_checked(self):
        sh = self._make(2)
        with pytest.raises(ValueError):
            sh.shard(2)
        with pytest.raises(ValueError):
            sh.shard(-1)

    def test_merge_matches_single_counter(self):
        # The same charge sequence split across shards must merge to the
        # exact tallies a single counter would accumulate.
        single = TrafficCounter(cache_elements=64)
        sh = self._make()
        charges = [
            (0, "read", 3.0, "structure"),
            (1, "read", 7.0, "memo"),
            (2, "write", 4.0, "output"),
            (3, "flop", 11.0, "sweep"),
            (0, "flop", 2.0, "sweep"),
        ]
        for th, op, amount, cat in charges:
            getattr(single, op)(amount, cat)
            getattr(sh.shard(th), op)(amount, cat)
        merged = sh.merge()
        assert merged.snapshot() == single.snapshot()

    def test_merge_is_order_independent(self):
        # Same charges, different thread attribution -> identical merge.
        a, b = self._make(3), self._make(3)
        for th in range(3):
            a.shard(th).read(float(th + 1), "structure")
            b.shard(2 - th).read(float(th + 1), "structure")
        assert a.merge().snapshot() == b.merge().snapshot()

    def test_merge_into_accumulates(self):
        target = TrafficCounter()
        target.read(100, "structure")
        sh = self._make(2)
        sh.shard(0).read(1, "structure")
        sh.shard(1).write(2, "output")
        sh.merge_into(target)
        assert target.reads == 101
        assert target.writes == 2
        assert target.by_category["r:structure"] == 101

    def test_reset_clears_all_shards(self):
        sh = self._make(2)
        sh.shard(0).read(10, "a")
        sh.shard(1).flop(4, "b")
        sh.reset()
        assert sh.total == 0.0
        assert sh.merge().snapshot()["total"] == 0.0
