"""STeF — the Sparse Tensor Factorization facade.

Ties the paper's pieces together in the order Section III-B describes:

1. build the base CSF with the increasing-mode-length heuristic;
2. run Algorithm 9 + the Section IV model to pick the configuration
   (swap the last two modes? which ``P^(i)`` to memoize?);
3. rebuild the CSF if the swap won;
4. construct the memoized MTTKRP engine with Algorithm 3's fine-grained
   load-balanced partition.

The object is then a drop-in MTTKRP backend for the CP-ALS driver
(:mod:`repro.cpd.als`) and the benchmark harness.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..compat import resolve_engine_aliases
from ..engines.base import EngineBase, resolve_num_threads
from ..parallel.counters import NULL_COUNTER, TrafficCounter
from ..parallel.machine import MachineSpec
from ..tensor.coo import CooTensor
from ..tensor.csf import CsfTensor, default_mode_order
from ..trace import NULL_TRACER, Tracer
from .memoization import MemoPlan
from .mttkrp import MemoizedMttkrp
from .planner import PlanDecision, plan_decomposition

__all__ = ["Stef"]


class Stef(EngineBase):
    """Model-driven memoized MTTKRP backend (the paper's STeF).

    Parameters
    ----------
    tensor:
        Input in COO form (the CSFs are built internally).
    rank:
        Decomposition rank ``R``.
    machine:
        Machine model supplying cache capacity and the default thread
        count.  ``None`` gives a cache-less model and one thread.
    num_threads:
        Override the machine's thread count.
    plan:
        Force a memoization plan (ablations); default lets the model pick.
    swap_last_two:
        Force the mode-order decision (ablations); default model choice.
    partition:
        ``"nnz"`` (Algorithm 3) or ``"slice"`` (prior work, ablation).
    exec_backend:
        ``"serial"``, ``"threads"``, or ``"processes"`` pool execution
        (see :class:`~repro.parallel.executor.SimulatedPool`).  The
        pre-1.0 spelling ``backend=`` now raises ``TypeError``.
    jit:
        Kernel-tier selection (``"off"``/``"auto"``/``"on"``, see
        :func:`repro.kernels.resolve_tier`).  ``None`` takes the class
        default — ``"off"`` for plain ``stef``, ``"auto"`` for the
        registered ``stef-jit`` engine.
    counter:
        Traffic accounting target.
    tracer:
        Structured-tracing target (:mod:`repro.trace`); the no-op
        tracer by default.

    Attributes
    ----------
    decision:
        The full :class:`~repro.core.planner.PlanDecision`, or ``None``
        when both ``plan=`` and ``swap_last_two=`` are forced — a fully
        overridden configuration never runs the model search, so there
        is no decision to report (and ``preprocessing_seconds`` stays
        0.0 instead of charging the ablation arm for a search whose
        result is discarded).
    preprocessing_seconds:
        Wall time spent on planning (Algorithm 9 + model search) — the
        quantity Fig. 5 compares against one MTTKRP-set execution.
    """

    name = "stef"
    jit_capable = True
    memoize_capable = True

    def __init__(
        self,
        tensor: CooTensor,
        rank: int,
        *,
        machine: Optional[MachineSpec] = None,
        num_threads: Optional[int] = None,
        plan: Optional[MemoPlan] = None,
        swap_last_two: Optional[bool] = None,
        partition: str = "nnz",
        exec_backend: Optional[str] = None,
        jit: Optional[str] = None,
        counter: TrafficCounter = NULL_COUNTER,
        tracer: Tracer = NULL_TRACER,
        **removed,
    ) -> None:
        num_threads, exec_backend = resolve_engine_aliases(
            type(self).__name__, num_threads, exec_backend, removed
        )
        if jit is None:
            jit = type(self).jit_default
        self.tensor = tensor
        self.rank = rank
        self.machine = machine
        self.tracer = tracer
        threads = resolve_num_threads(machine, num_threads)
        base_order = default_mode_order(tensor.shape)
        base_csf = CsfTensor.from_coo(tensor, base_order)

        self.decision: Optional[PlanDecision] = None
        if plan is not None and swap_last_two is not None:
            # Fully overridden (ablation arms): the model search's result
            # would be discarded, and its wall time would skew the Fig. 5/6
            # preprocessing comparison — skip it.
            self.preprocessing_seconds = 0.0
            swap = swap_last_two
            chosen_plan = plan
        else:
            t0 = time.perf_counter()
            self.decision = plan_decomposition(
                base_csf, rank, machine, consider_swap=tensor.ndim >= 3
            )
            self.preprocessing_seconds = time.perf_counter() - t0
            swap = (
                self.decision.swap_last_two
                if swap_last_two is None
                else swap_last_two
            )
            chosen_plan = (
                self.decision.best_with_swap(swap).plan if plan is None else plan
            )
        chosen_plan.validate(tensor.ndim)

        self.csf = base_csf.swapped_last_two() if swap else base_csf
        self.swap_last_two = swap
        self.plan = chosen_plan
        #: Normalized pool-execution mode (``"serial"`` when defaulted).
        self.exec_backend = exec_backend
        self.partition = partition
        self.engine = MemoizedMttkrp(
            self.csf,
            rank,
            plan=chosen_plan,
            num_threads=threads,
            partition=partition,
            exec_backend=exec_backend,
            jit=jit,
            counter=counter,
            tracer=tracer,
        )
        #: Resolved kernel-ABI tier actually executing the sweeps.
        self.kernel_tier = self.engine.kernel_tier

    # ------------------------------------------------------------------
    @property
    def mode_order(self) -> Tuple[int, ...]:
        """The CSF level -> original mode mapping actually in use."""
        return self.csf.mode_order

    @property
    def num_threads(self) -> int:
        return self.engine.num_threads

    def mttkrp_level(self, factors: Sequence[np.ndarray], level: int) -> np.ndarray:
        """MTTKRP for CSF ``level`` (level 0 refreshes the memos)."""
        if level == 0:
            return self.engine.mode0(factors)
        return self.engine.mode_level(factors, level)

    def iteration_results(
        self, factors: Sequence[np.ndarray]
    ) -> List[Tuple[int, np.ndarray]]:
        """One CPD iteration's worth of MTTKRPs (no factor updates)."""
        return self.engine.iteration_results(factors)

    def memo_bytes(self) -> int:
        """Footprint of the saved partial results (Table II)."""
        return self.engine.memo_bytes()

    def level_load_factor(self, level: int) -> float:
        """Load-imbalance stretch factor of the schedule executing
        ``level``'s MTTKRP (used by the simulated-time harness).

        Delegates to the engine, which picks the partition level actually
        dealing that kernel's work: leaf counts for leaf-driven sweeps,
        source-level node ranges for memo-fed modes.
        """
        return self.engine.level_load_factor(level)

    def per_thread_traffic(self) -> List[float]:
        """Most recent kernel's per-thread traffic totals (the sharded
        counter's observability channel)."""
        return self.engine.shards.per_thread_totals()

    def close(self) -> None:
        """Release engine resources (shared memory under ``processes``)."""
        self.engine.close()

    def decompose(self, **als_kwargs):
        """Run CPD-ALS with this backend (convenience wrapper around
        :func:`repro.cpd.als.cp_als`; keyword arguments pass through)."""
        from ..cpd.als import cp_als

        als_kwargs.setdefault("tracer", self.tracer)
        return cp_als(self.tensor, self.rank, engine=self, **als_kwargs)

    def describe(self) -> str:
        """One-line configuration summary for harness output."""
        return (
            f"{self.name}: order={self.mode_order} "
            f"save={list(self.plan.save_levels)} "
            f"swap={'yes' if self.swap_last_two else 'no'} "
            f"threads={self.num_threads}"
        )
