"""Satellite coverage: the fingerprint-keyed engine cache.

Pins the cache's contract at the worker level (no server in the loop):

* a resubmitted identical request (same tensor content, same plan
  options) **hits** — the very same engine object runs the job and the
  results are bit-identical to the first run;
* perturbing the tensor's values or any plan-affecting option misses;
* eviction closes the engine, releasing its ``/dev/shm/repro-*``
  segments under the ``processes`` backend.
"""

import glob

import numpy as np
import pytest

from repro.serve import EngineCache, Job, JobSpec, Spool, execute_job
from repro.serve.protocol import cache_key, tensor_fingerprint
from repro.tensor import CooTensor, random_tensor


def inline_coo(tensor) -> dict:
    return {
        "indices": tensor.indices.tolist(),
        "values": tensor.values.tolist(),
        "shape": list(tensor.shape),
    }


def make_spec(tensor, **overrides) -> JobSpec:
    options = dict(
        coo=inline_coo(tensor), engine="stef", rank=4, max_iters=3,
        tol=0.0, seed=0, exec_backend="serial",
    )
    options.update(overrides)
    return JobSpec(**options)


def run(spool, cache, spec, job_id) -> Job:
    return execute_job(Job(job_id=job_id, spec=spec), spool, cache)


@pytest.fixture
def spool(tmp_path):
    return Spool(str(tmp_path / "spool"))


class TestFingerprint:
    def test_content_identity_ignores_submission_order(self):
        """The same non-zeros listed in a different order fingerprint
        equally once canonicalized — a path-loaded tensor and its
        inlined twin share one cache entry."""
        tensor = random_tensor((8, 7, 6), nnz=100, seed=1)
        perm = np.random.default_rng(0).permutation(tensor.nnz)
        shuffled = CooTensor.from_arrays(
            tensor.indices[:, perm], tensor.values[perm], tensor.shape,
        )
        assert tensor_fingerprint(
            tensor.indices, tensor.values, tensor.shape
        ) == tensor_fingerprint(
            shuffled.indices, shuffled.values, shuffled.shape
        )

    def test_value_perturbation_changes_fingerprint(self):
        tensor = random_tensor((8, 7, 6), nnz=100, seed=1)
        values = tensor.values.copy()
        values[0] = np.nextafter(values[0], np.inf)  # one ulp
        assert tensor_fingerprint(
            tensor.indices, tensor.values, tensor.shape
        ) != tensor_fingerprint(tensor.indices, values, tensor.shape)

    def test_plan_options_in_key_trajectory_options_not(self):
        tensor = random_tensor((8, 7, 6), nnz=100, seed=1)
        fp = tensor_fingerprint(tensor.indices, tensor.values, tensor.shape)
        base = make_spec(tensor)
        assert cache_key(fp, base) == cache_key(fp, make_spec(tensor))
        # ALS-trajectory options reuse the same planned engine...
        assert cache_key(fp, base) == cache_key(
            fp, make_spec(tensor, max_iters=50, tol=1e-6, seed=9)
        )
        # ...plan-affecting options do not.
        assert cache_key(fp, base) != cache_key(
            fp, make_spec(tensor, rank=5)
        )
        assert cache_key(fp, base) != cache_key(
            fp, make_spec(tensor, exec_backend="threads")
        )


class TestHitReuse:
    def test_hit_reuses_engine_identity_bit_identical_results(self, spool):
        tensor = random_tensor((10, 8, 6), nnz=150, seed=2)
        cache = EngineCache(capacity=4)
        first = run(spool, cache, make_spec(tensor), "job-1")
        assert first.cache == "miss"
        engine_after_first = next(iter(cache._entries.values())).engine

        second = run(spool, cache, make_spec(tensor), "job-2")
        assert second.cache == "hit"
        engine_after_second = next(iter(cache._entries.values())).engine
        assert engine_after_second is engine_after_first  # same object

        # Reuse must not perturb the numerics: bit-identical everything.
        assert first.result["weights"] == second.result["weights"]
        for a, b in zip(first.result["factors"], second.result["factors"]):
            assert a == b
        assert cache.stats()["cache.hits"] == 1.0
        cache.close()

    def test_perturbed_values_miss(self, spool):
        tensor = random_tensor((10, 8, 6), nnz=150, seed=2)
        cache = EngineCache(capacity=4)
        run(spool, cache, make_spec(tensor), "job-1")
        values = tensor.values.copy()
        values[0] = np.nextafter(values[0], np.inf)
        perturbed = CooTensor.from_arrays(
            tensor.indices, values, tensor.shape
        )
        job = run(spool, cache, make_spec(perturbed), "job-2")
        assert job.cache == "miss"
        assert len(cache) == 2
        cache.close()

    def test_perturbed_options_miss(self, spool):
        tensor = random_tensor((10, 8, 6), nnz=150, seed=2)
        cache = EngineCache(capacity=4)
        run(spool, cache, make_spec(tensor), "job-1")
        job = run(spool, cache, make_spec(tensor, rank=5), "job-2")
        assert job.cache == "miss"
        # But trajectory-only changes still hit the same plan.
        job = run(
            spool, cache, make_spec(tensor, max_iters=5, seed=7), "job-3"
        )
        assert job.cache == "hit"
        cache.close()


class TestEviction:
    def test_eviction_closes_engine_and_frees_shm(self, spool):
        """Capacity-1 cache under the processes backend: inserting a
        second tensor's engine must close the first, releasing its
        shared-memory segments; cache.close() releases the rest."""
        baseline = set(glob.glob("/dev/shm/repro-*"))
        cache = EngineCache(capacity=1)
        t1 = random_tensor((10, 8, 6), nnz=150, seed=2)
        t2 = random_tensor((9, 7, 5), nnz=130, seed=5)

        run(spool, cache, make_spec(t1, exec_backend="processes"), "job-1")
        after_first = set(glob.glob("/dev/shm/repro-*")) - baseline
        assert after_first  # the pooled engine holds live segments

        run(spool, cache, make_spec(t2, exec_backend="processes"), "job-2")
        assert cache.evictions == 1
        assert len(cache) == 1
        # job-1's engine was evicted and closed: its segments are gone.
        after_second = set(glob.glob("/dev/shm/repro-*")) - baseline
        assert not (after_first & after_second)

        cache.close()
        assert set(glob.glob("/dev/shm/repro-*")) == baseline
