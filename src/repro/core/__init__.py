"""STeF core: memoized MTTKRP kernels, the data-movement model, planning."""

from .csf_kernels import (
    LevelSlice,
    ancestor_windows,
    expand_rows,
    scatter_add_rows,
    serial_upward_sweep,
    thread_downward_k,
    thread_level_ranges,
    thread_upward_sweep,
)
from .memoization import SAVE_ALL, SAVE_NONE, MemoPlan, enumerate_plans
from .model import DataMovementModel, ModelBreakdown, TensorStats
from .modeorder import (
    average_leaf_fiber_length,
    count_swapped_fibers,
    count_swapped_fibers_threaded,
)
from .mttkrp import MemoizedMttkrp
from .planner import Configuration, PlanDecision, plan_decomposition
from .schedule import WorkSchedule, build_schedule
from .stef import Stef
from .stef2 import Stef2

__all__ = [
    "LevelSlice",
    "ancestor_windows",
    "expand_rows",
    "scatter_add_rows",
    "serial_upward_sweep",
    "thread_downward_k",
    "thread_level_ranges",
    "thread_upward_sweep",
    "MemoPlan",
    "enumerate_plans",
    "SAVE_ALL",
    "SAVE_NONE",
    "DataMovementModel",
    "ModelBreakdown",
    "TensorStats",
    "count_swapped_fibers",
    "count_swapped_fibers_threaded",
    "average_leaf_fiber_length",
    "MemoizedMttkrp",
    "Configuration",
    "PlanDecision",
    "plan_decomposition",
    "WorkSchedule",
    "build_schedule",
    "Stef",
    "Stef2",
]
