"""Model-vs-measured traffic validation.

The Section IV model earns its keep by *ranking* configurations, not by
predicting absolute byte counts.  :func:`model_vs_measured` runs the
memoized engine under every configuration of the search space, counts the
traffic it actually generates, and pairs each count with the model's
prediction; :func:`ranking_agreement` scores how well the two orderings
agree (Spearman-style pair concordance).  An integration test asserts high
concordance; the ablation benches reuse these helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.memoization import enumerate_plans
from ..core.model import DataMovementModel, TensorStats
from ..core.mttkrp import MemoizedMttkrp
from ..cpd.init import random_init
from ..parallel.counters import TrafficCounter
from ..parallel.machine import MachineSpec
from ..tensor.csf import CsfTensor

__all__ = [
    "CANONICAL_TRAFFIC_CATEGORIES",
    "ConfigTraffic",
    "model_vs_measured",
    "ranking_agreement",
]

#: The closed set of traffic-charge categories.  Every ``read``/``write``/
#: ``flop`` charge in the kernels names one of these, and the Section IV-C
#: data-movement model reasons in exactly the same vocabulary — the
#: ``counter-category`` lint rule (:mod:`repro.lint`) enforces the match so
#: the measured channel and the analytic model cannot drift apart.  Adding
#: a category is deliberate: extend this set, teach the model about the
#: new term, and only then start charging it.
CANONICAL_TRAFFIC_CATEGORIES = frozenset(
    {
        # --- data-movement legs (Section IV-C terms) ---
        "structure",      # CSF ptr/idx (or linearized-index) walks
        "values",         # the non-zero value stream
        "factor",         # factor-matrix row gathers under the DM_factor rule
        "output",         # the dense N×R MTTKRP result
        "memo",           # saved partial results P^(i): reads and writes
        "memo-allocate",  # write-allocate reads on fresh memo buffers
        # --- compute legs (the roofline's FLOP side) ---
        "sweep",          # TTM + mTTV contraction chain (Algorithms 4-8)
        "mode-u",         # downward-k / recompute / Hadamard of modes u > 0
        "recompute",      # ALTO-style from-scratch contraction arithmetic
        "decode",         # ALTO linearized-index bit-extraction
        "scatter",        # irregular read-modify-write updates
        # --- defaults kept for generic charges ---
        "compute",
        "misc",
    }
)


@dataclass(frozen=True)
class ConfigTraffic:
    """Predicted and counted traffic for one memoization plan."""

    save_levels: tuple
    predicted: float
    measured: float


def model_vs_measured(
    csf: CsfTensor,
    rank: int,
    machine: Optional[MachineSpec] = None,
    *,
    num_threads: int = 1,
    seed: int = 0,
) -> List[ConfigTraffic]:
    """Evaluate every memoization plan both ways on one CSF layout."""
    stats = TensorStats.from_csf(csf)
    model = DataMovementModel(stats, rank, machine)
    factors = random_init(csf.shape, rank, seed)
    out: List[ConfigTraffic] = []
    cache = machine.cache_elements if machine else None
    for plan in enumerate_plans(csf.ndim):
        counter = TrafficCounter(cache_elements=cache)
        engine = MemoizedMttkrp(
            csf, rank, plan=plan, num_threads=num_threads, counter=counter
        )
        engine.mode0(factors)
        for u in range(1, csf.ndim):
            engine.mode_level(factors, u)
        out.append(
            ConfigTraffic(
                save_levels=plan.save_levels,
                predicted=model.total(plan),
                measured=counter.total,
            )
        )
    return out


def ranking_agreement(entries: List[ConfigTraffic]) -> float:
    """Kendall-style pair concordance between predicted and measured
    orderings: 1.0 = identical ranking, 0.0 = uncorrelated, -1.0 =
    reversed.  Near-ties (under 2% apart on both axes) are skipped."""
    n = len(entries)
    if n < 2:
        return 1.0
    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            a, b = entries[i], entries[j]
            dp = a.predicted - b.predicted
            dm = a.measured - b.measured
            scale_p = max(abs(a.predicted), abs(b.predicted), 1e-12)
            scale_m = max(abs(a.measured), abs(b.measured), 1e-12)
            if abs(dp) / scale_p < 0.02 and abs(dm) / scale_m < 0.02:
                continue
            if dp * dm > 0:
                concordant += 1
            elif dp * dm < 0:
                discordant += 1
    total = concordant + discordant
    if total == 0:
        return 1.0
    return (concordant - discordant) / total
