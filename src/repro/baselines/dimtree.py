"""Dimension-tree baseline (Kaya & Uçar's BDT / HyperTensor policy).

Section V describes Kaya and Uçar's Balanced Dimension Tree: the mode set
is recursively halved; each internal node stores the tensor partially
contracted with the factors of the *complement* of its mode set, and each
of the ``d`` MTTKRPs walks from the root to its leaf, reusing every
cached internal node whose contracted factors are still current.  "The
corresponding HyperTensor library implementation has not yet been
released to open-source, making an empirical comparison impossible" — so
this reproduction builds the policy from scratch and makes the comparison
the paper could not.

Semantics
---------
* Tree: node = sorted tuple of modes; children split the set into
  contiguous halves (⌈n/2⌉ / rest), leaves are single modes.
* ``P_S`` = tensor contracted over every mode *not* in ``S``.  The root
  is the tensor itself; a child ``S1`` of ``S`` is obtained by
  contracting ``P_S`` over ``S ∖ S1`` (one :func:`~repro.ops.partial.contract_modes`
  call).
* MTTKRP for mode ``m``: materialize (or reuse) the ancestors of leaf
  ``{m}``; the final step contracts the last sibling set and scatters.
* Cache validity follows the sequential-update rule the BDT relies on: a
  cached ``P_S`` is reusable iff every factor it consumed is *identical*
  (object identity — the ALS driver installs a fresh array per update) to
  the current one.

Costs are charged per materialized node (read parent, write child, factor
gathers with the cache rule) and per final scatter, like the other
backends, so the harness can rank BDT against STeF/AdaTM directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compat import resolve_engine_aliases
from ..engines.base import EngineBase, resolve_num_threads
from ..kernels.dispatch import resolve_tier
from ..ops.partial import PartialTensor, contract_modes, from_coo, reduce_to_matrix
from ..parallel.counters import NULL_COUNTER, TrafficCounter
from ..parallel.machine import MachineSpec
from ..tensor.coo import CooTensor
from ..trace import NULL_TRACER, Tracer

__all__ = ["DimTreeBackend", "build_mode_tree"]

ModeSet = Tuple[int, ...]


def build_mode_tree(ndim: int) -> Dict[ModeSet, Tuple[ModeSet, ...]]:
    """Balanced binary tree over the mode set: ``{node: children}``.

    Leaves (single modes) map to ``()``.
    """
    if ndim < 1:
        raise ValueError("need at least one mode")
    tree: Dict[ModeSet, Tuple[ModeSet, ...]] = {}

    def split(modes: ModeSet) -> None:
        if len(modes) == 1:
            # Plan-construction dict write, not kernel array traffic.
            # lint: disable-next-line=flow.traffic-conformance
            tree[modes] = ()
            return
        half = (len(modes) + 1) // 2
        left, right = modes[:half], modes[half:]
        # lint: disable-next-line=flow.traffic-conformance
        tree[modes] = (left, right)
        split(left)
        split(right)

    split(tuple(range(ndim)))
    return tree


class DimTreeBackend(EngineBase):
    """Dimension-tree memoized MTTKRP backend."""

    name = "dimtree"
    jit_capable = True

    def __init__(
        self,
        tensor: CooTensor,
        rank: int,
        *,
        machine: Optional[MachineSpec] = None,
        num_threads: Optional[int] = None,
        exec_backend: Optional[str] = None,
        jit: Optional[str] = None,
        counter: TrafficCounter = NULL_COUNTER,
        tracer: Tracer = NULL_TRACER,
        **removed,
    ) -> None:
        num_threads, exec_backend = resolve_engine_aliases(
            type(self).__name__, num_threads, exec_backend, removed
        )
        # The BDT walk is coordinator-side dense algebra; ``exec_backend``
        # is accepted for signature uniformity but has no pool to drive.
        self.exec_backend = exec_backend
        self.tensor = tensor
        self.rank = rank
        #: Resolved kernel-ABI tier for the edge contractions and the
        #: final scatter (both run through repro.ops.partial).
        self.kernel_tier = resolve_tier(
            jit if jit is not None else type(self).jit_default
        )
        self.counter = counter
        self.tracer = tracer
        self.num_threads = resolve_num_threads(machine, num_threads)
        d = tensor.ndim
        self.mode_order: Tuple[int, ...] = tuple(range(d))
        self.tree = build_mode_tree(d)
        self.root: ModeSet = tuple(range(d))
        # node -> (PartialTensor, {contracted mode: factor array used})
        self._cache: Dict[ModeSet, Tuple[PartialTensor, Dict[int, np.ndarray]]] = {}
        self._root_partial = from_coo(tensor, rank)
        self._parents: Dict[ModeSet, ModeSet] = {}
        for node, children in self.tree.items():
            for c in children:
                self._parents[c] = node

    # ------------------------------------------------------------------
    def _node_valid(self, node: ModeSet, factors: Sequence[np.ndarray]) -> bool:
        entry = self._cache.get(node)
        if entry is None:
            return False
        _, used = entry
        return all(factors[m] is arr for m, arr in used.items())

    def _materialize(
        self, node: ModeSet, factors: Sequence[np.ndarray]
    ) -> PartialTensor:
        """Return ``P_node``, computing and caching it if stale."""
        if node == self.root:
            return self._root_partial
        if self._node_valid(node, factors):
            return self._cache[node][0]
        parent = self._parents[node]
        parent_partial = self._materialize(parent, factors)
        to_contract = [m for m in parent if m not in node]
        child = contract_modes(
            parent_partial,
            to_contract,
            [factors[m] for m in to_contract],
            tier=self.kernel_tier,
        )
        # The factors this node depends on: everything its parent consumed
        # plus the edge contraction's own factors.
        used: Dict[int, np.ndarray] = {}
        if parent != self.root:
            used.update(self._cache[parent][1])
        for m in to_contract:
            used[m] = factors[m]
        self._cache[node] = (child, used)
        self._charge_edge(parent_partial, child, to_contract)
        return child

    def _charge_edge(
        self,
        parent: PartialTensor,
        child: PartialTensor,
        contracted: List[int],
    ) -> None:
        self.counter.read(parent.num_fibers * self.rank, "memo")
        self.counter.read(parent.indices.shape[0] * parent.num_fibers, "structure")
        for m in contracted:
            self.counter.read_factor_rows(
                parent.num_fibers, self.tensor.shape[m], self.rank, "factor"
            )
        size = child.num_fibers * self.rank
        self.counter.write(size, "memo")
        self.counter.read(size, "memo-allocate")
        self.counter.flop(2 * self.rank * parent.num_fibers * max(1, len(contracted)), "sweep")

    # ------------------------------------------------------------------
    def mttkrp_level(self, factors: Sequence[np.ndarray], level: int) -> np.ndarray:
        """MTTKRP for mode ``level`` via the leaf's ancestor chain."""
        mode = self.mode_order[level]
        attrs = dict(
            level=level,
            mode=int(mode),
            nnz=int(self.tensor.nnz),
            threads=self.num_threads,
        )
        if level == 0:
            span = self.tracer.span(
                "mttkrp.mode0", counter=self.counter, **attrs
            )
        else:
            span = self.tracer.span(
                "mttkrp.mode_level", counter=self.counter, source="dimtree",
                **attrs,
            )
        with span:
            return self._mttkrp_level_impl(factors, mode)

    def _mttkrp_level_impl(
        self, factors: Sequence[np.ndarray], mode: int
    ) -> np.ndarray:
        leaf: ModeSet = (mode,)
        parent = self._parents[leaf]
        parent_partial = self._materialize(parent, factors)
        siblings = [m for m in parent if m != mode]
        out = reduce_to_matrix(
            parent_partial,
            mode,
            [factors[m] for m in siblings],
            siblings,
            tier=self.kernel_tier,
        )
        # Final scatter charge (conflicted accumulation like other
        # backends' mode-u outputs).
        for m in siblings:
            self.counter.read_factor_rows(
                parent_partial.num_fibers, self.tensor.shape[m], self.rank,
                "factor",
            )
        self.counter.read(parent_partial.num_fibers * self.rank, "memo")
        self.counter.scatter_update(
            parent_partial.num_fibers,
            self.tensor.shape[mode],
            self.rank,
            self.num_threads,
            "output",
        )
        return out

    def level_load_factor(self, level: int) -> float:
        """Flat equal-fiber chunking (the BDT's intra-node parallelism is
        over contiguous fiber blocks)."""
        return 1.0

    def memo_bytes(self) -> int:
        """Current footprint of the cached internal nodes."""
        return int(sum(p.nbytes() for p, _ in self._cache.values()))

    def describe(self) -> str:
        internal = [n for n, c in self.tree.items() if c and n != self.root]
        return f"{self.name}: {len(internal)} internal nodes {internal}"
