"""Trace exporters: JSONL run records, Chrome trace-event files, metrics.

Three consumers, three formats:

* :func:`write_jsonl` — an append-friendly machine-readable run record
  (one JSON object per line: a ``meta`` header, every span, and a
  closing ``metrics`` summary).  These are what accumulates under
  ``benchmarks/results/`` and what ``scripts/bench_regress.py`` diffs.
* :func:`write_chrome_trace` — the Chrome trace-event format
  (``chrome://tracing`` / Perfetto loadable): complete events (``ph:X``)
  in microseconds, one ``tid`` row per lane — the coordinator on its own
  row, one row per simulated/real thread.
* :func:`flat_metrics` — the tracer's flat metrics dict plus run
  metadata, for programmatic comparison.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .tracer import MAIN_LANE, SpanRecord, Tracer

__all__ = [
    "engine_run_meta",
    "flat_metrics",
    "read_jsonl",
    "write_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
]


def engine_run_meta(engine: Any) -> Dict[str, Any]:
    """Self-describing run metadata read off a constructed engine.

    Stamped into the JSONL header record (and the serve request logs) so
    a trace file alone answers "what configuration produced this":
    the engine's registry name, the *resolved* kernel tier actually
    executing the sweeps (``numpy`` or ``numba`` — not the ``jit=``
    request, which ``auto`` makes ambiguous), the pool-execution backend,
    and the effective thread count.
    """
    return {
        "engine": getattr(engine, "name", type(engine).__name__),
        "jit_tier": getattr(engine, "kernel_tier", "numpy"),
        "exec_backend": getattr(engine, "exec_backend", None) or "serial",
        "num_threads": int(getattr(engine, "num_threads", 1)),
    }


def flat_metrics(tracer: Tracer, **extra: Any) -> Dict[str, Any]:
    """The tracer's flat metrics dict merged with its run metadata."""
    out: Dict[str, Any] = dict(tracer.meta)
    out.update(extra)
    out.update(tracer.metrics())
    return out


# ----------------------------------------------------------------------
# JSONL run records
# ----------------------------------------------------------------------
def write_jsonl(tracer: Tracer, path: str, **extra_meta: Any) -> None:
    """Write the full run record: meta line, span lines, metrics line."""
    meta = dict(tracer.meta)
    meta.update(extra_meta)
    with open(path, "w") as fh:
        fh.write(json.dumps({"type": "meta", **meta}) + "\n")
        for rec in tracer.spans():
            fh.write(json.dumps({"type": "span", **rec.to_dict()}) + "\n")
        fh.write(json.dumps({"type": "metrics", **tracer.metrics()}) + "\n")


def read_jsonl(path: str) -> Dict[str, Any]:
    """Parse a run record back into ``{"meta":..., "spans":[...],
    "metrics":...}`` (the shape ``bench_regress`` compares)."""
    meta: Dict[str, Any] = {}
    metrics: Dict[str, Any] = {}
    spans: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.pop("type", "span")
            if kind == "meta":
                meta = obj
            elif kind == "metrics":
                metrics = obj
            else:
                spans.append(obj)
    return {"meta": meta, "spans": spans, "metrics": metrics}


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def _lane_tid(lane: int) -> int:
    """Chrome tids must be non-negative; the coordinator gets row 0 and
    simulated thread ``th`` gets row ``th + 1``."""
    return 0 if lane == MAIN_LANE else lane + 1


def _span_args(rec: SpanRecord) -> Dict[str, Any]:
    args: Dict[str, Any] = dict(rec.attrs)
    if rec.traffic is not None:
        args["traffic"] = rec.traffic
    return args


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list: one complete (``ph:X``) event per span
    plus thread-name metadata so lanes are labeled in the viewer."""
    events: List[Dict[str, Any]] = []
    lanes = sorted({rec.lane for rec in tracer.records})
    for lane in lanes:
        name = "coordinator" if lane == MAIN_LANE else f"thread {lane}"
        events.append({
            "ph": "M", "pid": 0, "tid": _lane_tid(lane),
            "name": "thread_name", "args": {"name": name},
        })
    for rec in tracer.spans():
        events.append({
            "ph": "X",
            "pid": 0,
            "tid": _lane_tid(rec.lane),
            "name": rec.name,
            "ts": rec.t0 * 1e6,
            "dur": rec.seconds * 1e6,
            "args": _span_args(rec),
        })
    return events


def write_chrome_trace(tracer: Tracer, path: str,
                       meta: Optional[Dict[str, Any]] = None) -> None:
    """Write a ``chrome://tracing``-loadable JSON object file."""
    doc: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {**tracer.meta, **(meta or {})},
    }
    with open(path, "w") as fh:
        json.dump(doc, fh)
