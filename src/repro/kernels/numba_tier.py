"""Numba-compiled tier of the flat-array kernel ABI.

Importing this module requires Numba; the dispatch layer only imports it
after :func:`repro.kernels.dispatch.jit_available` has confirmed the
import will succeed, so the package works (at the NumPy tier) on
installations without the ``[jit]`` extra.

What is compiled — and, just as deliberately, what is not:

* **Compiled** (``@njit(cache=True, nogil=True)``): the gather-multiply,
  value-seed, scale, take, repeat and permute loops — the per-level
  inner operations of the upward/downward CSF sweeps.  These are
  elementwise/gather kernels, so the compiled results are bit-identical
  to the NumPy expressions *by construction* (same multiplications on
  the same operands, no reassociation).  Fusing the index gather with
  the multiply removes the ``factor[idx]`` temporary NumPy materializes
  per level, and ``nogil=True`` lets the ``threads`` exec backend run
  the compiled bodies concurrently.
* **Not compiled**: the segmented reductions (``segment_reduce_rows``,
  ``segment_sum_rows``, and the reduce step inside ``scatter_rows_add``)
  call the same ``np.add.reduceat`` as the NumPy tier.  NumPy's
  reduction order is chosen by its runtime SIMD dispatch (pairwise /
  vector-accumulator schedules that vary with CPU features), so *no*
  handwritten loop can replicate it portably bit-for-bit — and the
  tier contract is exact equality, not closeness.  Sharing the one
  reduction routine makes the accumulation order identical across tiers
  by construction; the reduceat call is already memory-bound, so the
  compiled tier loses little and the contract stays honest.
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = [
    "segment_reduce_rows",
    "segment_sum_rows",
    "scatter_rows_add",
    "gather_multiply_rows",
    "value_gather_rows",
    "scale_rows_by_values",
    "take_factor_rows",
    "repeat_rows",
]


@njit(cache=True, nogil=True)
def _gather_multiply(rows, factor, idx, lo, hi):
    n = hi - lo
    rank = rows.shape[1]
    out = np.empty((n, rank), dtype=rows.dtype)
    for p in range(n):
        j = idx[lo + p]
        for r in range(rank):
            out[p, r] = rows[p, r] * factor[j, r]
    return out


@njit(cache=True, nogil=True)
def _value_gather(values, factor, idx, lo, hi):
    n = hi - lo
    rank = factor.shape[1]
    out = np.empty((n, rank), dtype=factor.dtype)
    for p in range(n):
        v = values[lo + p]
        j = idx[lo + p]
        for r in range(rank):
            out[p, r] = v * factor[j, r]
    return out


@njit(cache=True, nogil=True)
def _scale_rows(values, rows, lo, hi):
    n = hi - lo
    rank = rows.shape[1]
    out = np.empty((n, rank), dtype=rows.dtype)
    for p in range(n):
        v = values[lo + p]
        for r in range(rank):
            out[p, r] = v * rows[p, r]
    return out


@njit(cache=True, nogil=True)
def _take_rows(factor, idx, lo, hi):
    n = hi - lo
    rank = factor.shape[1]
    out = np.empty((n, rank), dtype=factor.dtype)
    for p in range(n):
        j = idx[lo + p]
        for r in range(rank):
            out[p, r] = factor[j, r]
    return out


@njit(cache=True, nogil=True)
def _repeat_rows(rows, counts):
    total = 0
    for i in range(counts.shape[0]):
        total += counts[i]
    rank = rows.shape[1]
    out = np.empty((total, rank), dtype=rows.dtype)
    p = 0
    for i in range(counts.shape[0]):
        for _ in range(counts[i]):
            for r in range(rank):
                out[p, r] = rows[i, r]
            p += 1
    return out


@njit(cache=True, nogil=True)
def _permute_rows(rows, order):
    n = order.shape[0]
    rank = rows.shape[1]
    out = np.empty((n, rank), dtype=rows.dtype)
    for p in range(n):
        src = order[p]
        for r in range(rank):
            out[p, r] = rows[src, r]
    return out


@njit(cache=True, nogil=True)
def _add_rows_at_unique(out, targets, sums):
    # targets are unique (one per touched output row), so element order
    # within this loop matches NumPy's ``out[targets] += sums`` exactly.
    for s in range(targets.shape[0]):
        t = targets[s]
        for r in range(sums.shape[1]):
            out[t, r] = out[t, r] + sums[s, r]


# ----------------------------------------------------------------------
# ABI surface (same signatures as repro.kernels.numpy_tier)
# ----------------------------------------------------------------------
def segment_reduce_rows(rows: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Tier-invariant reduction (see module docstring)."""
    return np.add.reduceat(rows, starts, axis=0)


def segment_sum_rows(data: np.ndarray, seg: np.ndarray, n_seg: int) -> np.ndarray:
    """Tier-invariant reduction (see module docstring)."""
    rank = data.shape[1]
    out = np.zeros((n_seg, rank))
    if data.shape[0]:
        starts = np.flatnonzero(np.diff(seg, prepend=-1))
        sums = np.add.reduceat(data, starts, axis=0)
        out[seg[starts]] = sums
    return out


def scatter_rows_add(out: np.ndarray, idx: np.ndarray, rows: np.ndarray) -> None:
    """Duplicate-safe ``out[idx] += rows``: compiled permute, shared
    reduceat (tier-invariant accumulation order), compiled unique-row
    add-back."""
    if idx.size == 0:
        return
    order = np.argsort(idx, kind="stable")
    sidx = idx[order]
    starts = np.flatnonzero(np.diff(sidx, prepend=-1))
    sums = np.add.reduceat(_permute_rows(rows, order), starts, axis=0)
    _add_rows_at_unique(out, np.ascontiguousarray(sidx[starts]), sums)


def gather_multiply_rows(
    rows: np.ndarray, factor: np.ndarray, idx: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    return _gather_multiply(rows, factor, idx, lo, hi)


def value_gather_rows(
    values: np.ndarray, factor: np.ndarray, idx: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    return _value_gather(values, factor, idx, lo, hi)


def scale_rows_by_values(
    values: np.ndarray, rows: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    return _scale_rows(values, np.ascontiguousarray(rows), lo, hi)


def take_factor_rows(
    factor: np.ndarray, idx: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    return _take_rows(factor, idx, lo, hi)


def repeat_rows(rows: np.ndarray, counts: np.ndarray) -> np.ndarray:
    return _repeat_rows(np.ascontiguousarray(rows), np.ascontiguousarray(counts))
