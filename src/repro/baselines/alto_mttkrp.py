"""ALTO baseline: MTTKRP over the linearized bit-interleaved format.

ALTO (Helal et al., ICS 2021) stores non-zeros as a flat array sorted by a
bit-interleaved linear index (:mod:`repro.tensor.alto`).  Its MTTKRP:

* splits the flat array into perfectly equal non-zero partitions — load
  balance is trivial by construction (the property the paper credits for
  ALTO's wins on vast-2015);
* recomputes every mode *from scratch*: for each non-zero, decode its
  coordinates, gather one factor row per non-contracted mode, multiply,
  and scatter — "the work currently computes all mode contractions from
  scratch, and hence has a significantly higher FLOP count" (Section V);
* needs no per-mode tensor reorganization (a single representation serves
  all modes).

Output conflicts between partitions are handled by per-partition
accumulation merged by the coordinator (standing in for ALTO's recursive
reduction).  Traffic accounting charges the linearized-index decode
(8 or 16 bytes per non-zero per mode pass), the values, the factor-row
gathers for all ``d-1`` non-target modes with the cache rule, and the
output scatter.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compat import resolve_engine_aliases
from ..core.csf_kernels import scatter_add_rows
from ..core.proc_tasks import emit_contrib, merge_counter_state
from ..engines.base import EngineBase, resolve_num_threads
from ..kernels.dispatch import gather_multiply_rows, value_gather_rows
from ..parallel.counters import NULL_COUNTER, ShardedTrafficCounter, TrafficCounter
from ..parallel.executor import SimulatedPool
from ..parallel.machine import MachineSpec
from ..parallel.shm import SharedArena, ShmToken, attach
from ..tensor.alto import AltoTensor
from ..tensor.coo import CooTensor
from ..trace import NULL_TRACER, Tracer

__all__ = ["AltoBackend"]


def _charge_alto_chunk(
    counter: TrafficCounter, n: int, d: int, rank: int, index_words: int,
    decode_bits: int,
) -> None:
    """Per-thread legs of one ALTO partition: index decode, values stream
    and the recompute arithmetic.  Shared by the closure body and the
    process task so every backend charges identically."""
    counter.read(n * index_words, "structure")
    counter.read(n, "values")
    counter.flop(2.0 * (d - 1) * n * rank, "recompute")
    counter.flop(2.0 * decode_bits * n, "decode")


def _alto_mode_task(payload: Dict[str, Any]) -> Tuple[str, int, Any, tuple]:
    """Process-worker body of one ALTO partition's mode-``mode`` MTTKRP:
    identical arithmetic to the closure body, operands read from shared
    memory, contribution returned through the thread's scratch segment."""
    ctx, th, mode = payload["ctx"], payload["th"], payload["mode"]
    vals = attach(ctx["values"])
    coords = [attach(t) for t in ctx["coords"]]
    factors = [attach(t) for t in ctx["factors"]]
    counter = TrafficCounter(
        cache_elements=ctx["cache_elements"], enabled=ctx["enabled"]
    )
    lo, hi = ctx["partitions"][th]
    d = len(coords)
    _charge_alto_chunk(
        counter, hi - lo, d, ctx["rank"], ctx["index_words"], ctx["decode_bits"]
    )
    other = [m for m in range(d) if m != mode]
    acc = value_gather_rows(vals, factors[other[0]], coords[other[0]], lo, hi)
    for m in other[1:]:
        acc = gather_multiply_rows(acc, factors[m], coords[m], lo, hi)
    return emit_contrib(ctx["scratch"][th], lo, acc, counter)


class AltoBackend(EngineBase):
    """ALTO-format MTTKRP backend (recompute-all-modes policy)."""

    name = "alto"

    def __init__(
        self,
        tensor: CooTensor,
        rank: int,
        *,
        machine: Optional[MachineSpec] = None,
        num_threads: Optional[int] = None,
        exec_backend: Optional[str] = None,
        counter: TrafficCounter = NULL_COUNTER,
        tracer: Tracer = NULL_TRACER,
        **removed,
    ) -> None:
        num_threads, exec_backend = resolve_engine_aliases(
            type(self).__name__, num_threads, exec_backend, removed
        )
        self.tensor = tensor
        self.rank = rank
        self.counter = counter
        self.tracer = tracer
        threads = resolve_num_threads(machine, num_threads)
        self.alto = AltoTensor.from_coo(tensor)
        self.pool = SimulatedPool(threads, exec_backend, tracer=tracer)
        self.shards = ShardedTrafficCounter.like(counter, threads)
        self.partitions = self.alto.partitions(threads)
        self.mode_order: Tuple[int, ...] = tuple(range(tensor.ndim))
        # Decoded per-mode coordinates are cached: ALTO decodes with a few
        # bit operations per access; the Python stand-in hoists the decode
        # but charges its traffic per use (see _charge).
        self._coords: List[np.ndarray] = [
            self.alto.mode_indices(m) for m in range(tensor.ndim)
        ]
        # Shared-memory state for the processes backend: the linearized
        # values/coordinates are shared once; factor slots are refreshed
        # in place before every kernel dispatch.
        self._arena: Optional[SharedArena] = None
        self._factor_tokens: Optional[List[ShmToken]] = None
        self._scratch_tokens: List[ShmToken] = []
        self._ro_tokens: Dict[str, Any] = {}
        if self.pool.backend == "processes":
            self._arena = SharedArena()
            self._ro_tokens = {
                "values": self._arena.share(self.alto.values),
                "coords": [self._arena.share(c) for c in self._coords],
            }
            width = max((hi - lo for lo, hi in self.partitions), default=0)
            self._scratch_tokens = [
                self._arena.zeros((max(1, width), rank)) for _ in range(threads)
            ]

    @property
    def num_threads(self) -> int:
        return self.pool.num_threads

    def mttkrp_level(self, factors: Sequence[np.ndarray], level: int) -> np.ndarray:
        """From-scratch MTTKRP for mode ``level`` over equal-nnz chunks."""
        mode = self.mode_order[level]
        attrs = dict(
            level=level,
            mode=int(mode),
            nnz=int(self.tensor.nnz),
            threads=self.num_threads,
        )
        if level == 0:
            span = self.tracer.span(
                "mttkrp.mode0", counter=self.counter, **attrs
            )
        else:
            span = self.tracer.span(
                "mttkrp.mode_level", counter=self.counter, source="recompute",
                **attrs,
            )
        with span:
            return self._mttkrp_level_impl(factors, mode)

    def _mttkrp_level_impl(
        self, factors: Sequence[np.ndarray], mode: int
    ) -> np.ndarray:
        d = self.tensor.ndim
        n_out = self.tensor.shape[mode]
        out = np.zeros((n_out, self.rank))
        vals = self.alto.values
        other = [m for m in range(d) if m != mode]
        self.shards.reset()

        if self._arena is not None:
            ctx = self._proc_ctx(factors)
            results = self.pool.run_tasks(
                _alto_mode_task,
                [
                    {"ctx": ctx, "th": th, "mode": mode}
                    for th in range(self.num_threads)
                ],
            )
            for th, (kind, lo, val, traffic) in enumerate(results):
                merge_counter_state(self.shards.shard(th), traffic)
                acc = (
                    self._arena.array(self._scratch_tokens[th])[:val]
                    if kind == "shm"
                    else val
                )
                hi = lo + acc.shape[0]
                scatter_add_rows(out, self._coords[mode][lo:hi], acc)
        else:

            def body(th: int) -> Tuple[int, np.ndarray]:
                lo, hi = self.partitions[th]
                # Per-thread legs, charged race-free to this thread's
                # shard: the linearized-index decode, the values stream
                # and the recompute arithmetic of this partition.
                _charge_alto_chunk(
                    self.shards.shard(th),
                    hi - lo,
                    d,
                    self.rank,
                    self.alto.index_bits // 64,
                    self.alto.mask.total_bits,
                )
                acc = value_gather_rows(
                    vals, np.asarray(factors[other[0]]),
                    self._coords[other[0]], lo, hi,
                )
                for m in other[1:]:
                    acc = gather_multiply_rows(
                        acc, np.asarray(factors[m]), self._coords[m], lo, hi
                    )
                return lo, acc

            for lo, acc in self.pool.map(body):
                hi = lo + acc.shape[0]
                scatter_add_rows(out, self._coords[mode][lo:hi], acc)

        self.shards.merge_into(self.counter)
        self._charge(mode, factors)
        return out

    def _proc_ctx(self, factors: Sequence[np.ndarray]) -> Dict[str, Any]:
        """Refresh the factor slots and build the shared task context."""
        arena = self._arena
        assert arena is not None
        fs = [np.ascontiguousarray(np.asarray(f)) for f in factors]
        if self._factor_tokens is None or any(
            t.shape != f.shape or np.dtype(t.dtype) != f.dtype
            for t, f in zip(self._factor_tokens, fs)
        ):
            self._factor_tokens = [arena.zeros(f.shape, f.dtype) for f in fs]
        for t, f in zip(self._factor_tokens, fs):
            arena.array(t)[...] = f
        return {
            "values": self._ro_tokens["values"],
            "coords": self._ro_tokens["coords"],
            "factors": self._factor_tokens,
            "scratch": self._scratch_tokens,
            "partitions": self.partitions,
            "rank": self.rank,
            "index_words": self.alto.index_bits // 64,
            "decode_bits": self.alto.mask.total_bits,
            "cache_elements": self.counter.cache_elements,
            "enabled": self.counter.enabled,
        }

    def close(self) -> None:
        """Release the processes backend's shared segments (no-op else)."""
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def _charge(self, mode: int, factors: Sequence[np.ndarray]) -> None:
        """Kernel-level legs (per-thread legs are charged in the thread
        bodies): the cache-rule factor gathers and the output scatter."""
        nnz = self.tensor.nnz
        d = self.tensor.ndim
        for m in range(d):
            if m == mode:
                continue
            self.counter.read_factor_rows(
                nnz, self.tensor.shape[m], self.rank, "factor"
            )
        # Scatter-accumulate into the output (atomics or recursive
        # reduction; charged like the tree methods' conflicted outputs).
        self.counter.scatter_update(
            nnz, self.tensor.shape[mode], self.rank, self.num_threads, "output"
        )

    def level_load_factor(self, level: int) -> float:
        """ALTO's flat equal-nnz split is perfectly balanced by
        construction."""
        if self.tensor.nnz == 0:
            return 1.0
        sizes = [hi - lo for lo, hi in self.partitions]
        mean = sum(sizes) / len(sizes)
        return max(sizes) / mean if mean else 1.0

    def tensor_bytes(self) -> int:
        """ALTO storage footprint."""
        return self.alto.footprint_bytes()

    def describe(self) -> str:
        return f"{self.name}: {self.alto.index_bits}-bit linearized indices"
