"""Fixture: every way to hand ``run_tasks`` an unpicklable/stateful task.

Each violation below must trip ``process-task-safety`` exactly once.
"""

TOTALS = {}


class Coordinator:
    def __init__(self, pool):
        self.pool = pool
        self.state = 0

    def _bound_task(self, payload):
        return payload

    def dispatch_lambda(self, payloads):
        # violation 1: lambda task
        return self.pool.run_tasks(lambda p: p + 1, payloads)

    def dispatch_bound(self, payloads):
        # violation 2: bound-method task
        return self.pool.run_tasks(self._bound_task, payloads)

    def dispatch_nested(self, payloads):
        def nested_task(payload):
            return payload * 2

        # violation 3: nested def task
        return self.pool.run_tasks(nested_task, payloads)

    def dispatch_stateful(self, payloads):
        return self.pool.run_tasks(stateful_task, payloads)


def stateful_task(payload):
    # violation 4: global declaration in a task body
    global TOTALS
    # violation 5: attribute write to module-level state
    stateful_task.calls = payload
    return payload
