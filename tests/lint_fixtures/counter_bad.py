"""Fixture: counter-category violations (never imported, AST-only).

One invented category string, one category that is not a literal.
Both charges run on the coordinator (no thread body), so only the
counter-category rule fires.
"""


def account(counter, kind):
    counter.read(8.0, "fibres")  # not in CANONICAL_TRAFFIC_CATEGORIES
    counter.write(4.0, category=kind)  # not statically auditable
