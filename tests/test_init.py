"""Unit tests for CP factor initialization."""

import numpy as np
import pytest

from repro.cpd import hosvd_init, random_init
from repro.tensor import random_tensor


class TestRandomInit:
    def test_shapes(self):
        fac = random_init((4, 5, 6), rank=3, seed=0)
        assert [f.shape for f in fac] == [(4, 3), (5, 3), (6, 3)]

    def test_deterministic(self):
        a = random_init((4, 5), 2, seed=7)
        b = random_init((4, 5), 2, seed=7)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_range(self):
        fac = random_init((100,), 4, seed=1)
        assert np.all(fac[0] >= 0) and np.all(fac[0] < 1)


class TestHosvdInit:
    def test_shapes(self, coo3):
        fac = hosvd_init(coo3, rank=3, seed=0)
        assert [f.shape for f in fac] == [(n, 3) for n in coo3.shape]

    def test_leading_columns_orthonormal(self):
        t = random_tensor((20, 15, 12), nnz=600, seed=2)
        rank = 3
        fac = hosvd_init(t, rank, seed=0)
        for f in fac:
            g = f[:, :rank].T @ f[:, :rank]
            # svds columns are orthonormal (padding may not be).
            assert np.allclose(np.diag(g), 1.0, atol=1e-6)

    def test_small_mode_padded_with_random(self):
        t = random_tensor((3, 40, 40), nnz=200, seed=3)
        fac = hosvd_init(t, rank=8, seed=0)
        assert fac[0].shape == (3, 8)
        assert np.all(np.isfinite(fac[0]))

    def test_better_than_random_start(self):
        """HOSVD warm start should give a first-iteration fit at least as
        good as a random start on genuinely low-rank data."""
        from repro.cpd import cp_als
        from repro.tensor import low_rank_tensor
        from repro.baselines import SplattAll

        t = low_rank_tensor((15, 12, 10), rank=3, nnz=700, noise=0.01, seed=4)
        r_rand = cp_als(
            t, 3, engine=SplattAll(t, 3), max_iters=3, tol=0, init="random", seed=0
        )
        r_hosvd = cp_als(
            t, 3, engine=SplattAll(t, 3), max_iters=3, tol=0, init="hosvd", seed=0
        )
        assert r_hosvd.fits[0] > r_rand.fits[0] - 0.05
