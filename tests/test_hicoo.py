"""Unit tests for HiCOO blocked storage."""

import numpy as np
import pytest

from repro.tensor import CooTensor, HicooTensor, random_tensor


class TestRoundTrip:
    @pytest.mark.parametrize("bits", [1, 3, 7, 8])
    def test_roundtrip(self, coo4, bits):
        h = HicooTensor.from_coo(coo4, block_bits=bits)
        assert np.allclose(h.to_coo().to_dense(), coo4.to_dense())

    def test_roundtrip_3d_5d(self, coo3, coo5):
        for t in (coo3, coo5):
            h = HicooTensor.from_coo(t, block_bits=4)
            assert np.allclose(h.to_coo().to_dense(), t.to_dense())

    def test_empty(self):
        t = CooTensor.from_arrays(
            np.empty((3, 0), dtype=np.int64), np.empty(0), shape=(8, 8, 8)
        )
        h = HicooTensor.from_coo(t)
        assert h.n_blocks == 0
        assert h.nnz == 0
        assert h.to_coo().nnz == 0

    def test_invalid_bits(self, coo3):
        with pytest.raises(ValueError):
            HicooTensor.from_coo(coo3, block_bits=0)
        with pytest.raises(ValueError):
            HicooTensor.from_coo(coo3, block_bits=9)


class TestStructure:
    def test_offsets_within_block(self, coo4):
        h = HicooTensor.from_coo(coo4, block_bits=3)
        assert h.offsets.max() < 8
        assert h.offsets.dtype == np.uint8

    def test_block_ptr_covers(self, coo4):
        h = HicooTensor.from_coo(coo4, block_bits=3)
        assert h.block_ptr[0] == 0
        assert h.block_ptr[-1] == coo4.nnz
        assert np.all(np.diff(h.block_ptr) >= 1)

    def test_block_count_bounds(self, coo4):
        h = HicooTensor.from_coo(coo4, block_bits=2)
        assert 1 <= h.n_blocks <= coo4.nnz

    def test_bigger_blocks_fewer(self, coo4):
        small = HicooTensor.from_coo(coo4, block_bits=1)
        large = HicooTensor.from_coo(coo4, block_bits=6)
        assert large.n_blocks <= small.n_blocks

    def test_occupancy(self, coo4):
        h = HicooTensor.from_coo(coo4, block_bits=4)
        assert np.isclose(h.average_block_occupancy, coo4.nnz / h.n_blocks)
        assert h.block_histogram().sum() == coo4.nnz

    def test_footprint_smaller_than_coo_for_clustered(self):
        """A fully clustered tensor must compress well: offsets are 1 byte
        vs 8 for raw COO indices."""
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 16, size=(3, 2000)).astype(np.int64)
        t = CooTensor.from_arrays(idx, rng.random(2000), shape=(4096,) * 3)
        h = HicooTensor.from_coo(t, block_bits=4)
        coo_bytes = t.indices.nbytes + t.values.nbytes
        assert h.footprint_bytes() < coo_bytes
