"""Unit tests for TTM / mTTV / MTTV on partially contracted tensors."""

import numpy as np
import pytest

from repro.ops import (
    mttkrp_dense,
    mttv,
    mttv_reduce,
    partial_mttkrp_dense,
    ttm_last_mode,
)
from tests.conftest import make_factors


class TestTtm:
    def test_matches_dense_partial(self, coo4):
        fac = make_factors(coo4.shape, 3, seed=1)
        p = ttm_last_mode(coo4, fac[3], [0, 1, 2, 3])
        assert np.allclose(p.to_dense(), partial_mttkrp_dense(coo4.to_dense(), fac, 2))

    def test_permuted_order(self, coo4):
        fac = make_factors(coo4.shape, 3, seed=2)
        order = [2, 0, 3, 1]
        p = ttm_last_mode(coo4, fac[1], order)
        ref = partial_mttkrp_dense(
            np.transpose(coo4.to_dense(), order),
            [fac[m] for m in order],
            2,
        )
        assert np.allclose(p.to_dense(), ref)

    def test_fiber_count_matches_coo(self, coo4):
        fac = make_factors(coo4.shape, 2, seed=3)
        p = ttm_last_mode(coo4, fac[3], [0, 1, 2, 3])
        assert p.num_fibers == coo4.fiber_count([0, 1, 2, 3], 2)

    def test_incomplete_order_raises(self, coo4):
        fac = make_factors(coo4.shape, 2, seed=3)
        with pytest.raises(ValueError, match="every tensor mode"):
            ttm_last_mode(coo4, fac[2], [0, 1, 2])

    def test_nbytes_positive(self, coo4):
        fac = make_factors(coo4.shape, 2, seed=3)
        p = ttm_last_mode(coo4, fac[3], [0, 1, 2, 3])
        assert p.nbytes() > 0
        assert p.rank == 2


class TestMttv:
    def test_chain_to_p1(self, coo4):
        fac = make_factors(coo4.shape, 3, seed=4)
        p2 = ttm_last_mode(coo4, fac[3], [0, 1, 2, 3])
        p1 = mttv(p2, fac[2])
        assert np.allclose(
            p1.to_dense(), partial_mttkrp_dense(coo4.to_dense(), fac, 1)
        )

    def test_chain_to_p0_equals_mode0_mttkrp(self, coo4):
        fac = make_factors(coo4.shape, 3, seed=5)
        p = ttm_last_mode(coo4, fac[3], [0, 1, 2, 3])
        p = mttv(p, fac[2])
        p = mttv(p, fac[1])
        mode0 = np.zeros((coo4.shape[0], 3))
        mode0[p.indices[0]] = p.data
        assert np.allclose(mode0, mttkrp_dense(coo4.to_dense(), fac, 0))

    def test_single_mode_raises(self, coo4):
        fac = make_factors(coo4.shape, 2, seed=6)
        p = ttm_last_mode(coo4, fac[3], [0, 1, 2, 3])
        p = mttv(p, fac[2])
        p = mttv(p, fac[1])
        with pytest.raises(ValueError, match="two remaining"):
            mttv(p, fac[0])


class TestMttvReduce:
    @pytest.mark.parametrize("target_level", [1, 2])
    def test_matches_mttkrp(self, coo4, target_level):
        """Contracting down to level ``target_level`` and MTTV-reducing
        equals the MTTKRP of the mode stored at that level."""
        fac = make_factors(coo4.shape, 3, seed=7)
        order = [0, 1, 2, 3]
        p = ttm_last_mode(coo4, fac[3], order)
        level = 2
        while level > target_level:
            p = mttv(p, fac[order[level]])
            level -= 1
        out = mttv_reduce(p, [fac[order[i]] for i in range(target_level)])
        assert np.allclose(out, mttkrp_dense(coo4.to_dense(), fac, order[target_level]))

    def test_wrong_factor_count_raises(self, coo4):
        fac = make_factors(coo4.shape, 2, seed=8)
        p = ttm_last_mode(coo4, fac[3], [0, 1, 2, 3])
        with pytest.raises(ValueError, match="leading factors"):
            mttv_reduce(p, [fac[0]])
