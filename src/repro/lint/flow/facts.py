"""Per-function dataflow facts: charge sites, access sites, lifecycle events.

One :class:`FunctionFacts` per analyzed function collects everything the
flow rules need, anchored to CFG statements:

* **charge sites** — calls to the :class:`~repro.parallel.counters.
  TrafficCounter` charge API on counter-ish receivers, with the traffic
  category resolved from the literal argument or the method default;
* **access sites** — ndarray reads/writes that the traffic model must
  account for: subscript *stores* with computed (non-string) indices, and
  subscript *loads* whose index is itself a subscript or call — the
  gather idiom (``vals[ptr[lo]:ptr[hi]]``, ``factors[m][idx]``) that
  moves nnz-scale data.  Constant/slice bookkeeping like ``shape[0]`` is
  deliberately out of scope;
* **lifecycle events** — ``view``/``merge``/``merge_into``/``reset``
  calls on :class:`~repro.parallel.executor.ReplicatedArray`-typed
  locals and ``share``/``zeros``/``array``/``attach``/``close`` on
  :class:`~repro.parallel.shm.SharedArena`-typed locals, feeding the
  typestate machines in :mod:`.typestate`.

Typing is nominal-by-construction: a local is ReplicatedArray/SharedArena
typed when it is assigned from the constructor (resolved through the
module's imports) inside the same function; ``self.x`` attributes
assigned that way in ``__init__`` are tracked class-wide.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..astutils import dotted_name, expr_text, receiver_of
from ..rules.counter_discipline import CATEGORY_ARG_INDEX, _counter_ish
from ..rules.thread_safety import CHARGE_METHODS, UNAMBIGUOUS_CHARGE
from .callgraph import CallGraph, FunctionInfo
from .cfg import CFG, build_cfg

__all__ = ["ChargeSite", "AccessSite", "LifecycleEvent", "FunctionFacts"]

#: Default category per charge method (TrafficCounter signature defaults).
DEFAULT_CATEGORY = {
    "read": "misc",
    "write": "misc",
    "flop": "compute",
    "read_factor_rows": "factor",
    "write_factor_rows": "factor",
    "scatter_update": "output",
}

#: Lifecycle vocabularies for the two typestate machines.
REPLICATED_EVENTS = frozenset({"view", "merge", "merge_into", "reset"})
ARENA_EVENTS = frozenset({"share", "zeros", "array", "attach", "close"})


@dataclass(frozen=True)
class ChargeSite:
    """A direct TrafficCounter charge, anchored at its statement."""

    call: ast.Call
    stmt: ast.stmt
    method: str
    category: Optional[str]  #: literal/default category; None if dynamic


@dataclass(frozen=True)
class AccessSite:
    """An ndarray access the traffic model must cover."""

    node: ast.AST
    stmt: ast.stmt
    kind: str  #: "write" | "read"
    target: str  #: source text of the accessed expression


@dataclass(frozen=True)
class LifecycleEvent:
    """One typestate transition attempt on a tracked object."""

    obj: str  #: the tracked variable ("rep", "self.arena", ...)
    kind: str  #: "replicated" | "arena"
    event: str  #: method name ("view", "close", ...)
    node: ast.Call
    stmt: ast.stmt
    in_with: bool  #: the event sits inside a ``with`` block
    in_finally: bool  #: the event sits inside a ``finally`` suite


class FunctionFacts:
    """All flow facts for one function, computed on demand."""

    def __init__(self, info: FunctionInfo, graph: CallGraph) -> None:
        self.info = info
        self.graph = graph
        self.cfg: CFG = build_cfg(info.node)
        self.charges: List[ChargeSite] = []
        self.accesses: List[AccessSite] = []
        self.lifecycle: List[LifecycleEvent] = []
        #: locals (or self attributes) known to hold tracked objects.
        self.tracked: Dict[str, str] = dict(self._seed_tracked())
        #: subset of ``tracked`` constructed inside *this* function.
        self.constructed: Dict[str, str] = {}
        #: names bound to ``<rep>.view(...)`` results, with binding stmt.
        self.view_bindings: Dict[str, ast.stmt] = {}
        self._collect()

    # ------------------------------------------------------------------
    def _seed_tracked(self) -> Dict[str, str]:
        """Tracked names visible on entry: parameters named like the
        tracked types plus ``self.<attr>`` constructor assignments made in
        the enclosing class's ``__init__``."""
        seeded: Dict[str, str] = {}
        info = self.info
        if info.cls is None:
            return seeded
        init_qname = info.qname.rsplit(".", 1)[0] + ".__init__"
        init = self.graph.functions.get(init_qname)
        if init is None:
            return seeded
        for stmt in ast.walk(init.node):
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            kind = _constructed_kind(stmt.value)
            if (
                kind is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                seeded[f"self.{target.attr}"] = kind
        return seeded

    def _collect(self) -> None:
        body = self.info.node.body if isinstance(self.info.node.body, list) else []
        # Pass 1: local constructor bindings (order-independent; these
        # functions construct before use and the typestate walk is
        # path-sensitive anyway).
        for stmt in body:
            for node in _walk_own(stmt):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    kind = _constructed_kind(node.value)
                    name = dotted_name(target)
                    if kind is not None and name is not None:
                        self.tracked[name] = kind
                        self.constructed[name] = kind
                    if name is not None and _is_view_call(node.value):
                        self.view_bindings[name] = stmt
        # Pass 2: sites and events, statement by statement.
        for stmt in body:
            self._collect_stmt(stmt, in_with=False, in_finally=False)

    # ------------------------------------------------------------------
    def _collect_stmt(self, stmt: ast.stmt, in_with: bool, in_finally: bool) -> None:
        self._scan_exprs(stmt, in_with, in_finally)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for child in stmt.body:
                self._collect_stmt(child, True, in_finally)
            return
        if isinstance(stmt, ast.Try):
            for child in stmt.body:
                self._collect_stmt(child, in_with, in_finally)
            for handler in stmt.handlers:
                for child in handler.body:
                    self._collect_stmt(child, in_with, in_finally)
            for child in stmt.orelse:
                self._collect_stmt(child, in_with, in_finally)
            for child in stmt.finalbody:
                self._collect_stmt(child, in_with, True)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are separate functions in the graph
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._collect_stmt(child, in_with, in_finally)

    def _scan_exprs(self, stmt: ast.stmt, in_with: bool, in_finally: bool) -> None:
        """Record charge/access/lifecycle facts anchored at ``stmt``.

        Scans the statement's own expressions only — nested statements are
        visited with their own anchors, nested function bodies not at all
        (they are separate functions in the graph).
        """
        anchor = _anchor_stmt(stmt)
        for node in _own_exprs(stmt):
            if isinstance(node, ast.Call):
                self._scan_call(node, anchor, in_with, in_finally)
            elif isinstance(node, ast.Subscript):
                self._scan_subscript(node, anchor)

    def _scan_call(
        self, call: ast.Call, stmt: ast.stmt, in_with: bool, in_finally: bool
    ) -> None:
        if not isinstance(call.func, ast.Attribute):
            return
        method = call.func.attr
        recv = receiver_of(call)
        if recv is None:
            return
        recv_name = dotted_name(recv)
        if method in CHARGE_METHODS and (
            method in UNAMBIGUOUS_CHARGE or _counter_ish(recv) or _is_shard_call(recv)
        ):
            self.charges.append(
                ChargeSite(call, stmt, method, _literal_category(call, method))
            )
            return
        tracked_kind = self.tracked.get(recv_name) if recv_name else None
        if tracked_kind == "replicated" and method in REPLICATED_EVENTS:
            self.lifecycle.append(
                LifecycleEvent(recv_name, "replicated", method, call, stmt,
                               in_with, in_finally)
            )
        elif tracked_kind == "arena" and method in ARENA_EVENTS:
            self.lifecycle.append(
                LifecycleEvent(recv_name, "arena", method, call, stmt,
                               in_with, in_finally)
            )

    def _scan_subscript(self, sub: ast.Subscript, stmt: ast.stmt) -> None:
        idx = sub.slice
        if isinstance(idx, ast.Constant):
            return  # tuple unpacking, shape[0], flags["x"] — bookkeeping
        if isinstance(sub.ctx, ast.Store):
            self.accesses.append(
                AccessSite(sub, stmt, "write", expr_text(sub.value))
            )
        elif isinstance(sub.ctx, ast.Load) and isinstance(idx, (ast.Subscript, ast.Call)):
            self.accesses.append(
                AccessSite(sub, stmt, "read", expr_text(sub.value))
            )

    # ------------------------------------------------------------------
    @property
    def charge_nodes(self) -> Set[int]:
        """CFG node ids containing a direct charge."""
        out: Set[int] = set()
        for site in self.charges:
            nid = self.cfg.node_of(site.stmt)
            if nid is not None:
                out.add(nid)
        return out

    def direct_categories(self) -> Set[str]:
        """Categories this function charges directly (dynamic ones map to
        the method default — the runtime would use it if the argument were
        omitted, and the counter-category rule flags non-literals anyway)."""
        out: Set[str] = set()
        for site in self.charges:
            out.add(site.category or DEFAULT_CATEGORY[site.method])
            if site.method == "scatter_update":
                # scatter_update always charges its conflict-arithmetic
                # flop leg under "scatter" besides the named category.
                out.add("scatter")
        return out


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _walk_own(stmt: ast.AST):
    """Walk without descending into nested function/lambda bodies."""
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


def _own_exprs(stmt: ast.stmt):
    """Expressions belonging to ``stmt`` itself — child statements (which
    get their own anchors), nested function bodies, and type annotations
    (``x: Optional[List[T]]`` is not an array access) are skipped."""
    if isinstance(stmt, ast.AnnAssign):
        children: List[ast.AST] = [stmt.target]
        if stmt.value is not None:
            children.append(stmt.value)
    else:
        children = [
            child for child in ast.iter_child_nodes(stmt)
            if not isinstance(child, ast.stmt)
        ]
    stack: List[ast.AST] = children
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, ast.stmt):
                stack.append(child)


def _anchor_stmt(stmt: ast.stmt) -> ast.stmt:
    return stmt


def _literal_category(call: ast.Call, method: str) -> Optional[str]:
    for kw in call.keywords:
        if kw.arg == "category":
            node = kw.value
            break
    else:
        idx = CATEGORY_ARG_INDEX[method]
        node = call.args[idx] if len(call.args) > idx else None
    if node is None:
        return DEFAULT_CATEGORY[method]
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _is_shard_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "shard"
    )


def _is_view_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "view"
    )


def _constructed_kind(value: ast.AST) -> Optional[str]:
    """``ReplicatedArray(...)`` / ``SharedArena(...)`` constructor calls
    (direct name or attribute tail), else ``None``."""
    if not isinstance(value, ast.Call):
        return None
    name = dotted_name(value.func)
    if name is None:
        return None
    tail = name.rsplit(".", 1)[-1]
    if tail == "ReplicatedArray":
        return "replicated"
    if tail == "SharedArena":
        return "arena"
    return None
