"""``flow.buffer-typestate`` / ``flow.arena-typestate`` — lifecycle machines.

The static complement of the ``REPRO_SANITIZE=1`` runtime sanitizer
(DESIGN.md §8): two per-object state machines, run as a forward dataflow
over each function's CFG so out-of-order transitions are caught on *any*
path, not just the straight-line one.

**ReplicatedArray** (``flow.buffer-typestate``)::

    unknown ──view──▶ viewed ──merge/merge_into──▶ merged
       ▲                                             │
       └──────────────── reset ◀─────────────────────┘

* ``view()`` while possibly ``merged`` — stale thread stripes: the merge
  already folded the replicas, so new views alias dirty data until
  ``reset()`` (the double-merge bug the runtime sanitizer traps);
* ``merge()`` while possibly ``merged`` — double merge without reset;
* a coordinator-held ``.view(...)`` binding referenced inside a
  ``pool.map``/``run_partitioned`` task closure — a thread-private window
  escaping to other threads.

**SharedArena** (``flow.arena-typestate``)::

    unknown/open ──close──▶ closed  (share/zeros/array/attach keep "open")

* ``share``/``zeros``/``array``/``attach`` while possibly ``closed`` —
  use-after-close unmaps segments under concurrent readers;
* ``close()`` on an arena *constructed in the same function* outside any
  ``with``/``finally`` — an exception between construct and close leaks
  the segments until the GC finalizer backstop fires (engine ``close()``
  methods releasing long-lived ``self`` arenas are exempt: their
  lifetime is the engine's, not a lexical region's).

Both machines start at ``unknown`` (methods may receive objects mid-life
from ``__init__``), so only *provably* out-of-order sequences fire.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..astutils import find_thread_bodies, local_names
from ..framework import Finding, ProjectContext, Rule, register
from .cfg import ENTRY
from .facts import FunctionFacts, LifecycleEvent

__all__ = ["BufferTypestateRule", "ArenaTypestateRule"]

_ARENA_USE = frozenset({"share", "zeros", "array", "attach"})


def _run_machine(
    facts: FunctionFacts, kind: str
) -> List[Tuple[LifecycleEvent, str]]:
    """Forward may-analysis of one machine over the CFG.

    Returns ``(event, error)`` pairs; ``error`` names the bad transition
    observed on at least one path reaching the event.
    """
    events = [e for e in facts.lifecycle if e.kind == kind]
    if not events:
        return []
    by_node: Dict[int, List[LifecycleEvent]] = {}
    for ev in events:
        nid = facts.cfg.node_of(ev.stmt)
        if nid is not None:
            by_node.setdefault(nid, []).append(ev)
    for evs in by_node.values():
        evs.sort(key=lambda e: (e.node.lineno, e.node.col_offset))

    variables = sorted({e.obj for e in events})
    initial: Dict[str, FrozenSet[str]] = {v: frozenset({"unknown"}) for v in variables}
    errors: Dict[Tuple[str, int], Tuple[LifecycleEvent, str]] = {}

    def apply(
        state: Dict[str, FrozenSet[str]], nid: int
    ) -> Dict[str, FrozenSet[str]]:
        out = dict(state)
        for ev in by_node.get(nid, ()):  # in source order within the stmt
            current = out.get(ev.obj, frozenset({"unknown"}))
            error = _bad_transition(kind, ev.event, current)
            if error is not None:
                errors.setdefault((ev.obj, id(ev.node)), (ev, error))
            out[ev.obj] = frozenset({_next_state(kind, ev.event)})
        return out

    # Worklist fixpoint: entry states per node, join = per-variable union.
    in_states: Dict[int, Dict[str, FrozenSet[str]]] = {ENTRY: initial}
    work = [ENTRY]
    while work:
        nid = work.pop()
        out = apply(in_states.get(nid, initial), nid)
        for succ in facts.cfg.succ.get(nid, ()):  # noqa: B007
            prev = in_states.get(succ)
            if prev is None:
                merged = dict(out)
            else:
                merged = {
                    v: prev.get(v, frozenset()) | out.get(v, frozenset())
                    for v in variables
                }
            if merged != prev:
                in_states[succ] = merged
                work.append(succ)
    return list(errors.values())


def _bad_transition(kind: str, event: str, states: FrozenSet[str]) -> Optional[str]:
    if kind == "replicated":
        if event == "view" and "merged" in states:
            return (
                "view() after merge() without an intervening reset(): the "
                "replicas were already folded, so this view aliases stale "
                "stripes (double-merge corruption)"
            )
        if event in ("merge", "merge_into") and "merged" in states:
            return (
                "second merge without reset(): replica stripes are folded "
                "twice into the base array"
            )
    elif kind == "arena":
        if event in _ARENA_USE and "closed" in states:
            return (
                "arena used after close(): the shared segments are already "
                "unlinked on this path"
            )
    return None


def _next_state(kind: str, event: str) -> str:
    if kind == "replicated":
        return {"view": "viewed", "merge": "merged",
                "merge_into": "merged", "reset": "fresh"}[event]
    return "closed" if event == "close" else "open"


@register
class BufferTypestateRule(Rule):
    id = "flow.buffer-typestate"
    description = (
        "ReplicatedArray lifecycle: reset → view → merge in order, and "
        "views must not escape into task closures"
    )
    paper_ref = "DESIGN.md §8 (replicated-output merge discipline)"
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = project.analysis
        seen_bodies: Set[int] = set()
        for qname, info in analysis.graph.functions.items():
            facts = analysis.facts(qname)
            for ev, error in _run_machine(facts, "replicated"):
                yield info.ctx.finding(
                    self.id, ev.node, f"`{ev.obj}.{ev.event}()`: {error}"
                )
            yield from self._check_escapes(info, facts, seen_bodies)

    def _check_escapes(
        self, info, facts: FunctionFacts, seen: Set[int]
    ) -> Iterator[Finding]:
        if not facts.view_bindings:
            return
        for body_fn in find_thread_bodies(info.node):
            if id(body_fn) in seen:
                continue
            seen.add(id(body_fn))
            body_locals = local_names(body_fn)
            body = body_fn.body if isinstance(body_fn.body, list) else [body_fn.body]
            for stmt in body:
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Load)
                        and node.id in facts.view_bindings
                        and node.id not in body_locals
                    ):
                        yield info.ctx.finding(
                            self.id,
                            node,
                            f"coordinator-held view `{node.id}` escapes into a "
                            "task closure: thread-private windows must be "
                            "taken inside the body via `.view(th, ...)`, "
                            "never captured from the dispatching scope",
                        )


@register
class ArenaTypestateRule(Rule):
    id = "flow.arena-typestate"
    description = (
        "SharedArena lifecycle: no use after close(), and same-function "
        "arenas release under with/finally"
    )
    paper_ref = "DESIGN.md §10 (shared-memory processes backend)"
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = project.analysis
        for qname, info in analysis.graph.functions.items():
            facts = analysis.facts(qname)
            for ev, error in _run_machine(facts, "arena"):
                yield info.ctx.finding(
                    self.id, ev.node, f"`{ev.obj}.{ev.event}()`: {error}"
                )
            for ev in facts.lifecycle:
                if (
                    ev.kind == "arena"
                    and ev.event == "close"
                    and facts.constructed.get(ev.obj) == "arena"
                    and not (ev.in_with or ev.in_finally)
                ):
                    yield info.ctx.finding(
                        self.id,
                        ev.node,
                        f"`{ev.obj}.close()` is not protected by a context "
                        "manager: an exception between the arena's "
                        "construction and this call leaks its shared "
                        "segments; use `try/finally` or contextlib.closing",
                    )
