"""``engine-protocol`` — structural conformance of MTTKRP engine classes.

Every engine registered in :mod:`repro.engines` must inherit
:class:`~repro.engines.base.EngineBase` (directly or through another
engine) so the whole fleet shares one lifecycle: context-manager
``close()`` semantics, the generic ``iteration_results`` loop, and the
``per_thread_traffic`` observability channel.  The factory enforces this
at registration time, but only for classes that actually pass through
``register_engine`` — a *new* engine written as a bare class works fine
under direct construction and then explodes the first time someone puts
it behind ``create_engine`` or a ``with`` block.

This rule catches the drift statically: any class that *looks like* an
engine — it defines a ``mttkrp_level`` method **and** a class-level
literal ``name = "..."`` attribute (the registry-name convention every
engine follows) — must list at least one base class.  A base-less engine
class is exactly the pre-registry shape this repository migrated away
from; inheriting any base keeps the check honest across files (``Stef2``
inherits ``Stef``, which the rule verifies in its own module against
``EngineBase`` directly).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..framework import FileContext, Finding, Rule, register


def _class_literal_name(node: ast.ClassDef) -> Optional[str]:
    """The class-level ``name = "<literal>"`` value, if present."""
    for stmt in node.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "name":
                value = stmt.value
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    return value.value
    return None


def _has_method(node: ast.ClassDef, method: str) -> bool:
    return any(
        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        and stmt.name == method
        for stmt in node.body
    )


def _meaningful_bases(node: ast.ClassDef) -> list:
    """Base classes other than the implicit/explicit ``object``."""
    return [
        b
        for b in node.bases
        if not (isinstance(b, ast.Name) and b.id == "object")
    ]


@register
class EngineProtocolRule(Rule):
    id = "engine-protocol"
    description = (
        "classes with a literal `name` attribute and a mttkrp_level() "
        "method are MTTKRP engines and must inherit EngineBase "
        "(directly or via another engine)"
    )
    paper_ref = "repro.engines (unified engine registry)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            engine_name = _class_literal_name(node)
            if engine_name is None or not _has_method(node, "mttkrp_level"):
                continue
            if node.name == "EngineBase":
                continue
            if not _meaningful_bases(node):
                yield ctx.finding(
                    self.id,
                    node,
                    f"engine class `{node.name}` (name={engine_name!r}) "
                    "has no base class: inherit "
                    "repro.engines.base.EngineBase (or another engine) so "
                    "it gets the shared context-manager lifecycle, "
                    "iteration_results, and per_thread_traffic defaults — "
                    "register_engine() rejects bare classes",
                )


__all__ = ["EngineProtocolRule"]
