"""pytest configuration for the benchmark suite."""

import sys
import os

# Make `from common import ...` work when pytest is invoked from the repo
# root (benchmarks/ is not a package on purpose: pytest-benchmark files
# are scripts, not library code).
sys.path.insert(0, os.path.dirname(__file__))
