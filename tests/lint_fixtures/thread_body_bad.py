"""Fixture: thread-body-safety violations (never imported, AST-only).

The body below commits the three sins the rule polices: charging a
shared counter, running coordinator lifecycle from a thread, and writing
closure/instance state.
"""


def run(pool, counter, rep, state):
    def body(th):
        counter.read(8.0, "structure")  # shared-counter charge
        rep.merge()  # coordinator-only lifecycle
        state.total = th  # closure attribute store
        return th

    return pool.map(body)
