#!/usr/bin/env python
"""Domain scenario: temporal pattern mining on the chicago-crime tensor.

The chicago-crime-comm tensor (area x hour-of-day x crime-type x year) is
one of the paper's evaluation datasets.  A CP decomposition of it yields
interpretable components: each rank-one factor couples a set of community
areas with a time-of-day profile and a crime-type profile.

This example runs on the scaled synthetic stand-in (the generator keeps
the 24-long hour mode exact), decomposes at rank 8, and reports:

* which hours dominate each component (the hour factor column),
* the model-chosen memoization configuration and its space cost,
* the R=32 vs R=64 cache effect the paper calls out for this tensor
  (the factor matrix fits in cache at the lower rank only).

Run:  python examples/chicago_crime_analysis.py
"""

import numpy as np

from repro import TABLE1_SPECS, cp_als, create_engine, generate
from repro.core import DataMovementModel, TensorStats
from repro.parallel import INTEL_CLX_18
from repro.tensor import CsfTensor


def main() -> None:
    spec = TABLE1_SPECS["chicago-crime-comm"]
    tensor = generate(spec, nnz=30_000, seed=7)
    print(f"chicago-crime-comm (scaled): shape={tensor.shape} nnz={tensor.nnz}")
    print(f"pathology: {spec.pathology}")

    rank = 8
    with create_engine(
        "stef", tensor, rank, machine=INTEL_CLX_18, num_threads=8
    ) as engine:
        print("\nplanner:", engine.describe())
        result = cp_als(tensor, rank, engine=engine, max_iters=15, tol=1e-4)
    print(f"fit after {result.iterations} iterations: {result.final_fit:.4f}")

    # The hour-of-day mode is mode 1 (length 24, kept exact by the
    # generator).  Top hours per component:
    hour_factor = result.model.factors[1]
    print("\ndominant hours per component:")
    for r in range(rank):
        top = np.argsort(-np.abs(hour_factor[:, r]))[:3]
        weights = ", ".join(f"{h:02d}:00" for h in sorted(top))
        print(f"  component {r}: {weights}")

    # The paper's cache observation: for chicago-crime at R=32 the longest
    # factor matrix is effectively cache-resident on the Intel machine but
    # at R=64 it is not -> a sharp slowdown in Fig. 3.  The flip at
    # N=6186 rows implies an *effective* capacity of 1.6-3.2 MB — 18
    # threads competing for the 24.75 MB L3 leave each working set far
    # less than the full cache; we use L3/9 as that effective share.
    csf = CsfTensor.from_coo(tensor)
    stats = TensorStats.from_csf(csf)
    print("\ncache effect (Section VI-B):")
    scale = (tensor.nnz / spec.paper_nnz) ** (1.0 / tensor.ndim)
    machine = INTEL_CLX_18.with_cache_scale(scale / 9.0)
    for r in (32, 64):
        model = DataMovementModel(stats, r, machine)
        longest = max(range(tensor.ndim), key=lambda lv: stats.level_lengths[lv])
        footprint = stats.level_lengths[longest] * r
        resident = footprint <= machine.cache_elements
        print(
            f"  R={r}: longest factor {footprint} elements, "
            f"effective cache {machine.cache_elements} -> "
            f"{'resident' if resident else 'STREAMS (sharp slowdown case)'}"
        )


if __name__ == "__main__":
    main()
