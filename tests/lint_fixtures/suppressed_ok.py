"""Fixture: a real violation silenced by a line suppression.

Linting this file must exit 0 with exactly one suppressed finding.
"""


def run(pool, counter):
    def body(th):
        counter.flop(1.0)  # lint: disable=thread-body-safety
        return th

    return pool.map(body)
