"""Per-mode cost profiling.

Where :mod:`repro.analysis.experiments` collects one aggregate per level,
this module keeps the full *category* breakdown (structure / factor /
memo / output / scatter-flops ...) per MTTKRP — the view used when
diagnosing why one method loses on one tensor (e.g. "STeF's leaf mode is
all output-scatter traffic" is literally a row here).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cpd.init import random_init
from ..engines import create_engine
from ..parallel.counters import TrafficCounter
from ..parallel.machine import MachineSpec
from ..tensor.coo import CooTensor
from ..trace import NULL_TRACER, Tracer
from .experiments import scale_for_tensor

__all__ = ["LevelProfile", "MethodProfile", "profile_method"]


@dataclass(frozen=True)
class LevelProfile:
    """One MTTKRP's costs, broken down by counter category."""

    level: int
    mode: int
    categories: Dict[str, float]
    traffic: float
    flops: float
    load_factor: float
    seconds: float
    wall_seconds: float

    def dominant_category(self) -> str:
        """The largest traffic category (diagnosis shortcut)."""
        tr = {k: v for k, v in self.categories.items() if not k.startswith("f:")}
        if not tr:
            return "-"
        return max(tr, key=tr.get)


@dataclass
class MethodProfile:
    """A full MTTKRP-set profile for one method on one tensor."""

    method: str
    tensor_name: str
    rank: int
    machine: str
    levels: List[LevelProfile] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(lv.seconds for lv in self.levels)

    def bottleneck_level(self) -> LevelProfile:
        """The most expensive MTTKRP of the set."""
        return max(self.levels, key=lambda lv: lv.seconds)

    def format(self) -> str:
        """Fixed-width profile table."""
        lines = [
            f"{self.method} on {self.tensor_name} "
            f"(R={self.rank}, {self.machine})",
            f"{'lvl':>4}{'mode':>5}{'traffic':>12}{'flops':>12}"
            f"{'load':>7}{'sim us':>10}{'wall ms':>10}  dominant",
        ]
        for lv in self.levels:
            lines.append(
                f"{lv.level:>4}{lv.mode:>5}{lv.traffic:>12.0f}"
                f"{lv.flops:>12.0f}{lv.load_factor:>7.2f}"
                f"{lv.seconds * 1e6:>10.1f}{lv.wall_seconds * 1e3:>10.2f}"
                f"  {lv.dominant_category()}"
            )
        bott = self.bottleneck_level()
        lines.append(
            f"bottleneck: level {bott.level} (mode {bott.mode}), "
            f"{100 * bott.seconds / max(self.total_seconds, 1e-30):.0f}% of the set"
        )
        return "\n".join(lines)

    @classmethod
    def from_trace(
        cls,
        tracer: Tracer,
        *,
        method: str = "?",
        tensor_name: str = "?",
        rank: int = 0,
        machine: str = "trace",
    ) -> "MethodProfile":
        """Reconstruct a per-level profile from a recorded trace.

        Every kernel span (``mttkrp.mode0`` / ``mttkrp.mode_level``)
        becomes one :class:`LevelProfile` row, in execution order, with
        the span's traffic delta supplying the category breakdown.  A
        trace has no roofline model, so ``seconds`` is the span's wall
        time and ``load_factor`` is 1.0; the traffic/flops/category
        columns are exact (the deltas tile the counter totals).
        """
        profile = cls(
            method=method, tensor_name=tensor_name, rank=rank, machine=machine
        )
        for rec in tracer.kernel_spans():
            traffic = rec.traffic or {}
            cats = dict(traffic.get("by_category", {}))
            profile.levels.append(
                LevelProfile(
                    level=int(rec.attrs.get("level", len(profile.levels))),
                    mode=int(rec.attrs.get("mode", -1)),
                    categories=cats,
                    traffic=float(traffic.get("reads", 0.0))
                    + float(traffic.get("writes", 0.0)),
                    flops=float(traffic.get("flops", 0.0)),
                    load_factor=1.0,
                    seconds=rec.seconds,
                    wall_seconds=rec.seconds,
                )
            )
        return profile


def profile_method(
    method: str,
    tensor: CooTensor,
    rank: int,
    machine: MachineSpec,
    *,
    num_threads: Optional[int] = None,
    tensor_name: str = "?",
    seed: int = 0,
    exec_backend: str = "serial",
    tracer: Tracer = NULL_TRACER,
) -> MethodProfile:
    """Run one MTTKRP set and capture per-level category breakdowns.

    ``exec_backend`` selects the simulated pool's execution mode
    (``"serial"``, ``"threads"``, or ``"processes"``); the per-thread
    counter sharding makes the profile identical across all three.
    ``tracer`` records the set's kernel and per-thread spans (the CLI's
    ``profile --trace-chrome`` path).
    """
    cache_scale = scale_for_tensor(tensor, tensor_name)
    machine_eff = machine.with_cache_scale(cache_scale)
    counter = TrafficCounter(cache_elements=machine_eff.cache_elements)
    threads = num_threads if num_threads is not None else machine.num_threads
    factors = random_init(tensor.shape, rank, seed)
    profile = MethodProfile(
        method=method, tensor_name=tensor_name, rank=rank, machine=machine.name
    )
    prev_cats: Dict[str, float] = {}
    prev_total, prev_flops = 0.0, 0.0
    with create_engine(
        method, tensor, rank, machine=machine_eff, num_threads=threads,
        counter=counter, exec_backend=exec_backend, tracer=tracer,
    ) as backend:
        for level in range(tensor.ndim):
            t0 = time.perf_counter()
            backend.mttkrp_level(factors, level)
            wall = time.perf_counter() - t0
            cats: Dict[str, float] = {}
            for k, v in counter.by_category.items():
                delta = v - prev_cats.get(k, 0.0)
                if delta < 0:
                    # Counters only ever accumulate; a shrinking category
                    # means the counter was corrupted (lost updates, an
                    # unexpected reset) and the profile is untrustworthy.
                    raise RuntimeError(
                        f"negative traffic delta for category {k!r} at level "
                        f"{level} of {method!r} ({delta:g}): counter corruption"
                    )
                if delta > 0:
                    cats[k] = delta
            traffic = counter.total - prev_total
            flops = counter.flops - prev_flops
            if traffic < 0 or flops < 0:
                raise RuntimeError(
                    f"negative traffic/flop delta at level {level} of "
                    f"{method!r} (traffic {traffic:g}, flops {flops:g}): "
                    "counter corruption"
                )
            load = backend.level_load_factor(level)
            profile.levels.append(
                LevelProfile(
                    level=level,
                    mode=backend.mode_order[level],
                    categories=cats,
                    traffic=traffic,
                    flops=flops,
                    load_factor=load,
                    seconds=machine_eff.roofline_seconds(traffic, flops, threads)
                    * load,
                    wall_seconds=wall,
                )
            )
            prev_cats = dict(counter.by_category)
            prev_total, prev_flops = counter.total, counter.flops
    return profile
