"""Tests for work-schedule diagnostics (Section II-D / III-A stats)."""

import pytest

from repro.core import build_schedule
from repro.tensor import CsfTensor, TABLE1_SPECS, generate


class TestBuildSchedule:
    def test_nnz_schedule_balanced(self, csf4):
        ws = build_schedule(csf4, 5, "nnz")
        assert ws.num_threads == 5
        assert ws.active_threads == 5
        assert ws.imbalance_percent < 5.0
        assert ws.max_over_mean < 1.05

    def test_slice_schedule_no_replication(self, csf4):
        ws = build_schedule(csf4, 4, "slice")
        assert ws.replicated_rows == 0

    def test_nnz_replication_bounded(self, csf4):
        ws = build_schedule(csf4, 6, "nnz")
        # At most T shared nodes per internal level (Section II-D).
        for level in ws.shared_nodes_per_level:
            assert len(level) <= 6

    def test_unknown_strategy_raises(self, csf4):
        with pytest.raises(ValueError):
            build_schedule(csf4, 2, "random")


class TestVastPathology:
    """The Section II-D narrative: 2 root slices, ~1674% imbalance."""

    @pytest.fixture(scope="class")
    def vast_csf(self):
        t = generate(TABLE1_SPECS["vast-2015-mc1-3d"], nnz=20_000, seed=0)
        return CsfTensor.from_coo(t)

    def test_slice_uses_two_threads(self, vast_csf):
        ws = build_schedule(vast_csf, 8, "slice")
        assert ws.active_threads <= 2

    def test_slice_imbalance_large(self, vast_csf):
        ws = build_schedule(vast_csf, 2, "slice")
        # Paper: 1674%.  The generator targets a 947/53 split -> ~1690%.
        assert ws.imbalance_percent > 800

    def test_nnz_fixes_both(self, vast_csf):
        ws = build_schedule(vast_csf, 8, "nnz")
        assert ws.active_threads == 8
        assert ws.imbalance_percent < 5

    def test_stretch_ratio(self, vast_csf):
        from repro.analysis import compare_strategies

        cmp = compare_strategies(vast_csf, 8)
        assert cmp.stretch_ratio() > 3  # slice is several x worse
        rows = cmp.summary_rows()
        assert rows["slice"]["active_threads"] <= 2
        assert rows["nnz"]["active_threads"] == 8
