"""Sparse tensor storage substrate: COO, CSF, ALTO, HiCOO, I/O, generators."""

from .coo import CooTensor
from .csf import CsfTensor, default_mode_order
from .alto import AltoMask, AltoTensor, bits_for_mode
from .hicoo import HicooTensor
from .io import read_tns, write_tns
from .toolbox import (
    add,
    extract_slice,
    frobenius_distance,
    hadamard_product,
    mode_marginals,
    subtract,
    top_slices,
)
from .validate import (
    ValidationError,
    check_alto,
    check_coo,
    check_csf,
    check_hicoo,
    validate_alto,
    validate_coo,
    validate_csf,
    validate_hicoo,
)
from .synthetic import (
    TABLE1_SPECS,
    TensorSpec,
    generate,
    load_or_generate,
    low_rank_tensor,
    random_tensor,
)

__all__ = [
    "CooTensor",
    "CsfTensor",
    "default_mode_order",
    "AltoMask",
    "AltoTensor",
    "bits_for_mode",
    "HicooTensor",
    "ValidationError",
    "check_alto",
    "check_coo",
    "check_csf",
    "check_hicoo",
    "validate_alto",
    "validate_coo",
    "validate_csf",
    "validate_hicoo",
    "read_tns",
    "write_tns",
    "add",
    "subtract",
    "hadamard_product",
    "frobenius_distance",
    "mode_marginals",
    "extract_slice",
    "top_slices",
    "TABLE1_SPECS",
    "TensorSpec",
    "generate",
    "load_or_generate",
    "low_rank_tensor",
    "random_tensor",
]
