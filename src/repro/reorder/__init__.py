"""Index reordering: Lexi-Order relabeling and controls."""

from .lexi import Relabeling, apply_relabeling, lexi_order, random_relabel

__all__ = ["Relabeling", "apply_relabeling", "lexi_order", "random_relabel"]
