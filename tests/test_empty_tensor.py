"""Degenerate input: the all-zero (empty) sparse tensor through every
layer — nothing should crash, everything should return zeros."""

import numpy as np
import pytest

from repro.baselines import ALL_BACKENDS
from repro.core import MemoPlan, MemoizedMttkrp, Stef, plan_decomposition
from repro.parallel import nnz_partition, slice_partition
from repro.tensor import CooTensor, CsfTensor
from tests.conftest import make_factors


@pytest.fixture
def empty4():
    return CooTensor.from_arrays(
        np.empty((4, 0), dtype=np.int64), np.empty(0), shape=(6, 5, 4, 3)
    )


class TestEmptyThroughStack:
    def test_csf(self, empty4):
        csf = CsfTensor.from_coo(empty4)
        assert csf.nnz == 0
        assert csf.fiber_counts == (0, 0, 0, 0)

    def test_partitions(self, empty4):
        csf = CsfTensor.from_coo(empty4)
        for part in (nnz_partition(csf, 4), slice_partition(csf, 4)):
            assert part.per_thread_leaf_counts().sum() == 0

    def test_engine_returns_zeros(self, empty4):
        csf = CsfTensor.from_coo(empty4)
        fac = make_factors(empty4.shape, 3, seed=0)
        engine = MemoizedMttkrp(csf, 3, plan=MemoPlan((1,)), num_threads=3)
        for mode, res in engine.iteration_results(fac):
            assert np.allclose(res, 0.0)
            assert res.shape == (empty4.shape[mode], 3)

    def test_planner(self, empty4):
        csf = CsfTensor.from_coo(empty4)
        decision = plan_decomposition(csf, 8)
        assert decision.best is not None

    def test_stef_facade(self, empty4):
        fac = make_factors(empty4.shape, 2, seed=1)
        s = Stef(empty4, 2, num_threads=2)
        for mode, res in s.iteration_results(fac):
            assert np.allclose(res, 0.0)

    @pytest.mark.parametrize(
        "name", [n for n in sorted(ALL_BACKENDS) if n != "taco"]
    )
    def test_backends_handle_empty(self, empty4, name):
        fac = make_factors(empty4.shape, 2, seed=2)
        b = ALL_BACKENDS[name](empty4, 2, num_threads=2)
        for lvl in range(empty4.ndim):
            res = b.mttkrp_level(fac, lvl)
            assert np.allclose(res, 0.0)

    def test_taco_without_autotune(self, empty4):
        # The autotuner probes a kernel; with zero slices its timing loop
        # still works, but construct without it for determinism.
        from repro.baselines import TacoBackend

        fac = make_factors(empty4.shape, 2, seed=3)
        b = TacoBackend(empty4, 2, num_threads=2, autotune=False)
        for lvl in range(empty4.ndim):
            assert np.allclose(b.mttkrp_level(fac, lvl), 0.0)

    def test_als_on_empty(self, empty4):
        from repro.cpd import cp_als

        res = cp_als(empty4, 2, engine=Stef(empty4, 2), max_iters=2, tol=0)
        assert res.fits == [1.0, 1.0]  # zero tensor: fit defined as 1
