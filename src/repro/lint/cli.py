"""Command-line front end: ``python -m repro.lint`` and ``repro lint``.

Usage::

    python -m repro.lint src/                 # per-file rules, text report
    python -m repro.lint --flow src/          # + interprocedural analyses
    python -m repro.lint --format json src/   # machine-readable
    python -m repro.lint --format sarif --flow src/ > lint.sarif
    python -m repro.lint --select hot-path,dtype-discipline src/repro/ops
    python -m repro.lint --flow --ignore flow.jit-readiness src/
    python -m repro.lint --flow --baseline my-debt.json src/
    python -m repro.lint --list-rules

Exit codes: 0 clean (baselined findings count as clean), 1 findings,
2 unparseable input or bad usage.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, List, Optional

from .baseline import apply_baseline, load_baseline, write_baseline
from .framework import (
    EXIT_CLEAN,
    EXIT_ERROR,
    all_rules,
    format_json,
    format_text,
    run_lint,
)
from .sarif import format_sarif

__all__ = ["add_arguments", "execute", "main"]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options on ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULE[,RULE...]",
        help="run only these rules (default: all registered rules)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULE[,RULE...]",
        help="drop these rules from the run (applies after --select)",
    )
    parser.add_argument(
        "--flow", action="store_true",
        help="also run the interprocedural flow analyses (repro.lint.flow)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file of known findings; covered findings are "
             "reported as baselined and do not fail the run",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline with the current findings and exit clean",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )


def _print_rules(out: IO[str]) -> int:
    for rule in all_rules():
        scope = " (project-scope, runs under --flow)" if rule.scope == "project" else ""
        print(f"{rule.id}{scope}", file=out)
        print(f"    {rule.description}", file=out)
        if rule.paper_ref:
            print(f"    derives from: {rule.paper_ref}", file=out)
    return EXIT_CLEAN


def _split(raw: Optional[str]) -> Optional[List[str]]:
    if not raw:
        return None
    return [r.strip() for r in raw.split(",") if r.strip()]


def execute(args: argparse.Namespace, out: Optional[IO[str]] = None) -> int:
    """Run the lint described by parsed ``args``; returns the exit code."""
    out = out if out is not None else sys.stdout
    if args.list_rules:
        return _print_rules(out)
    if args.update_baseline and not args.baseline:
        print("error: --update-baseline requires --baseline FILE", file=out)
        return EXIT_ERROR
    try:
        report = run_lint(
            args.paths or ["src"],
            select=_split(args.select),
            ignore=_split(args.ignore),
            flow=args.flow,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=out)
        return EXIT_ERROR
    if args.baseline:
        baseline_path = Path(args.baseline)
        if args.update_baseline:
            write_baseline(report, baseline_path)
            print(
                f"baseline updated: {len(report.findings)} finding(s) "
                f"recorded in {baseline_path}",
                file=out,
            )
            return EXIT_CLEAN if not report.errors else EXIT_ERROR
        apply_baseline(report, load_baseline(baseline_path))
    formatter = {
        "json": format_json,
        "sarif": format_sarif,
    }.get(args.format, format_text)
    print(formatter(report), file=out)
    return report.exit_code


def main(argv: Optional[List[str]] = None, out: Optional[IO[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "AST + interprocedural-dataflow analyzer for the repo's kernel "
            "invariants: thread-body safety, traffic conformance, "
            "buffer/arena typestate, hot-path performance, dtype "
            "discipline, JIT readiness"
        ),
    )
    add_arguments(parser)
    return execute(parser.parse_args(argv), out)
