"""Tests for the Monte-Carlo fit estimator."""

import numpy as np
import pytest

from repro.cpd import KruskalTensor
from repro.tensor import low_rank_tensor, random_tensor


def model_for(shape, rank, seed):
    rng = np.random.default_rng(seed)
    return KruskalTensor(
        rng.random(rank) + 0.5,
        [rng.standard_normal((n, rank)) for n in shape],
    )


class TestFitEstimate:
    def test_converges_to_exact_fit(self):
        t = random_tensor((15, 12, 10), nnz=200, seed=1)
        kt = model_for(t.shape, 2, seed=2)
        exact = kt.fit(t)
        est, err = kt.fit_estimate(t, n_samples=60_000, seed=3)
        assert abs(est - exact) < max(5 * err, 0.05)

    def test_stderr_shrinks_with_samples(self):
        t = random_tensor((20, 18, 16), nnz=150, seed=4)
        kt = model_for(t.shape, 2, seed=5)
        _, err_small = kt.fit_estimate(t, n_samples=500, seed=6)
        _, err_big = kt.fit_estimate(t, n_samples=50_000, seed=6)
        assert err_big < err_small

    def test_deterministic_per_seed(self):
        t = random_tensor((10, 9, 8), nnz=100, seed=7)
        kt = model_for(t.shape, 2, seed=8)
        a = kt.fit_estimate(t, n_samples=1000, seed=9)
        b = kt.fit_estimate(t, n_samples=1000, seed=9)
        assert a == b

    def test_zero_tensor(self):
        from repro.tensor import CooTensor

        t = CooTensor.from_arrays(
            np.empty((3, 0), dtype=np.int64), np.empty(0), shape=(5, 5, 5)
        )
        kt = model_for((5, 5, 5), 1, seed=10)
        fit, err = kt.fit_estimate(t)
        assert fit == 1.0 and err == 0.0

    def test_zero_samples_is_observed_only(self):
        t = random_tensor((8, 7, 6), nnz=80, seed=11)
        kt = model_for(t.shape, 2, seed=12)
        fit, err = kt.fit_estimate(t, n_samples=0)
        assert err == 0.0
        assert np.isclose(fit, kt.fit_observed(t))

    def test_hypersparse_regime_finite(self):
        """Large dense size relative to nnz (the estimator's target
        regime) must produce finite fit and error."""
        t = random_tensor((4000, 3000, 2000), nnz=300, seed=13)
        kt = model_for(t.shape, 2, seed=14)
        fit, err = kt.fit_estimate(t, n_samples=5000, seed=15)
        assert np.isfinite(fit) and np.isfinite(err)
        assert err >= 0
