"""``counter-category`` — traffic charges use the canonical vocabulary.

The Section IV-C data-movement model and the measured-traffic channel only
stay comparable because they reason in one shared category vocabulary
(:data:`repro.analysis.traffic.CANONICAL_TRAFFIC_CATEGORIES`).  A kernel
that invents ``"fibres"`` where the model says ``"structure"`` silently
splits the tallies and the Fig. 3/4 model-vs-measured comparison drifts.

This rule finds every charge call on a counter-ish receiver and requires
its ``category`` argument (positional or keyword) to be a **string
literal** drawn from the canonical set.  Omitting the argument is fine —
the defaults are canonical.  Non-literal categories are flagged too: a
category computed at runtime cannot be audited statically, and nothing in
the model needs one.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ...analysis.traffic import CANONICAL_TRAFFIC_CATEGORIES
from ..astutils import expr_text, receiver_of
from ..framework import FileContext, Finding, Rule, register
from .thread_safety import CHARGE_METHODS, UNAMBIGUOUS_CHARGE

#: Positional index of the ``category`` parameter per charge method.
CATEGORY_ARG_INDEX = {
    "read": 1,
    "write": 1,
    "flop": 1,
    "read_factor_rows": 3,
    "write_factor_rows": 3,
    "scatter_update": 4,
}


def _category_node(call: ast.Call, method: str) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == "category":
            return kw.value
    idx = CATEGORY_ARG_INDEX[method]
    if len(call.args) > idx:
        return call.args[idx]
    return None


def _counter_ish(recv: ast.AST) -> bool:
    """Heuristic receiver filter for the ambiguous names (``read``/
    ``write`` collide with file objects): the receiver expression must
    mention a counter or shard."""
    text = expr_text(recv).lower()
    return "counter" in text or "shard" in text


@register
class CounterCategoryRule(Rule):
    id = "counter-category"
    description = (
        "traffic charges must use a literal category from "
        "repro.analysis.traffic.CANONICAL_TRAFFIC_CATEGORIES"
    )
    paper_ref = "Section IV-C (the data-movement model's term vocabulary)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            method = node.func.attr
            if method not in CHARGE_METHODS:
                continue
            recv = receiver_of(node)
            if recv is None:
                continue
            if method not in UNAMBIGUOUS_CHARGE and not _counter_ish(recv):
                continue
            cat = _category_node(node, method)
            if cat is None:
                continue  # defaults are canonical
            if isinstance(cat, ast.Constant) and isinstance(cat.value, str):
                if cat.value not in CANONICAL_TRAFFIC_CATEGORIES:
                    yield ctx.finding(
                        self.id,
                        cat,
                        f"traffic category {cat.value!r} is not canonical; "
                        "use one of CANONICAL_TRAFFIC_CATEGORIES (extend the "
                        "set in repro/analysis/traffic.py first if the model "
                        "grew a new term)",
                    )
            else:
                yield ctx.finding(
                    self.id,
                    cat,
                    f"traffic category `{expr_text(cat)}` is not a string "
                    "literal; charges must name their category statically "
                    "so the model and the measured channel stay auditable",
                )
