"""Tests for the exhaustive configuration planner."""

import numpy as np
import pytest

from repro.core import (
    DataMovementModel,
    MemoPlan,
    SAVE_NONE,
    TensorStats,
    count_swapped_fibers,
    plan_decomposition,
)
from repro.parallel import INTEL_CLX_18
from repro.tensor import CsfTensor, TABLE1_SPECS, generate


class TestSearchSpace:
    def test_configuration_count_4d(self, csf4):
        decision = plan_decomposition(csf4, rank=4)
        # 2 orders x 2^(d-2) plans.
        assert len(decision.configurations) == 2 * 4

    def test_configuration_count_no_swap(self, csf4):
        decision = plan_decomposition(csf4, rank=4, consider_swap=False)
        assert len(decision.configurations) == 4
        assert all(not c.swap_last_two for c in decision.configurations)

    def test_sorted_ascending(self, csf4):
        decision = plan_decomposition(csf4, rank=4)
        costs = [c.predicted_traffic for c in decision.configurations]
        assert costs == sorted(costs)

    def test_best_is_minimum(self, csf4):
        decision = plan_decomposition(csf4, rank=4, machine=INTEL_CLX_18)
        assert decision.best.predicted_traffic == min(
            c.predicted_traffic for c in decision.configurations
        )

    def test_best_matches_direct_model_evaluation(self, csf4):
        decision = plan_decomposition(csf4, rank=4)
        stats = decision.stats_base
        model = DataMovementModel(stats, 4)
        base_best = decision.best_with_swap(False)
        assert np.isclose(
            base_best.predicted_traffic, model.total(base_best.plan)
        )

    def test_swapped_stats_use_algorithm9(self, csf4):
        decision = plan_decomposition(csf4, rank=4)
        assert decision.stats_swapped is not None
        assert (
            decision.stats_swapped.fiber_counts[-2]
            == count_swapped_fibers(csf4)
        )


class TestRestrictedQueries:
    def test_best_with_swap(self, csf4):
        decision = plan_decomposition(csf4, rank=4)
        for swap in (False, True):
            c = decision.best_with_swap(swap)
            assert c.swap_last_two is swap
            others = [
                x.predicted_traffic
                for x in decision.configurations
                if x.swap_last_two is swap
            ]
            assert c.predicted_traffic == min(others)

    def test_best_with_plan(self, csf4):
        decision = plan_decomposition(csf4, rank=4)
        c = decision.best_with_plan(SAVE_NONE)
        assert c.plan == SAVE_NONE

    def test_best_with_missing_plan_raises(self, csf4):
        decision = plan_decomposition(csf4, rank=4, consider_swap=False)
        with pytest.raises(ValueError):
            decision.best_with_plan(MemoPlan((1, 2, 3)))

    def test_describe(self, csf4):
        decision = plan_decomposition(csf4, rank=4)
        text = decision.best.describe()
        assert "traffic" in text and "save" in text


class TestPaperStories:
    def test_delicious4d_prefers_swap(self):
        """The fiber-length inversion makes the swapped order compress
        more, so the planner should choose it (Section II-E)."""
        t = generate(TABLE1_SPECS["delicious-4d"], nnz=8000, seed=0)
        csf = CsfTensor.from_coo(t)
        decision = plan_decomposition(csf, rank=32)
        assert decision.swap_last_two

    def test_freebase_avoids_memoization(self):
        """Hyper-sparse tensors have partials as large as the tensor; the
        model should save nothing (Table II rows with ratio 0.00)."""
        t = generate(TABLE1_SPECS["freebase_sampled"], nnz=4000, seed=0)
        csf = CsfTensor.from_coo(t)
        decision = plan_decomposition(csf, rank=32, machine=INTEL_CLX_18)
        assert decision.plan.save_levels == ()
