"""Unit tests for the COO tensor substrate."""

import numpy as np
import pytest

from repro.tensor import CooTensor, random_tensor


class TestConstruction:
    def test_from_arrays_basic(self):
        idx = np.array([[0, 1, 2], [1, 0, 2]])
        t = CooTensor.from_arrays(idx, np.array([1.0, 2.0, 3.0]))
        assert t.shape == (3, 3)
        assert t.nnz == 3
        assert t.ndim == 2

    def test_explicit_shape(self):
        idx = np.array([[0], [1]])
        t = CooTensor.from_arrays(idx, np.array([5.0]), shape=(4, 7))
        assert t.shape == (4, 7)

    def test_shape_too_small_raises(self):
        idx = np.array([[3], [0]])
        with pytest.raises(ValueError, match="out of bounds"):
            CooTensor.from_arrays(idx, np.array([1.0]), shape=(2, 2))

    def test_negative_index_raises(self):
        idx = np.array([[-1], [0]])
        with pytest.raises(ValueError, match="negative"):
            CooTensor.from_arrays(idx, np.array([1.0]))

    def test_mismatched_values_raises(self):
        idx = np.array([[0, 1], [0, 1]])
        with pytest.raises(ValueError, match="nnz"):
            CooTensor.from_arrays(idx, np.array([1.0]))

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError, match="2-D"):
            CooTensor.from_arrays(np.array([0, 1, 2]), np.ones(3))

    def test_shape_mode_count_mismatch_raises(self):
        idx = np.array([[0], [0]])
        with pytest.raises(ValueError, match="modes"):
            CooTensor.from_arrays(idx, np.ones(1), shape=(2, 2, 2))

    def test_duplicates_are_summed(self):
        idx = np.array([[0, 0, 1], [1, 1, 0]])
        t = CooTensor.from_arrays(idx, np.array([1.0, 2.0, 5.0]))
        assert t.nnz == 2
        dense = t.to_dense()
        assert dense[0, 1] == 3.0
        assert dense[1, 0] == 5.0

    def test_entries_sorted_lexicographically(self):
        idx = np.array([[2, 0, 1], [0, 1, 2]])
        t = CooTensor.from_arrays(idx, np.array([1.0, 2.0, 3.0]))
        assert list(t.indices[0]) == [0, 1, 2]

    def test_empty_tensor(self):
        t = CooTensor.from_arrays(
            np.empty((3, 0), dtype=np.int64), np.empty(0), shape=(2, 2, 2)
        )
        assert t.nnz == 0
        assert np.all(t.to_dense() == 0)


class TestDenseRoundTrip:
    def test_roundtrip(self, coo4):
        dense = coo4.to_dense()
        back = CooTensor.from_dense(dense)
        assert np.allclose(back.to_dense(), dense)

    def test_from_dense_tolerance(self):
        arr = np.array([[0.5, 1e-9], [0.0, 2.0]])
        t = CooTensor.from_dense(arr, tol=1e-6)
        assert t.nnz == 2

    def test_to_dense_refuses_huge(self):
        t = CooTensor.from_arrays(
            np.array([[0], [0], [0]]), np.ones(1), shape=(10**3, 10**3, 10**3)
        )
        with pytest.raises(MemoryError):
            t.to_dense()


class TestTransforms:
    def test_permute_modes_matches_transpose(self, coo4):
        perm = [2, 0, 3, 1]
        permuted = coo4.permute_modes(perm)
        assert np.allclose(
            permuted.to_dense(), np.transpose(coo4.to_dense(), perm)
        )

    def test_permute_invalid_raises(self, coo4):
        with pytest.raises(ValueError, match="permutation"):
            coo4.permute_modes([0, 0, 1, 2])

    def test_sorted_by_keeps_content(self, coo4):
        s = coo4.sorted_by([3, 1, 0, 2])
        assert np.allclose(s.to_dense(), coo4.to_dense())

    def test_sorted_by_primary_key(self, coo4):
        s = coo4.sorted_by([2, 0, 1, 3])
        assert np.all(np.diff(s.indices[2]) >= 0)

    def test_sorted_by_invalid_raises(self, coo4):
        with pytest.raises(ValueError, match="permutation"):
            coo4.sorted_by([0, 1])

    def test_scale_and_norm(self, coo3):
        doubled = coo3.scale(2.0)
        assert np.isclose(doubled.norm(), 2.0 * coo3.norm())

    def test_astype(self, coo3):
        t32 = coo3.astype(np.float32)
        assert t32.values.dtype == np.float32


class TestStatistics:
    def test_nonzero_slices(self):
        idx = np.array([[0, 0, 2], [0, 1, 0]])
        t = CooTensor.from_arrays(idx, np.ones(3), shape=(3, 2))
        assert t.nonzero_slices(0) == 2
        assert t.nonzero_slices(1) == 2

    def test_fiber_count_leaf_equals_nnz(self, coo4):
        assert coo4.fiber_count([0, 1, 2, 3], 3) == coo4.nnz

    def test_fiber_count_monotone_in_level(self, coo4):
        order = [0, 1, 2, 3]
        counts = [coo4.fiber_count(order, lv) for lv in range(4)]
        assert all(a <= b for a, b in zip(counts, counts[1:]))

    def test_fiber_count_level0_is_distinct_roots(self, coo4):
        assert coo4.fiber_count([1, 0, 2, 3], 0) == coo4.nonzero_slices(1)

    def test_fiber_count_bad_level_raises(self, coo3):
        with pytest.raises(ValueError, match="level"):
            coo3.fiber_count([0, 1, 2], 5)

    def test_average_fiber_length(self, coo4):
        order = [0, 1, 2, 3]
        af = coo4.average_fiber_length(order, 3)
        assert af == coo4.nnz / coo4.fiber_count(order, 2)

    def test_density(self):
        t = CooTensor.from_arrays(
            np.array([[0], [0]]), np.ones(1), shape=(2, 5)
        )
        assert np.isclose(t.density, 0.1)

    def test_iter_entries(self):
        idx = np.array([[0, 1], [1, 0]])
        t = CooTensor.from_arrays(idx, np.array([2.0, 3.0]))
        entries = dict(t.iter_entries())
        assert entries[(0, 1)] == 2.0
        assert entries[(1, 0)] == 3.0
