"""Figure 6 — ablation of the three optimizations, R=32.

For every tensor and both machine models, performance of the
model-chosen configuration is compared against:

1. **no-balance** — Algorithm 3's fine-grained distribution replaced by
   the prior-work slice distribution (Fig. 6.1; the paper measures an
   average 39% slowdown when turned off);
2. **save-all / save-none** — the memoization model replaced by the two
   extremes (Fig. 6.2; the model buys ~12-13% on average, and turning it
   off never helps more than 5%);
3. **opposite-swap** — the last-two-mode order decision inverted
   (Fig. 6.3; average slowdown 55%/37% on Intel/AMD).

Values are normalized to the model-chosen configuration (=100%); below
100% means the ablated variant is slower, exactly as the paper plots.
"""

import pytest

from common import bench_suite, emit
from repro.analysis import format_table, measure_method
from repro.core import SAVE_ALL, SAVE_NONE
from repro.parallel import AMD_TR_64, INTEL_CLX_18

ARMS = ("chosen", "no-balance", "save-all", "save-none", "opposite-swap")


def _arm_kwargs(arm, tensor):
    if arm == "chosen":
        return {}
    if arm == "no-balance":
        return {"partition": "slice"}
    if arm == "save-all":
        return {"plan": SAVE_ALL(tensor.ndim)}
    if arm == "save-none":
        return {"plan": SAVE_NONE}
    if arm == "opposite-swap":
        return {"swap_opposite": True}
    raise ValueError(arm)


@pytest.mark.parametrize("machine", [INTEL_CLX_18, AMD_TR_64], ids=lambda m: m.name)
def test_figure6_ablation(benchmark, machine):
    rank = 32
    tensors = {n: t for n, t in bench_suite().items() if t.ndim >= 3}
    rows = {}

    def run():
        for name, tensor in tensors.items():
            base = measure_method(
                "stef", tensor, rank, machine, num_threads=8, tensor_name=name
            )
            row = {}
            for arm in ARMS[1:]:
                kwargs = _arm_kwargs(arm, tensor)
                if "swap_opposite" in kwargs:
                    # Invert the model's choice explicitly.
                    from repro.engines import create_engine

                    with create_engine(
                        "stef", tensor, rank, num_threads=1
                    ) as probe:
                        kwargs = {"swap_last_two": not probe.swap_last_two}
                m = measure_method(
                    "stef", tensor, rank, machine,
                    num_threads=8, tensor_name=name, backend_kwargs=kwargs,
                )
                row[arm] = 100.0 * base.simulated_seconds / m.simulated_seconds
            rows[name] = row
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        rows,
        list(ARMS[1:]),
        title=(
            f"Figure 6 — ablation, perf normalized to model-chosen config "
            f"(={100}%), {machine.name}, R={rank} (below 100% = slower)"
        ),
        fmt="{:8.1f}",
    )
    avgs = {
        arm: sum(r[arm] for r in rows.values()) / len(rows) for arm in ARMS[1:]
    }
    summary = "averages: " + ", ".join(f"{k}={v:.1f}%" for k, v in avgs.items())
    emit(f"fig6_ablation_{machine.name}.txt", table + "\n\n" + summary)
