"""Tests for Lexi-Order index relabeling."""

import numpy as np
import pytest

from repro.reorder import Relabeling, lexi_order, random_relabel
from repro.tensor import CsfTensor, HicooTensor, TABLE1_SPECS, generate, random_tensor
from repro.ops import mttkrp_coo_reference
from tests.conftest import make_factors


class TestPermutations:
    def test_perms_are_bijections(self, coo4):
        rel = lexi_order(coo4)
        for m, p in enumerate(rel.perms):
            assert sorted(p.tolist()) == list(range(coo4.shape[m]))

    def test_apply_then_invert_identity(self, coo4):
        rel = lexi_order(coo4)
        back = rel.invert().apply(rel.apply(coo4))
        assert np.allclose(back.to_dense(), coo4.to_dense())

    def test_values_preserved(self, coo3):
        rel = lexi_order(coo3)
        rt = rel.apply(coo3)
        assert np.allclose(np.sort(rt.values), np.sort(coo3.values))
        assert rt.nnz == coo3.nnz

    def test_relabeled_dense_is_permutation(self, coo3):
        rel = lexi_order(coo3)
        rt = rel.apply(coo3)
        dense = coo3.to_dense()
        permuted = dense.copy()
        for m, p in enumerate(rel.perms):
            permuted = np.take(permuted, np.argsort(p), axis=m)
        # permuted[new coords] == dense[old coords]
        assert np.allclose(rt.to_dense(), permuted)

    def test_arity_mismatch_raises(self, coo3, coo4):
        rel = lexi_order(coo3)
        with pytest.raises(ValueError):
            rel.apply(coo4)

    def test_iterations_validated(self, coo3):
        with pytest.raises(ValueError):
            lexi_order(coo3, iterations=0)


class TestInvariants:
    def test_fiber_counts_invariant(self, coo4):
        """Relabeling permutes indices within modes: fiber counts (distinct
        prefixes) cannot change — which is why Lexi-Order is complementary
        to STeF's fiber-count-driven decisions (Section V)."""
        rel = lexi_order(coo4)
        rt = rel.apply(coo4)
        order = (0, 1, 2, 3)
        assert (
            CsfTensor.from_coo(rt, order).fiber_counts
            == CsfTensor.from_coo(coo4, order).fiber_counts
        )

    def test_mttkrp_equivalent_after_unrelabel(self, coo4):
        """MTTKRP on the relabeled tensor with relabeled factors equals
        the original MTTKRP with rows permuted."""
        rel = lexi_order(coo4)
        rt = rel.apply(coo4)
        factors = make_factors(coo4.shape, 3, seed=5)
        relabeled_factors = rel.invert().unrelabel_factors(factors)
        # relabeled_factors[m][new_id] == factors[m][old_id]
        for u in range(coo4.ndim):
            orig = mttkrp_coo_reference(coo4, factors, u)
            new = mttkrp_coo_reference(rt, relabeled_factors, u)
            assert np.allclose(new[rel.perms[u]], orig)

    def test_unrelabel_factor_arity(self, coo3):
        rel = lexi_order(coo3)
        with pytest.raises(ValueError):
            rel.unrelabel_factors([np.ones((4, 2))])


class TestLocalityEffect:
    def test_lexi_reduces_blocks_on_clustered_data(self):
        t = generate(TABLE1_SPECS["nell-2"], nnz=3000, seed=0)
        base = HicooTensor.from_coo(t, 4).n_blocks
        lexi = HicooTensor.from_coo(lexi_order(t).apply(t), 4).n_blocks
        rand = HicooTensor.from_coo(random_relabel(t, 3).apply(t), 4).n_blocks
        assert lexi < base
        assert lexi < rand

    def test_random_relabel_deterministic(self, coo3):
        a = random_relabel(coo3, seed=9)
        b = random_relabel(coo3, seed=9)
        for pa, pb in zip(a.perms, b.perms):
            assert np.array_equal(pa, pb)

    def test_empty_tensor(self):
        from repro.tensor import CooTensor

        t = CooTensor.from_arrays(
            np.empty((3, 0), dtype=np.int64), np.empty(0), shape=(4, 4, 4)
        )
        rel = lexi_order(t)
        assert rel.apply(t).nnz == 0
