"""Unit tests for the Section IV data-movement model."""

import numpy as np
import pytest

from repro.core import DataMovementModel, MemoPlan, SAVE_NONE, TensorStats
from repro.parallel import MachineSpec
from repro.tensor import CsfTensor

TINY_CACHE = MachineSpec("tiny", 2, cache_bytes=8 * 50)  # 50 elements
HUGE_CACHE = MachineSpec("huge", 2, cache_bytes=8 * 10**9)


def stats4():
    # 4 levels: m = (10, 40, 120, 400); lengths (16, 64, 256, 1024).
    return TensorStats(
        fiber_counts=(10, 40, 120, 400),
        level_lengths=(16, 64, 256, 1024),
        mode_order=(0, 1, 2, 3),
    )


class TestTensorStats:
    def test_from_csf(self, csf4):
        st = TensorStats.from_csf(csf4)
        assert st.fiber_counts == csf4.fiber_counts
        assert st.mode_order == csf4.mode_order
        assert st.ndim == 4

    def test_with_swapped_last_two(self):
        st = stats4()
        sw = st.with_swapped_last_two(77)
        assert sw.fiber_counts == (10, 40, 77, 400)
        assert sw.level_lengths == (16, 64, 1024, 256)
        assert sw.mode_order == (0, 1, 3, 2)


class TestDmFactor:
    def test_streaming_when_exceeds_cache(self):
        model = DataMovementModel(stats4(), rank=8, machine=TINY_CACHE)
        # Level 3 footprint 1024*8 > 50 -> stream x*R.
        assert model.dm_factor(3, 100) == 800

    def test_resident_when_fits(self):
        model = DataMovementModel(stats4(), rank=2, machine=TINY_CACHE)
        # Level 0 footprint 16*2=32 <= 50 -> min(32, x*2).
        assert model.dm_factor(0, 100) == 32
        assert model.dm_factor(0, 4) == 8

    def test_no_machine_streams(self):
        model = DataMovementModel(stats4(), rank=4, machine=None)
        assert model.dm_factor(0, 7) == 28

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            DataMovementModel(stats4(), rank=0)


class TestReadFormulas:
    def test_no_mem_read(self):
        model = DataMovementModel(stats4(), rank=4, machine=None)
        m = (10, 40, 120, 400)
        expected = sum(2 * mi + mi * 4 for mi in m)
        assert model.dm_no_mem_read() == expected

    def test_mem_k_read(self):
        model = DataMovementModel(stats4(), rank=4, machine=None)
        m = (10, 40, 120, 400)
        k = 2
        expected = sum(2 * m[j] + m[j] * 4 for j in range(k)) + m[k] * 4
        assert model.dm_mem_k_read(k) == expected

    def test_mode_read_uses_memo_when_available(self):
        model = DataMovementModel(stats4(), rank=4, machine=None)
        plan = MemoPlan((2,))
        assert model.mode_read(1, plan) == model.dm_mem_k_read(2)
        assert model.mode_read(2, plan) == model.dm_mem_k_read(2)
        # Leaf mode never has a memo source.
        assert model.mode_read(3, plan) == model.dm_no_mem_read()

    def test_mode_read_no_memo(self):
        model = DataMovementModel(stats4(), rank=4, machine=None)
        for u in range(4):
            assert model.mode_read(u, SAVE_NONE) == model.dm_no_mem_read()


class TestWriteFormulas:
    def test_mode0_write_includes_memos(self):
        model = DataMovementModel(stats4(), rank=4, machine=None)
        plan = MemoPlan((1, 2))
        expected = 16 * 4 + (40 + 120) * 4
        assert model.mode_write(0, plan) == expected

    def test_mode_u_write_is_dm_factor(self):
        model = DataMovementModel(stats4(), rank=4, machine=HUGE_CACHE)
        # Everything resident: min(N_u*R, m_u*R).
        assert model.mode_write(2, SAVE_NONE) == min(256 * 4, 120 * 4)


class TestTotals:
    def test_breakdown_sums(self):
        model = DataMovementModel(stats4(), rank=4, machine=None)
        plan = MemoPlan((1,))
        bd = model.breakdown(plan)
        assert np.isclose(bd.total, bd.total_reads + bd.total_writes)
        assert len(bd.reads_per_mode) == 4

    def test_memoization_saves_on_deep_tensors(self):
        """With long fibers (high compression), saving P^(1) must beat
        recomputing for the model, as in the vast-2015 example."""
        st = TensorStats(
            fiber_counts=(10, 100, 10_000, 1_000_000),
            level_lengths=(16, 128, 16_384, 65_536),
            mode_order=(0, 1, 2, 3),
        )
        model = DataMovementModel(st, rank=8, machine=None)
        assert model.total(MemoPlan((1,))) < model.total(SAVE_NONE)

    def test_memoization_hurts_when_partials_are_huge(self):
        """Barely-compressing partials (m_i ~ nnz) with cache-resident
        factor matrices make saving wasteful: streaming the ``m_k·R``
        partial dwarfs the cheap re-traversal — the uber story of
        Section IV-A (62M/22M reads/writes saving vs 24M/238K not)."""
        st = TensorStats(
            fiber_counts=(24, 4_392, 1_500_000, 3_300_000),
            level_lengths=(24, 183, 1_140, 1_717),
            mode_order=(1, 0, 2, 3),
        )
        model = DataMovementModel(st, rank=32, machine=HUGE_CACHE)
        assert model.total(SAVE_NONE) < model.total(MemoPlan((2,)))
        # ... while the tiny P^(1) is still worth saving.
        assert model.total(MemoPlan((1,))) < model.total(MemoPlan((2,)))

    def test_plan_validated(self):
        model = DataMovementModel(stats4(), rank=4)
        with pytest.raises(ValueError):
            model.breakdown(MemoPlan((3,)))
