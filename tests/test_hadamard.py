"""Unit tests for dense factor-matrix algebra (Gram chains, solves)."""

import numpy as np
import pytest

from repro.ops import (
    cp_gram_norm_sq,
    gram,
    gram_hadamard_chain,
    normalize_columns,
    solve_factor,
)
from repro.ops.dense_ref import cp_reconstruct


class TestGram:
    def test_gram(self):
        a = np.array([[1.0, 0.0], [1.0, 2.0]])
        assert np.allclose(gram(a), a.T @ a)

    def test_chain_excludes(self):
        rng = np.random.default_rng(0)
        mats = [rng.standard_normal((n, 3)) for n in (4, 5, 6)]
        v = gram_hadamard_chain(mats, exclude=1)
        assert np.allclose(v, gram(mats[0]) * gram(mats[2]))

    def test_chain_all(self):
        rng = np.random.default_rng(1)
        mats = [rng.standard_normal((n, 2)) for n in (3, 4)]
        v = gram_hadamard_chain(mats, exclude=None)
        assert np.allclose(v, gram(mats[0]) * gram(mats[1]))

    def test_chain_empty_raises(self):
        with pytest.raises(ValueError):
            gram_hadamard_chain([np.ones((2, 2))], exclude=0)


class TestSolve:
    def test_solve_well_conditioned(self):
        rng = np.random.default_rng(2)
        v = rng.standard_normal((3, 3)) + 4 * np.eye(3)
        x = rng.standard_normal((5, 3))
        m = x @ v
        assert np.allclose(solve_factor(m, v), x)

    def test_solve_singular_falls_back_to_pinv(self):
        v = np.zeros((3, 3))
        v[0, 0] = 1.0
        m = np.ones((2, 3))
        out = solve_factor(m, v)  # must not raise
        assert out.shape == (2, 3)
        assert np.all(np.isfinite(out))


class TestNormalize:
    def test_unit_norms(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((6, 4)) * 10
        normed, lam = normalize_columns(a)
        assert np.allclose(np.linalg.norm(normed, axis=0), 1.0)
        assert np.allclose(normed * lam, a)

    def test_zero_column_safe(self):
        a = np.zeros((4, 2))
        a[:, 1] = 3.0
        normed, lam = normalize_columns(a)
        assert lam[0] == 0.0
        assert np.isclose(lam[1], 6.0)
        assert np.all(np.isfinite(normed))


class TestCpNorm:
    def test_matches_dense_reconstruction(self):
        rng = np.random.default_rng(4)
        factors = [rng.standard_normal((n, 3)) for n in (4, 5, 3)]
        weights = rng.random(3) + 0.5
        dense = cp_reconstruct(factors, weights)
        assert np.isclose(
            cp_gram_norm_sq(factors, weights), np.sum(dense**2), rtol=1e-10
        )

    def test_default_weights_are_ones(self):
        rng = np.random.default_rng(5)
        factors = [rng.standard_normal((n, 2)) for n in (3, 4)]
        assert np.isclose(
            cp_gram_norm_sq(factors),
            cp_gram_norm_sq(factors, np.ones(2)),
        )
