"""Tests for the baseline reimplementations (SPLATT/AdaTM/ALTO/TACO)."""

import numpy as np
import pytest

from repro.baselines import (
    ALL_BACKENDS,
    AdaTm,
    AltoBackend,
    Splatt1,
    Splatt2,
    SplattAll,
    TacoBackend,
    flop_count,
    flop_minimal_plan,
)
from repro.core import SAVE_NONE, MemoPlan
from repro.ops import mttkrp_dense
from repro.parallel import INTEL_CLX_18, TrafficCounter
from repro.tensor import TABLE1_SPECS, generate, random_tensor
from tests.conftest import make_factors


@pytest.fixture(scope="module")
def workload():
    t = random_tensor((9, 7, 6, 5), nnz=200, seed=7)
    return t, t.to_dense(), make_factors(t.shape, 4, seed=8)


class TestRegistry:
    def test_contains_all_paper_methods(self):
        paper_methods = {
            "stef", "stef2", "adatm", "alto",
            "splatt-1", "splatt-2", "splatt-all", "taco",
        }
        assert paper_methods <= set(ALL_BACKENDS)
        # Plus the dimension-tree extension (Section V's missing baseline).
        assert "dimtree" in ALL_BACKENDS

    @pytest.mark.parametrize("name", sorted(ALL_BACKENDS))
    def test_backend_protocol(self, workload, name):
        t, dense, factors = workload
        b = ALL_BACKENDS[name](t, 4, num_threads=3)
        assert len(b.mode_order) == t.ndim
        assert sorted(b.mode_order) == list(range(t.ndim))
        assert hasattr(b, "describe")
        for lvl in range(t.ndim):
            assert b.level_load_factor(lvl) >= 1.0

    @pytest.mark.parametrize("name", sorted(ALL_BACKENDS))
    def test_every_mode_matches_oracle(self, workload, name):
        t, dense, factors = workload
        b = ALL_BACKENDS[name](t, 4, num_threads=3)
        for lvl in range(t.ndim):
            res = b.mttkrp_level(factors, lvl)
            assert np.allclose(res, mttkrp_dense(dense, factors, b.mode_order[lvl]))

    @pytest.mark.parametrize("name", sorted(ALL_BACKENDS))
    def test_machine_default_threads(self, workload, name):
        t, _, _ = workload
        b = ALL_BACKENDS[name](t, 2, machine=INTEL_CLX_18)
        # Backends with engines should have picked up 18 threads.
        if hasattr(b, "engine"):
            assert b.engine.num_threads == 18


class TestSplattVariants:
    def test_splatt1_one_copy(self, workload):
        t, _, _ = workload
        b1 = Splatt1(t, 4)
        ball = SplattAll(t, 4)
        assert b1.tensor_bytes() < ball.tensor_bytes()
        assert ball.tensor_bytes() > 3 * b1.tensor_bytes() * 0.8

    def test_splatt2_two_copies(self, workload):
        t, _, _ = workload
        b2 = Splatt2(t, 4)
        assert b2.csf_a.mode_order != b2.csf_b.mode_order
        assert b2.csf_b.mode_order[0] == b2.csf_a.mode_order[-1]

    def test_splatt2_dispatch_prefers_shallow(self, workload):
        t, _, _ = workload
        b2 = Splatt2(t, 4)
        for mode, (engine, lvl) in b2._dispatch.items():
            other = b2.engine_b if engine is b2.engine_a else b2.engine_a
            other_lvl = other.csf.mode_order.index(mode)
            assert lvl <= other_lvl

    def test_no_memoization(self, workload):
        t, _, factors = workload
        b1 = Splatt1(t, 4)
        b1.mttkrp_level(factors, 0)
        assert b1.engine.memo == {}


class TestAdaTm:
    def test_flop_count_decreases_with_memo(self):
        fibers = (10, 100, 5_000, 100_000)
        none = flop_count(fibers, 16, SAVE_NONE)
        full = flop_count(fibers, 16, MemoPlan((1, 2)))
        assert full < none

    def test_flop_minimal_plan_memoizes_compressing_tensors(self):
        fibers = (10, 100, 5_000, 100_000)
        plan = flop_minimal_plan(fibers, 16)
        assert len(plan.save_levels) > 0

    def test_adatm_ignores_data_movement(self):
        """On an uber-like tensor AdaTM memoizes where STeF's model would
        not — the decision gap the paper attributes to AdaTM."""
        t = generate(TABLE1_SPECS["uber"], nnz=4000, seed=0)
        adatm = AdaTm(t, 32)
        from repro.core import Stef

        stef = Stef(t, 32, machine=INTEL_CLX_18)
        assert len(adatm.plan.save_levels) >= len(stef.plan.save_levels)

    def test_uses_slice_partition(self, workload):
        t, _, _ = workload
        adatm = AdaTm(t, 4, num_threads=3)
        assert adatm.engine.partition.strategy == "slice"


class TestAlto:
    def test_perfect_balance(self, workload):
        t, _, _ = workload
        b = AltoBackend(t, 4, num_threads=7)
        assert b.level_load_factor(0) < 1.2

    def test_footprint_single_copy(self, workload):
        t, _, _ = workload
        b = AltoBackend(t, 4)
        assert b.tensor_bytes() == t.nnz * 16

    def test_traffic_higher_than_csf_sweep(self, workload):
        """ALTO recomputes from scratch per mode with no tree compression;
        its counted traffic must exceed splatt-all's."""
        t, _, factors = workload
        ca, cs = TrafficCounter(), TrafficCounter()
        alto = AltoBackend(t, 4, num_threads=2, counter=ca)
        splatt = SplattAll(t, 4, num_threads=2, counter=cs)
        for lvl in range(t.ndim):
            alto.mttkrp_level(factors, lvl)
            splatt.mttkrp_level(factors, lvl)
        assert ca.total > cs.total


class TestTaco:
    def test_autotune_selects_from_grid(self, workload):
        t, _, _ = workload
        b = TacoBackend(t, 4, num_threads=2)
        from repro.baselines.taco import CHUNK_GRID

        assert b.chunk_slices in CHUNK_GRID
        assert b.tuning_seconds > 0

    def test_autotune_off(self, workload):
        t, _, _ = workload
        b = TacoBackend(t, 4, num_threads=2, autotune=False)
        assert b.tuning_seconds == 0.0

    def test_correct_for_every_chunk_size(self, workload):
        t, dense, factors = workload
        from repro.baselines.taco import CHUNK_GRID

        for chunk in CHUNK_GRID:
            b = TacoBackend(t, 4, num_threads=3, autotune=False)
            b.chunk_slices = chunk
            res = b.mttkrp_level(factors, 1)
            assert np.allclose(res, mttkrp_dense(dense, factors, 1)), chunk
