"""Static analysis for the repository's own kernel invariants.

The threads backend's race-freedom, the traffic channel's category
vocabulary, the kernels' level-vectorization, and the float64 buffer
discipline are all *conventions* — exactly the class of rule that rots
silently as the codebase grows.  This package checks them mechanically:

* :mod:`repro.lint.framework` — rule registry, per-file AST context,
  ``# lint: disable=<rule>`` suppressions, text/JSON reporters,
  exit codes;
* :mod:`repro.lint.rules` — the project-specific rule suite
  (``thread-body-safety``, ``counter-category``, ``hot-path``,
  ``dtype-discipline``);
* :mod:`repro.lint.cli` — ``python -m repro.lint`` / ``repro lint``.

See DESIGN.md §9 for the invariant ↔ paper-section mapping and
CONTRIBUTING.md for suppression etiquette.
"""

from .framework import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    FileContext,
    Finding,
    LintError,
    LintReport,
    Rule,
    all_rules,
    format_json,
    format_text,
    get_rule,
    register,
    run_lint,
)
from .cli import main

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "FileContext",
    "Finding",
    "LintError",
    "LintReport",
    "Rule",
    "all_rules",
    "format_json",
    "format_text",
    "get_rule",
    "main",
    "register",
    "run_lint",
]
