#!/usr/bin/env python
"""Serial-vs-concurrent equivalence stress driver.

Sweeps a grid of (seed, thread-count, memo-plan) combinations over random
tensors and asserts, for every MTTKRP of every combination:

* **bit-identical outputs** — ``np.array_equal`` between the ``serial``
  execution backend and the backend under test (``threads`` or
  ``processes``; not ``allclose``: the replicated scatter scheme fixes
  the reduction order, so equality must be exact);
* **exactly equal traffic** — the merged per-thread counter shards
  produce the same snapshot (reads / writes / flops / every category)
  as the deterministic serial run.

Any drift means a data race, a lost counter update, or (under
``processes``) a stale shared-memory slot.  Runs the same invariants as
``tests/test_threads_stress.py`` but at configurable scale — CI uses
``--seeds 5 --threads 2 4 8 --nnz 2000`` once per backend::

    python scripts/stress_threads.py [--backend {threads,processes}]
                                     [--seeds N] [--threads T ...]
                                     [--nnz NNZ] [--rank R] [--iters K]
"""

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.core import MemoPlan
from repro.engines import create_engine
from repro.parallel import TrafficCounter
from repro.tensor import random_tensor

SHAPES = ((40, 25, 18), (16, 12, 9, 7))


def run_once(tensor, factors, rank, threads, backend, plan, iters):
    counter = TrafficCounter(cache_elements=8192)
    # Forced plan + swap keep the CSF layout identical across backends,
    # so serial-vs-concurrent comparisons see the very same schedule.
    with create_engine(
        "stef", tensor, rank, plan=plan, swap_last_two=False,
        partition="nnz", num_threads=threads, exec_backend=backend,
        counter=counter,
    ) as engine:
        outs = []
        for _ in range(iters):
            outs = [res.copy() for _, res in engine.iteration_results(factors)]
        return outs, counter.snapshot()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=("threads", "processes"),
                        default="threads",
                        help="concurrent backend compared against serial")
    parser.add_argument("--seeds", type=int, default=5,
                        help="number of random tensors per shape")
    parser.add_argument("--threads", type=int, nargs="+", default=[2, 4, 8])
    parser.add_argument("--nnz", type=int, default=2000)
    parser.add_argument("--rank", type=int, default=8)
    parser.add_argument("--iters", type=int, default=2,
                        help="ALS-style repeats (exercises buffer reuse)")
    args = parser.parse_args()

    combos = failures = 0
    for shape in SHAPES:
        for seed in range(args.seeds):
            tensor = random_tensor(shape, nnz=args.nnz, seed=seed)
            rng = np.random.default_rng(1000 + seed)
            factors = [
                rng.standard_normal((n, args.rank)) for n in tensor.shape
            ]
            plan = MemoPlan((1,)) if seed % 2 else MemoPlan(
                tuple(range(1, tensor.ndim - 1))
            )
            for threads in args.threads:
                combos += 1
                s_out, s_snap = run_once(
                    tensor, factors, args.rank, threads, "serial", plan,
                    args.iters,
                )
                t_out, t_snap = run_once(
                    tensor, factors, args.rank, threads, args.backend, plan,
                    args.iters,
                )
                bad = []
                for lvl, (a, b) in enumerate(zip(s_out, t_out)):
                    if not np.array_equal(a, b):
                        bad.append(f"level {lvl} output differs "
                                   f"(max |d|={np.abs(a - b).max():.3e})")
                if s_snap != t_snap:
                    diff = {
                        k: (s_snap.get(k), t_snap.get(k))
                        for k in set(s_snap) | set(t_snap)
                        if s_snap.get(k) != t_snap.get(k)
                    }
                    bad.append(f"traffic snapshots differ: {diff}")
                tag = (f"shape={shape} seed={seed} T={threads} "
                       f"plan={plan.save_levels}")
                if bad:
                    failures += 1
                    print(f"FAIL {tag}")
                    for line in bad:
                        print(f"     {line}")
                else:
                    print(f"ok   {tag}  traffic={t_snap['total']:.0f}")
    print(
        f"\n{combos - failures}/{combos} combinations bit-identical "
        f"(serial == {args.backend}, outputs and traffic)"
    )
    if combos == 0:
        print("error: no combinations ran (check --seeds/--threads)")
        return 2
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
