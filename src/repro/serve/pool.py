"""Worker-side job execution: tensor → engine lease → cp_als → result.

:func:`execute_job` is what each worker thread runs, end to end:

1. **materialize the tensor** — inline COO through
   ``CooTensor.from_arrays`` (canonical sort/dedup), or a Table-I name /
   ``.tns`` path resolved server-side;
2. **fingerprint + lease** — content-hash the canonical arrays and ask
   the :class:`~repro.serve.cache.EngineCache`.  Only a **miss** pays
   the ``serve.plan`` span: engine construction (CSF build, memoization
   planning, shm allocation) happens inside it, so a request log without
   that span *is* the proof its engine came from the cache;
3. **scope the observability** — the cached engine was built once with a
   :class:`~repro.trace.ScopedTracer` and a long-lived
   :class:`TrafficCounter`; the worker points the tracer at this job's
   private ``Tracer`` for the duration and charges the job exactly the
   counter's delta across the run.  Totals per job therefore match a
   direct single-engine run exactly — counting is deterministic;
4. **run resumably** — ``cp_als`` writes its checkpoint under the spool
   (``resume=True`` always: a re-dispatched job killed mid-run continues
   from its last complete checkpoint, and the cumulative iteration count
   keeps climbing).  The checkpoint is deleted only on success;
5. **record** — factors serialize as JSON lists (``repr`` round-trip ⇒
   bit-identical on the client), and the job's trace is written as a
   JSONL request log stamped with
   :func:`~repro.trace.export.engine_run_meta`.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

import numpy as np

from ..cpd import cp_als
from ..engines import create_engine
from ..parallel import MACHINES
from ..parallel.counters import TrafficCounter
from ..tensor import TABLE1_SPECS, CooTensor, generate, read_tns
from ..trace import NULL_TRACER, ScopedTracer, Tracer, engine_run_meta, write_jsonl
from .cache import CacheEntry, EngineCache
from .jobs import Job, Spool
from .protocol import JobSpec, cache_key, tensor_fingerprint

__all__ = ["build_tensor", "execute_job"]


def build_tensor(spec: JobSpec) -> CooTensor:
    """Materialize the request's tensor (inline COO, Table-I, or path)."""
    if spec.coo is not None:
        return CooTensor.from_arrays(
            np.asarray(spec.coo["indices"], dtype=np.int64),
            np.asarray(spec.coo["values"], dtype=np.float64),
            spec.coo.get("shape"),
        )
    assert spec.tensor is not None  # JobSpec.__post_init__ guarantees
    if spec.tensor in TABLE1_SPECS:
        return generate(TABLE1_SPECS[spec.tensor], nnz=spec.nnz,
                        seed=spec.tensor_seed)
    if os.path.exists(spec.tensor):
        return read_tns(spec.tensor)
    raise ValueError(
        f"tensor {spec.tensor!r} is neither a server-readable file nor "
        f"one of {sorted(TABLE1_SPECS)}"
    )


def _counter_totals(counter: TrafficCounter) -> Dict[str, float]:
    totals = {"reads": counter.reads, "writes": counter.writes,
              "flops": counter.flops}
    totals.update(counter.by_category)
    return totals


def _traffic_delta(before: Dict[str, float],
                   after: Dict[str, float]) -> Dict[str, float]:
    return {
        key: after[key] - before.get(key, 0.0)
        for key in after
        if after[key] - before.get(key, 0.0)
    }


def _build_entry(spec: JobSpec, tensor: CooTensor, key: str,
                 tracer: Tracer) -> CacheEntry:
    """Plan a new engine for ``spec`` — the only code path that emits a
    ``serve.plan`` span (cache hits skip it by construction)."""
    machine = MACHINES[spec.machine]
    scoped = ScopedTracer()
    counter = TrafficCounter(cache_elements=machine.cache_elements)
    kwargs: Dict[str, Any] = {}
    if spec.jit is not None:
        kwargs["jit"] = spec.jit
    if spec.memoize is not None:
        kwargs["memoize"] = spec.memoize
    with tracer.span("serve.plan", engine=spec.engine, rank=spec.rank,
                     exec_backend=spec.exec_backend) as span:
        engine = create_engine(
            spec.engine, tensor, spec.rank, machine=machine,
            num_threads=spec.num_threads, exec_backend=spec.exec_backend,
            counter=counter, tracer=scoped, **kwargs,
        )
        span.annotate(nnz=tensor.nnz)
    return CacheEntry(key=key, engine=engine, tensor=tensor,
                      scoped_tracer=scoped, counter=counter)


def execute_job(job: Job, spool: Spool, cache: Optional[EngineCache]) -> Job:
    """Run one job to completion in the calling (worker) thread.

    Mutates and returns ``job`` with ``result``/``cache`` filled in.
    Raises on failure — the dispatcher owns state transitions and
    journaling, so errors propagate rather than being swallowed here.
    """
    spec = job.spec
    tracer = Tracer(
        job_id=job.job_id, client=spec.client,
        tensor=spec.tensor or "<inline>", attempt=job.attempts,
    )
    tensor = build_tensor(spec)
    fingerprint = tensor_fingerprint(tensor.indices, tensor.values,
                                     tensor.shape)
    key = cache_key(fingerprint, spec)

    entry = None
    if cache is not None:
        entry, status = cache.lease(key, job.job_id)
    else:
        status = "miss"
    ephemeral = entry is None and (cache is None or status == "bypass")
    if entry is None:
        entry = _build_entry(spec, tensor, key, tracer)
        if cache is not None and status == "miss":
            entry = cache.offer(entry, job.job_id)
        else:
            entry.engine.lease(job.job_id)
    job.cache = status

    entry.scoped_tracer.target = tracer
    before = _counter_totals(entry.counter)
    try:
        result = cp_als(
            entry.tensor, spec.rank, engine=entry.engine,
            max_iters=spec.max_iters, tol=spec.tol, init=spec.init,
            seed=spec.seed, compute_fit=spec.compute_fit,
            checkpoint_path=spool.checkpoint_path(job.job_id),
            checkpoint_every=spec.checkpoint_every,
            resume=True,  # continue a killed attempt's checkpoint if any
            tracer=tracer,
        )
        traffic = _traffic_delta(before, _counter_totals(entry.counter))
        run_meta = engine_run_meta(entry.engine)
    finally:
        entry.scoped_tracer.target = NULL_TRACER
        if cache is not None and not ephemeral:
            cache.release(entry)
        else:
            entry.engine.release()
            entry.engine.close()

    job.result = {
        "weights": result.model.weights.tolist(),
        "factors": [factor.tolist() for factor in result.model.factors],
        "fits": result.fits,
        "iterations": result.iterations,
        "converged": result.converged,
        "seconds": result.seconds,
        "traffic": traffic,
        "fingerprint": fingerprint,
        **run_meta,
    }
    write_jsonl(
        tracer, spool.log_path(job.job_id),
        job_id=job.job_id, cache=status, fingerprint=fingerprint,
        **run_meta,
    )
    spool.clear_checkpoint(job.job_id)
    return job
