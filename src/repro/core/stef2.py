"""STeF2 — STeF with a second CSF for the leaf mode (Section VI-B).

The MTTKRP of the base CSF's *leaf* mode is the weak kernel in STeF: it is
a scatter of ``val · k_{d-2}`` per non-zero ("a series of Khatri-Rao
products") with no compression from the tree — the paper attributes
STeF's nell-2 loss to it.  STeF2 spends one extra tensor copy on a second
CSF whose *root* is the base layout's leaf mode; the leaf-mode MTTKRP then
becomes a mode-0 upward sweep (TTM + mTTV chain) on that copy, which is
both compressed and cheap.

The remaining modes of the second CSF are ordered by increasing length so
its sweep compresses maximally.  No partial results are memoized on the
second CSF: its sweep runs exactly once per CPD iteration.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..parallel.counters import NULL_COUNTER, TrafficCounter
from ..parallel.machine import MachineSpec
from ..tensor.coo import CooTensor
from ..tensor.csf import CsfTensor
from ..trace import NULL_TRACER, Tracer
from .memoization import SAVE_NONE, MemoPlan
from .mttkrp import MemoizedMttkrp
from .stef import Stef

__all__ = ["Stef2"]


class Stef2(Stef):
    """STeF plus a second CSF representation for the leaf mode.

    Accepts the same parameters as :class:`~repro.core.stef.Stef`; the
    extra state is ``csf2``/``engine2``, and :meth:`mttkrp_level`
    redirects the leaf level to the second representation.
    """

    name = "stef2"
    jit_capable = True
    memoize_capable = True

    def __init__(
        self,
        tensor: CooTensor,
        rank: int,
        *,
        machine: Optional[MachineSpec] = None,
        num_threads: Optional[int] = None,
        plan: Optional[MemoPlan] = None,
        swap_last_two: Optional[bool] = None,
        partition: str = "nnz",
        exec_backend: Optional[str] = None,
        jit: Optional[str] = None,
        counter: TrafficCounter = NULL_COUNTER,
        tracer: Tracer = NULL_TRACER,
        **removed,
    ) -> None:
        super().__init__(
            tensor,
            rank,
            machine=machine,
            num_threads=num_threads,
            plan=plan,
            swap_last_two=swap_last_two,
            partition=partition,
            exec_backend=exec_backend,
            jit=jit,
            counter=counter,
            tracer=tracer,
            **removed,
        )
        d = tensor.ndim
        leaf_mode = self.csf.mode_order[d - 1]
        rest = sorted(
            (m for m in range(d) if m != leaf_mode),
            key=lambda m: (tensor.shape[m], m),
        )
        self.csf2 = CsfTensor.from_coo(tensor, (leaf_mode, *rest))
        self.engine2 = MemoizedMttkrp(
            self.csf2,
            rank,
            plan=SAVE_NONE,
            num_threads=self.num_threads,
            partition=self.partition,
            exec_backend=self.exec_backend,
            jit=jit if jit is not None else type(self).jit_default,
            counter=counter,
            tracer=tracer,
        )

    def mttkrp_level(self, factors: Sequence[np.ndarray], level: int) -> np.ndarray:
        """Leaf level runs as a mode-0 sweep on the second CSF; everything
        else follows STeF."""
        if level == self.csf.ndim - 1:
            return self.engine2.mode0(factors)
        return super().mttkrp_level(factors, level)

    def level_load_factor(self, level: int) -> float:
        """Leaf level runs as a mode-0 sweep on the second CSF's
        schedule; every other level follows the base engine's partition
        at the level actually executing it."""
        if level == self.csf.ndim - 1:
            return self.engine2.level_load_factor(0)
        return self.engine.level_load_factor(level)

    def close(self) -> None:
        """Release both engines' resources."""
        super().close()
        self.engine2.close()

    def extra_csf_bytes(self) -> int:
        """Footprint of the second tensor copy (the cost STeF2 pays)."""
        return self.csf2.total_bytes()

    def describe(self) -> str:
        return (
            super().describe()
            + f" +csf2(root=mode {self.csf2.mode_order[0]})"
        )
