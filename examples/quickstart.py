#!/usr/bin/env python
"""Quickstart: CP-decompose a sparse tensor with STeF.

Generates a random sparse 3-D tensor with low-rank structure, runs
CPD-ALS with the STeF backend (model-chosen memoization + fine-grained
load balancing), and prints the fit trajectory and the configuration the
planner selected.

Run:  python examples/quickstart.py
"""

from repro import cp_als, create_engine, low_rank_tensor


def main() -> None:
    # A mostly-observed sample of a rank-8 tensor plus noise.  Sparse CPD
    # treats unobserved cells as zeros, so a dense-ish sample is what
    # gives an interpretable fit; truly sparse count data (the FROSTT
    # regime) is exercised by the other examples.
    tensor = low_rank_tensor(
        (40, 35, 30), rank=8, nnz=100_000, noise=0.1, seed=42
    )
    print(f"tensor: shape={tensor.shape} nnz={tensor.nnz}")

    with create_engine("stef", tensor, 8, num_threads=8) as engine:
        print("planner decision:", engine.describe())
        print("  best config:", engine.decision.best.describe())

        result = cp_als(
            tensor,
            rank=8,
            engine=engine,
            max_iters=20,
            tol=1e-4,
            seed=0,
            callback=lambda it, fit: print(f"  iter {it + 1:2d}  fit = {fit:.4f}"),
        )

        print(f"converged: {result.converged} after {result.iterations} iterations")
        print(f"final fit: {result.final_fit:.4f}")
        print(f"memoized partial results: {engine.memo_bytes() / 1e6:.2f} MB")
    lam = result.model.weights
    print("component weights:", ", ".join(f"{w:.2f}" for w in sorted(lam)[::-1]))


if __name__ == "__main__":
    main()
