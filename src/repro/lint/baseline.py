"""Baseline files: track existing findings without silencing the rule.

A suppression pragma says "this is fine"; a baseline entry says "this is
known debt we have not paid down yet".  The flow analyses originally
landed on a tree with real, documented debt (the JIT worklist was the
compiled-kernel PR's input), tracked in a checked-in baseline file; that
debt has since been paid down to zero, the file is gone, and CI now
demands a clean ``--flow`` run outright.  The mechanism remains for
downstream forks carrying their own debt.

Format: a JSON object mapping ``"<rule>::<path>::<message>"`` to an
integer count.  Paths are normalized to start at the ``repro`` package
(or the file's basename) so the key is stable across checkouts and
invocation directories; counts absorb repeated identical findings (two
uncounted writes to the same buffer in one function).  Line numbers are
deliberately **not** part of the key — refactors move lines constantly,
and a baseline that churns on every edit gets deleted, not maintained.

Workflow (see CONTRIBUTING.md):

* ``repro lint --flow --baseline <debt.json> src/`` — findings
  covered by the baseline are reported in the summary as *baselined* and
  do not affect the exit code; new ones fail as usual;
* ``... --update-baseline`` — rewrite the file to the current findings
  (after fixing debt, so the count only ratchets down; or when a new
  analysis lands with documented debt).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from .framework import Finding, LintReport

__all__ = ["baseline_key", "load_baseline", "apply_baseline", "write_baseline"]


def baseline_key(finding: Finding) -> str:
    """Stable identity of a finding across checkouts: rule, normalized
    path, message — no line numbers (see module docstring)."""
    parts = Path(finding.path).as_posix().split("/")
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        path = "/".join(parts[anchor:])
    else:
        path = parts[-1]
    return f"{finding.rule}::{path}::{finding.message}"


def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("entries", data) if isinstance(data, dict) else {}
    return {str(k): int(v) for k, v in entries.items()}


def apply_baseline(report: LintReport, baseline: Dict[str, int]) -> LintReport:
    """Move baseline-covered findings into ``report.baselined``.

    Counts are consumed first-come (findings are already sorted by
    location), so a file with two identical known findings and one new
    third gets exactly one live finding.
    """
    remaining = dict(baseline)
    live = []
    for finding in report.findings:
        key = baseline_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            report.baselined += 1
        else:
            live.append(finding)
    report.findings = live
    return report


def write_baseline(report: LintReport, path: Path) -> None:
    """Serialize the report's findings as a fresh baseline file."""
    counts: Dict[str, int] = {}
    for finding in report.findings:
        key = baseline_key(finding)
        counts[key] = counts.get(key, 0) + 1
    doc = {
        "_comment": (
            "Known lint debt, keyed rule::path::message -> count. "
            "Regenerate with `repro lint --flow --update-baseline "
            "--baseline <this file> src/`; see CONTRIBUTING.md."
        ),
        "entries": {k: counts[k] for k in sorted(counts)},
    }
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
