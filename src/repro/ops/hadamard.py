"""Dense factor-matrix algebra for CPD-ALS.

Algorithm 2 interleaves each sparse MTTKRP with small dense operations on
``R×R`` matrices:

* ``V = ⊛_{m≠u} (A^(m)ᵀ A^(m))`` — the Hadamard product of Gram matrices,
* the solve ``A^(u) = MTTKRP_result · V⁻¹`` (via pseudo-inverse: ``V`` can
  be singular when factors are collinear),
* column normalization with norms stored in ``λ``.

These costs are negligible next to the MTTKRPs (the paper notes this in
Section I) but they must be *correct* for the ALS trajectory tests to pass,
so they get their own well-tested module.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "gram",
    "gram_hadamard_chain",
    "solve_factor",
    "normalize_columns",
    "cp_gram_norm_sq",
]


def gram(a: np.ndarray) -> np.ndarray:
    """Gram matrix ``AᵀA`` of a factor matrix."""
    a = np.asarray(a)
    return a.T @ a


def gram_hadamard_chain(
    matrices: Sequence[np.ndarray], exclude: int | None = None
) -> np.ndarray:
    """Hadamard product of the Gram matrices of every factor except
    ``exclude`` (pass ``None`` to include all — used by the fit formula)."""
    mats = [m for i, m in enumerate(matrices) if i != exclude]
    if not mats:
        raise ValueError("cannot exclude the only matrix")
    rank = np.asarray(mats[0]).shape[1]
    out = np.ones((rank, rank))
    for m in mats:
        out *= gram(m)
    return out


def solve_factor(mttkrp_result: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Solve ``X · V = mttkrp_result`` for the updated factor matrix.

    Uses a least-squares solve (pinv fallback) because ``V`` may be rank
    deficient early in ALS when random factors are nearly collinear.
    """
    v = np.asarray(v)
    try:
        return np.linalg.solve(v.T, np.asarray(mttkrp_result).T).T
    except np.linalg.LinAlgError:
        return np.asarray(mttkrp_result) @ np.linalg.pinv(v)


def normalize_columns(
    a: np.ndarray, *, floor: float = 1e-12
) -> Tuple[np.ndarray, np.ndarray]:
    """Normalize columns to unit 2-norm, returning ``(normalized, norms)``.

    Columns with norm below ``floor`` are left at norm ~0 but reported with
    weight 0 so ``λ`` never contains junk from dividing by dust.
    """
    a = np.asarray(a, dtype=np.float64)
    norms = np.linalg.norm(a, axis=0)
    safe = np.where(norms > floor, norms, 1.0)
    out = a / safe
    lambdas = np.where(norms > floor, norms, 0.0)
    return out, lambdas


def cp_gram_norm_sq(
    factors: Sequence[np.ndarray], weights: np.ndarray | None = None
) -> float:
    """Squared Frobenius norm of the Kruskal tensor
    ``[[λ; A^(0), ..., A^(d-1)]]`` computed without materializing it:

    ``‖X‖² = λᵀ (⊛_m A^(m)ᵀA^(m)) λ``.
    """
    v = gram_hadamard_chain(list(factors), exclude=None)
    rank = v.shape[0]
    lam = np.ones(rank) if weights is None else np.asarray(weights)
    return float(lam @ v @ lam)
