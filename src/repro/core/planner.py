"""Exhaustive configuration search driven by the data-movement model.

A *configuration* is a (mode-order, memoization-plan) pair, where the mode
order is either the length-sorted base order or that order with its last
two levels swapped (Section II-E limits the search to this pair; the
fiber count the swapped order needs comes from Algorithm 9 in O(nnz)).
With ``2 × 2^(d-2)`` configurations and an O(d)-cost model per evaluation,
the search is effectively free next to a single MTTKRP — "our model
exhaustively checks every configuration to select the one with the lowest
data movement estimate" (Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..parallel.machine import MachineSpec
from ..tensor.csf import CsfTensor
from .memoization import MemoPlan, enumerate_plans
from .model import DataMovementModel, ModelBreakdown, TensorStats
from .modeorder import count_swapped_fibers

__all__ = ["Configuration", "PlanDecision", "plan_decomposition"]


@dataclass(frozen=True)
class Configuration:
    """One point of the search space with its model prediction."""

    swap_last_two: bool
    plan: MemoPlan
    predicted_traffic: float
    breakdown: ModelBreakdown

    def describe(self) -> str:
        """One-line human-readable summary for harness output."""
        order = "swapped" if self.swap_last_two else "base"
        return (
            f"order={order} save={list(self.plan.save_levels)} "
            f"traffic={self.predicted_traffic:.3e}"
        )


@dataclass(frozen=True)
class PlanDecision:
    """The planner's output: the winning configuration plus the full
    ranked search space (the ablation benches need the losers too)."""

    best: Configuration
    configurations: List[Configuration]
    stats_base: TensorStats
    stats_swapped: Optional[TensorStats]
    rank: int

    @property
    def swap_last_two(self) -> bool:
        return self.best.swap_last_two

    @property
    def plan(self) -> MemoPlan:
        return self.best.plan

    def best_with_swap(self, swap: bool) -> Configuration:
        """Cheapest configuration restricted to one swap choice — used by
        the Fig. 6.3 'opposite of the model' ablation arm."""
        candidates = [c for c in self.configurations if c.swap_last_two == swap]
        if not candidates:
            raise ValueError(f"no configurations with swap={swap}")
        return min(candidates, key=lambda c: c.predicted_traffic)

    def best_with_plan(self, plan: MemoPlan) -> Configuration:
        """Cheapest configuration restricted to one memo plan — used by
        the Fig. 6.2 save-all / save-none ablation arms."""
        candidates = [c for c in self.configurations if c.plan == plan]
        if not candidates:
            raise ValueError(f"no configurations with plan={plan}")
        return min(candidates, key=lambda c: c.predicted_traffic)


def plan_decomposition(
    csf: CsfTensor,
    rank: int,
    machine: Optional[MachineSpec] = None,
    *,
    consider_swap: bool = True,
) -> PlanDecision:
    """Search every (order, plan) configuration and return the decision.

    Parameters
    ----------
    csf:
        The tensor in its *base* (length-sorted) layout.
    rank:
        Decomposition rank ``R``.
    machine:
        Cache capacity source for the model's ``DM_factor`` rule.
    consider_swap:
        Set ``False`` to restrict the search to the base order (used by
        benches isolating the memoization decision; 2-D tensors are
        restricted automatically).
    """
    stats_base = TensorStats.from_csf(csf)
    d = csf.ndim
    orders: List[tuple] = [(False, stats_base)]
    stats_swapped: Optional[TensorStats] = None
    if consider_swap and d >= 3:
        swapped_m = count_swapped_fibers(csf)
        stats_swapped = stats_base.with_swapped_last_two(swapped_m)
        orders.append((True, stats_swapped))

    configurations: List[Configuration] = []
    for swap, stats in orders:
        model = DataMovementModel(stats, rank, machine)
        for plan in enumerate_plans(d):
            bd = model.breakdown(plan)
            configurations.append(
                Configuration(
                    swap_last_two=swap,
                    plan=plan,
                    predicted_traffic=bd.total,
                    breakdown=bd,
                )
            )
    configurations.sort(key=lambda c: (c.predicted_traffic, c.swap_last_two))
    return PlanDecision(
        best=configurations[0],
        configurations=configurations,
        stats_base=stats_base,
        stats_swapped=stats_swapped,
        rank=rank,
    )
