"""Import-aware call graph over the linted files.

Functions get stable qualified names derived from their module path
(``repro.core.mttkrp.MemoizedMttkrp.forward``); call edges are resolved
statically from four shapes that cover essentially all intra-project
calls in this codebase:

* ``helper(...)`` — a plain :class:`ast.Name` call, resolved to a
  module-level function of the same module or, through the module's
  ``from x import helper`` table, to another linted module;
* ``self.method(...)`` / ``cls.method(...)`` — resolved within the
  enclosing class (base classes are not chased; the kernels do not rely
  on charge-relevant inheritance);
* ``mod.helper(...)`` — resolved through ``import x as mod`` /
  ``from pkg import mod`` aliases when ``x``/``pkg.mod`` is linted;
* **dispatch edges** — a function *passed* to ``pool.map(body)`` /
  ``run_partitioned(pool, body)`` / ``pool.run_tasks([...])`` is called
  by the enclosing function even though no direct call appears; the
  traffic analysis needs these edges so charges inside thread bodies
  count toward their coordinator.

Unresolvable calls (numpy, stdlib, getattr-computed) are simply absent —
every analysis on top treats a missing edge conservatively.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..astutils import dotted_name
from ..framework import FileContext

__all__ = ["FunctionInfo", "CallSite", "CallGraph", "module_name_for"]

#: Dispatch receivers: ``<pool>.map(fn)`` (single arg), ``<pool>.run_tasks``
#: and ``run_partitioned(pool, fn)`` hand their function arguments to
#: worker threads/processes.
_DISPATCH_METHODS = frozenset({"map", "run_tasks", "submit"})


def module_name_for(ctx: FileContext) -> str:
    """Dotted module name of a file, anchored at the ``repro`` package.

    Files outside the package (fixtures, scratch copies) get their stem —
    unique enough for single-file analyses, and cross-module resolution
    never applies to them anyway.
    """
    parts = ctx.path.resolve().with_suffix("").parts
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[anchor:])
    return parts[-1]


@dataclass
class CallSite:
    """One resolved call edge, anchored at the calling statement."""

    caller: str  #: qualified name of the enclosing function
    callee: str  #: qualified name of the target
    node: ast.AST  #: the Call (or dispatch argument) expression
    stmt: ast.stmt  #: enclosing statement (a CFG node of the caller)
    is_dispatch: bool = False  #: True for pool.map/run_tasks-style edges


@dataclass
class FunctionInfo:
    """One analyzed function/method and where it lives."""

    qname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    ctx: FileContext
    module: str
    cls: Optional[str] = None  #: enclosing class name, if a method
    parent: Optional[str] = None  #: qname of the enclosing function, if nested

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_method(self) -> bool:
        return self.cls is not None


class _ImportTable:
    """Per-module map: local name -> dotted module/function it refers to."""

    def __init__(self, tree: ast.Module, module: str) -> None:
        self.aliases: Dict[str, str] = {}
        package = module.rsplit(".", 1)[0] if "." in module else module
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node, package)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = f"{base}.{alias.name}"

    @staticmethod
    def _resolve_from(node: ast.ImportFrom, package: str) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative import: climb `level` packages from the module's package.
        parts = package.split(".")
        if node.level > len(parts):
            return None
        base_parts = parts[: len(parts) - (node.level - 1)]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts)


class CallGraph:
    """Functions, call sites, and adjacency over a set of linted files."""

    def __init__(self, files: List[FileContext]) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.call_sites: List[CallSite] = []
        self.callees: Dict[str, Set[str]] = {}
        self.callers: Dict[str, List[CallSite]] = {}
        self._imports: Dict[str, _ImportTable] = {}
        self._module_funcs: Dict[str, Dict[str, str]] = {}  # mod -> name -> qname
        self._class_methods: Dict[Tuple[str, str], Dict[str, str]] = {}
        for ctx in files:
            self._index_file(ctx)
        for ctx in files:
            self._resolve_file(ctx)

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def _index_file(self, ctx: FileContext) -> None:
        module = module_name_for(ctx)
        self._imports[module] = _ImportTable(ctx.tree, module)
        mod_funcs = self._module_funcs.setdefault(module, {})

        def visit(node: ast.AST, prefix: str, cls: Optional[str], parent: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qname = f"{prefix}.{child.name}"
                    info = FunctionInfo(
                        qname=qname, node=child, ctx=ctx, module=module,
                        cls=cls, parent=parent,
                    )
                    self.functions[qname] = info
                    if cls is None and parent is None:
                        mod_funcs[child.name] = qname
                    if cls is not None and parent is None:
                        self._class_methods.setdefault((module, cls), {})[
                            child.name
                        ] = qname
                    # Nested functions keep the enclosing class: closures
                    # capture `self`, so their `self.m()` calls resolve
                    # against the same class (the thread-body pattern).
                    visit(child, qname, cls, qname)
                elif isinstance(child, ast.ClassDef):
                    visit(child, f"{prefix}.{child.name}", child.name, None)
                else:
                    visit(child, prefix, cls, parent)

        visit(ctx.tree, module, None, None)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def _resolve_file(self, ctx: FileContext) -> None:
        module = module_name_for(ctx)
        for info in [f for f in self.functions.values() if f.ctx is ctx]:
            body = info.node.body if isinstance(info.node.body, list) else []
            for stmt in body:
                for node in self._walk_own(stmt):
                    if isinstance(node, ast.Call):
                        self._resolve_call(info, module, stmt, node)

    @staticmethod
    def _walk_own(stmt: ast.stmt):
        """Walk a statement without descending into nested function
        bodies — their calls belong to the nested function."""
        stack: List[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                stack.append(child)

    def _resolve_call(
        self, info: FunctionInfo, module: str, stmt: ast.stmt, call: ast.Call
    ) -> None:
        callee = self._resolve_target(info, module, call.func)
        if callee is not None:
            self._add_site(CallSite(info.qname, callee, call, stmt))
        # Dispatch edges: functions passed as arguments to pool plumbing.
        func = call.func
        is_dispatch = (
            isinstance(func, ast.Attribute) and func.attr in _DISPATCH_METHODS
        ) or (isinstance(func, ast.Name) and func.id == "run_partitioned")
        if not is_dispatch:
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for expr in ast.walk(arg) if not isinstance(arg, ast.Name) else [arg]:
                if isinstance(expr, ast.Name):
                    target = self._resolve_target(info, module, expr)
                    if target is not None:
                        self._add_site(
                            CallSite(info.qname, target, expr, stmt, is_dispatch=True)
                        )

    def _resolve_target(
        self, info: FunctionInfo, module: str, func: ast.AST
    ) -> Optional[str]:
        imports = self._imports.get(module)
        if isinstance(func, ast.Name):
            # Nested function defined in an enclosing scope?
            scope = info.qname
            while scope:
                candidate = f"{scope}.{func.id}"
                if candidate in self.functions:
                    return candidate
                scope = scope.rsplit(".", 1)[0] if "." in scope else ""
            local = self._module_funcs.get(module, {}).get(func.id)
            if local is not None:
                return local
            if imports is not None and func.id in imports.aliases:
                dotted = imports.aliases[func.id]
                return dotted if dotted in self.functions else None
            return None
        if isinstance(func, ast.Attribute):
            base = dotted_name(func.value)
            if base in ("self", "cls") and info.cls is not None:
                methods = self._class_methods.get((module, info.cls), {})
                return methods.get(func.attr)
            if base is not None and imports is not None and base in imports.aliases:
                dotted = f"{imports.aliases[base]}.{func.attr}"
                if dotted in self.functions:
                    return dotted
                # ``from repro import core`` style two-level attribute.
                nested = self._module_funcs.get(imports.aliases[base], {})
                return nested.get(func.attr)
        return None

    def _add_site(self, site: CallSite) -> None:
        self.call_sites.append(site)
        self.callees.setdefault(site.caller, set()).add(site.callee)
        self.callers.setdefault(site.callee, []).append(site)
