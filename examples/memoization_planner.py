#!/usr/bin/env python
"""Walking the memoization design space (Sections II-C, IV).

For the delicious-4d stand-in — the tensor whose fiber-length inversion
motivates the last-two-mode swap — this example:

1. enumerates every (mode order, save-set) configuration with its
   modeled data movement (the planner's exhaustive search),
2. shows Algorithm 9 computing the swapped-order fiber count in one
   O(nnz) pass (no second CSF build),
3. validates the model against *counted* traffic for every save-set,
4. prints the Table-II-style space cost of the chosen plan.

Run:  python examples/memoization_planner.py
"""

import time

from repro import TABLE1_SPECS, create_engine, generate
from repro.analysis.traffic import model_vs_measured, ranking_agreement
from repro.core import (
    count_swapped_fibers,
    plan_decomposition,
)
from repro.cpd import random_init
from repro.parallel import INTEL_CLX_18
from repro.tensor import CsfTensor


def main() -> None:
    tensor = generate(TABLE1_SPECS["delicious-4d"], nnz=30_000, seed=0)
    csf = CsfTensor.from_coo(tensor)
    rank = 32
    print(f"delicious-4d (scaled): shape={tensor.shape} nnz={tensor.nnz}")
    print(f"base CSF order {csf.mode_order}, fibers per level {csf.fiber_counts}")

    # Algorithm 9: swapped-order fiber count without building the CSF.
    t0 = time.perf_counter()
    swapped_m = count_swapped_fibers(csf)
    alg9 = time.perf_counter() - t0
    t0 = time.perf_counter()
    rebuilt = csf.swapped_last_two().fiber_counts[-2]
    rebuild = time.perf_counter() - t0
    print(
        f"\nAlgorithm 9: swapped m_(d-2) = {swapped_m} in {alg9 * 1e3:.1f} ms "
        f"(full rebuild: {rebuild * 1e3:.1f} ms, same answer: {swapped_m == rebuilt})"
    )
    base_avg = tensor.nnz / csf.fiber_counts[-2]
    swap_avg = tensor.nnz / max(1, swapped_m)
    print(
        f"average leaf fiber length: base {base_avg:.2f} vs swapped "
        f"{swap_avg:.2f}  (Section II-E inversion)"
    )

    # The exhaustive configuration search.
    decision = plan_decomposition(csf, rank, INTEL_CLX_18)
    print(f"\nall {len(decision.configurations)} configurations, cheapest first:")
    for cfg in decision.configurations:
        marker = "  <== chosen" if cfg == decision.best else ""
        print(f"  {cfg.describe()}{marker}")

    # Model vs counted traffic across all save-sets (base order).
    entries = model_vs_measured(csf, rank, INTEL_CLX_18, num_threads=4)
    print("\nmodel vs counted element traffic per save-set:")
    for e in sorted(entries, key=lambda e: e.predicted):
        print(
            f"  save={list(e.save_levels)!s:10} predicted {e.predicted:12.0f} "
            f"counted {e.measured:12.0f}"
        )
    print(f"ranking agreement (pair concordance): {ranking_agreement(entries):.2f}")

    # Space cost of the chosen plan (Table II).
    with create_engine(
        "stef", tensor, rank, machine=INTEL_CLX_18, num_threads=8
    ) as stef:
        stef.mttkrp_level(random_init(tensor.shape, rank, 0), 0)
        base_bytes = stef.csf.total_bytes() + sum(
            n * rank * 8 for n in tensor.shape
        )
        print(
            f"\nchosen plan stores {stef.memo_bytes() / 1e6:.2f} MB of "
            f"partials vs {base_bytes / 1e6:.2f} MB CSF+factors "
            f"(ratio {stef.memo_bytes() / base_bytes:.2f})"
        )


if __name__ == "__main__":
    main()
