"""Shared infrastructure for the per-figure/table benchmark suite.

Every bench regenerates its paper artifact at laptop scale:

* tensors come from the Table-I generators, scaled to ``REPRO_BENCH_NNZ``
  non-zeros (default 4000; export a larger value for slower, sharper
  runs);
* tables/series are printed to stdout AND written under
  ``benchmarks/results/`` so the bench run leaves a reviewable record;
* wall-clock timings of the underlying kernels go through
  pytest-benchmark as usual.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable

from repro.tensor import TABLE1_SPECS, CooTensor, generate

#: Non-zero budget per synthetic tensor (env-overridable).
BENCH_NNZ = int(os.environ.get("REPRO_BENCH_NNZ", "4000"))

#: Where benches write their regenerated tables.
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_TENSOR_CACHE: Dict[str, CooTensor] = {}


def bench_tensor(name: str, nnz: int | None = None, seed: int = 0) -> CooTensor:
    """Scaled instance of a Table-I tensor, cached per session."""
    nnz = nnz or BENCH_NNZ
    key = f"{name}:{nnz}:{seed}"
    if key not in _TENSOR_CACHE:
        _TENSOR_CACHE[key] = generate(TABLE1_SPECS[name], nnz=nnz, seed=seed)
    return _TENSOR_CACHE[key]


def bench_suite(names: Iterable[str] | None = None, nnz: int | None = None):
    """Dict of scaled tensors for a list of Table-I names (default all)."""
    names = list(names) if names is not None else sorted(TABLE1_SPECS)
    return {name: bench_tensor(name, nnz) for name in names}


def emit(filename: str, text: str) -> None:
    """Print a regenerated table and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "w") as fh:
        fh.write(text)
        if not text.endswith("\n"):
            fh.write("\n")
    print()
    print(text)
    print(f"[written to {path}]")
