"""FROSTT ``.tns`` file I/O.

The FROSTT text format stores one non-zero per line: ``d`` 1-based integer
coordinates followed by the value.  Comment lines start with ``#``.  This
module reads and writes that format so the harness can operate on the real
FROSTT/HaTen2 tensors from Table I when they are locally available, and on
the synthetic stand-ins otherwise (see :mod:`repro.tensor.synthetic`).
"""

from __future__ import annotations

import gzip
import io
import os
from typing import Sequence

import numpy as np

from .coo import CooTensor

__all__ = ["read_tns", "write_tns"]


def _open_maybe_gz(path: str, mode: str):
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_tns(path: str, *, one_based: bool = True) -> CooTensor:
    """Read a FROSTT ``.tns`` (optionally ``.gz``) file into a COO tensor.

    Parameters
    ----------
    path:
        File path.  ``.gz`` suffix triggers transparent decompression.
    one_based:
        FROSTT coordinates are 1-based; set False for 0-based files.

    Raises
    ------
    ValueError
        On ragged lines (inconsistent coordinate counts).
    FileNotFoundError
        If ``path`` does not exist.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with _open_maybe_gz(path, "r") as fh:
        text = fh.read()
    rows = []
    ndim = None
    for lineno, line in enumerate(io.StringIO(text), 1):
        line = line.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        parts = line.split()
        if ndim is None:
            ndim = len(parts) - 1
            if ndim < 1:
                raise ValueError(f"{path}:{lineno}: need >=1 coordinate + value")
        elif len(parts) != ndim + 1:
            raise ValueError(
                f"{path}:{lineno}: expected {ndim + 1} fields, got {len(parts)}"
            )
        rows.append(parts)
    if not rows:
        raise ValueError(f"{path}: no non-zero entries found")
    data = np.array(rows, dtype=np.float64)
    indices = data[:, :-1].astype(np.int64).T
    if one_based:
        indices = indices - 1
    return CooTensor.from_arrays(indices, data[:, -1])


def write_tns(
    tensor: CooTensor,
    path: str,
    *,
    one_based: bool = True,
    header: Sequence[str] = (),
) -> None:
    """Write a COO tensor in FROSTT ``.tns`` format.

    ``header`` lines are emitted as ``#``-prefixed comments.
    """
    idx = tensor.indices + (1 if one_based else 0)
    with _open_maybe_gz(path, "w") as fh:
        for line in header:
            fh.write(f"# {line}\n")
        # Assemble the whole body in memory: ~an order of magnitude faster
        # than per-line formatting for the tensor sizes used in benches.
        cols = [idx[m].astype(str) for m in range(tensor.ndim)]
        vals = np.char.mod("%.17g", tensor.values)
        body = cols[0]
        for c in cols[1:]:
            body = np.char.add(np.char.add(body, " "), c)
        body = np.char.add(np.char.add(body, " "), vals)
        fh.write("\n".join(body.tolist()))
        fh.write("\n")
