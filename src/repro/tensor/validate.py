"""Structural validators for the sparse tensor formats.

Every format in :mod:`repro.tensor` has internal invariants that, when
broken (bad construction, corrupted I/O, buggy transformations), produce
silently wrong MTTKRP results rather than crashes.  These validators make
the invariants explicit and checkable; the test suite uses them for
failure-injection coverage (mutate a structure, assert detection).

Each ``validate_*`` function returns a list of human-readable problem
strings (empty = valid) and has a raising wrapper ``check_*``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .alto import AltoTensor
from .coo import CooTensor
from .csf import CsfTensor
from .hicoo import HicooTensor

__all__ = [
    "ValidationError",
    "validate_coo",
    "validate_csf",
    "validate_alto",
    "validate_hicoo",
    "check_coo",
    "check_csf",
    "check_alto",
    "check_hicoo",
]


class ValidationError(ValueError):
    """A sparse structure violates its format invariants."""


def validate_coo(t: CooTensor) -> List[str]:
    """COO invariants: shapes agree, indices in range, canonical order."""
    problems: List[str] = []
    if t.indices.ndim != 2 or t.indices.shape[0] != len(t.shape):
        problems.append(
            f"indices shape {t.indices.shape} does not match ndim {len(t.shape)}"
        )
        return problems
    if t.values.shape != (t.indices.shape[1],):
        problems.append(
            f"values shape {t.values.shape} does not match nnz "
            f"{t.indices.shape[1]}"
        )
    for m, n in enumerate(t.shape):
        if t.nnz and (t.indices[m].min() < 0 or t.indices[m].max() >= n):
            problems.append(f"mode {m} indices out of [0, {n})")
    if t.nnz > 1:
        keys = t.indices[::-1]
        order = np.lexsort(keys)
        if not np.array_equal(order, np.arange(t.nnz)):
            problems.append("entries are not sorted lexicographically")
        else:
            dup = np.all(t.indices[:, 1:] == t.indices[:, :-1], axis=0)
            if dup.any():
                problems.append("duplicate coordinates present")
    return problems


def validate_csf(t: CsfTensor) -> List[str]:
    """CSF invariants: permutation order, ptr coverage/monotonicity,
    idx ranges, per-node child ordering, leaf/value alignment."""
    problems: List[str] = []
    d = t.ndim
    if sorted(t.mode_order) != list(range(d)):
        problems.append(f"mode_order {t.mode_order} is not a permutation")
    if len(t.idx) != d or len(t.ptr) != d - 1:
        problems.append("idx/ptr level count mismatch")
        return problems
    if t.values.shape[0] != t.idx[d - 1].shape[0]:
        problems.append("values not aligned with leaf level")
    for lvl in range(d):
        n = t.level_shape(lvl)
        if t.idx[lvl].size and (
            t.idx[lvl].min() < 0 or t.idx[lvl].max() >= n
        ):
            problems.append(f"level {lvl} indices out of [0, {n})")
    for lvl in range(d - 1):
        ptr = t.ptr[lvl]
        if ptr.shape[0] != t.idx[lvl].shape[0] + 1:
            problems.append(f"ptr[{lvl}] has wrong length")
            continue
        if ptr.size and ptr[0] != 0:
            problems.append(f"ptr[{lvl}][0] != 0")
        if ptr.size and ptr[-1] != t.idx[lvl + 1].shape[0]:
            problems.append(f"ptr[{lvl}] does not cover level {lvl + 1}")
        if np.any(np.diff(ptr) < 1):
            problems.append(f"ptr[{lvl}] not strictly increasing (empty node)")
        # Children of each node must have strictly increasing indices.
        child = t.idx[lvl + 1]
        if child.size:
            inner = np.ones(child.shape[0], dtype=bool)
            inner[ptr[1:-1]] = False  # boundaries between nodes exempt
            bad = (np.diff(child) <= 0) & inner[1:]
            if bad.any():
                problems.append(
                    f"level {lvl + 1} child indices not sorted within a node"
                )
    if t.nnz and t.idx[0].size > 1 and np.any(np.diff(t.idx[0]) <= 0):
        problems.append("root indices not strictly increasing")
    return problems


def validate_alto(t: AltoTensor) -> List[str]:
    """ALTO invariants: sorted linear ids, value alignment, decodable."""
    problems: List[str] = []
    if t.values.shape[0] != t.linear.shape[0]:
        problems.append("values not aligned with linear ids")
    if t.nnz > 1:
        lin = t.linear
        if t.linear.dtype == object:
            ok = all(lin[i] <= lin[i + 1] for i in range(len(lin) - 1))
        else:
            ok = bool(np.all(lin[:-1] <= lin[1:]))
        if not ok:
            problems.append("linear ids not sorted")
    for m, n in enumerate(t.shape):
        coords = t.mode_indices(m)
        if coords.size and (coords.min() < 0 or coords.max() >= n):
            problems.append(f"decoded mode {m} coordinates out of [0, {n})")
    return problems


def validate_hicoo(t: HicooTensor) -> List[str]:
    """HiCOO invariants: ptr coverage, offsets within block width,
    block coordinates within blocked extent."""
    problems: List[str] = []
    if t.block_ptr[0] != 0 or t.block_ptr[-1] != t.nnz:
        problems.append("block_ptr does not cover the non-zeros")
    if np.any(np.diff(t.block_ptr) < 1):
        problems.append("empty block present")
    width = 1 << t.block_bits
    if t.offsets.size and t.offsets.max() >= width:
        problems.append(f"offsets exceed block width {width}")
    for m, n in enumerate(t.shape):
        max_block = (n - 1) >> t.block_bits
        if t.block_coords[m].size and (
            t.block_coords[m].min() < 0 or t.block_coords[m].max() > max_block
        ):
            problems.append(f"mode {m} block coordinates out of range")
    return problems


def _raise_if(problems: List[str], kind: str) -> None:
    if problems:
        raise ValidationError(f"invalid {kind}: " + "; ".join(problems))


def check_coo(t: CooTensor) -> None:
    """Raise :class:`ValidationError` when COO invariants are violated."""
    _raise_if(validate_coo(t), "CooTensor")


def check_csf(t: CsfTensor) -> None:
    """Raise :class:`ValidationError` when CSF invariants are violated."""
    _raise_if(validate_csf(t), "CsfTensor")


def check_alto(t: AltoTensor) -> None:
    """Raise :class:`ValidationError` when ALTO invariants are violated."""
    _raise_if(validate_alto(t), "AltoTensor")


def check_hicoo(t: HicooTensor) -> None:
    """Raise :class:`ValidationError` when HiCOO invariants are violated."""
    _raise_if(validate_hicoo(t), "HicooTensor")
