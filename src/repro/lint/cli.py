"""Command-line front end: ``python -m repro.lint`` and ``repro lint``.

Usage::

    python -m repro.lint src/                 # whole tree, text report
    python -m repro.lint --format json src/   # machine-readable
    python -m repro.lint --select hot-path,dtype-discipline src/repro/ops
    python -m repro.lint --list-rules

Exit codes: 0 clean, 1 findings, 2 unparseable input or bad usage.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, List, Optional

from .framework import (
    EXIT_CLEAN,
    EXIT_ERROR,
    all_rules,
    format_json,
    format_text,
    run_lint,
)

__all__ = ["add_arguments", "execute", "main"]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options on ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULE[,RULE...]",
        help="run only these rules (default: all registered rules)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )


def _print_rules(out: IO[str]) -> int:
    for rule in all_rules():
        print(f"{rule.id}", file=out)
        print(f"    {rule.description}", file=out)
        if rule.paper_ref:
            print(f"    derives from: {rule.paper_ref}", file=out)
    return EXIT_CLEAN


def execute(args: argparse.Namespace, out: Optional[IO[str]] = None) -> int:
    """Run the lint described by parsed ``args``; returns the exit code."""
    out = out if out is not None else sys.stdout
    if args.list_rules:
        return _print_rules(out)
    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
    try:
        report = run_lint(args.paths or ["src"], select=select)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=out)
        return EXIT_ERROR
    formatter = format_json if args.format == "json" else format_text
    print(formatter(report), file=out)
    return report.exit_code


def main(argv: Optional[List[str]] = None, out: Optional[IO[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "AST-based kernel-invariant analyzer: thread-body safety, "
            "traffic-category discipline, hot-path performance, dtype "
            "discipline"
        ),
    )
    add_arguments(parser)
    return execute(parser.parse_args(argv), out)
