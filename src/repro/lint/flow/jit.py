"""``flow.jit-readiness`` — which kernel loops can compile nopython.

ROADMAP's top open item is a compiled-kernel tier (ALTO-style adaptive
vectorized kernels, arXiv 2403.06348).  Numba's nopython mode rejects a
well-known set of Python/NumPy constructs; finding them *after* wiring a
``@njit`` decorator means debugging typed-compilation errors one kernel
at a time.  This rule classifies every module-level function in the
kernel modules that carries loops or array accesses — the compilation
candidates — and emits **one finding per blocker site**, so the baseline
file doubles as the compiled-kernel PR's exact worklist: a function with
zero findings is nopython-ready as it stands.

Kernels already **ported to the flat-array kernel ABI** (they route
their inner loops through :mod:`repro.kernels`, whose Numba tier is the
compiled path) leave the worklist, as do charge-only accounting helpers
— see :meth:`~repro.lint.flow.analysis.FlowAnalysis.jit_candidates`.

Blockers flagged (each message names the construct and the nopython
limitation): ``try``/``except``, ``with``, generators, nested
functions/lambdas (closures), dict/set literals and comprehensions,
f-strings, reflection builtins (``isinstance``/``getattr``/``hasattr``),
string-keyed subscripts (dict access in disguise), calls on non-array
Python objects, and the unsupported NumPy surface (``np.add.at``,
``ufunc.reduceat``, ``einsum``, ``lexsort``, ``apply_along_axis``,
``vectorize``, ``frompyfunc``, ...).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..astutils import dotted_name
from ..framework import Finding, ProjectContext, Rule, register

__all__ = ["JitReadinessRule"]

_NUMPY_NAMES = frozenset({"np", "numpy"})
#: ``np.<chain>`` calls nopython mode rejects (or lowers to object mode).
_UNSUPPORTED_NP = frozenset(
    {
        "add.at",
        "add.reduceat",
        "maximum.reduceat",
        "minimum.reduceat",
        "einsum",
        "lexsort",
        "ravel_multi_index",
        "apply_along_axis",
        "vectorize",
        "frompyfunc",
        "piecewise",
        "block",
    }
)
_REFLECTION = frozenset({"isinstance", "getattr", "hasattr", "setattr", "vars", "type"})
#: ndarray/scalar methods the typed lowering supports — attribute calls on
#: plain locals outside this set are Python-object dispatch.
_ARRAY_METHODS = frozenset(
    {
        "all", "any", "argmax", "argmin", "argsort", "astype", "copy",
        "cumsum", "cumprod", "dot", "fill", "item", "max", "mean", "min",
        "nonzero", "prod", "ravel", "repeat", "reshape", "searchsorted",
        "sort", "std", "sum", "take", "transpose", "var", "view",
    }
)


def _np_chain(func: ast.AST) -> Optional[str]:
    name = dotted_name(func)
    if name is None:
        return None
    parts = name.split(".", 1)
    if len(parts) == 2 and parts[0] in _NUMPY_NAMES:
        return parts[1]
    return None


def _blockers(fn: ast.AST) -> List[Tuple[ast.AST, str]]:
    out: List[Tuple[ast.AST, str]] = []
    body = fn.body if isinstance(fn.body, list) else []
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            out.append((node, "nested function/lambda: closures are not "
                              "nopython-compilable"))
            continue  # the closure body is the closure's problem
        if isinstance(node, ast.Try):
            out.append((node, "try/except forces object mode"))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            out.append((node, "context managers are unsupported in "
                              "nopython mode"))
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            out.append((node, "generators cannot be nopython-compiled"))
        elif isinstance(node, (ast.Dict, ast.DictComp, ast.Set, ast.SetComp)):
            out.append((node, "dict/set objects force object mode; use "
                              "typed arrays or scalar locals"))
        elif isinstance(node, ast.JoinedStr):
            out.append((node, "f-string formatting is unsupported in "
                              "nopython mode"))
        elif isinstance(node, ast.Subscript) and (
            isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            out.append((node, "string-keyed subscript is dict access; "
                              "nopython kernels take typed arguments"))
        elif isinstance(node, ast.Call):
            blocker = _call_blocker(node)
            if blocker is not None:
                out.append((node, blocker))
        for child in ast.iter_child_nodes(node):
            stack.append(child)
    return out


def _call_blocker(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name) and func.id in _REFLECTION:
        return f"`{func.id}()` reflection is unsupported in nopython mode"
    chain = _np_chain(func)
    if chain is not None:
        if chain in _UNSUPPORTED_NP:
            return (
                f"`np.{chain}` has no nopython lowering; rewrite as an "
                "explicit loop (cheap once compiled) or keep this kernel "
                "interpreted"
            )
        return None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.attr not in _ARRAY_METHODS and func.value.id not in _NUMPY_NAMES:
            return (
                f"`{func.value.id}.{func.attr}(...)` dispatches on a Python "
                "object; nopython kernels must take flat arrays, not "
                "objects with methods"
            )
    return None


@register
class JitReadinessRule(Rule):
    id = "flow.jit-readiness"
    description = (
        "classify kernel inner loops as nopython-compilable; one finding "
        "per object-mode blocker (the compiled-kernel worklist)"
    )
    paper_ref = "ROADMAP (compiled-kernel tier; arXiv 2403.06348)"
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        analysis = project.analysis
        for info in analysis.jit_candidates():
            # One finding per *distinct* blocker, anchored at its first
            # site: fifteen string-keyed subscripts in one task unpacker
            # are one work item, not fifteen.
            seen: set = set()
            for node, reason in sorted(
                _blockers(info.node),
                key=lambda pair: (pair[0].lineno, pair[0].col_offset),
            ):
                if reason in seen:
                    continue
                seen.add(reason)
                yield info.ctx.finding(
                    self.id,
                    node,
                    f"kernel `{info.name}` is not nopython-ready: {reason}",
                )
