"""Extension: thread-scaling study (the mechanism behind Figs. 2-4).

The paper's machines differ mainly in thread count (18 vs 64); the
slice-starved tensors lose more ground as threads grow.  This bench
sweeps the simulated thread count on the vast-2015 stress tensor and on a
well-behaved tensor (flickr-4d) and prints speedup-over-1-thread curves
for STeF (nnz-balanced), splatt-all (slice) and ALTO (flat):

* on vast, slice scheduling saturates at 2 threads while STeF/ALTO keep
  scaling;
* on flickr, all three scale (slices are plentiful), reproducing the
  paper's observation that slice parallelism suffices there.
"""

import pytest

from common import bench_tensor, emit
from repro.analysis import measure_method
from repro.parallel import AMD_TR_64

THREAD_SWEEP = (1, 2, 4, 8, 16, 32, 64)
METHODS = ("stef", "splatt-all", "alto")


@pytest.mark.parametrize("name", ["vast-2015-mc1-3d", "flickr-4d"])
def test_thread_scaling(benchmark, name):
    tensor = bench_tensor(name, nnz=8000)

    def run():
        curves = {}
        for method in METHODS:
            times = {}
            for t in THREAD_SWEEP:
                m = measure_method(
                    method, tensor, 32, AMD_TR_64,
                    num_threads=t, tensor_name=name,
                )
                times[t] = m.simulated_seconds
            curves[method] = {
                t: times[1] / times[t] for t in THREAD_SWEEP
            }
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Thread scaling on {name} (speedup over 1 thread, simulated)"]
    header = "threads".ljust(12) + "".join(f"{t:>8}" for t in THREAD_SWEEP)
    lines.append(header)
    lines.append("-" * len(header))
    for method, curve in curves.items():
        lines.append(
            method.ljust(12)
            + "".join(f"{curve[t]:8.2f}" for t in THREAD_SWEEP)
        )
    emit(f"scaling_threads_{name}.txt", "\n".join(lines))

    if name == "vast-2015-mc1-3d":
        # Slice scheduling cannot use more than the 2 root slices.
        assert curves["splatt-all"][64] < 3.0
        assert curves["stef"][64] > 3.0 * curves["splatt-all"][64]
