"""The memoized MTTKRP engine (Algorithms 4-8).

:class:`MemoizedMttkrp` executes the full per-iteration MTTKRP sequence of
STeF over one CSF:

* **level 0** (:meth:`mode0`) — a parallel upward sweep (TTM + mTTV chain)
  over equal-nnz thread partitions (Algorithm 3), accumulating boundary
  nodes in :class:`~repro.parallel.executor.ReplicatedArray` buffers; the
  partial results ``P^(i)`` selected by the :class:`MemoPlan` are merged
  and retained.
* **levels 0 < u < d-1** (:meth:`mode_level`) — reuse ``P^(u)`` directly
  when saved (Fig. 1b / Algorithm 6); otherwise recompute it on the fly
  from the shallowest saved ``P^(k)``, ``k > u`` (Fig. 1c / Algorithm 7)
  or from the tensor (Fig. 1d / Algorithm 8), fusing the downward ``k``
  sweep with the scatter into ``Ā^(u)``.
* **level d-1** — the leaf-mode kernel: ``Ā[idx] += val · k_{d-2}``
  (the "series of Khatri-Rao products"; the paper notes this MTTV-style
  kernel is STeF's weak spot on nell-2, which STeF2 fixes with a second
  CSF — :mod:`repro.core.stef2`).

Thread bodies only *compute* (gathers, multiplies, segmented sums — all
GIL-releasing NumPy); scatters into shared outputs happen on the
coordinating thread, so the ``"threads"`` backend is race-free while the
``"serial"`` backend is bit-identical to it.

Every call charges its semantic read/write volumes at the same
granularity as the Section IV model, giving the measured channel the
Fig. 3/4 harness reports.  Accounting is split in two:

* **per-thread legs** (structure walk, memo reads, contraction
  arithmetic) are charged *inside the thread bodies* to a private
  :class:`~repro.parallel.counters.ShardedTrafficCounter` shard — no
  shared mutable state under the ``threads`` backend — using each
  thread's *owned* node counts (a disjoint tiling of every level, so the
  merged totals are independent of the thread count);
* **kernel-level legs** (the DM_factor cache-rule gathers, output/memo
  writes, the conflicted scatter) are whole-kernel model quantities and
  are charged once on the coordinator after the shards merge.

The shard merge is vectorized and runs in fixed thread-id order, so the
``serial`` and ``threads`` backends report bit-identical tallies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compat import canonicalize_kwargs
from ..engines.base import EngineBase
from ..kernels.dispatch import resolve_tier, scale_rows_by_values
from ..parallel.counters import NULL_COUNTER, ShardedTrafficCounter, TrafficCounter
from ..parallel.executor import ReplicatedArray, SimulatedPool
from ..parallel.partition import ThreadPartition, nnz_partition, slice_partition
from ..tensor.csf import CsfTensor
from ..trace import NULL_TRACER, Tracer
from .csf_kernels import scatter_add_rows, thread_downward_k, thread_upward_sweep
from .memoization import SAVE_NONE, MemoPlan
from .proc_tasks import (
    ProcessEngineContext,
    charge_mode_u,
    charge_sweep,
    leaf_task,
    memo_direct_task,
    merge_counter_state,
    mode0_task,
    recompute_task,
)

__all__ = ["MemoizedMttkrp"]


class MemoizedMttkrp(EngineBase):
    """Executes STeF's memoized MTTKRP sequence over one CSF tensor.

    Parameters
    ----------
    csf:
        The tensor (already in the layout the planner chose).
    rank:
        Decomposition rank ``R``.
    plan:
        Which partial results to save (default: none).
    num_threads:
        Simulated thread count.
    partition:
        ``"nnz"`` — Algorithm 3 (default); ``"slice"`` — prior-work
        root-slice distribution (the Fig. 6.1 ablation arm).
    exec_backend:
        ``"serial"`` (deterministic), ``"threads"`` (real thread pool),
        or ``"processes"`` (persistent multiprocessing workers over
        shared-memory segments — bit-identical to ``serial``, scales
        wall-clock with cores).  The pre-1.0 spelling ``backend=`` now
        raises ``TypeError``.
    jit:
        Kernel-tier selection — ``"off"`` (default, NumPy tier),
        ``"auto"`` (compiled tier when Numba is available, silent
        fallback otherwise) or ``"on"`` (compiled tier or
        ``RuntimeError``).  Resolved once here via
        :func:`repro.kernels.resolve_tier`; the chosen tier name is
        exposed as :attr:`kernel_tier`.
    counter:
        Traffic accounting target; defaults to the no-op counter.
    tracer:
        Structured-tracing target (:mod:`repro.trace`); kernel spans
        carry this engine's exact counter deltas.  Defaults to the
        no-op tracer.
    """

    name = "memoized-mttkrp"

    def __init__(
        self,
        csf: CsfTensor,
        rank: int,
        *,
        plan: MemoPlan = SAVE_NONE,
        num_threads: int = 1,
        partition: str = "nnz",
        exec_backend: Optional[str] = None,
        jit: str = "off",
        counter: TrafficCounter = NULL_COUNTER,
        tracer: Tracer = NULL_TRACER,
        **removed,
    ) -> None:
        # Raises TypeError for the retired backend= spelling (and any
        # other unknown keyword) with a migration hint.
        canonicalize_kwargs("MemoizedMttkrp", removed, {"backend": "exec_backend"})
        backend = exec_backend if exec_backend is not None else "serial"
        plan.validate(csf.ndim)
        self.csf = csf
        self.rank = rank
        self.plan = plan
        #: Resolved kernel-ABI tier ("numpy" or "numba") for every sweep.
        self.kernel_tier = resolve_tier(jit)
        self.counter = counter
        self.tracer = tracer
        self.pool = SimulatedPool(num_threads, backend, tracer=tracer)
        if partition == "nnz":
            self.partition: ThreadPartition = nnz_partition(csf, num_threads)
        elif partition == "slice":
            self.partition = slice_partition(csf, num_threads)
        else:
            raise ValueError(f"unknown partition strategy {partition!r}")
        #: Per-thread counter shards; thread bodies charge their own shard
        #: and the coordinator merges after every kernel (race-free).
        self.shards = ShardedTrafficCounter.like(counter, self.pool.num_threads)
        #: Saved partial results, keyed by level; refreshed by mode0().
        self.memo: Dict[int, np.ndarray] = {}
        # Boundary-replicated accumulation buffers, allocated once per
        # kept level and reset() between kernel invocations so repeated
        # ALS iterations reuse them without double-merge corruption.
        self._reps: Dict[int, ReplicatedArray] = {}
        # Shared-memory state for the processes backend: the CSF is shared
        # once here; factor/memo slots are refreshed in place before each
        # dispatch (see repro.core.proc_tasks).
        self._proc: Optional[ProcessEngineContext] = None
        if backend == "processes":
            self._proc = ProcessEngineContext(
                csf,
                rank,
                self.partition.starts,
                self.pool.num_threads,
                counter.cache_elements,
                counter.enabled,
                tier=self.kernel_tier,
            )

    # ------------------------------------------------------------------
    @property
    def num_threads(self) -> int:
        return self.pool.num_threads

    def _level_factors(self, factors: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Reorder caller factors (original mode numbering) to CSF levels."""
        if len(factors) != self.csf.ndim:
            raise ValueError(
                f"need {self.csf.ndim} factor matrices, got {len(factors)}"
            )
        return [np.asarray(factors[m]) for m in self.csf.mode_order]

    def memo_bytes(self) -> int:
        """Current footprint of the retained partial results."""
        return int(sum(a.nbytes for a in self.memo.values()))

    def level_load_factor(self, u: int) -> float:
        """Load-imbalance stretch of the schedule *actually executing*
        level ``u``'s MTTKRP.

        Leaf-driven kernels (the mode-0 sweep, recompute-from-tensor and
        the leaf mode) deal work by the per-thread leaf counts; memo-fed
        kernels (Fig. 1b/1c) deal work by the node ranges of their source
        level, whose balance can differ substantially from the leaves'.
        """
        d = self.csf.ndim
        if not 0 <= u <= d - 1:
            raise ValueError(f"level {u} out of range")
        if u == 0 or u == d - 1:
            return self.partition.load_factor(d - 1)
        source = self.plan.source_level(u, d)
        if source == d - 1:
            return self.partition.load_factor(d - 1)
        return self.partition.load_factor(source)

    # ------------------------------------------------------------------
    # traffic accounting helpers (model-granularity semantic charges)
    # ------------------------------------------------------------------
    def _charge_thread_sweep(self, th: int) -> None:
        """Per-thread legs of the mode-0 sweep, charged to ``th``'s shard:
        structure reads over the thread's owned nodes at every level and
        one fused multiply-add per owned child fiber per rank column.
        Owned counts tile each level exactly, so the merged totals match
        the serial single-counter tallies for any thread count.

        Delegates to :func:`~repro.core.proc_tasks.charge_sweep` — the
        same definition process workers charge against, so the backends
        cannot drift apart in what they tally."""
        charge_sweep(
            self.shards.shard(th), self.partition.owned_counts(th), self.rank
        )

    def _charge_thread_mode_u(self, th: int, u: int, source: int) -> None:
        """Per-thread legs of a mode-``u`` kernel: the structure walk down
        to the source data, the memo reads of the thread's node range, and
        the downward-``k`` / recompute / Hadamard arithmetic.  Shared with
        the process workers via :func:`~repro.core.proc_tasks.charge_mode_u`."""
        charge_mode_u(
            self.shards.shard(th),
            self.partition.owned_counts(th),
            u,
            source,
            self.csf.ndim,
            self.rank,
        )

    def _charge_factor_reads(self, levels: Sequence[int]) -> None:
        m = self.csf.fiber_counts
        for j in levels:
            self.counter.read_factor_rows(
                m[j], self.csf.level_shape(j), self.rank, "factor"
            )

    # ------------------------------------------------------------------
    # mode 0: upward sweep + memoization
    # ------------------------------------------------------------------
    def mode0(self, factors: Sequence[np.ndarray]) -> np.ndarray:
        """MTTKRP for the root level; refreshes the saved partials.

        Returns the dense ``N_root × R`` result in the *original* index
        space of the root mode.
        """
        # Kernel span: carries this kernel's exact traffic deltas (the
        # only span level that passes counter= — see repro.trace).
        with self.tracer.span(
            "mttkrp.mode0",
            counter=self.counter,
            level=0,
            mode=int(self.csf.mode_order[0]),
            nnz=int(self.csf.values.shape[0]),
            threads=self.num_threads,
        ):
            return self._mode0_impl(factors)

    def _mode0_impl(self, factors: Sequence[np.ndarray]) -> np.ndarray:
        csf, d, rank = self.csf, self.csf.ndim, self.rank
        lf = self._level_factors(factors)
        part = self.partition
        self.memo.clear()
        self.shards.reset()

        keep_levels = sorted(set(self.plan.save_levels) | {0})
        reps = self._replicated_buffers(keep_levels)

        if self._proc is not None:
            self._dispatch_mode0(lf, keep_levels, reps)
        else:

            def body(th: int) -> Dict[int, Tuple[int, np.ndarray]]:
                self._charge_thread_sweep(th)
                lo, hi = part.leaf_range(th)
                return thread_upward_sweep(
                    csf, lf, lo, hi, stop_level=0, tier=self.kernel_tier
                )

            results = self.pool.map(body)
            for th, res in enumerate(results):
                for lvl in keep_levels:
                    nlo, tp = res[lvl]
                    reps[lvl].view(th, nlo, nlo + tp.shape[0])[:] += tp

        for lvl in self.plan.save_levels:
            self.memo[lvl] = reps[lvl].merge()
            if self._proc is not None:
                # Keep the shared P^(lvl) slot current for later mode-u
                # dispatches this iteration.
                self._proc.refresh_memo(lvl, self.memo[lvl])
        t0 = reps[0].merge()
        out = np.zeros((csf.level_shape(0), rank))
        out[csf.idx[0]] = t0

        # Accounting: per-thread traversal/sweep legs merged from the
        # shards, then the kernel-level factor gathers and output + memo
        # writes (the boundary-replication rows are the +T).
        self.shards.merge_into(self.counter)
        self._charge_factor_reads(range(1, d))
        self.counter.write(csf.level_shape(0) * rank, "output")
        for lvl in self.plan.save_levels:
            size = (csf.fiber_counts[lvl] + self.num_threads) * rank
            self.counter.write(size, "memo")
            # Write-allocate: streaming stores into the fresh P^(lvl)
            # buffer read each line before overwriting (Section IV-C's
            # mode-0 read-side memo term).
            self.counter.read(size, "memo-allocate")
        return out

    def _dispatch_mode0(
        self,
        lf: List[np.ndarray],
        keep_levels: Sequence[int],
        reps: Dict[int, ReplicatedArray],
    ) -> None:
        """Processes-backend mode-0: workers run the identical upward
        sweep on the shared CSF and write their kept partials straight
        into the shm-backed ReplicatedArray stripes; the coordinator
        records the written ranges (same id order as serial, so
        :meth:`ReplicatedArray.merge` folds them identically) and folds
        each worker's traffic back into its shard."""
        proc = self._proc
        assert proc is not None
        proc.refresh_factors(lf)
        ctx = proc.base_ctx()
        rep_tokens = {lvl: proc.rep_tokens[lvl] for lvl in keep_levels}
        payloads = [
            {
                "ctx": ctx,
                "th": th,
                "keep_levels": tuple(keep_levels),
                "rep": rep_tokens,
            }
            for th in range(self.num_threads)
        ]
        results = self.pool.run_tasks(mode0_task, payloads)
        for th, res in enumerate(results):
            merge_counter_state(self.shards.shard(th), res["traffic"])
            for lvl in keep_levels:
                nlo, nrows = res["ranges"][lvl]
                # Record the range (lifecycle + sanitizer checks); the
                # worker already accumulated into these buffer slots.
                reps[lvl].view(th, nlo, nlo + nrows)

    def _replicated_buffers(
        self, keep_levels: Sequence[int]
    ) -> Dict[int, ReplicatedArray]:
        """Reusable boundary-replicated buffers for ``keep_levels`` —
        allocated on first use, ``reset()`` on every later invocation so
        repeated mode-0 sweeps never merge stale stripes twice.  Under
        the processes backend the storage is a shared-memory segment that
        workers write directly."""
        reps: Dict[int, ReplicatedArray] = {}
        for lvl in keep_levels:
            rep = self._reps.get(lvl)
            if rep is None:
                buffer = (
                    self._proc.rep_buffer(lvl, self.csf.fiber_counts[lvl])
                    if self._proc is not None
                    else None
                )
                rep = ReplicatedArray(
                    self.csf.fiber_counts[lvl],
                    self.rank,
                    self.num_threads,
                    buffer=buffer,
                )
                self._reps[lvl] = rep
            else:
                rep.reset()
            reps[lvl] = rep
        return reps

    # ------------------------------------------------------------------
    # modes u > 0
    # ------------------------------------------------------------------
    def mode_level(self, factors: Sequence[np.ndarray], u: int) -> np.ndarray:
        """MTTKRP for CSF level ``u``; ``mode0`` must have run this
        iteration so the plan's saved partials are populated."""
        csf, d = self.csf, self.csf.ndim
        if u == 0:
            return self.mode0(factors)
        if not 0 < u <= d - 1:
            raise ValueError(f"level {u} out of range")
        lf = self._level_factors(factors)
        source = self.plan.source_level(u, d) if u < d - 1 else d - 1
        if source < d - 1 and source not in self.memo:
            raise RuntimeError(
                f"plan saves P^({source}) but mode0 has not populated it"
            )
        with self.tracer.span(
            "mttkrp.mode_level",
            counter=self.counter,
            level=u,
            source=source,
            mode=int(csf.mode_order[u]),
            nnz=int(csf.values.shape[0]),
            threads=self.num_threads,
        ):
            return self._mode_level_impl(lf, u, source)

    def _mode_level_impl(
        self, lf: List[np.ndarray], u: int, source: int
    ) -> np.ndarray:
        csf, d, rank = self.csf, self.csf.ndim, self.rank
        out = np.zeros((csf.level_shape(u), rank))
        self.shards.reset()

        if self._proc is not None:
            contribs = self._proc_mode_u_contribs(lf, u, source)
        elif u == d - 1:
            contribs = self._leaf_mode_contribs(lf)
        elif source == u:
            contribs = self._memo_direct_contribs(lf, u)
        else:
            contribs = self._recompute_contribs(lf, u, source)
        for nlo, contrib in contribs:
            scatter_add_rows(
                out,
                csf.idx[u][nlo : nlo + contrib.shape[0]],
                contrib,
                tier=self.kernel_tier,
            )

        self.shards.merge_into(self.counter)
        self._charge_mode_u(u, source)
        return out

    def _memo_direct_contribs(
        self, lf: List[np.ndarray], u: int
    ) -> List[Tuple[int, np.ndarray]]:
        """Fig. 1b: ``k_{u-1} ⊙ P^(u)`` over disjoint node ownership."""
        csf, part, memo = self.csf, self.partition, self.memo[u]

        def body(th: int) -> Tuple[int, np.ndarray]:
            self._charge_thread_mode_u(th, u, u)
            a, b = int(part.starts[th, u]), int(part.starts[th + 1, u])
            k = thread_downward_k(csf, lf, u, a, b, tier=self.kernel_tier)
            return a, k * memo[a:b]

        return self.pool.map(body)

    def _recompute_contribs(
        self, lf: List[np.ndarray], u: int, source: int
    ) -> List[Tuple[int, np.ndarray]]:
        """Fig. 1c/1d: rebuild ``t_u`` on the fly from ``P^(source)`` (or
        the tensor when ``source == d-1``) and fuse with the ``k`` sweep.

        Boundary nodes at level ``u`` are computed partially by adjacent
        threads; the partials carry identical ``k`` rows, so scattering
        each thread's ``k ⊙ t_partial`` sums to the exact result.
        """
        csf, part, d = self.csf, self.partition, self.csf.ndim
        init = self.memo[source] if source < d - 1 else None

        def body(th: int) -> Tuple[int, np.ndarray]:
            self._charge_thread_mode_u(th, u, source)
            if source == d - 1:
                lo, hi = part.leaf_range(th)
                res = thread_upward_sweep(
                    csf, lf, lo, hi, stop_level=u, tier=self.kernel_tier
                )
            else:
                a, b = int(part.starts[th, source]), int(part.starts[th + 1, source])
                res = thread_upward_sweep(
                    csf,
                    lf,
                    a,
                    b,
                    start_level=source,
                    init=init,
                    stop_level=u,
                    tier=self.kernel_tier,
                )
            nlo, tp = res[u]
            k = thread_downward_k(
                csf, lf, u, nlo, nlo + tp.shape[0], tier=self.kernel_tier
            )
            return nlo, k * tp

        return self.pool.map(body)

    def _leaf_mode_contribs(
        self, lf: List[np.ndarray]
    ) -> List[Tuple[int, np.ndarray]]:
        """Leaf-mode kernel: ``Ā[idx] += val · k_{d-2}`` per leaf."""
        csf, part, d = self.csf, self.partition, self.csf.ndim

        def body(th: int) -> Tuple[int, np.ndarray]:
            self._charge_thread_mode_u(th, d - 1, d - 1)
            lo, hi = part.leaf_range(th)
            k = thread_downward_k(csf, lf, d - 1, lo, hi, tier=self.kernel_tier)
            return lo, scale_rows_by_values(
                csf.values, k, lo, hi, tier=self.kernel_tier
            )

        return self.pool.map(body)

    def _proc_mode_u_contribs(
        self, lf: List[np.ndarray], u: int, source: int
    ) -> List[Tuple[int, np.ndarray]]:
        """Processes-backend modes ``u > 0``: dispatch the matching
        module-level task, read each worker's contribution back through
        its scratch segment (zero-copy) and fold its traffic into the
        shard.  The coordinator then scatters in thread-id order exactly
        as the serial path does."""
        proc = self._proc
        assert proc is not None
        proc.refresh_factors(lf)
        ctx = proc.base_ctx()
        d = self.csf.ndim
        ths = range(self.num_threads)
        if u == d - 1:
            results = self.pool.run_tasks(
                leaf_task, [{"ctx": ctx, "th": th} for th in ths]
            )
        elif source == u:
            results = self.pool.run_tasks(
                memo_direct_task, [{"ctx": ctx, "th": th, "u": u} for th in ths]
            )
        else:
            results = self.pool.run_tasks(
                recompute_task,
                [{"ctx": ctx, "th": th, "u": u, "source": source} for th in ths],
            )
        contribs: List[Tuple[int, np.ndarray]] = []
        for th, (kind, nlo, val, traffic) in enumerate(results):
            merge_counter_state(self.shards.shard(th), traffic)
            contrib = proc.scratch_view(th, val) if kind == "shm" else val
            contribs.append((nlo, contrib))
        return contribs

    def _charge_mode_u(self, u: int, source: int) -> None:
        """Kernel-level legs of a mode-``u`` charge (the per-thread legs
        live in :meth:`_charge_thread_mode_u`): the DM_factor cache-rule
        gathers and the conflicted output scatter are whole-kernel model
        quantities, charged once on the coordinator."""
        csf, d, rank = self.csf, self.csf.ndim, self.rank
        m = csf.fiber_counts
        if source == d - 1:
            # Every contracted factor is gathered while recomputing.
            self._charge_factor_reads([j for j in range(d) if j != u])
        else:
            self._charge_factor_reads(
                [j for j in range(source) if j != u]
            )
        # Scattered accumulation into Ā^(u): atomics or privatization
        # (Algorithm 4 lines 13-14) — never the cheap mode-0 path.
        self.counter.scatter_update(
            m[u], csf.level_shape(u), rank, self.num_threads, "output"
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the shared-memory segments of the processes backend
        (no-op for the others).  Also triggered by garbage collection;
        calling it explicitly just makes the release deterministic."""
        if self._proc is not None:
            self._reps.clear()
            self._proc.close()
            self._proc = None

    # ------------------------------------------------------------------
    def iteration_results(
        self, factors: Sequence[np.ndarray]
    ) -> List[Tuple[int, np.ndarray]]:
        """All ``d`` MTTKRPs of one CPD iteration in level order, *without*
        factor updates in between (kernel benchmarking; ALS uses
        :mod:`repro.cpd.als`, which interleaves the dense updates).

        Returns ``[(original_mode, result), ...]``.
        """
        out = []
        res0 = self.mode0(factors)
        out.append((self.csf.mode_order[0], res0))
        for u in range(1, self.csf.ndim):
            out.append((self.csf.mode_order[u], self.mode_level(factors, u)))
        return out
