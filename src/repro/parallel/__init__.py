"""Simulated shared-memory machine: specs, partitions, executor, counters."""

from .machine import AMD_TR_64, INTEL_CLX_18, MACHINES, MachineSpec
from .counters import NULL_COUNTER, ShardedTrafficCounter, TrafficCounter
from .partition import ThreadPartition, nnz_partition, slice_partition
from .executor import (
    EXEC_BACKENDS,
    ReplicatedArray,
    SimulatedPool,
    run_partitioned,
    sanitizer_enabled,
    shutdown_worker_pools,
)
from .shm import SharedArena, ShmToken, attach

__all__ = [
    "MachineSpec",
    "INTEL_CLX_18",
    "AMD_TR_64",
    "MACHINES",
    "TrafficCounter",
    "ShardedTrafficCounter",
    "NULL_COUNTER",
    "ThreadPartition",
    "nnz_partition",
    "slice_partition",
    "ReplicatedArray",
    "SimulatedPool",
    "run_partitioned",
    "sanitizer_enabled",
    "EXEC_BACKENDS",
    "shutdown_worker_pools",
    "SharedArena",
    "ShmToken",
    "attach",
]
