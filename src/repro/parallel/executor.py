"""Simulated shared-memory execution and boundary-replicated buffers.

The paper's kernels run as OpenMP parallel loops.  Here each "thread" is a
Python callable invoked with its thread id; the :class:`SimulatedPool`
runs them serially (deterministic, default — per-thread *work* is what
the study measures, not Python's GIL behaviour), on a real
``ThreadPoolExecutor`` (NumPy releases the GIL inside kernels, so this
exercises genuine concurrency on multicore hosts), or on a persistent
``multiprocessing`` worker pool (``backend="processes"``) — the first
backend where wall-clock genuinely scales with cores, because workers
never contend for one GIL.

Process workers cannot run closures: thread bodies for the ``processes``
backend are *module-level task functions* dispatched with
:meth:`SimulatedPool.run_tasks`, reading their inputs from
``multiprocessing.shared_memory`` segments (:mod:`repro.parallel.shm`)
and writing through slot-disjoint :class:`ReplicatedArray` stripes or
per-thread scratch segments.  Worker pools are shared per thread-count
across the whole process and shut down atexit, so constructing many
engines does not fork new interpreters each time.

:class:`ReplicatedArray` implements the paper's conflict-avoidance scheme
(Sections II-D and III-A): output rows live in a buffer of ``N + T`` rows
instead of ``N``; thread ``th`` writes row ``n`` at position ``n + th``.
Because per-thread node ranges are non-decreasing and overlap only at the
single shared boundary node, the shift makes every (node, thread) slot
unique — no atomics, no full privatization.  ``merge`` folds the shifted
per-thread stripes back into the canonical ``N×R`` array with ``T``
vectorized slice-adds.  The buffer may live in shared memory (pass
``buffer=``), in which case workers write the stripes and the coordinator
records ranges and merges — same arithmetic, same order, zero copies.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

import numpy as np
from numpy.typing import DTypeLike

from ..trace import NULL_TRACER, Tracer

__all__ = [
    "SimulatedPool",
    "ReplicatedArray",
    "sanitizer_enabled",
    "EXEC_BACKENDS",
    "shutdown_worker_pools",
]

#: The execution backends SimulatedPool accepts (also the CLI choices).
EXEC_BACKENDS = ("serial", "threads", "processes")


def sanitizer_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests the runtime race sanitizer.

    With the sanitizer on, every :meth:`ReplicatedArray.view` checks its
    *buffer-slot* range against every range recorded by **other** threads
    since the last reset and raises on overlap — a cross-thread overlap
    in buffer coordinates is a genuine write race that the thread-id
    shift was supposed to make impossible.  Legal boundary-node sharing
    (adjacent threads overlapping by one node in *node* coordinates)
    stays disjoint after the shift and passes.  Off by default: the check
    is O(views²) per kernel invocation.
    """
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")

T = TypeVar("T")


# ----------------------------------------------------------------------
# shared process-worker pools
# ----------------------------------------------------------------------
#: One persistent worker pool per worker count, shared by every
#: SimulatedPool with backend="processes" — forking T interpreters per
#: engine would dwarf any kernel; sharing amortizes the spawn across the
#: whole process.  Torn down atexit (concurrent.futures joins idle
#: workers on interpreter exit anyway; the explicit hook keeps shutdown
#: deterministic).
_WORKER_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _worker_pool(num_workers: int) -> ProcessPoolExecutor:
    pool = _WORKER_POOLS.get(num_workers)
    if pool is None:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            ctx = multiprocessing.get_context()
        pool = ProcessPoolExecutor(max_workers=num_workers, mp_context=ctx)
        _WORKER_POOLS[num_workers] = pool
    return pool


def shutdown_worker_pools() -> None:
    """Shut down every shared process-worker pool (idempotent)."""
    for pool in _WORKER_POOLS.values():
        pool.shutdown(wait=True, cancel_futures=True)
    _WORKER_POOLS.clear()


atexit.register(shutdown_worker_pools)


def _timed_task(task_payload: Tuple[Callable[[Any], T], Any]) -> Tuple[float, float, T]:
    """Run ``task(payload)`` bracketed by ``perf_counter`` reads.

    Module-level so it pickles by reference into process workers; the
    wrapped task function itself is likewise pickled by reference, so
    the traced dispatch crosses the process boundary exactly like the
    untraced one.
    """
    task, payload = task_payload
    t0 = time.perf_counter()
    out = task(payload)
    return t0, time.perf_counter(), out


class SimulatedPool:
    """Runs ``fn(th)`` for every thread id and collects the results.

    Parameters
    ----------
    num_threads:
        Number of simulated threads.
    backend:
        ``"serial"`` (default) executes thread bodies in order — fully
        deterministic, the mode used by tests and the traffic harness.
        ``"threads"`` uses a real thread pool.  ``"processes"`` uses a
        persistent multiprocessing worker pool; bodies must then be
        module-level task functions dispatched via :meth:`run_tasks`
        (closures are not picklable — see :mod:`repro.core.proc_tasks`).
    """

    def __init__(
        self,
        num_threads: int,
        backend: str = "serial",
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if backend not in EXEC_BACKENDS:
            raise ValueError(f"unknown backend {backend!r}")
        self.num_threads = num_threads
        self.backend = backend
        #: Observability hook: when enabled, map()/run_tasks() record one
        #: span per invocation plus a per-thread ``executor.task`` span
        #: on each simulated thread's lane (all three backends).
        self.tracer = tracer

    def map(self, fn: Callable[[int], T]) -> List[T]:
        """Invoke ``fn`` once per thread id, returning results in id order.

        Under ``backend="processes"`` arbitrary callables (closures,
        bound methods) cannot cross the process boundary; kernels must
        use :meth:`run_tasks` with a module-level task function instead.
        """
        if self.backend == "processes":
            raise TypeError(
                "SimulatedPool(backend='processes') cannot run closure "
                "bodies; dispatch a module-level task with run_tasks() "
                "(see repro.core.proc_tasks)"
            )
        tracer = self.tracer
        if not tracer.enabled:
            if self.backend == "serial" or self.num_threads == 1:
                return [fn(th) for th in range(self.num_threads)]
            with ThreadPoolExecutor(max_workers=self.num_threads) as pool:
                return list(pool.map(fn, range(self.num_threads)))

        # Traced path: each body reports its own perf_counter pair (taken
        # on the worker thread, so real concurrency shows as overlapping
        # lanes), recorded inside the parent span so nesting is kept.
        def timed(th: int) -> Tuple[float, float, T]:
            t0 = time.perf_counter()
            out = fn(th)
            return t0, time.perf_counter(), out

        with tracer.span(
            "executor.map", backend=self.backend, threads=self.num_threads
        ):
            if self.backend == "serial" or self.num_threads == 1:
                results = [timed(th) for th in range(self.num_threads)]
            else:
                with ThreadPoolExecutor(max_workers=self.num_threads) as pool:
                    results = list(pool.map(timed, range(self.num_threads)))
            for th, (t0, t1, _) in enumerate(results):
                tracer.record_span("executor.task", t0, t1, lane=th, thread=th)
        return [res for _, _, res in results]

    def run_tasks(
        self, task: Callable[[Any], T], payloads: Sequence[Any]
    ) -> List[T]:
        """Run ``task(payload)`` for every payload, results in order.

        The processes backend requires ``task`` to be a module-level
        function and every payload picklable (the :mod:`repro.lint`
        ``process-task-safety`` rule enforces the former statically).
        The serial and threads backends execute the same task function
        directly, so all three backends share one code path and stay
        bit-identical by construction.
        """
        tracer = self.tracer
        if not tracer.enabled:
            if self.backend == "processes" and self.num_threads > 1:
                pool = _worker_pool(self.num_threads)
                futures = [pool.submit(task, p) for p in payloads]
                return [f.result() for f in futures]
            if self.backend == "threads" and self.num_threads > 1:
                with ThreadPoolExecutor(max_workers=self.num_threads) as pool:
                    return list(pool.map(task, payloads))
            return [task(p) for p in payloads]
        return self._run_tasks_traced(task, payloads, tracer)

    def _run_tasks_traced(
        self, task: Callable[[Any], T], payloads: Sequence[Any], tracer: Tracer
    ) -> List[T]:
        """Traced dispatch: tasks run through :func:`_timed_task`, which
        measures inside the worker (thread **or** forked process — the
        monotonic clock is system-wide, so worker timestamps share the
        tracer's epoch) and ships the pair back on the result channel."""
        wrapped: List[Tuple[Callable[[Any], T], Any]] = [
            (task, p) for p in payloads
        ]
        with tracer.span(
            "executor.run_tasks",
            backend=self.backend,
            threads=self.num_threads,
            task=getattr(task, "__name__", str(task)),
        ):
            if self.backend == "processes" and self.num_threads > 1:
                pool = _worker_pool(self.num_threads)
                futures = [pool.submit(_timed_task, wp) for wp in wrapped]
                timed = [f.result() for f in futures]
            elif self.backend == "threads" and self.num_threads > 1:
                with ThreadPoolExecutor(max_workers=self.num_threads) as tpool:
                    timed = list(tpool.map(_timed_task, wrapped))
            else:
                timed = [_timed_task(wp) for wp in wrapped]
            for th, (t0, t1, _) in enumerate(timed):
                tracer.record_span("executor.task", t0, t1, lane=th, thread=th)
        return [res for _, _, res in timed]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimulatedPool(num_threads={self.num_threads}, backend={self.backend!r})"


class ReplicatedArray:
    """An ``(N + T) × R`` accumulation buffer with thread-id shifted writes.

    Thread ``th`` obtains a writable view of its node range with
    :meth:`view`; after all threads finish, :meth:`merge` produces the
    canonical ``N × R`` result.

    The buffer starts zeroed; every view is an *accumulation* target
    (kernels use ``+=``).

    Lifecycle
    ---------
    Buffers are reusable across kernel invocations (ALS iterations):
    call :meth:`reset` between invocations to zero exactly the stripes the
    previous invocation wrote and forget the recorded ranges.  Without the
    reset, a second round of ``view()`` calls would re-record the same
    ranges and :meth:`merge` would fold the (still populated) stripes
    twice — to guard against that, :meth:`view` rejects a range that
    overlaps one already recorded *by the same thread* since the last
    reset.  Overlaps between different threads are the boundary-node
    sharing the scheme exists for and remain legal.
    """

    def __init__(
        self,
        n_rows: int,
        rank: int,
        num_threads: int,
        dtype: DTypeLike = np.float64,
        buffer: Optional[np.ndarray] = None,
    ) -> None:
        if n_rows < 0 or rank < 1 or num_threads < 1:
            raise ValueError("invalid ReplicatedArray dimensions")
        self.n_rows = n_rows
        self.rank = rank
        self.num_threads = num_threads
        if buffer is None:
            self.buffer = np.zeros((n_rows + num_threads, rank), dtype=dtype)
        else:
            # Caller-provided storage (a shared-memory segment under the
            # processes backend): same lifecycle, externally visible pages.
            if buffer.shape != (n_rows + num_threads, rank):
                raise ValueError(
                    f"buffer shape {buffer.shape} != "
                    f"{(n_rows + num_threads, rank)}"
                )
            buffer[...] = 0.0
            self.buffer = buffer
        # Per-thread written node ranges (inclusive lo, exclusive hi),
        # recorded by view() and consumed by merge().
        self._ranges: List[Tuple[int, int, int]] = []
        # Sampled once at construction: the runtime race sanitizer
        # (REPRO_SANITIZE=1) cross-checks every view against other
        # threads' recorded buffer slots.
        self._sanitize = sanitizer_enabled()

    @property
    def nbytes(self) -> int:
        """Buffer footprint — the paper's Table II space accounting charges
        the replicated size ``(N + T)·R``."""
        return int(self.buffer.nbytes)

    def view(self, th: int, lo: int, hi: int) -> np.ndarray:
        """Writable slice covering node range ``[lo, hi)`` for thread
        ``th``, shifted by the thread id.

        Raises
        ------
        ValueError
            If the range is out of bounds, the thread id is invalid, or
            the range overlaps one this thread already recorded since the
            last :meth:`reset` (which would double-merge those rows).
            With ``REPRO_SANITIZE=1`` additionally raises when the view's
            *buffer slots* ``[lo+th, hi+th)`` overlap slots recorded by a
            different thread — a genuine cross-thread write race that the
            thread-id shift should have made impossible (legal
            boundary-node sharing stays slot-disjoint and passes).
        """
        if not 0 <= th < self.num_threads:
            raise ValueError(f"thread id {th} out of range")
        if not 0 <= lo <= hi <= self.n_rows:
            raise ValueError(f"node range [{lo}, {hi}) out of bounds")
        if hi > lo:
            for t_prev, a, b in self._ranges:
                if t_prev == th and a < hi and lo < b:
                    raise ValueError(
                        f"thread {th} view [{lo}, {hi}) overlaps its earlier "
                        f"view [{a}, {b}); call reset() between kernel "
                        "invocations"
                    )
                if (
                    self._sanitize
                    and t_prev != th
                    and a + t_prev < hi + th
                    and lo + th < b + t_prev
                ):
                    raise ValueError(
                        f"REPRO_SANITIZE: thread {th} view [{lo}, {hi}) "
                        f"(buffer slots [{lo + th}, {hi + th})) overlaps "
                        f"thread {t_prev} view [{a}, {b}) (buffer slots "
                        f"[{a + t_prev}, {b + t_prev})): cross-thread write "
                        "race — per-thread node ranges must be "
                        "non-decreasing and share at most one boundary node "
                        "between adjacent threads"
                    )
            self._ranges.append((th, lo, hi))
        return self.buffer[lo + th : hi + th]

    def reset(self) -> None:
        """Re-arm the buffer for the next kernel invocation.

        Zeroes only the stripes previous views actually wrote (cheap when
        threads touched a small part of a large buffer) and clears the
        recorded ranges so :meth:`merge` cannot double-count them.
        """
        for th, lo, hi in self._ranges:
            self.buffer[lo + th : hi + th] = 0.0
        self._ranges.clear()

    def merge(self) -> np.ndarray:
        """Fold the shifted per-thread stripes into the canonical array.

        One vectorized slice-add per recorded view; the result has shape
        ``(n_rows, rank)``.
        """
        out = np.zeros((self.n_rows, self.rank), dtype=self.buffer.dtype)
        for th, lo, hi in self._ranges:
            if hi > lo:
                out[lo:hi] += self.buffer[lo + th : hi + th]
        return out

    def merge_into(self, out: np.ndarray) -> np.ndarray:
        """Like :meth:`merge` but accumulates into a caller-provided array."""
        if out.shape != (self.n_rows, self.rank):
            raise ValueError(
                f"target shape {out.shape} != {(self.n_rows, self.rank)}"
            )
        for th, lo, hi in self._ranges:
            if hi > lo:
                out[lo:hi] += self.buffer[lo + th : hi + th]
        return out


def run_partitioned(
    pool: SimulatedPool,
    body: Callable[[int], T],
) -> List[T]:
    """Convenience wrapper mirroring ``#pragma omp parallel``: run ``body``
    on every simulated thread of ``pool``."""
    return pool.map(body)
