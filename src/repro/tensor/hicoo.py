"""HiCOO: Hierarchical COO blocked sparse tensor storage (Li et al.).

HiCOO compresses COO by grouping non-zeros into aligned ``2^B``-wide
multidimensional blocks: each block stores its coordinates once
(``bptr``/``bind``) and the non-zeros inside store only ``B``-bit offsets
(one byte per mode for ``B <= 8``).  The format appears in the paper's
related-work discussion (Li et al.'s HiCOO/reordering line [6], [20]); it
is implemented here both as a substrate for the Lexi-Order reordering
experiments (:mod:`repro.reorder`) and because its block count is a
useful *locality metric*: fewer blocks for the same nnz means non-zeros
are more clustered, which is exactly what reordering tries to achieve.

Layout
------
* ``block_coords`` — ``(ndim, n_blocks)`` block indices (int64), sorted.
* ``block_ptr`` — ``(n_blocks + 1,)`` ranges into the element arrays.
* ``offsets`` — ``(ndim, nnz)`` within-block offsets (uint8 for B<=8).
* ``values`` — ``(nnz,)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .coo import CooTensor

__all__ = ["HicooTensor"]


@dataclass(frozen=True)
class HicooTensor:
    """A sparse tensor in HiCOO blocked format.

    Parameters
    ----------
    block_bits:
        ``B``: blocks are ``2^B`` wide in every mode (HiCOO's default is
        ``B = 7``, i.e. 128^d blocks).
    """

    block_bits: int
    block_coords: np.ndarray
    block_ptr: np.ndarray
    offsets: np.ndarray
    values: np.ndarray
    shape: Tuple[int, ...]

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: CooTensor, block_bits: int = 7) -> "HicooTensor":
        """Block a COO tensor; non-zeros are sorted by block then offset."""
        if not 1 <= block_bits <= 8:
            raise ValueError("block_bits must be in 1..8 (uint8 offsets)")
        b = np.int64(block_bits)
        blocks = coo.indices >> b
        # Sort by block coordinates (mode 0 primary), then by offsets.
        order = np.lexsort(
            tuple(coo.indices[m] for m in range(coo.ndim - 1, -1, -1))
        )
        # Re-sort with block as the major key: build composite keys.
        blk_sorted = blocks[:, order]
        keys = tuple(blk_sorted[m] for m in range(coo.ndim - 1, -1, -1))
        order2 = order[np.lexsort(keys)]
        blocks = coo.indices[:, order2] >> b
        idx = coo.indices[:, order2]
        vals = coo.values[order2]

        if coo.nnz == 0:
            return cls(
                block_bits,
                np.empty((coo.ndim, 0), dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                np.empty((coo.ndim, 0), dtype=np.uint8),
                vals,
                coo.shape,
            )
        change = np.any(blocks[:, 1:] != blocks[:, :-1], axis=0)
        starts = np.concatenate(([0], np.flatnonzero(change) + 1))
        block_coords = blocks[:, starts]
        block_ptr = np.concatenate((starts, [coo.nnz])).astype(np.int64)
        offsets = (idx - (block_coords[:, np.searchsorted(
            starts, np.arange(coo.nnz), side="right") - 1] << b)).astype(np.uint8)
        return cls(block_bits, block_coords, block_ptr, offsets, vals, coo.shape)

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    @property
    def n_blocks(self) -> int:
        """Number of occupied blocks — the locality metric reordering
        minimizes (fewer blocks = denser clustering)."""
        return int(self.block_coords.shape[1])

    @property
    def average_block_occupancy(self) -> float:
        """Mean non-zeros per occupied block."""
        if self.n_blocks == 0:
            return 0.0
        return self.nnz / self.n_blocks

    def footprint_bytes(self) -> int:
        """Storage: block coords (8B/mode) + ptr + 1B/mode offsets + values."""
        return int(
            self.block_coords.nbytes
            + self.block_ptr.nbytes
            + self.offsets.nbytes
            + self.values.nbytes
        )

    # ------------------------------------------------------------------
    def to_coo(self) -> CooTensor:
        """Reconstruct the COO tensor."""
        if self.nnz == 0:
            return CooTensor.from_arrays(
                np.empty((self.ndim, 0), dtype=np.int64),
                self.values,
                self.shape,
            )
        b = np.int64(self.block_bits)
        counts = np.diff(self.block_ptr)
        base = np.repeat(self.block_coords << b, counts, axis=1)
        idx = base + self.offsets.astype(np.int64)
        return CooTensor.from_arrays(idx, self.values, self.shape)

    def block_histogram(self) -> np.ndarray:
        """Histogram of per-block occupancy (reordering analysis)."""
        return np.diff(self.block_ptr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HicooTensor(B={self.block_bits}, nnz={self.nnz}, "
            f"blocks={self.n_blocks}, occ={self.average_block_occupancy:.2f})"
        )
