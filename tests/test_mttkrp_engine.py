"""Tests for the memoized MTTKRP engine (Algorithms 4-8) against the
dense oracle, across plans, thread counts, partitions and backends."""

import numpy as np
import pytest

from repro.core import MemoPlan, MemoizedMttkrp, SAVE_NONE, enumerate_plans
from repro.ops import mttkrp_dense
from repro.parallel import TrafficCounter
from repro.tensor import CsfTensor
from tests.conftest import make_factors


@pytest.fixture
def setup4(coo4):
    csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
    factors = make_factors(coo4.shape, 4, seed=42)
    dense = coo4.to_dense()
    return csf, factors, dense


class TestCorrectness:
    @pytest.mark.parametrize("plan_levels", [(), (1,), (2,), (1, 2)])
    @pytest.mark.parametrize("threads", [1, 3, 6])
    def test_all_modes_all_plans(self, setup4, plan_levels, threads):
        csf, factors, dense = setup4
        engine = MemoizedMttkrp(
            csf, 4, plan=MemoPlan(plan_levels), num_threads=threads
        )
        for mode, result in engine.iteration_results(factors):
            assert np.allclose(result, mttkrp_dense(dense, factors, mode)), mode

    @pytest.mark.parametrize("partition", ["nnz", "slice"])
    def test_partition_strategies_agree(self, setup4, partition):
        csf, factors, dense = setup4
        engine = MemoizedMttkrp(
            csf, 4, plan=MemoPlan((1,)), num_threads=4, partition=partition
        )
        for mode, result in engine.iteration_results(factors):
            assert np.allclose(result, mttkrp_dense(dense, factors, mode))

    def test_threads_backend_matches_serial(self, setup4):
        csf, factors, dense = setup4
        serial = MemoizedMttkrp(csf, 4, plan=MemoPlan((1, 2)), num_threads=4)
        threaded = MemoizedMttkrp(
            csf, 4, plan=MemoPlan((1, 2)), num_threads=4, exec_backend="threads"
        )
        rs = serial.iteration_results(factors)
        rt = threaded.iteration_results(factors)
        for (m1, a), (m2, b) in zip(rs, rt):
            assert m1 == m2
            assert np.allclose(a, b)

    def test_permuted_csf_order(self, coo4):
        factors = make_factors(coo4.shape, 3, seed=1)
        dense = coo4.to_dense()
        csf = CsfTensor.from_coo(coo4, (2, 0, 3, 1))
        engine = MemoizedMttkrp(csf, 3, plan=MemoPlan((2,)), num_threads=2)
        for mode, result in engine.iteration_results(factors):
            assert np.allclose(result, mttkrp_dense(dense, factors, mode))

    def test_3d_and_5d(self, coo3, coo5):
        for coo, rank in ((coo3, 3), (coo5, 2)):
            dense = coo.to_dense()
            factors = make_factors(coo.shape, rank, seed=2)
            for plan in enumerate_plans(coo.ndim):
                engine = MemoizedMttkrp(
                    CsfTensor.from_coo(coo), rank, plan=plan, num_threads=3
                )
                for mode, result in engine.iteration_results(factors):
                    assert np.allclose(
                        result, mttkrp_dense(dense, factors, mode)
                    ), (coo.ndim, plan, mode)


class TestMemoSemantics:
    def test_memo_populated_per_plan(self, setup4):
        csf, factors, _ = setup4
        engine = MemoizedMttkrp(csf, 4, plan=MemoPlan((1,)), num_threads=2)
        engine.mode0(factors)
        assert set(engine.memo) == {1}
        assert engine.memo[1].shape == (csf.fiber_counts[1], 4)

    def test_memo_refreshed_on_mode0(self, setup4):
        csf, factors, dense = setup4
        engine = MemoizedMttkrp(csf, 4, plan=MemoPlan((1,)), num_threads=2)
        engine.mode0(factors)
        first = engine.memo[1].copy()
        factors2 = make_factors(csf.shape, 4, seed=99)
        engine.mode0(factors2)
        assert not np.allclose(engine.memo[1], first)
        res = engine.mode_level(factors2, 1)
        assert np.allclose(res, mttkrp_dense(dense, factors2, csf.mode_order[1]))

    def test_missing_memo_raises(self, setup4):
        csf, factors, _ = setup4
        engine = MemoizedMttkrp(csf, 4, plan=MemoPlan((1,)), num_threads=2)
        with pytest.raises(RuntimeError, match="mode0"):
            engine.mode_level(factors, 1)

    def test_memo_bytes(self, setup4):
        csf, factors, _ = setup4
        engine = MemoizedMttkrp(csf, 4, plan=MemoPlan((1, 2)), num_threads=2)
        assert engine.memo_bytes() == 0
        engine.mode0(factors)
        expected = (csf.fiber_counts[1] + csf.fiber_counts[2]) * 4 * 8
        assert engine.memo_bytes() == expected

    def test_invalid_plan_for_ndim(self, coo3):
        csf = CsfTensor.from_coo(coo3)
        with pytest.raises(ValueError):
            MemoizedMttkrp(csf, 2, plan=MemoPlan((2,)))

    def test_invalid_partition_name(self, setup4):
        csf, _, _ = setup4
        with pytest.raises(ValueError, match="partition"):
            MemoizedMttkrp(csf, 2, partition="hash")

    def test_wrong_factor_count_raises(self, setup4):
        csf, factors, _ = setup4
        engine = MemoizedMttkrp(csf, 4)
        with pytest.raises(ValueError, match="factor matrices"):
            engine.mode0(factors[:2])

    def test_bad_level_raises(self, setup4):
        csf, factors, _ = setup4
        engine = MemoizedMttkrp(csf, 4)
        engine.mode0(factors)
        with pytest.raises(ValueError):
            engine.mode_level(factors, 7)


class TestTrafficCharging:
    def test_memo_plan_changes_traffic(self, setup4):
        csf, factors, _ = setup4
        def run(plan):
            c = TrafficCounter()
            engine = MemoizedMttkrp(csf, 4, plan=plan, num_threads=2, counter=c)
            engine.iteration_results(factors)
            return c

        none = run(SAVE_NONE)
        some = run(MemoPlan((1,)))
        assert none.total != some.total
        assert "w:memo" in some.by_category
        assert "w:memo" not in none.by_category
        assert "r:memo" in some.by_category

    def test_structure_and_factor_categories_present(self, setup4):
        csf, factors, _ = setup4
        c = TrafficCounter()
        engine = MemoizedMttkrp(csf, 4, num_threads=2, counter=c)
        engine.iteration_results(factors)
        assert c.by_category["r:structure"] > 0
        assert c.by_category["r:factor"] > 0
        assert c.writes > 0
