"""Unit tests for memoization plans."""

import pytest

from repro.core import SAVE_ALL, SAVE_NONE, MemoPlan, enumerate_plans
from repro.tensor import CsfTensor


class TestMemoPlan:
    def test_levels_sorted_and_deduped(self):
        plan = MemoPlan((3, 1, 1, 2))
        assert plan.save_levels == (1, 2, 3)

    def test_level_zero_rejected(self):
        with pytest.raises(ValueError):
            MemoPlan((0,))

    def test_validate_against_ndim(self):
        plan = MemoPlan((3,))
        plan.validate(5)  # levels 1..3 are fine for 5-D
        with pytest.raises(ValueError):
            plan.validate(4)  # 4-D allows only 1..2

    def test_saves(self):
        plan = MemoPlan((1, 3))
        assert plan.saves(1) and plan.saves(3)
        assert not plan.saves(2)


class TestSourceLevel:
    def test_saved_level_is_its_own_source(self):
        plan = MemoPlan((1, 2))
        assert plan.source_level(1, 4) == 1
        assert plan.source_level(2, 4) == 2

    def test_shallowest_saved_above(self):
        plan = MemoPlan((2,))
        assert plan.source_level(1, 4) == 2

    def test_falls_back_to_tensor(self):
        assert SAVE_NONE.source_level(1, 4) == 3
        assert SAVE_NONE.source_level(2, 4) == 3

    def test_mode0_rejected(self):
        with pytest.raises(ValueError):
            SAVE_NONE.source_level(0, 4)

    def test_leaf_mode_sources_from_tensor(self):
        plan = MemoPlan((1, 2))
        # Level d-1 is never saved; source_level(d-1) -> d-1 only via
        # fallback since save levels < d-1.
        assert plan.source_level(3, 4) == 3


class TestEnumeration:
    @pytest.mark.parametrize("ndim,count", [(2, 1), (3, 2), (4, 4), (5, 8)])
    def test_plan_counts(self, ndim, count):
        assert len(list(enumerate_plans(ndim))) == count

    def test_first_is_empty_last_is_full(self):
        plans = list(enumerate_plans(4))
        assert plans[0] == SAVE_NONE
        assert plans[-1] == SAVE_ALL(4)

    def test_all_unique(self):
        plans = list(enumerate_plans(5))
        assert len(set(plans)) == len(plans)


class TestSpaceAccounting:
    def test_memo_elements(self, csf4):
        plan = MemoPlan((1, 2))
        rank, threads = 4, 3
        expected = sum(
            (csf4.fiber_counts[i] + threads) * rank for i in (1, 2)
        )
        assert plan.memo_elements(csf4, rank, threads) == expected

    def test_memo_bytes_is_8x_elements(self, csf4):
        plan = MemoPlan((1,))
        assert plan.memo_bytes(csf4, 4, 2) == 8 * plan.memo_elements(csf4, 4, 2)

    def test_empty_plan_zero_space(self, csf4):
        assert SAVE_NONE.memo_elements(csf4, 8, 4) == 0

    def test_out_of_range_plan_raises(self, csf4):
        with pytest.raises(ValueError):
            MemoPlan((3,)).memo_elements(csf4, 4, 1)
