"""Deprecated-keyword compatibility shim.

Three PRs of engines accreted three spellings for the same knobs:
``threads`` vs ``num_threads``, ``backend`` vs ``exec_backend`` (and, on
:func:`~repro.cpd.als.cp_als`, ``backend=`` meaning the *engine object*).
The canonical names are now

* ``num_threads`` — simulated/real thread count,
* ``exec_backend`` — ``"serial" | "threads" | "processes"`` pool mode,
* ``engine`` — the MTTKRP engine object handed to ``cp_als``.

Old spellings keep working through :func:`canonicalize_kwargs`, which
warns **once per (owner, name)** with :class:`DeprecationWarning` and
raises ``TypeError`` for genuinely unknown keywords — so typos still
fail loudly instead of being swallowed by a ``**kwargs`` sink.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Mapping, Set, Tuple

__all__ = ["canonicalize_kwargs", "resolve_engine_aliases"]

#: (owner, old-name) pairs already warned about this interpreter.
_WARNED: Set[Tuple[str, str]] = set()


def canonicalize_kwargs(
    owner: str,
    extra: Dict[str, Any],
    aliases: Mapping[str, str],
) -> Dict[str, Any]:
    """Translate deprecated keywords to canonical names.

    Parameters
    ----------
    owner:
        The accepting callable's name (warning text + warn-once key).
    extra:
        The ``**kwargs`` catch-all as received.
    aliases:
        ``{old_name: canonical_name}``.

    Returns
    -------
    ``{canonical_name: value}`` for every recognized deprecated keyword.

    Raises
    ------
    TypeError
        For keywords that are neither canonical nor a known alias, or
        when the same canonical keyword arrives under two spellings.
    """
    out: Dict[str, Any] = {}
    for key, value in extra.items():
        new = aliases.get(key)
        if new is None:
            raise TypeError(f"{owner}() got an unexpected keyword argument {key!r}")
        if new in out:
            raise TypeError(
                f"{owner}() got duplicate values for {new!r} "
                f"(via deprecated alias {key!r})"
            )
        if (owner, key) not in _WARNED:
            _WARNED.add((owner, key))
            warnings.warn(
                f"{owner}(..., {key}=) is deprecated; use {new}=",
                DeprecationWarning,
                stacklevel=3,
            )
        out[new] = value
    return out


def resolve_engine_aliases(
    owner: str,
    num_threads,
    exec_backend,
    extra: Dict[str, Any],
) -> Tuple[Any, str]:
    """The engine-constructor flavor of :func:`canonicalize_kwargs`.

    Folds the two deprecated engine spellings (``threads=`` →
    ``num_threads=``, ``backend=`` → ``exec_backend=``) into the
    canonical values, raising ``TypeError`` when a knob arrives under
    both names, and normalizes a defaulted ``exec_backend`` to
    ``"serial"``.
    """
    legacy = canonicalize_kwargs(
        owner, extra, {"backend": "exec_backend", "threads": "num_threads"}
    )
    if "exec_backend" in legacy:
        if exec_backend is not None:
            raise TypeError(
                f"{owner}() got both exec_backend= and its deprecated "
                "alias backend="
            )
        exec_backend = legacy["exec_backend"]
    if "num_threads" in legacy:
        if num_threads is not None:
            raise TypeError(
                f"{owner}() got both num_threads= and its deprecated "
                "alias threads="
            )
        num_threads = legacy["num_threads"]
    return num_threads, (exec_backend if exec_backend is not None else "serial")
