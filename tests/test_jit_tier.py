"""Tests for the flat-array kernel ABI and its tier dispatch.

Four contracts:

* **NumPy-tier reference semantics** — every ABI entry point matches the
  obvious NumPy formula it abstracts;
* **tier resolution** — ``resolve_tier`` maps the engines' ``jit=``
  keyword per the documented table, and ``REPRO_NO_JIT=1`` disables the
  compiled tier globally (re-read on every call);
* **forced fallback** — with ``REPRO_NO_JIT=1`` the ``*-jit`` engines
  are the plain engines: bit-identical outputs and exactly equal
  traffic, with ``kernel_tier == "numpy"``;
* **tier equivalence** (requires Numba) — the compiled tier is
  bit-identical and traffic-equal to the NumPy tier across seeds, exec
  backends and every jit-capable engine.
"""

import numpy as np
import pytest

from repro.engines import create_engine
from repro.kernels import dispatch
from repro.parallel.counters import TrafficCounter
from repro.tensor import random_tensor
from tests.conftest import make_factors

#: (compiled-tier name, reference name) for every jit-capable engine.
ENGINE_PAIRS = [
    ("stef-jit", "stef"),
    ("stef2-jit", "stef2"),
    ("taco-jit", "taco"),
    ("dimtree-jit", "dimtree"),
]


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestNumpyTierAbi:
    """Each ABI entry point against the NumPy formula it abstracts."""

    def test_segment_reduce_rows(self, rng):
        rows = rng.standard_normal((12, 4))
        starts = np.array([0, 3, 3, 7, 10])
        got = dispatch.segment_reduce_rows(rows, starts)
        assert np.array_equal(got, np.add.reduceat(rows, starts, axis=0))

    def test_segment_sum_rows(self, rng):
        data = rng.standard_normal((10, 3))
        seg = np.array([0, 0, 2, 2, 2, 3, 5, 5, 5, 5])
        got = dispatch.segment_sum_rows(data, seg, 6)
        want = np.zeros((6, 3))
        np.add.at(want, seg, data)
        assert got.shape == want.shape
        assert np.allclose(got, want)

    def test_scatter_rows_add(self, rng):
        rows = rng.standard_normal((9, 4))
        idx = np.array([4, 0, 4, 2, 0, 4, 1, 1, 3])
        got = np.zeros((5, 4))
        dispatch.scatter_rows_add(got, idx, rows)
        want = np.zeros((5, 4))
        np.add.at(want, idx, rows)
        assert np.allclose(got, want)

    def test_gather_multiply_rows(self, rng):
        rows = rng.standard_normal((4, 3))
        factor = rng.standard_normal((6, 3))
        idx = np.array([5, 0, 3, 3, 1, 2])
        got = dispatch.gather_multiply_rows(rows, factor, idx, 1, 5)
        assert np.array_equal(got, rows * factor[idx[1:5]])

    def test_value_gather_rows(self, rng):
        values = rng.standard_normal(6)
        factor = rng.standard_normal((4, 3))
        idx = np.array([3, 1, 0, 2, 1, 3])
        got = dispatch.value_gather_rows(values, factor, idx, 0, 6)
        assert np.array_equal(got, values[:, None] * factor[idx])

    def test_scale_rows_by_values(self, rng):
        values = rng.standard_normal(8)
        rows = rng.standard_normal((5, 2))
        got = dispatch.scale_rows_by_values(values, rows, 2, 7)
        assert np.array_equal(got, values[2:7, None] * rows)

    def test_take_factor_rows(self, rng):
        factor = rng.standard_normal((7, 2))
        idx = np.array([6, 2, 2, 0, 5])
        got = dispatch.take_factor_rows(factor, idx, 1, 4)
        assert np.array_equal(got, factor[idx[1:4]])

    def test_repeat_rows(self, rng):
        rows = rng.standard_normal((4, 3))
        counts = np.array([2, 0, 3, 1])
        got = dispatch.repeat_rows(rows, counts)
        assert np.array_equal(got, np.repeat(rows, counts, axis=0))

    def test_parent_of(self):
        ptr = np.array([0, 3, 3, 7, 10])
        # node i owns children [ptr[i], ptr[i+1]); empty node 1 is skipped
        assert dispatch.parent_of(ptr, 0) == 0
        assert dispatch.parent_of(ptr, 2) == 0
        assert dispatch.parent_of(ptr, 3) == 2
        assert dispatch.parent_of(ptr, 9) == 3


class TestResolveTier:
    def test_off_is_numpy(self):
        assert dispatch.resolve_tier("off") == dispatch.TIER_NUMPY

    def test_invalid_spelling(self):
        with pytest.raises(ValueError, match="jit must be one of"):
            dispatch.resolve_tier("sometimes")

    def test_no_jit_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        assert not dispatch.jit_available()
        assert dispatch.resolve_tier("auto") == dispatch.TIER_NUMPY
        with pytest.raises(RuntimeError, match="unavailable"):
            dispatch.resolve_tier("on")

    def test_env_reread_every_call(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        assert not dispatch.jit_available()
        monkeypatch.setenv("REPRO_NO_JIT", "0")
        # back to the import probe's verdict, whichever it is
        assert dispatch.jit_available() == dispatch._numba_importable()

    def test_auto_without_numba_falls_back(self, monkeypatch):
        monkeypatch.setattr(dispatch, "_NUMBA_IMPORTABLE", False)
        assert dispatch.resolve_tier("auto") == dispatch.TIER_NUMPY
        with pytest.raises(RuntimeError):
            dispatch.resolve_tier("on")


def _iteration(name, tensor, factors, *, exec_backend="serial", jit=None):
    counter = TrafficCounter()
    kwargs = {} if jit is None else {"jit": jit}
    with create_engine(
        name, tensor, 4, num_threads=2, exec_backend=exec_backend,
        counter=counter, **kwargs,
    ) as eng:
        results = eng.iteration_results(factors)
        tier = eng.kernel_tier
    return results, counter, tier


def _assert_equivalent(a, b):
    (res_a, cnt_a, _), (res_b, cnt_b, _) = a, b
    assert len(res_a) == len(res_b)
    for (mode_a, out_a), (mode_b, out_b) in zip(res_a, res_b):
        assert mode_a == mode_b
        assert np.array_equal(out_a, out_b)  # bit-identical
    assert cnt_a.snapshot() == cnt_b.snapshot()  # exactly equal traffic


class TestForcedFallback:
    """``REPRO_NO_JIT=1``: the ``*-jit`` engines ARE the plain engines."""

    @pytest.mark.parametrize("jit_name,base_name", ENGINE_PAIRS)
    def test_jit_engine_equals_plain(self, jit_name, base_name, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        tensor = random_tensor((10, 8, 6), nnz=180, seed=5)
        factors = make_factors(tensor.shape, rank=4, seed=6)
        jit_run = _iteration(jit_name, tensor, factors)
        base_run = _iteration(base_name, tensor, factors)
        assert jit_run[2] == dispatch.TIER_NUMPY
        _assert_equivalent(jit_run, base_run)

    def test_jit_on_raises_without_compiled_tier(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        tensor = random_tensor((6, 5, 4), nnz=40, seed=0)
        with pytest.raises(RuntimeError, match="unavailable"):
            create_engine("stef-jit", tensor, 4, jit="on")


class TestCompiledTier:
    """Tier contract under Numba: bit-identical outputs, exactly equal
    traffic, for every jit-capable engine on every exec backend."""

    @pytest.mark.parametrize("jit_name,base_name", ENGINE_PAIRS)
    @pytest.mark.parametrize("exec_backend", ["serial", "threads", "processes"])
    @pytest.mark.parametrize("seed", [3, 17])
    def test_bit_identical_and_traffic_equal(
        self, jit_name, base_name, exec_backend, seed, monkeypatch
    ):
        pytest.importorskip("numba")
        monkeypatch.delenv("REPRO_NO_JIT", raising=False)
        tensor = random_tensor((11, 9, 7), nnz=220, seed=seed)
        factors = make_factors(tensor.shape, rank=4, seed=seed + 1)
        jit_run = _iteration(
            jit_name, tensor, factors, exec_backend=exec_backend, jit="on"
        )
        base_run = _iteration(
            base_name, tensor, factors, exec_backend=exec_backend, jit="off"
        )
        assert jit_run[2] == dispatch.TIER_NUMBA
        assert base_run[2] == dispatch.TIER_NUMPY
        _assert_equivalent(jit_run, base_run)

    def test_4d_serial(self):
        pytest.importorskip("numba")
        tensor = random_tensor((7, 6, 5, 4), nnz=150, seed=9)
        factors = make_factors(tensor.shape, rank=3, seed=10)
        for jit_name, base_name in (("stef-jit", "stef"), ("stef2-jit", "stef2")):
            counter_j, counter_n = TrafficCounter(), TrafficCounter()
            with create_engine(
                jit_name, tensor, 3, jit="on", counter=counter_j
            ) as ej, create_engine(
                base_name, tensor, 3, jit="off", counter=counter_n
            ) as en:
                for (ma, ra), (mb, rb) in zip(
                    ej.iteration_results(factors), en.iteration_results(factors)
                ):
                    assert ma == mb and np.array_equal(ra, rb)
            assert counter_j.snapshot() == counter_n.snapshot()
