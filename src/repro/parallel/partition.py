"""Work partitioning across simulated threads.

Two strategies from the paper:

* :func:`slice_partition` — the prior-work scheme (SPLATT, AdaTM, TACO):
  contiguous *root-mode slices* are dealt to threads.  When the root mode
  has fewer slices than threads, the extra threads idle; when non-zeros
  are skewed across slices, threads are imbalanced (the vast-2015 tensors
  have 2 root slices and a 1674% imbalance — Section II-D).

* :func:`nnz_partition` — STeF's fine-grained scheme (Algorithm 3): the
  leaf level is cut into equal non-zero chunks and each cut is projected
  upward with ``find_parent_CSF``, yielding per-thread start positions at
  every CSF level.  Threads may *share* the boundary node at each level;
  those shared rows are the only possible write conflicts, handled by
  boundary replication (:mod:`repro.parallel.executor`).

Both return a :class:`ThreadPartition` so kernels and the load-imbalance
analysis consume one interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..tensor.csf import CsfTensor

__all__ = ["ThreadPartition", "slice_partition", "nnz_partition"]


@dataclass(frozen=True)
class ThreadPartition:
    """Per-thread start positions at every CSF level.

    ``starts`` has shape ``(T + 1, d)``; thread ``th`` owns

    * leaves ``starts[th, d-1] : starts[th+1, d-1]`` (disjoint), and
    * at level ``i < d-1``, the node range
      ``starts[th, i] .. starts[th+1, i]`` *inclusive* of the right
      boundary node, which may be shared with thread ``th+1``.

    ``strategy`` records which scheme produced it (reports/ablation).
    """

    starts: np.ndarray
    strategy: str

    @property
    def num_threads(self) -> int:
        """Number of threads the plan feeds."""
        return self.starts.shape[0] - 1

    @property
    def ndim(self) -> int:
        """CSF depth the plan refers to."""
        return self.starts.shape[1]

    def leaf_range(self, th: int) -> Tuple[int, int]:
        """Half-open leaf (non-zero) range owned by thread ``th``."""
        d = self.ndim
        return int(self.starts[th, d - 1]), int(self.starts[th + 1, d - 1])

    def node_range(self, th: int, level: int) -> Tuple[int, int]:
        """Half-open node range *touched* by thread ``th`` at ``level``.

        The right end is exclusive but covers the shared boundary node:
        ``hi = starts[th+1, level] + 1`` when the boundary node is split
        between ``th`` and ``th+1`` (i.e. the next thread starts inside
        it), else ``starts[th+1, level]``.
        """
        lo = int(self.starts[th, level])
        hi = int(self.starts[th + 1, level])
        if level < self.ndim - 1:
            # Thread th+1 starting mid-node means th also touches that node.
            if self._splits_node(th + 1, level):
                hi += 1
        return lo, hi

    def _splits_node(self, th: int, level: int) -> bool:
        """True when boundary ``th`` (0..T) cuts through a node at
        ``level`` rather than landing exactly on a node start."""
        if th == 0 or th == self.num_threads:
            return False
        if level == self.ndim - 1:
            return False
        # Boundary th cuts node starts[th, level] iff its child-level
        # position is not that node's first child — equivalently, the
        # child-level boundary is strictly inside the node's child span.
        return bool(self.starts[th, level + 1] > self._node_child_start(th, level))

    def _node_child_start(self, th: int, level: int) -> int:
        raise NotImplementedError  # replaced at construction; see below

    def shared_boundary_nodes(self, csf: CsfTensor) -> List[List[int]]:
        """For each level, the node ids split between adjacent threads —
        the rows that need replication.  At most ``T - 1`` per level, as
        the paper observes (Section II-D says at most ``T``)."""
        out: List[List[int]] = []
        d = self.ndim
        for level in range(d - 1):
            shared = []
            for th in range(1, self.num_threads):
                node = int(self.starts[th, level])
                if node >= csf.fiber_counts[level]:
                    continue
                child_lo = int(csf.ptr[level][node])
                if int(self.starts[th, level + 1]) > child_lo:
                    shared.append(node)
            out.append(sorted(set(shared)))
        return out

    def per_thread_leaf_counts(self) -> np.ndarray:
        """Leaves owned by each thread — the load-balance statistic."""
        d = self.ndim
        return np.diff(self.starts[:, d - 1])

    def level_loads(self, level: int) -> np.ndarray:
        """Nodes *owned* by each thread at ``level`` (boundary nodes are
        attributed to the earlier-starting thread, so the counts tile
        ``[0, m_level)`` exactly)."""
        if not 0 <= level < self.ndim:
            raise ValueError(f"level {level} out of range")
        return np.diff(self.starts[:, level])

    def owned_counts(self, th: int) -> np.ndarray:
        """Per-level owned node counts for thread ``th`` — the disjoint
        decomposition used by per-thread traffic accounting (summing over
        threads recovers the fiber counts at every level exactly)."""
        if not 0 <= th < self.num_threads:
            raise ValueError(f"thread id {th} out of range")
        return (self.starts[th + 1] - self.starts[th]).astype(np.int64)

    def load_factor(self, level: int) -> float:
        """``max load / mean load`` of the per-thread owned node counts at
        ``level`` — the stretch factor of a kernel whose work is dealt by
        that level's node ranges."""
        loads = self.level_loads(level)
        mean = float(loads.mean()) if loads.size else 0.0
        if mean == 0:
            return 1.0
        return float(loads.max()) / mean

    @property
    def max_over_mean(self) -> float:
        """``max load / mean load`` over all threads: the factor by which
        this schedule stretches a perfectly-parallel execution (1.0 =
        perfect balance; idle threads inflate it)."""
        return self.load_factor(self.ndim - 1)


def _finalize(starts: np.ndarray, csf: CsfTensor, strategy: str) -> ThreadPartition:
    part = ThreadPartition(starts=starts, strategy=strategy)
    # Bind the node-child lookup to this CSF (used by _splits_node).
    def node_child_start(th: int, level: int) -> int:
        node = int(starts[th, level])
        if node >= csf.fiber_counts[level]:
            return csf.fiber_counts[level + 1]
        return int(csf.ptr[level][node])

    object.__setattr__(part, "_node_child_start", node_child_start)
    return part


def nnz_partition(csf: CsfTensor, num_threads: int) -> ThreadPartition:
    """Algorithm 3: equal-nnz thread starts projected up the CSF tree.

    ``thread_start[th][d-1] = th * nnz / T`` and, for levels ``d-2 .. 0``,
    ``thread_start[th][i] = find_parent_CSF(thread_start[th][i+1])``.
    """
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    d = csf.ndim
    nnz = csf.nnz
    starts = np.zeros((num_threads + 1, d), dtype=np.int64)
    starts[:, d - 1] = (np.arange(num_threads + 1, dtype=np.int64) * nnz) // num_threads
    for level in range(d - 2, -1, -1):
        starts[:, level] = csf.find_parent(level, starts[:, level + 1])
    # The end sentinel must be one-past-the-last node at every level.
    for level in range(d):
        starts[num_threads, level] = csf.fiber_counts[level]
    return _finalize(starts, csf, "nnz")


def slice_partition(csf: CsfTensor, num_threads: int) -> ThreadPartition:
    """Prior-work partitioning: deal contiguous root slices to threads.

    Threads beyond the root slice count receive empty ranges (the idle
    threads of Fig. 2a).  Slice boundaries never split a node, so no
    replication is needed — at the price of imbalance.
    """
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    d = csf.ndim
    n_slices = csf.fiber_counts[0]
    starts = np.zeros((num_threads + 1, d), dtype=np.int64)
    root_bounds = np.minimum(
        ((np.arange(num_threads + 1, dtype=np.int64) * n_slices) // num_threads),
        n_slices,
    )
    starts[:, 0] = root_bounds
    for level in range(1, d):
        # A slice boundary is always a node start, so projecting down is a
        # plain pointer lookup (the +1 sentinel row maps past-the-end).
        starts[:, level] = csf.ptr[level - 1][starts[:, level - 1]]
    return _finalize(starts, csf, "slice")
