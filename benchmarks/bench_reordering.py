"""Extension: Lexi-Order reordering as STeF preprocessing (Section V).

The paper's related work calls Li et al.'s Lexi-Order "complementary to
our contributions".  This bench quantifies both halves of that sentence
on the scaled tensors:

* **locality**: HiCOO block counts before/after Lexi-Order (vs a random
  relabeling control) — the clustering effect;
* **complementarity**: STeF's per-level fiber counts — the quantities its
  memoization/order model consumes — are *invariant* under relabeling, so
  the model's decisions are unchanged while locality improves.
"""

import pytest

from common import bench_tensor, emit
from repro.core import plan_decomposition
from repro.reorder import lexi_order, random_relabel
from repro.tensor import CsfTensor, HicooTensor

TENSORS = ("nell-2", "enron", "uber", "chicago-crime-comm")


def test_lexi_order_effect(benchmark):
    def run():
        rows = {}
        for name in TENSORS:
            t = bench_tensor(name, nnz=6000)
            rel = lexi_order(t, iterations=2)
            rt = rel.apply(t)
            rnd = random_relabel(t, seed=1).apply(t)
            rows[name] = {
                "blocks base": HicooTensor.from_coo(t, 4).n_blocks,
                "blocks lexi": HicooTensor.from_coo(rt, 4).n_blocks,
                "blocks random": HicooTensor.from_coo(rnd, 4).n_blocks,
                "fibers base": CsfTensor.from_coo(t).fiber_counts,
                "fibers lexi": CsfTensor.from_coo(rt).fiber_counts,
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Lexi-Order preprocessing (HiCOO B=4 block counts)"]
    for name, r in rows.items():
        lines.append(
            f"  {name:22} base {r['blocks base']:6d}  "
            f"lexi {r['blocks lexi']:6d}  random {r['blocks random']:6d}  "
            f"fibers invariant: {r['fibers base'] == r['fibers lexi']}"
        )
    emit("reordering_lexi.txt", "\n".join(lines))

    for name, r in rows.items():
        # The model's inputs never change under relabeling.
        assert r["fibers base"] == r["fibers lexi"], name
        # Clustering improves markedly on the naturally clustered tensors;
        # elsewhere it must at least not be much worse than the original
        # labeling (Lexi-Order optimizes lexicographic similarity, which
        # tracks but does not equal block count).
        assert r["blocks lexi"] <= 1.10 * r["blocks base"], name
    assert rows["nell-2"]["blocks lexi"] < 0.8 * rows["nell-2"]["blocks base"]
    assert rows["enron"]["blocks lexi"] < 0.8 * rows["enron"]["blocks base"]


@pytest.mark.parametrize("name", ["nell-2", "enron"])
def test_planner_invariant_under_relabeling(benchmark, name):
    """The model-chosen configuration is identical before and after
    Lexi-Order — the formal complementarity statement."""
    t = bench_tensor(name, nnz=6000)

    def run():
        rel = lexi_order(t)
        base = plan_decomposition(CsfTensor.from_coo(t), 32)
        reord = plan_decomposition(CsfTensor.from_coo(rel.apply(t)), 32)
        return base, reord

    base, reord = benchmark.pedantic(run, rounds=1, iterations=1)
    assert base.best.plan == reord.best.plan
    assert base.best.swap_last_two == reord.best.swap_last_two
