"""Command-line interface.

Four subcommands expose the library's main flows without writing code:

* ``decompose`` — CP-decompose a FROSTT ``.tns`` file (or a named Table-I
  generator) with any backend, printing the fit trajectory.
* ``plan`` — show the planner's full configuration search for a tensor.
* ``compare`` — run every method's MTTKRP set and print the relative
  performance table in both channels.
* ``info`` — storage and sparsity statistics (CSF fiber counts per mode
  order, HiCOO blocks, ALTO bits).
* ``lint`` — the kernel-invariant static analyzer (:mod:`repro.lint`)
  over the repository's own source.

Examples::

    python -m repro info uber --nnz 8000
    python -m repro plan data/enron.tns --rank 32
    python -m repro decompose nell-2 --rank 16 --engine stef2 --iters 10
    python -m repro compare vast-2015-mc1-3d --machine amd-tr-64
    python -m repro lint src/ --format json
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

from .analysis import format_table, relative_performance, run_comparison
from .core import plan_decomposition
from .cpd import cp_als
from .engines import create_engine, engine_names
from .parallel import MACHINES
from .parallel.counters import TrafficCounter
from .parallel.executor import EXEC_BACKENDS
from .trace import (
    NULL_TRACER,
    Tracer,
    engine_run_meta,
    write_chrome_trace,
    write_jsonl,
)
from .tensor import (
    TABLE1_SPECS,
    CooTensor,
    CsfTensor,
    HicooTensor,
    AltoTensor,
    default_mode_order,
    generate,
    read_tns,
)

__all__ = ["main", "build_parser", "load_tensor"]


def load_tensor(source: str, nnz: int, seed: int) -> CooTensor:
    """Resolve a tensor argument: a ``.tns[.gz]`` path or a Table-I name."""
    if source in TABLE1_SPECS:
        return generate(TABLE1_SPECS[source], nnz=nnz, seed=seed)
    if os.path.exists(source):
        return read_tns(source)
    raise SystemExit(
        f"'{source}' is neither a readable file nor one of "
        f"{sorted(TABLE1_SPECS)}"
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STeF sparse tensor factorization (IPDPS 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("tensor", help=".tns file or Table-I tensor name")
        p.add_argument("--nnz", type=int, default=10_000,
                       help="non-zeros for generated tensors (default 10000)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--rank", type=int, default=16)
        p.add_argument(
            "--machine", choices=sorted(MACHINES), default="intel-clx-18"
        )
        p.add_argument("--threads", type=int, default=None,
                       help="override the machine's thread count")

    def add_method_args(p: argparse.ArgumentParser) -> None:
        """The shared method/execution selectors (one definition — the
        ``decompose`` and ``profile`` copies previously drifted apart)."""
        infos = engine_names(detail=True)
        p.add_argument(
            "--engine", "--backend", choices=[i.name for i in infos],
            default="stef", dest="engine",
            help="MTTKRP engine (default stef). Capabilities: "
            + "; ".join(i.summary() for i in infos),
        )
        p.add_argument(
            "--jit", choices=["auto", "on", "off"], default=None,
            help="kernel tier: 'on' requires Numba, 'off' forces the NumPy "
            "reference tier, 'auto' compiles when available (jit-capable "
            "engines only; the *-jit engine names default to auto)",
        )
        p.add_argument(
            "--exec-backend", choices=list(EXEC_BACKENDS), default="serial",
            dest="exec_backend",
            help="pool execution: deterministic serial order, a real "
            "thread pool, or a persistent shared-memory process pool "
            "(results are bit-identical across all three; 'processes' is "
            "the one whose wall-clock scales with cores)",
        )

    p_info = sub.add_parser("info", help="storage & sparsity statistics")
    add_common(p_info)

    p_plan = sub.add_parser("plan", help="show the configuration search")
    add_common(p_plan)

    p_dec = sub.add_parser("decompose", help="run CPD-ALS")
    add_common(p_dec)
    add_method_args(p_dec)
    p_dec.add_argument("--iters", type=int, default=20)
    p_dec.add_argument("--tol", type=float, default=1e-4)
    p_dec.add_argument("--init", choices=["random", "hosvd"], default="random")
    p_dec.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a structured trace of the run: spans + metrics as "
        "JSONL at PATH, plus a Chrome trace-event view next to it "
        "(PATH with a .chrome.json suffix)",
    )

    p_cmp = sub.add_parser("compare", help="all methods, one tensor")
    add_common(p_cmp)
    p_cmp.add_argument(
        "--methods", nargs="+", default=engine_names(),
        choices=engine_names(),
    )

    p_prof = sub.add_parser("profile", help="per-mode cost breakdown")
    add_common(p_prof)
    add_method_args(p_prof)
    p_prof.add_argument(
        "--trace-chrome", metavar="PATH", default=None,
        help="also write a Chrome trace-event file of the profiled "
        "MTTKRP set (open in chrome://tracing or Perfetto)",
    )

    p_re = sub.add_parser(
        "reorder", help="Lexi-Order a tensor and write the relabeled .tns"
    )
    add_common(p_re)
    p_re.add_argument("--output", required=True, help="output .tns path")
    p_re.add_argument("--iterations", type=int, default=2)

    from .lint.cli import add_arguments as add_lint_arguments

    p_lint = sub.add_parser(
        "lint", help="run the kernel-invariant static analyzer"
    )
    add_lint_arguments(p_lint)

    def add_socket_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--socket", default="repro-serve.sock",
            help="unix socket the daemon listens on "
            "(default ./repro-serve.sock)",
        )

    p_serve = sub.add_parser(
        "serve", help="run the decomposition job daemon"
    )
    add_socket_arg(p_serve)
    p_serve.add_argument(
        "--spool", default="repro-spool",
        help="state directory: job journals, checkpoints, request logs",
    )
    p_serve.add_argument("--workers", type=int, default=2,
                         help="concurrent decomposition workers")
    p_serve.add_argument("--max-depth", type=int, default=64,
                         dest="max_depth",
                         help="queue backlog bound (submits beyond it are "
                         "refused with queue-full)")
    p_serve.add_argument("--per-client", type=int, default=16,
                         dest="per_client",
                         help="max in-flight jobs per client name")
    p_serve.add_argument("--cache-capacity", type=int, default=8,
                         dest="cache_capacity",
                         help="planned engines kept alive (LRU)")

    p_submit = sub.add_parser(
        "submit", help="submit a decomposition job to a running daemon"
    )
    add_common(p_submit)
    add_method_args(p_submit)
    add_socket_arg(p_submit)
    p_submit.add_argument("--iters", type=int, default=20)
    p_submit.add_argument("--tol", type=float, default=1e-4)
    p_submit.add_argument("--init", choices=["random", "hosvd"],
                          default="random")
    p_submit.add_argument("--priority", type=int, default=10,
                          help="lower runs first (default 10)")
    p_submit.add_argument("--client", default="cli",
                          help="client name for per-client rate limiting")
    p_submit.add_argument("--no-wait", action="store_true",
                          help="return the job id immediately instead of "
                          "waiting for the result")
    p_submit.add_argument(
        "--by-name", action="store_true",
        help="send the tensor reference for server-side loading instead "
        "of inlining the non-zeros (requires the daemon to reach it)",
    )
    p_submit.add_argument("--save", metavar="PATH", default=None,
                          help="write the returned factors as .npz")

    p_jobs = sub.add_parser(
        "jobs", help="list a running daemon's jobs (or --stats)"
    )
    add_socket_arg(p_jobs)
    p_jobs.add_argument("--stats", action="store_true",
                        help="print the flat service metrics (queue depth, "
                        "cache hit rate, per-engine latency) instead")
    p_jobs.add_argument("--json", action="store_true",
                        help="machine-readable output")
    return parser


def _cmd_info(args, out) -> int:
    tensor = load_tensor(args.tensor, args.nnz, args.seed)
    print(f"tensor: shape={tensor.shape} nnz={tensor.nnz} "
          f"density={tensor.density:.3e}", file=out)
    order = default_mode_order(tensor.shape)
    csf = CsfTensor.from_coo(tensor, order)
    print(f"CSF (order {order}): fibers {csf.fiber_counts}, "
          f"{csf.total_bytes() / 1e6:.2f} MB", file=out)
    for lvl in range(1, tensor.ndim):
        avg = csf.fiber_counts[lvl] / max(1, csf.fiber_counts[lvl - 1])
        print(f"  level {lvl}: avg branching {avg:.2f}", file=out)
    hic = HicooTensor.from_coo(tensor)
    print(f"HiCOO (B={hic.block_bits}): {hic.n_blocks} blocks, "
          f"occupancy {hic.average_block_occupancy:.2f}, "
          f"{hic.footprint_bytes() / 1e6:.2f} MB", file=out)
    alto = AltoTensor.from_coo(tensor)
    print(f"ALTO: {alto.index_bits}-bit indices, "
          f"{alto.footprint_bytes() / 1e6:.2f} MB", file=out)
    return 0


def _cmd_plan(args, out) -> int:
    tensor = load_tensor(args.tensor, args.nnz, args.seed)
    machine = MACHINES[args.machine]
    csf = CsfTensor.from_coo(tensor)
    decision = plan_decomposition(
        csf, args.rank, machine, consider_swap=tensor.ndim >= 3
    )
    print(f"configuration search for {args.tensor} "
          f"(R={args.rank}, {machine.name}):", file=out)
    for cfg in decision.configurations:
        marker = "  <== chosen" if cfg == decision.best else ""
        print(f"  {cfg.describe()}{marker}", file=out)
    return 0


def _chrome_path(jsonl_path: str) -> str:
    """The Chrome trace-event companion of a JSONL trace path."""
    base, ext = os.path.splitext(jsonl_path)
    return (base if ext in (".jsonl", ".json") else jsonl_path) + ".chrome.json"


def _cmd_decompose(args, out) -> int:
    tensor = load_tensor(args.tensor, args.nnz, args.seed)
    machine = MACHINES[args.machine]
    tracer = NULL_TRACER
    counter = None
    if args.trace:
        tracer = Tracer(
            meta={
                "command": "decompose",
                "tensor": args.tensor,
                "engine": args.engine,
                "exec_backend": args.exec_backend,
                "rank": args.rank,
                "machine": args.machine,
            }
        )
        counter = TrafficCounter(cache_elements=machine.cache_elements)
    with create_engine(
        args.engine, tensor, args.rank, machine=machine,
        num_threads=args.threads, exec_backend=args.exec_backend,
        jit=args.jit, tracer=tracer,
        **({"counter": counter} if counter is not None else {}),
    ) as engine:
        print(engine.describe(), file=out)
        # Resolved configuration (actual jit tier, backend, threads) must
        # be read while the engine is alive; it stamps the trace header.
        run_meta = engine_run_meta(engine)
        result = cp_als(
            tensor,
            args.rank,
            engine=engine,
            max_iters=args.iters,
            tol=args.tol,
            init=args.init,
            seed=args.seed,
            tracer=tracer,
            callback=lambda it, fit: print(
                f"  iter {it + 1:3d}  fit {fit:.5f}", file=out
            ),
        )
    print(
        f"{'converged' if result.converged else 'stopped'} after "
        f"{result.iterations} iterations; final fit {result.final_fit:.5f}",
        file=out,
    )
    if args.trace:
        write_jsonl(tracer, args.trace, **run_meta)
        chrome = _chrome_path(args.trace)
        write_chrome_trace(tracer, chrome)
        print(f"trace: {args.trace} (+ {chrome})", file=out)
    return 0


def _cmd_compare(args, out) -> int:
    tensor = load_tensor(args.tensor, args.nnz, args.seed)
    machine = MACHINES[args.machine]
    methods = list(args.methods)
    if "splatt-all" not in methods:
        methods.append("splatt-all")
    grid = run_comparison(
        {args.tensor: tensor}, rank=args.rank, machine=machine,
        methods=methods, num_threads=args.threads,
    )
    for channel in ("simulated", "wall"):
        rel = relative_performance(grid, channel=channel)
        print(
            format_table(
                rel, methods,
                title=f"{machine.name} — {channel} channel "
                "(relative to splatt-all)",
            ),
            file=out,
        )
        print(file=out)
    return 0


def _cmd_profile(args, out) -> int:
    from .analysis import profile_method

    tensor = load_tensor(args.tensor, args.nnz, args.seed)
    machine = MACHINES[args.machine]
    tracer = NULL_TRACER
    if args.trace_chrome:
        tracer = Tracer(
            meta={
                "command": "profile",
                "tensor": args.tensor,
                "engine": args.engine,
                "exec_backend": args.exec_backend,
                "rank": args.rank,
                "machine": args.machine,
            }
        )
    profile = profile_method(
        args.engine, tensor, args.rank, machine,
        num_threads=args.threads, tensor_name=args.tensor,
        exec_backend=args.exec_backend, tracer=tracer,
    )
    print(profile.format(), file=out)
    if args.trace_chrome:
        write_chrome_trace(tracer, args.trace_chrome)
        print(f"chrome trace: {args.trace_chrome}", file=out)
    return 0


def _cmd_lint(args, out) -> int:
    from .lint.cli import execute

    return execute(args, out)


def _cmd_reorder(args, out) -> int:
    from .reorder import lexi_order
    from .tensor import write_tns
    from .tensor.hicoo import HicooTensor

    tensor = load_tensor(args.tensor, args.nnz, args.seed)
    rel = lexi_order(tensor, iterations=args.iterations)
    relabeled = rel.apply(tensor)
    before = HicooTensor.from_coo(tensor).n_blocks
    after = HicooTensor.from_coo(relabeled).n_blocks
    write_tns(
        relabeled,
        args.output,
        header=[
            f"Lexi-Order relabeling of {args.tensor}",
            f"HiCOO blocks {before} -> {after}",
        ],
    )
    print(
        f"wrote {args.output}: HiCOO blocks {before} -> {after} "
        f"({100 * (1 - after / max(before, 1)):.0f}% fewer)",
        file=out,
    )
    return 0


def _cmd_serve(args, out) -> int:
    import asyncio

    from .serve import DecompositionServer

    server = DecompositionServer(
        args.socket, args.spool, workers=args.workers,
        max_depth=args.max_depth, per_client=args.per_client,
        cache_capacity=args.cache_capacity,
    )
    print(
        f"serving on {args.socket} (spool {args.spool}, "
        f"{args.workers} workers)",
        file=out,
    )
    try:
        asyncio.run(server.run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_submit(args, out) -> int:
    from .serve import JobSpec, ServeClient, ServeError

    options = dict(
        engine=args.engine, rank=args.rank, machine=args.machine,
        num_threads=args.threads, exec_backend=args.exec_backend,
        jit=args.jit, max_iters=args.iters, tol=args.tol, init=args.init,
        seed=args.seed, priority=args.priority, client=args.client,
    )
    if args.by_name:
        spec = JobSpec(tensor=args.tensor, nnz=args.nnz,
                       tensor_seed=args.seed, **options)
    else:
        # Inline the non-zeros: the daemon never needs to see our files,
        # and the content fingerprint still matches a --by-name twin.
        tensor = load_tensor(args.tensor, args.nnz, args.seed)
        spec = JobSpec(
            coo={
                "indices": tensor.indices.tolist(),
                "values": tensor.values.tolist(),
                "shape": list(tensor.shape),
            },
            **options,
        )
    try:
        with ServeClient(args.socket, connect_timeout=10.0) as client:
            if args.no_wait:
                response = client.submit(spec)
                print(f"submitted {response['job_id']}", file=out)
                return 0
            job = client.submit(spec, wait=True)
    except TimeoutError as exc:
        print(f"refused: {exc}", file=out)
        return 1
    except ServeError as exc:
        print(f"refused: {exc} ({exc.reason})", file=out)
        return 1
    if job["state"] != "done":
        print(f"{job['job_id']}: {job['state']} ({job['error']})", file=out)
        return 1
    result = job["result"]
    print(
        f"{job['job_id']}: done in {result['seconds']:.3f}s, "
        f"{result['iterations']} iterations, cache {job['cache']}",
        file=out,
    )
    if result["fits"]:
        print(f"  final fit {result['fits'][-1]:.5f}", file=out)
    if args.save:
        arrays = {"weights": np.asarray(result["weights"])}
        for mode, factor in enumerate(result["factors"]):
            arrays[f"factor_{mode}"] = np.asarray(factor)
        np.savez_compressed(args.save, **arrays)
        print(f"  factors -> {args.save}", file=out)
    return 0


def _cmd_jobs(args, out) -> int:
    import json

    from .serve import ServeClient

    try:
        client = ServeClient(args.socket, connect_timeout=10.0)
    except TimeoutError as exc:
        print(f"refused: {exc}", file=out)
        return 1
    with client:
        if args.stats:
            stats = client.stats()
            if args.json:
                print(json.dumps(stats, sort_keys=True), file=out)
                return 0
            for key in sorted(stats):
                value = stats[key]
                shown = f"{value:.4f}" if isinstance(value, float) else value
                print(f"{key:32s} {shown}", file=out)
            return 0
        rows = client.jobs()
    if args.json:
        print(json.dumps(rows), file=out)
        return 0
    if not rows:
        print("no jobs", file=out)
        return 0
    print(
        f"{'job':28s} {'state':10s} {'engine':12s} {'backend':10s} "
        f"{'cache':7s} {'iters':>5s} {'secs':>8s}",
        file=out,
    )
    for row in rows:
        iters = row.get("iterations")
        secs = row.get("seconds")
        print(
            f"{row['job_id']:28s} {row['state']:10s} {row['engine']:12s} "
            f"{row['exec_backend']:10s} {str(row['cache'] or '-'):7s} "
            f"{iters if iters is not None else '-':>5} "
            f"{f'{secs:.3f}' if secs is not None else '-':>8}",
            file=out,
        )
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handler = {
        "info": _cmd_info,
        "plan": _cmd_plan,
        "decompose": _cmd_decompose,
        "compare": _cmd_compare,
        "profile": _cmd_profile,
        "reorder": _cmd_reorder,
        "lint": _cmd_lint,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
    }[args.command]
    return handler(args, out)
