"""Figure 3 — performance relative to splatt-all on the 18-core Intel
Cascade Lake machine model, R ∈ {32, 64}.

Regenerates the bar-chart series (one row per tensor, one column per
method, values are speedup over splatt-all — higher is better) from the
simulated-time channel (counted traffic x load-imbalance on the Intel
machine model), plus the Section VI-B geometric-mean speedup sentence for
STeF and STeF2.  pytest-benchmark additionally wall-times one MTTKRP set
per method on a representative tensor.
"""

import pytest

from common import bench_suite, bench_tensor, emit
from repro.analysis import (
    format_table,
    geomean_speedups,
    relative_performance,
    run_comparison,
)
from repro.cpd import random_init
from repro.engines import create_engine
from repro.parallel import INTEL_CLX_18

METHODS = ("stef", "stef2", "adatm", "alto", "splatt-1", "splatt-2", "splatt-all", "taco")
MACHINE = INTEL_CLX_18


@pytest.mark.parametrize("rank", [32, 64])
def test_figure3_series(benchmark, rank):
    grid = benchmark.pedantic(
        run_comparison,
        args=(bench_suite(),),
        kwargs=dict(rank=rank, machine=MACHINE, methods=METHODS),
        rounds=1,
        iterations=1,
    )
    rel = relative_performance(grid)
    table = format_table(
        rel,
        list(METHODS),
        title=(
            f"Figure 3 — perf relative to splatt-all "
            f"({MACHINE.name}, R={rank}, simulated-traffic channel)"
        ),
    )
    lines = [table, ""]
    for method in ("stef", "stef2"):
        sp = geomean_speedups(
            rel, method, [m for m in METHODS if m != method]
        )
        pretty = ", ".join(f"{k}: {v:.2f}x" for k, v in sp.items())
        lines.append(f"geomean speedup of {method}: {pretty}")
    emit(f"fig3_intel_r{rank}.txt", "\n".join(lines))


@pytest.mark.parametrize("method", METHODS)
def test_mttkrp_set_wall_time(benchmark, method):
    """Wall-clock of one full MTTKRP set per method (flickr-4d)."""
    tensor = bench_tensor("flickr-4d")
    rank = 32
    factors = random_init(tensor.shape, rank, 0)
    with create_engine(
        method, tensor, rank, machine=MACHINE, num_threads=4
    ) as backend:

        def one_set():
            for level in range(tensor.ndim):
                backend.mttkrp_level(factors, level)

        benchmark.pedantic(one_set, rounds=3, iterations=1, warmup_rounds=1)
