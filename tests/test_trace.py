"""Tests for :mod:`repro.trace`.

Pins the three properties the observability layer promises:

* **traffic-delta tiling** — summing every kernel span's counter deltas
  reproduces the :class:`TrafficCounter` totals *exactly*, on all three
  execution backends (serial / threads / processes);
* **export round-trip** — the JSONL run record parses back losslessly
  and the Chrome trace-event file is structurally valid (one lane per
  thread, microsecond complete events);
* **NullTracer is free** — the traced-off path allocates nothing per
  span and records nothing.
"""

import json
import time

import pytest

from repro.cpd import cp_als
from repro.engines import create_engine
from repro.parallel import MACHINES, TrafficCounter
from repro.tensor import random_tensor
from repro.trace import (
    NULL_TRACER,
    NullTracer,
    ScopedTracer,
    Tracer,
    chrome_trace_events,
    engine_run_meta,
    flat_metrics,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)

BACKENDS = ("serial", "threads", "processes")
MACHINE = MACHINES["intel-clx-18"]


def traced_run(exec_backend, method="stef", iters=2, threads=2):
    """One traced cp_als run; returns (tracer, counter)."""
    tensor = random_tensor((10, 8, 6), nnz=120, seed=3)
    tracer = Tracer(tensor="unit", method=method, exec_backend=exec_backend)
    counter = TrafficCounter(cache_elements=MACHINE.cache_elements)
    with create_engine(
        method, tensor, 4, machine=MACHINE, num_threads=threads,
        exec_backend=exec_backend, counter=counter, tracer=tracer,
    ) as engine:
        cp_als(
            tensor, 4, engine=engine, max_iters=iters,
            compute_fit=False, seed=0, tracer=tracer,
        )
    return tracer, counter


class TestTrafficDeltaTiling:
    @pytest.mark.parametrize("exec_backend", BACKENDS)
    def test_span_deltas_sum_to_counter_totals(self, exec_backend):
        tracer, counter = traced_run(exec_backend)
        totals = tracer.traffic_totals()
        assert totals["reads"] == counter.reads
        assert totals["writes"] == counter.writes
        assert totals["flops"] == counter.flops
        for category, value in counter.by_category.items():
            assert totals.get(category, 0.0) == value, category

    @pytest.mark.parametrize("exec_backend", BACKENDS)
    def test_only_kernel_spans_carry_traffic(self, exec_backend):
        tracer, _ = traced_run(exec_backend)
        kernel_names = {r.name for r in tracer.kernel_spans()}
        assert kernel_names <= {"mttkrp.mode0", "mttkrp.mode_level"}
        for rec in tracer.spans():
            if rec.name in ("als.iteration", "executor.task"):
                assert rec.traffic is None, rec.name

    def test_backends_agree_on_counted_work(self):
        """Traffic is counted, not measured: identical across backends."""
        totals = {}
        for exec_backend in BACKENDS:
            tracer, _ = traced_run(exec_backend)
            totals[exec_backend] = tracer.traffic_totals()
        assert totals["serial"] == totals["threads"] == totals["processes"]

    def test_iteration_spans_parent_kernels(self):
        tracer, _ = traced_run("serial")
        iters = tracer.spans("als.iteration")
        assert len(iters) == 2
        iter_ids = {r.span_id for r in iters}
        for rec in tracer.kernel_spans():
            assert rec.parent_id in iter_ids


class TestExports:
    def test_jsonl_round_trip(self, tmp_path):
        tracer, _ = traced_run("threads")
        path = str(tmp_path / "run.jsonl")
        write_jsonl(tracer, path, host="unit-test")
        doc = read_jsonl(path)
        assert doc["meta"]["method"] == "stef"
        assert doc["meta"]["host"] == "unit-test"
        assert len(doc["spans"]) == len(tracer.records)
        assert doc["metrics"] == pytest.approx(tracer.metrics())
        # every line is standalone JSON (append-friendly record)
        with open(path) as fh:
            kinds = [json.loads(line)["type"] for line in fh]
        assert kinds[0] == "meta" and kinds[-1] == "metrics"
        assert kinds.count("span") == len(tracer.records)

    def test_chrome_trace_structure(self, tmp_path):
        tracer, _ = traced_run("threads", threads=2)
        path = str(tmp_path / "run.chrome.json")
        write_chrome_trace(tracer, path)
        with open(path) as fh:
            doc = json.load(fh)
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == len(tracer.records)
        # coordinator row + one row per simulated thread, all labeled
        tids = {e["tid"] for e in complete}
        assert 0 in tids and len(tids) >= 3
        assert {e["args"]["name"] for e in meta} >= {
            "coordinator", "thread 0", "thread 1",
        }
        for event in complete:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0

    def test_chrome_kernel_events_embed_traffic(self):
        tracer, _ = traced_run("serial")
        events = chrome_trace_events(tracer)
        kernels = [e for e in events
                   if e.get("name", "").startswith("mttkrp.")]
        assert kernels
        for event in kernels:
            assert "traffic" in event["args"]
            assert event["args"]["traffic"].get("reads", 0) > 0

    def test_flat_metrics_merges_meta(self):
        tracer, _ = traced_run("serial")
        metrics = flat_metrics(tracer, run_id=7)
        assert metrics["method"] == "stef"
        assert metrics["run_id"] == 7
        assert metrics["als.iteration.count"] == 2.0
        assert metrics["traffic.reads"] > 0


class TestNullTracer:
    def test_records_nothing(self):
        tracer, _ = traced_run("serial")
        assert tracer.records  # a real tracer does record...
        null = NullTracer()
        with null.span("als.iteration", iteration=0):
            null.record_span("executor.task", 0.0, 1.0, lane=0)
        assert null.records == []
        assert null.metrics() == {}

    def test_span_returns_shared_singleton(self):
        """The traced-off path must not allocate per span."""
        a = NULL_TRACER.span("mttkrp.mode0", level=0, nnz=10)
        b = NULL_TRACER.span("als.iteration")
        assert a is b
        with a as entered:
            entered.annotate(source="memo")  # no-op, no error
        assert not NULL_TRACER.enabled

    def test_overhead_within_noise(self):
        """Guard against a NULL_TRACER span path that does real work.

        Compares min-of-N timings of a loop entering a hand-written no-op
        context manager against one that opens a NULL_TRACER span per
        step; the baseline carries the same with-statement machinery, so
        the ratio isolates exactly what span() adds.  The bound is
        generous (3x) because the point is catching accidental
        recording/allocation on the traced-off path, not
        micro-benchmarking the CI machine.
        """
        steps = 20_000

        class Noop:
            def __enter__(self):
                return self

            def __exit__(self, exc_type, exc, tb):
                return False

        noop = Noop()

        def bare():
            acc = 0
            for i in range(steps):
                with noop:
                    acc += i
            return acc

        def traced():
            acc = 0
            span = NULL_TRACER.span
            for i in range(steps):
                with span("mttkrp.mode0"):
                    acc += i
            return acc

        def best_of(fn, n=5):
            best = float("inf")
            for _ in range(n):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            return best

        bare_s = best_of(bare)
        traced_s = best_of(traced)
        assert traced_s < bare_s * 3 + 5e-3, (
            f"NULL_TRACER span overhead too high: "
            f"{traced_s:.6f}s vs bare {bare_s:.6f}s"
        )


class TestEngineRunMeta:
    """The JSONL header must be self-describing: a run record alone
    answers which engine/tier/backend/thread-count produced it."""

    def test_header_stamped_with_resolved_configuration(self, tmp_path):
        tensor = random_tensor((10, 8, 6), nnz=120, seed=3)
        tracer = Tracer(tensor="unit", command="decompose")
        with create_engine(
            "stef", tensor, 4, machine=MACHINE, num_threads=2,
            exec_backend="threads", tracer=tracer,
        ) as engine:
            meta = engine_run_meta(engine)
            cp_als(
                tensor, 4, engine=engine, max_iters=1,
                compute_fit=False, tracer=tracer,
            )
        path = str(tmp_path / "run.jsonl")
        write_jsonl(tracer, path, **meta)
        header = read_jsonl(path)["meta"]
        assert header["engine"] == "stef"
        assert header["jit_tier"] in ("numpy", "numba")
        assert header["exec_backend"] == "threads"
        assert header["num_threads"] == 2
        # The tracer's own meta still comes through alongside the stamp.
        assert header["tensor"] == "unit"

    def test_meta_reports_resolved_tier_not_request(self):
        """jit="off" must stamp the tier actually executing ("numpy"),
        regardless of what the request said."""
        tensor = random_tensor((10, 8, 6), nnz=120, seed=3)
        with create_engine(
            "stef", tensor, 4, machine=MACHINE, jit="off",
        ) as engine:
            assert engine_run_meta(engine)["jit_tier"] == "numpy"

    def test_meta_defaults_for_minimal_engines(self):
        """Objects without the capability attrs still produce a complete
        header (serial / single-thread / numpy defaults)."""

        class Bare:
            pass

        meta = engine_run_meta(Bare())
        assert meta == {
            "engine": "Bare",
            "jit_tier": "numpy",
            "exec_backend": "serial",
            "num_threads": 1,
        }


class TestScopedTracer:
    """repro.serve pools engines across requests; the ScopedTracer lets
    one engine-bound tracer hand each job its own span record."""

    def test_forwards_spans_to_current_target(self):
        scoped = ScopedTracer()
        assert not scoped.enabled  # resting on NULL_TRACER
        with scoped.span("als.iteration", iteration=0):
            pass  # dropped

        job = Tracer()
        scoped.target = job
        assert scoped.enabled
        with scoped.span("mttkrp.mode0", level=0):
            pass
        scoped.record_span("executor.task", 0.0, 1.0, lane=0)
        assert {r.name for r in job.spans()} == {
            "mttkrp.mode0", "executor.task",
        }

        scoped.target = NULL_TRACER
        with scoped.span("als.iteration", iteration=1):
            pass
        assert len(job.records) == 2  # nothing new after the swap back
        assert scoped.records == []  # the forwarder itself records nothing

    def test_pooled_engine_records_per_job(self):
        """One engine, two jobs: each job's tracer sees only its own
        iterations and kernel spans, and the traffic-delta tiling holds
        per job even though the counter accumulates across both."""
        tensor = random_tensor((10, 8, 6), nnz=120, seed=3)
        scoped = ScopedTracer()
        counter = TrafficCounter(cache_elements=MACHINE.cache_elements)
        with create_engine(
            "stef", tensor, 4, machine=MACHINE, num_threads=2,
            exec_backend="serial", counter=counter, tracer=scoped,
        ) as engine:
            job1, job2 = Tracer(), Tracer()
            scoped.target = job1
            cp_als(
                tensor, 4, engine=engine, max_iters=1,
                compute_fit=False, seed=0, tracer=scoped,
            )
            snapshot = counter.reads
            scoped.target = job2
            cp_als(
                tensor, 4, engine=engine, max_iters=2,
                compute_fit=False, seed=0, tracer=scoped,
            )
            scoped.target = NULL_TRACER

        assert len(job1.spans("als.iteration")) == 1
        assert len(job2.spans("als.iteration")) == 2
        assert job1.kernel_spans() and job2.kernel_spans()
        # Per-job tiling: each record's deltas sum to that job's share.
        assert job1.traffic_totals()["reads"] == snapshot
        assert job2.traffic_totals()["reads"] == counter.reads - snapshot
