"""Fixture: dtype-discipline violations (never imported, AST-only).

Lives under ``lint_fixtures/ops/`` so the path-scoped dtype rule
applies.  One narrow allocation, one narrow cast.
"""

import numpy as np


def make_buffers(n, rank, values):
    out = np.zeros((n, rank), dtype=np.float32)  # narrow allocation
    small = values.astype("float32")  # narrow cast
    return out, small
