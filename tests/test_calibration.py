"""Tests for roofline machine-model calibration."""

import numpy as np
import pytest

from repro.analysis.calibration import (
    CalibrationSample,
    collect_samples,
    fit_roofline,
)
from repro.parallel import INTEL_CLX_18
from repro.tensor import random_tensor


def synthetic_samples(bw_gbps, gflops, n=60, seed=0, noise=0.0):
    """Samples generated from a known roofline machine."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        traffic = float(10 ** rng.uniform(3, 7))
        flops = float(10 ** rng.uniform(3, 7))
        load = float(rng.uniform(1.0, 2.0))
        wall = max(traffic * 8 / (bw_gbps * 1e9), flops / (gflops * 1e9)) * load
        if noise:
            wall *= float(np.exp(rng.normal(0, noise)))
        out.append(CalibrationSample(traffic, flops, load, wall))
    return out


class TestFitRoofline:
    def test_recovers_known_machine_exactly(self):
        fit = fit_roofline(synthetic_samples(50.0, 5.0))
        assert fit.dram_gbps == pytest.approx(50.0, rel=0.05)
        assert fit.gflops == pytest.approx(5.0, rel=0.05)
        assert fit.median_rel_error < 0.02

    def test_recovers_with_noise(self):
        fit = fit_roofline(synthetic_samples(20.0, 2.0, n=120, noise=0.1))
        assert fit.dram_gbps == pytest.approx(20.0, rel=0.3)
        assert fit.gflops == pytest.approx(2.0, rel=0.3)

    def test_predict_matches_model(self):
        fit = fit_roofline(synthetic_samples(10.0, 1.0))
        pred = fit.predict_seconds(1e6, 1e3, load=1.0)
        assert pred == pytest.approx(1e6 * 8 / (fit.dram_gbps * 1e9), rel=1e-6)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_roofline(synthetic_samples(1.0, 1.0, n=2))

    def test_as_machine(self):
        fit = fit_roofline(synthetic_samples(30.0, 3.0))
        m = fit.as_machine(INTEL_CLX_18)
        assert m.cache_bytes == INTEL_CLX_18.cache_bytes
        assert m.dram_gbps == pytest.approx(fit.dram_gbps)
        assert "calibrated" in m.name


class TestCollectSamples:
    def test_collects_from_real_kernels(self):
        t = random_tensor((30, 25, 20), nnz=2000, seed=1)
        samples = collect_samples(
            [("toy", t)], 16, INTEL_CLX_18,
            methods=("stef", "splatt-all"), num_threads=2,
        )
        assert len(samples) == 2 * t.ndim
        for s in samples:
            assert s.wall_seconds > 0
            assert s.traffic_elements > 0

    def test_end_to_end_calibration_is_finite(self):
        tensors = [
            ("a", random_tensor((40, 30, 20), nnz=4000, seed=2)),
            ("b", random_tensor((25, 25, 25, 10), nnz=3000, seed=3)),
        ]
        samples = collect_samples(
            tensors, 16, INTEL_CLX_18, methods=("stef", "alto"),
            num_threads=2, repeats=2,
        )
        fit = fit_roofline(samples)
        assert np.isfinite(fit.dram_gbps) and fit.dram_gbps > 0
        assert np.isfinite(fit.gflops) and fit.gflops > 0
        # The Python kernels should be explained within an order of
        # magnitude at the median (they are interpreter-noisy).
        assert fit.median_rel_error < 10.0
