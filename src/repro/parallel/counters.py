"""Memory-traffic accounting.

Python wall-clock time ranks kernels by interpreter overhead, not by the
memory traffic that dominates on the paper's machines.  The harness
therefore *counts* the element traffic each kernel actually generates and
reports it alongside wall-clock.  Kernels charge their reads/writes to a
:class:`TrafficCounter` at the same granularity the Section IV model
reasons about: whole fibers, whole factor rows, whole partial-result rows.

The counter also implements the model's cache-capacity rule for factor
matrices (``DM_factor``): a stream of ``x`` row accesses to an ``N×R``
matrix costs ``x·R`` elements when the matrix exceeds cache and
``min(N·R, x·R)`` otherwise.  Keeping that rule *here* means the measured
channel and the analytic model share one definition — the model predicts,
the counter observes, and :mod:`repro.analysis.traffic` compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "TrafficCounter",
    "ShardedTrafficCounter",
    "NULL_COUNTER",
    "SCATTER_FLOPS_PER_UPDATE",
]

#: Effective operations charged per scattered element update.  Irregular
#: read-modify-writes (atomics / conflict-checked accumulation) sustain a
#: small fraction of streaming FMA throughput; 8 ops/element corresponds
#: to ~4x below the 2-op FMA ideal, in line with measured scatter-add
#: rates on the paper's CPU generation.
SCATTER_FLOPS_PER_UPDATE = 8.0


@dataclass
class TrafficCounter:
    """Accumulates read/write element counts, optionally per category.

    Attributes
    ----------
    cache_elements:
        Cache capacity used for the factor-row reuse rule.  ``None``
        disables the rule (all accesses charged as streaming).
    """

    cache_elements: Optional[int] = None
    reads: float = 0.0
    writes: float = 0.0
    flops: float = 0.0
    by_category: Dict[str, float] = field(default_factory=dict)
    enabled: bool = True

    # ------------------------------------------------------------------
    def _bump(self, kind: str, category: str, amount: float) -> None:
        if not self.enabled or amount <= 0:
            return
        if kind == "r":
            self.reads += amount
        else:
            self.writes += amount
        key = f"{kind}:{category}"
        self.by_category[key] = self.by_category.get(key, 0.0) + amount

    def read(self, elements: float, category: str = "misc") -> None:
        """Charge ``elements`` read from memory."""
        self._bump("r", category, elements)

    def write(self, elements: float, category: str = "misc") -> None:
        """Charge ``elements`` written to memory."""
        self._bump("w", category, elements)

    def flop(self, count: float, category: str = "compute") -> None:
        """Charge ``count`` floating-point operations (the compute leg of
        the roofline time model)."""
        if not self.enabled or count <= 0:
            return
        self.flops += count
        key = f"f:{category}"
        self.by_category[key] = self.by_category.get(key, 0.0) + count

    def scatter_update(
        self,
        accesses: int,
        n_rows: int,
        rank: int,
        num_threads: int,
        category: str = "output",
    ) -> None:
        """Charge a parallel scatter-accumulate into an ``n_rows × rank``
        output with duplicate row indices (the ``Ā^(u)[idx] += ...`` of
        modes ``u > 0``, Algorithm 4 lines 13-14).

        Unlike mode-0's boundary-replicated output, these updates conflict
        across threads; the implementation must either use atomic
        read-modify-writes (a read and a write per update, absorbed by the
        cache only when the whole output is resident) or privatize
        per-thread copies and reduce (≈2·T·N·R).  The cheaper option is
        charged, matching the paper's "either atomic updates are needed,
        or ... privatized".

        Irregular updates also execute far below streaming-FMA throughput
        (gather, multiply, conflict-checked accumulate per element); the
        compute leg charges :data:`SCATTER_FLOPS_PER_UPDATE` per updated
        element — this is the "slow MTTV kernel" cost the paper's STeF2
        sidesteps by re-rooting the leaf mode.
        """
        footprint = float(n_rows * rank)
        stream = float(accesses * rank)
        # The dense N×R result is written in full either way (CP-ALS
        # consumes it); the strategies differ in the conflict overhead.
        if self.cache_elements is not None and footprint <= self.cache_elements:
            rmw_reads = min(footprint, stream)
        else:
            rmw_reads = stream
        atomic_total = footprint + rmw_reads
        priv_total = (2.0 * num_threads + 1.0) * footprint
        if atomic_total <= priv_total or num_threads <= 1:
            self._bump("w", category, footprint)
            self._bump("r", category, rmw_reads)
        else:
            # T zero-initialized private copies written, then reduced.
            self._bump("w", category, (num_threads + 1.0) * footprint)
            self._bump("r", category, num_threads * footprint)
        self.flop(SCATTER_FLOPS_PER_UPDATE * stream, "scatter")

    def read_factor_rows(
        self, accesses: int, n_rows: int, rank: int, category: str = "factor"
    ) -> None:
        """Charge ``accesses`` row reads of an ``n_rows × rank`` factor
        matrix under the DM_factor cache rule (Section IV-C)."""
        footprint = n_rows * rank
        stream = accesses * rank
        if self.cache_elements is not None and footprint <= self.cache_elements:
            charged = min(footprint, stream)
        else:
            charged = stream
        self._bump("r", category, charged)

    def write_factor_rows(
        self, accesses: int, n_rows: int, rank: int, category: str = "factor"
    ) -> None:
        """Write-side counterpart of :meth:`read_factor_rows`."""
        footprint = n_rows * rank
        stream = accesses * rank
        if self.cache_elements is not None and footprint <= self.cache_elements:
            charged = min(footprint, stream)
        else:
            charged = stream
        self._bump("w", category, charged)

    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """Total elements moved (reads + writes)."""
        return self.reads + self.writes

    def merge(self, other: "TrafficCounter") -> None:
        """Fold another counter's tallies into this one."""
        self.reads += other.reads
        self.writes += other.writes
        self.flops += other.flops
        for k, v in other.by_category.items():
            self.by_category[k] = self.by_category.get(k, 0.0) + v

    def reset(self) -> None:
        """Zero all tallies (capacity setting is kept)."""
        self.reads = 0.0
        self.writes = 0.0
        self.flops = 0.0
        self.by_category.clear()

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict view for reports."""
        out = {
            "reads": self.reads,
            "writes": self.writes,
            "flops": self.flops,
            "total": self.total,
        }
        out.update(self.by_category)
        return out


class ShardedTrafficCounter:
    """Per-thread :class:`TrafficCounter` shards with a deterministic merge.

    A single shared counter cannot be charged from concurrently running
    kernels: its ``+=`` updates are read-modify-write sequences that lose
    increments once NumPy releases the GIL.  The sharded counter gives
    every simulated thread its *own* shard — thread bodies charge
    ``shard(th)`` and never touch shared mutable state — and folds the
    shards back with :meth:`merge_into`, which sums in fixed thread-id
    order over a sorted category key set.  The merged result is therefore
    independent of thread completion order: the ``serial`` and
    ``threads`` backends produce bit-identical tallies.

    Parameters
    ----------
    num_threads:
        Number of shards (one per simulated thread).
    cache_elements:
        Cache capacity forwarded to every shard (DM_factor rule).
    enabled:
        ``False`` makes every shard a no-op (hot paths).
    """

    def __init__(
        self,
        num_threads: int,
        cache_elements: Optional[int] = None,
        enabled: bool = True,
    ) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = num_threads
        self.shards: List[TrafficCounter] = [
            TrafficCounter(cache_elements=cache_elements, enabled=enabled)
            for _ in range(num_threads)
        ]

    @classmethod
    def like(cls, counter: TrafficCounter, num_threads: int) -> "ShardedTrafficCounter":
        """Shards inheriting ``counter``'s cache capacity and enablement."""
        return cls(
            num_threads,
            cache_elements=counter.cache_elements,
            enabled=counter.enabled,
        )

    @property
    def enabled(self) -> bool:
        """True when the shards record charges."""
        return self.shards[0].enabled

    def shard(self, th: int) -> TrafficCounter:
        """The private counter of simulated thread ``th``."""
        if not 0 <= th < self.num_threads:
            raise ValueError(f"thread id {th} out of range")
        return self.shards[th]

    def reset(self) -> None:
        """Zero every shard (start of a kernel invocation)."""
        for shard in self.shards:
            shard.reset()

    def merge(self) -> TrafficCounter:
        """Fresh counter holding the summed shard tallies."""
        out = TrafficCounter(cache_elements=self.shards[0].cache_elements)
        return self.merge_into(out)

    def merge_into(self, target: TrafficCounter) -> TrafficCounter:
        """Fold all shards into ``target``, vectorized and order-independent.

        Scalar tallies are summed with one :func:`numpy.sum` per field over
        the shards in thread-id order; categories are materialized as a
        ``(T, K)`` matrix over the *sorted* union of keys and column-summed.
        Nothing depends on which thread finished first, so repeated runs —
        serial or threaded — merge to exactly the same numbers.
        """
        target.reads += float(np.sum([s.reads for s in self.shards]))
        target.writes += float(np.sum([s.writes for s in self.shards]))
        target.flops += float(np.sum([s.flops for s in self.shards]))
        keys = sorted(set().union(*(s.by_category for s in self.shards)))
        if keys:
            mat = np.array(
                [[s.by_category.get(k, 0.0) for k in keys] for s in self.shards]
            )
            for k, v in zip(keys, mat.sum(axis=0)):
                target.by_category[k] = target.by_category.get(k, 0.0) + float(v)
        return target

    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """Total elements moved across all shards (reads + writes)."""
        return float(np.sum([s.total for s in self.shards]))

    def per_thread_totals(self) -> List[float]:
        """Each shard's traffic total — the observability hook for
        diagnosing load imbalance from the measured channel."""
        return [s.total for s in self.shards]

    def snapshot(self) -> Dict[str, float]:
        """Merged plain-dict view (reports)."""
        return self.merge().snapshot()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedTrafficCounter(num_threads={self.num_threads}, "
            f"total={self.total:.0f})"
        )


class _NullCounter(TrafficCounter):
    """A counter that ignores every charge — the default for hot paths."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def _bump(self, kind: str, category: str, amount: float) -> None:  # noqa: D401
        return


#: Shared do-nothing counter; pass a real one to opt into accounting.
NULL_COUNTER = _NullCounter()
