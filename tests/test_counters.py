"""Unit tests for traffic counters (incl. the DM_factor cache rule)."""

import pytest

from repro.parallel import NULL_COUNTER, TrafficCounter


class TestBasicCharges:
    def test_read_write_totals(self):
        c = TrafficCounter()
        c.read(100, "structure")
        c.write(40, "output")
        assert c.reads == 100
        assert c.writes == 40
        assert c.total == 140

    def test_categories_tracked(self):
        c = TrafficCounter()
        c.read(10, "a")
        c.read(5, "a")
        c.write(7, "b")
        assert c.by_category["r:a"] == 15
        assert c.by_category["w:b"] == 7

    def test_negative_or_zero_ignored(self):
        c = TrafficCounter()
        c.read(0)
        c.read(-5)
        assert c.total == 0

    def test_reset(self):
        c = TrafficCounter(cache_elements=100)
        c.read(10)
        c.reset()
        assert c.total == 0
        assert c.cache_elements == 100

    def test_merge(self):
        a, b = TrafficCounter(), TrafficCounter()
        a.read(5, "x")
        b.read(3, "x")
        b.write(2, "y")
        a.merge(b)
        assert a.reads == 8
        assert a.writes == 2
        assert a.by_category["r:x"] == 8

    def test_snapshot(self):
        c = TrafficCounter()
        c.read(4, "z")
        snap = c.snapshot()
        assert snap["reads"] == 4
        assert snap["total"] == 4
        assert snap["r:z"] == 4


class TestCacheRule:
    def test_resident_matrix_charged_once(self):
        # Matrix footprint 10*4=40 <= cache 100: min(40, 1000*4) = 40.
        c = TrafficCounter(cache_elements=100)
        c.read_factor_rows(accesses=1000, n_rows=10, rank=4)
        assert c.reads == 40

    def test_resident_matrix_few_accesses(self):
        # Fewer accesses than rows: min(footprint, stream) = stream.
        c = TrafficCounter(cache_elements=100)
        c.read_factor_rows(accesses=3, n_rows=10, rank=4)
        assert c.reads == 12

    def test_streaming_matrix_charged_per_access(self):
        # Footprint 1000*4 > cache 100: full stream.
        c = TrafficCounter(cache_elements=100)
        c.read_factor_rows(accesses=50, n_rows=1000, rank=4)
        assert c.reads == 200

    def test_no_cache_means_streaming(self):
        c = TrafficCounter(cache_elements=None)
        c.read_factor_rows(accesses=5, n_rows=2, rank=4)
        assert c.reads == 20

    def test_write_side_rule(self):
        c = TrafficCounter(cache_elements=100)
        c.write_factor_rows(accesses=1000, n_rows=10, rank=4)
        assert c.writes == 40


class TestNullCounter:
    def test_ignores_everything(self):
        NULL_COUNTER.read(10)
        NULL_COUNTER.write(10)
        NULL_COUNTER.read_factor_rows(10, 10, 10)
        assert NULL_COUNTER.total == 0
