#!/usr/bin/env python
"""The vast-2015 load-balancing story (Section II-D / Fig. 2).

The vast-2015-mc1 tensors have only TWO slices at the root mode of the
length-sorted CSF, with a ~95/5 non-zero split.  Prior work deals root
slices to threads, so:

* at most 2 of T threads ever receive work, and
* the 2-way split is ~1674% imbalanced.

STeF's Algorithm 3 instead cuts the *leaf* level into equal non-zero
ranges and projects the cuts upward with ``find_parent_CSF``; write
conflicts are confined to boundary nodes and removed by replicating at
most T rows per level.

This example reproduces the whole narrative on the scaled generator and
verifies the replicated execution is bit-identical to serial.

Run:  python examples/load_balancing_demo.py
"""

import numpy as np

from repro import TABLE1_SPECS, generate
from repro.analysis import compare_strategies
from repro.core import MemoizedMttkrp, SAVE_NONE, build_schedule
from repro.cpd import random_init
from repro.tensor import CsfTensor


def main() -> None:
    tensor = generate(TABLE1_SPECS["vast-2015-mc1-3d"], nnz=50_000, seed=0)
    csf = CsfTensor.from_coo(tensor)
    print(f"vast-2015-mc1-3d (scaled): shape={tensor.shape} nnz={tensor.nnz}")
    print(f"CSF mode order {csf.mode_order}, root slices: {csf.fiber_counts[0]}")

    for threads in (2, 8, 18, 64):
        cmp = compare_strategies(csf, threads)
        rows = cmp.summary_rows()
        print(f"\nT = {threads}")
        for strat in ("slice", "nnz"):
            r = rows[strat]
            print(
                f"  {strat:6}: active {int(r['active_threads']):3d}/{threads:<3d} "
                f"imbalance {r['imbalance_pct']:8.1f}%  "
                f"stretch x{r['max_over_mean']:.2f}  "
                f"replicated rows {int(r['replicated_rows'])}"
            )
        print(f"  -> slice schedule is x{cmp.stretch_ratio():.1f} slower "
              f"in the bandwidth-bound machine model")

    # Correctness of boundary replication: 64-thread result == serial.
    print("\nverifying 64-thread == serial MTTKRP ...")
    rank = 16
    factors = random_init(tensor.shape, rank, 0)
    with MemoizedMttkrp(csf, rank, plan=SAVE_NONE, num_threads=1) as serial, \
            MemoizedMttkrp(csf, rank, plan=SAVE_NONE, num_threads=64) as par:
        for (m1, a), (m2, b) in zip(
            serial.iteration_results(factors), par.iteration_results(factors)
        ):
            assert m1 == m2 and np.allclose(a, b), m1
    print("identical results for every mode — no atomics, no privatization.")

    ws = build_schedule(csf, 64, "nnz")
    print(
        f"boundary-replicated rows at 64 threads: {ws.replicated_rows} "
        f"(bound: T per internal level = {64 * (csf.ndim - 1)})"
    )


if __name__ == "__main__":
    main()
