"""Broad integration sweep: STeF-backed CPD runs on every Table-I
generator, and the planner produces sane decisions for each."""

import numpy as np
import pytest

from repro.core import Stef
from repro.cpd import cp_als
from repro.parallel import INTEL_CLX_18
from repro.tensor import TABLE1_SPECS, generate

ALL_NAMES = sorted(TABLE1_SPECS)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_cpd_runs_on_every_tensor(name):
    """Two ALS iterations with the model-chosen configuration on every
    evaluation tensor: finite factors, non-decreasing fit."""
    tensor = generate(TABLE1_SPECS[name], nnz=1200, seed=0)
    backend = Stef(tensor, 8, machine=INTEL_CLX_18, num_threads=4)
    res = cp_als(tensor, 8, engine=backend, max_iters=2, tol=0, seed=1)
    assert len(res.fits) == 2
    assert res.fits[1] >= res.fits[0] - 1e-9
    for f in res.model.factors:
        assert np.all(np.isfinite(f))


@pytest.mark.parametrize("name", ALL_NAMES)
def test_planner_decision_sane(name):
    tensor = generate(TABLE1_SPECS[name], nnz=1200, seed=0)
    backend = Stef(tensor, 32, machine=INTEL_CLX_18, num_threads=4)
    decision = backend.decision
    # The chosen configuration is the global minimum of the search.
    assert decision.best.predicted_traffic == min(
        c.predicted_traffic for c in decision.configurations
    )
    # Saveable levels only.
    backend.plan.validate(tensor.ndim)
    # Preprocessing is fast even at test scale.
    assert backend.preprocessing_seconds < 5.0
