"""Machine-model calibration against observed kernel wall-clock.

The simulated channel predicts each MTTKRP's time as
``max(traffic/BW, flops/F) · load`` with machine constants ``BW``
(bandwidth) and ``F`` (sustained irregular compute).  This module closes
the loop: collect ``(traffic, flops, wall)`` triples from real kernel
executions and fit ``BW``/``F`` so the roofline best explains the
measurements — then report how well it does (median relative error).

On this reproduction's NumPy kernels the fitted constants describe the
*Python* machine (useful for judging whether the simulated channel's
rankings carry over to local wall-clock); on a C port they would recover
the hardware constants.  Either way, a poor fit flags kernels whose cost
the two-resource model cannot express — the same diagnostic the paper's
model-vs-measured reasoning relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize

from ..parallel.machine import MachineSpec
from ..tensor.coo import CooTensor
from .experiments import measure_method

__all__ = ["CalibrationSample", "CalibrationResult", "collect_samples", "fit_roofline"]


@dataclass(frozen=True)
class CalibrationSample:
    """One kernel execution: counted costs plus observed wall time."""

    traffic_elements: float
    flops: float
    load_factor: float
    wall_seconds: float


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted roofline constants and their explanatory quality."""

    dram_gbps: float
    gflops: float
    median_rel_error: float
    samples: int

    def predict_seconds(self, traffic: float, flops: float, load: float = 1.0) -> float:
        """Roofline prediction under the fitted constants."""
        t_mem = traffic * 8 / (self.dram_gbps * 1e9)
        t_cpu = flops / (self.gflops * 1e9)
        return max(t_mem, t_cpu) * load

    def as_machine(self, template: MachineSpec) -> MachineSpec:
        """A machine spec carrying the fitted constants (cache/threads
        from ``template``)."""
        return MachineSpec(
            name=f"{template.name}-calibrated",
            num_threads=template.num_threads,
            cache_bytes=template.cache_bytes,
            element_bytes=template.element_bytes,
            dram_gbps=self.dram_gbps,
            gflops=self.gflops,
        )


def collect_samples(
    tensors: Sequence[Tuple[str, CooTensor]],
    rank: int,
    machine: MachineSpec,
    *,
    methods: Sequence[str] = ("stef", "splatt-all", "alto"),
    num_threads: int = 4,
    repeats: int = 1,
) -> List[CalibrationSample]:
    """Run MTTKRP sets and harvest per-level (traffic, flops, wall)."""
    samples: List[CalibrationSample] = []
    for _ in range(repeats):
        for name, tensor in tensors:
            for method in methods:
                m = measure_method(
                    method, tensor, rank, machine,
                    num_threads=num_threads, tensor_name=name,
                )
                for lv in m.levels:
                    if lv.wall_seconds > 0 and lv.traffic_elements > 0:
                        samples.append(
                            CalibrationSample(
                                traffic_elements=lv.traffic_elements,
                                flops=max(lv.flops, 1.0),
                                load_factor=lv.load_factor,
                                wall_seconds=lv.wall_seconds,
                            )
                        )
    return samples


def fit_roofline(samples: Sequence[CalibrationSample]) -> CalibrationResult:
    """Fit ``(dram_gbps, gflops)`` minimizing squared log error of the
    roofline prediction over the samples.

    Log-space keeps the fit scale-free (kernels span orders of
    magnitude); the ``max`` is handled directly by the optimizer (the
    objective is piecewise smooth, and a coarse grid seeds the local
    search away from bad basins).
    """
    if len(samples) < 3:
        raise ValueError("need at least 3 samples to calibrate")
    traffic = np.array([s.traffic_elements for s in samples])
    flops = np.array([s.flops for s in samples])
    load = np.array([s.load_factor for s in samples])
    wall = np.array([s.wall_seconds for s in samples])

    def predict(log_bw: float, log_gf: float) -> np.ndarray:
        t_mem = traffic * 8 / (np.exp(log_bw) * 1e9)
        t_cpu = flops / (np.exp(log_gf) * 1e9)
        return np.maximum(t_mem, t_cpu) * load

    def objective(params: np.ndarray) -> float:
        pred = predict(params[0], params[1])
        return float(np.mean((np.log(pred) - np.log(wall)) ** 2))

    # Coarse grid seed, then Nelder-Mead refinement.
    best: Optional[Tuple[float, np.ndarray]] = None
    for bw in np.log([0.01, 0.1, 1.0, 10.0, 100.0]):
        for gf in np.log([0.01, 0.1, 1.0, 10.0, 100.0]):
            v = objective(np.array([bw, gf]))
            if best is None or v < best[0]:
                best = (v, np.array([bw, gf]))
    assert best is not None
    res = minimize(objective, best[1], method="Nelder-Mead")
    log_bw, log_gf = res.x
    pred = predict(log_bw, log_gf)
    rel_err = float(np.median(np.abs(pred - wall) / wall))
    return CalibrationResult(
        dram_gbps=float(np.exp(log_bw)),
        gflops=float(np.exp(log_gf)),
        median_rel_error=rel_err,
        samples=len(samples),
    )
