"""Decomposition quality diagnostics.

Two standard instruments for judging a CP model beyond raw fit:

* **Factor match score (FMS)** — similarity between two Kruskal models up
  to the inherent permutation/scaling ambiguity of CP: columns are
  optimally matched (Hungarian assignment on congruence products) and the
  mean matched congruence is reported.  FMS ≈ 1 means the models describe
  the same components; used by tests to verify ALS recovers planted
  factors.

* **CORCONDIA** (core consistency diagnostic, Bro & Kiers) — how close
  the least-squares Tucker core of the data (given the CP factors) is to
  the superdiagonal identity the CP model assumes.  100 means the CP
  structure is appropriate; near/below 0 signals an over-factored model.
  Computed densely, so it is intended for the laptop-scale tensors of the
  examples and tests.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..tensor.coo import CooTensor
from .kruskal import KruskalTensor

__all__ = ["congruence_matrix", "factor_match_score", "corcondia"]


def congruence_matrix(a: KruskalTensor, b: KruskalTensor) -> np.ndarray:
    """Pairwise component congruence ``C[r, s]``: the product over modes
    of cosine similarities between column ``r`` of ``a`` and column ``s``
    of ``b``, times the (normalized) weight agreement."""
    if a.ndim != b.ndim:
        raise ValueError("models must have the same number of modes")
    ra, rb = a.rank, b.rank
    cong = np.ones((ra, rb))
    an = a.normalized()
    bn = b.normalized()
    for fa, fb in zip(an.factors, bn.factors):
        # Columns are unit-norm after normalized(); guard zero columns.
        cos = np.abs(fa.T @ fb)
        cong *= cos
    wa = np.abs(an.weights)
    wb = np.abs(bn.weights)
    denom = np.maximum(np.maximum.outer(wa, wb), 1e-300)
    penalty = 1.0 - np.abs(np.subtract.outer(wa, wb)) / denom
    return cong * np.clip(penalty, 0.0, 1.0)


def factor_match_score(
    a: KruskalTensor, b: KruskalTensor, *, return_permutation: bool = False
):
    """FMS between two Kruskal models: mean congruence under the optimal
    component matching (Hungarian assignment).

    Models of unequal rank are scored over the smaller rank's best
    matching.  With ``return_permutation=True`` also returns the matched
    column index pairs ``(rows, cols)``.
    """
    cong = congruence_matrix(a, b)
    rows, cols = linear_sum_assignment(-cong)
    score = float(cong[rows, cols].mean())
    if return_permutation:
        return score, (rows, cols)
    return score


def corcondia(tensor: CooTensor, model: KruskalTensor) -> float:
    """Core consistency diagnostic in percent (100 = ideal CP structure).

    Solves the least-squares Tucker core ``G`` for the data given the
    model's factors (via per-mode pseudo-inverses applied to the dense
    tensor) and measures its distance from the superdiagonal identity:

    ``100 * (1 - ||G - I|| / ||I||)``, with ``||I||² = R``.

    Densifies the tensor — test/example scale only.
    """
    dense = tensor.to_dense()
    rank = model.rank
    core = dense
    for m, f in enumerate(model.factors):
        pinv = np.linalg.pinv(np.asarray(f))
        core = np.tensordot(pinv, core, axes=(1, m))
        # tensordot moves the contracted mode to the front; after d
        # applications the axes are back in order.
    ideal = np.zeros((rank,) * tensor.ndim)
    idx = np.arange(rank)
    ideal[tuple(idx for _ in range(tensor.ndim))] = model.weights
    denom = float(np.sum(model.weights**2))
    if denom == 0:
        return 0.0
    dev = float(np.sum((core - ideal) ** 2))
    return 100.0 * (1.0 - dev / denom)
