"""Unit tests for machine specs."""

import numpy as np
import pytest

from repro.parallel import AMD_TR_64, INTEL_CLX_18, MACHINES, MachineSpec


class TestPresets:
    def test_paper_machines_present(self):
        assert "intel-clx-18" in MACHINES
        assert "amd-tr-64" in MACHINES

    def test_thread_counts_match_paper(self):
        assert INTEL_CLX_18.num_threads == 18
        assert AMD_TR_64.num_threads == 64

    def test_amd_cache_larger(self):
        # 256 MB vs 24.75 MB L3 — the property behind the machines making
        # different caching decisions for the same tensor.
        assert AMD_TR_64.cache_bytes > 5 * INTEL_CLX_18.cache_bytes

    def test_cache_elements(self):
        assert INTEL_CLX_18.cache_elements == INTEL_CLX_18.cache_bytes // 8


class TestBehaviour:
    def test_traffic_seconds_linear(self):
        m = MachineSpec("toy", 4, 1024, dram_gbps=10.0)
        assert np.isclose(m.traffic_seconds(2e9), 2e9 * 8 / 1e10)
        assert m.traffic_seconds(0) == 0.0

    def test_with_threads(self):
        m = INTEL_CLX_18.with_threads(4)
        assert m.num_threads == 4
        assert m.cache_bytes == INTEL_CLX_18.cache_bytes
        assert "4t" in m.name

    def test_frozen(self):
        with pytest.raises(Exception):
            INTEL_CLX_18.num_threads = 2
