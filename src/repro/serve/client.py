"""Synchronous client for the decomposition service.

One connection, request/response in lockstep: every method writes one
NDJSON line and reads one back.  Responses with ``ok: false`` raise
:class:`ServeError` carrying the server's ``reason`` (``queue-full``,
``client-limit``, ``timeout``, ...), so callers handle backpressure with
an ``except`` rather than by inspecting dicts.

:func:`submit_tensor` is the convenience path ``repro submit`` uses: it
inlines a :class:`~repro.tensor.coo.CooTensor`'s arrays into the spec
so the server never needs filesystem access to the client's data, and
the content fingerprint still matches a path-submitted twin.

:func:`wait_for_socket` polls until a freshly-forked server starts
accepting — the standard preamble for tests and scripted batch runs.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, List, Optional

from .protocol import JobSpec, encode

__all__ = ["ServeClient", "ServeError", "wait_for_socket"]


class ServeError(RuntimeError):
    """An ``ok: false`` response; ``reason`` and ``retry`` mirror it."""

    def __init__(self, error: str, reason: str = "error",
                 retry: bool = False) -> None:
        super().__init__(error)
        self.reason = reason
        self.retry = retry


def wait_for_socket(path: str, timeout: float = 30.0) -> None:
    """Block until a server accepts connections on ``path``."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as probe:
                probe.connect(path)
                return
        except OSError:
            if time.monotonic() >= deadline:
                raise TimeoutError(f"no server on {path} after {timeout}s")
            time.sleep(0.05)


class ServeClient:
    def __init__(self, socket_path: str, timeout: Optional[float] = None,
                 connect_timeout: float = 0.0) -> None:
        # connect_timeout > 0 tolerates a daemon that is still booting
        # (`repro serve ... &` followed by an immediate submit): poll for
        # the socket instead of failing on the first connect.
        if connect_timeout > 0:
            wait_for_socket(socket_path, timeout=connect_timeout)
        self.socket_path = socket_path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(socket_path)
        self._reader = self._sock.makefile("rb")

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._reader.close()
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- transport -----------------------------------------------------
    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self._sock.sendall(encode(message))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok", False):
            raise ServeError(
                response.get("error", "request failed"),
                reason=response.get("reason", "error"),
                retry=bool(response.get("retry", False)),
            )
        return response

    # -- operations ----------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"})["ok"])

    def submit(self, spec: JobSpec, wait: bool = False) -> Dict[str, Any]:
        """Submit a job; returns ``{"job_id": ...}`` or, with ``wait``,
        the full terminal job record."""
        response = self.request(
            {"op": "submit", "spec": spec.to_dict(), "wait": wait},
        )
        return response["job"] if wait else response

    def submit_tensor(self, tensor, wait: bool = False,
                      **spec_fields: Any) -> Dict[str, Any]:
        """Submit with the tensor's COO arrays inlined into the spec."""
        spec = JobSpec(
            coo={
                "indices": tensor.indices.tolist(),
                "values": tensor.values.tolist(),
                "shape": list(tensor.shape),
            },
            **spec_fields,
        )
        return self.submit(spec, wait=wait)

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": "wait", "job_id": job_id}
        if timeout is not None:
            message["timeout"] = timeout
        return self.request(message)["job"]

    def status(self, job_id: str, result: bool = False) -> Dict[str, Any]:
        return self.request(
            {"op": "status", "job_id": job_id, "result": result},
        )["job"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self.request({"op": "jobs"})["jobs"]

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})["stats"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request({"op": "cancel", "job_id": job_id})

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})
