"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, load_tensor, main
from repro.tensor import random_tensor, write_tns


class TestLoadTensor:
    def test_table1_name(self):
        t = load_tensor("uber", nnz=500, seed=0)
        assert t.ndim == 4

    def test_file_path(self, tmp_path):
        t = random_tensor((5, 5, 5), nnz=20, seed=0)
        path = str(tmp_path / "x.tns")
        write_tns(t, path)
        loaded = load_tensor(path, nnz=0, seed=0)
        assert loaded.nnz == t.nnz

    def test_unknown_raises(self):
        with pytest.raises(SystemExit):
            load_tensor("no-such-tensor", nnz=10, seed=0)


class TestParser:
    def test_subcommands_present(self):
        parser = build_parser()
        for cmd in ("info", "plan", "decompose", "compare"):
            args = parser.parse_args([cmd, "uber"])
            assert args.command == cmd

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_engine_choices(self):
        args = build_parser().parse_args(
            ["decompose", "uber", "--engine", "stef2"]
        )
        assert args.engine == "stef2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["decompose", "uber", "--engine", "x"])

    def test_backend_is_engine_alias(self):
        args = build_parser().parse_args(
            ["decompose", "uber", "--backend", "stef2"]
        )
        assert args.engine == "stef2"

    def test_engine_help_renders_capabilities(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["decompose", "--help"])
        text = capsys.readouterr().out.replace("\n", " ")
        assert "jit=auto" in text and "memoize" in text

    def test_jit_flag(self):
        args = build_parser().parse_args(
            ["decompose", "uber", "--jit", "off"]
        )
        assert args.jit == "off"


class TestCommands:
    def _run(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_info(self):
        code, text = self._run(["info", "uber", "--nnz", "800"])
        assert code == 0
        assert "CSF" in text and "HiCOO" in text and "ALTO" in text

    def test_plan(self):
        code, text = self._run(["plan", "uber", "--nnz", "800", "--rank", "8"])
        assert code == 0
        assert "<== chosen" in text
        assert text.count("order=") == 8  # 2 orders x 4 plans for 4-D

    def test_decompose(self):
        code, text = self._run(
            ["decompose", "nips", "--nnz", "600", "--rank", "4",
             "--iters", "2", "--threads", "2"]
        )
        assert code == 0
        assert "final fit" in text

    def test_decompose_every_engine(self):
        from repro.baselines import ALL_BACKENDS

        for engine in ALL_BACKENDS:
            code, text = self._run(
                ["decompose", "uber", "--nnz", "400", "--rank", "3",
                 "--iters", "1", "--engine", engine, "--threads", "2"]
            )
            assert code == 0, engine

    def test_compare(self):
        code, text = self._run(
            ["compare", "uber", "--nnz", "600", "--rank", "8",
             "--methods", "stef", "splatt-all", "--threads", "4"]
        )
        assert code == 0
        assert "simulated channel" in text and "wall channel" in text

    def test_compare_adds_baseline(self):
        code, text = self._run(
            ["compare", "uber", "--nnz", "500", "--rank", "4",
             "--methods", "stef", "--threads", "2"]
        )
        assert code == 0
        assert "splatt-all" in text

    def test_decompose_from_file(self, tmp_path):
        t = random_tensor((8, 7, 6), nnz=100, seed=1)
        path = str(tmp_path / "t.tns")
        write_tns(t, path)
        code, text = self._run(
            ["decompose", path, "--rank", "3", "--iters", "2"]
        )
        assert code == 0
        assert "final fit" in text
