"""repro.kernels — the flat-array kernel ABI and its execution tiers.

The segmented MTTKRP / mTTV inner loops of the CSF sweeps are expressed
against a small ABI of functions taking **only ndarrays and scalars**
(CSF pointer/index arrays, factor matrices, output buffers, plan
integers) plus an explicit ``tier=`` name.  Two tiers implement it:

* :mod:`repro.kernels.numpy_tier` — the vectorized NumPy expressions the
  kernels always used (the reference, and the fallback when Numba is
  absent or ``REPRO_NO_JIT=1``);
* :mod:`repro.kernels.numba_tier` — ``@njit(cache=True)`` compiled
  loops, selected through the engines' ``jit=`` keyword.

:mod:`repro.kernels.dispatch` routes calls between them and owns tier
resolution (:func:`resolve_tier`, :func:`jit_available`).  The contract
between tiers is bit-identical outputs and exactly equal
TrafficCounter totals — see API.md ("The kernel ABI and the jit tier").
"""

from .dispatch import (
    JIT_MODES,
    TIER_NUMBA,
    TIER_NUMPY,
    gather_multiply_rows,
    jit_available,
    parent_of,
    repeat_rows,
    resolve_tier,
    scale_rows_by_values,
    scatter_rows_add,
    segment_reduce_rows,
    segment_sum_rows,
    take_factor_rows,
    value_gather_rows,
)

__all__ = [
    "JIT_MODES",
    "TIER_NUMBA",
    "TIER_NUMPY",
    "gather_multiply_rows",
    "jit_available",
    "parent_of",
    "repeat_rows",
    "resolve_tier",
    "scale_rows_by_values",
    "scatter_rows_add",
    "segment_reduce_rows",
    "segment_sum_rows",
    "take_factor_rows",
    "value_gather_rows",
]
