"""Row/series formatting shared by the benchmark harness.

The figures of the paper report *relative performance against splatt-all*
(bars, higher = better) and geometric-mean speedups in the prose
(Section VI-B).  These helpers turn the raw
:class:`~repro.analysis.experiments.MethodMeasurement` grids into exactly
those rows so every bench prints the same shapes the paper plots.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

from .experiments import MethodMeasurement

__all__ = [
    "geometric_mean",
    "relative_performance",
    "geomean_speedups",
    "format_table",
]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; empty input returns NaN, non-positive entries raise."""
    vals = np.asarray(list(values), dtype=np.float64)
    if vals.size == 0:
        return float("nan")
    if np.any(vals <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(vals))))


def relative_performance(
    grid: Mapping[str, Mapping[str, MethodMeasurement]],
    *,
    baseline: str = "splatt-all",
    channel: str = "simulated",
) -> Dict[str, Dict[str, float]]:
    """Per-tensor performance of each method relative to ``baseline``
    (>1 = faster than the baseline), from either cost channel
    (``"simulated"`` or ``"wall"``)."""
    attr = {"simulated": "simulated_seconds", "wall": "wall_seconds"}[channel]
    out: Dict[str, Dict[str, float]] = {}
    for tensor_name, row in grid.items():
        base = getattr(row[baseline], attr)
        out[tensor_name] = {
            method: base / max(getattr(m, attr), 1e-30) for method, m in row.items()
        }
    return out


def geomean_speedups(
    rel: Mapping[str, Mapping[str, float]],
    method: str,
    others: Sequence[str],
) -> Dict[str, float]:
    """Geometric-mean speedup of ``method`` over each of ``others`` across
    tensors — the Section VI-B prose numbers ("STeF achieves 437%, 50%,
    ... geometric mean speed-up over AdaTM, ALTO, ...")."""
    out: Dict[str, float] = {}
    for other in others:
        ratios = [row[method] / row[other] for row in rel.values()]
        out[other] = geometric_mean(ratios)
    return out


def format_table(
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    *,
    title: str = "",
    fmt: str = "{:8.3f}",
    col_width: int = 12,
) -> str:
    """Fixed-width text table: one row per tensor, one column per method."""
    lines: List[str] = []
    if title:
        lines.append(title)
    name_w = max([len(k) for k in rows] + [len("tensor")]) + 2
    header = "tensor".ljust(name_w) + "".join(
        c.rjust(col_width) for c in columns
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in rows.items():
        cells = "".join(
            fmt.format(row[c]).rjust(col_width) if c in row else "-".rjust(col_width)
            for c in columns
        )
        lines.append(name.ljust(name_w) + cells)
    return "\n".join(lines)
