"""Unit tests for the vectorized CSF sweep primitives."""

import numpy as np
import pytest

from repro.core import (
    ancestor_windows,
    scatter_add_rows,
    serial_upward_sweep,
    thread_downward_k,
    thread_level_ranges,
    thread_upward_sweep,
)
from repro.ops import krp_rows, mttkrp_dense
from repro.parallel import ReplicatedArray, nnz_partition
from repro.tensor import CsfTensor
from tests.conftest import make_factors


def level_factors(csf, factors):
    return [factors[m] for m in csf.mode_order]


class TestScatterAddRows:
    def test_duplicates_accumulate(self):
        out = np.zeros((3, 2))
        scatter_add_rows(out, np.array([0, 0, 2]), np.ones((3, 2)))
        assert np.allclose(out, [[2, 2], [0, 0], [1, 1]])

    def test_empty_noop(self):
        out = np.ones((2, 2))
        scatter_add_rows(out, np.empty(0, dtype=np.int64), np.empty((0, 2)))
        assert np.allclose(out, 1.0)

    def test_matches_add_at(self):
        rng = np.random.default_rng(0)
        out_a = np.zeros((10, 5))
        out_b = np.zeros((10, 5))
        idx = rng.integers(0, 10, 50)
        rows = rng.standard_normal((50, 5))
        scatter_add_rows(out_a, idx, rows)
        np.add.at(out_b, idx, rows)
        assert np.allclose(out_a, out_b)


class TestWindows:
    def test_leaf_windows_cover_ancestors(self, csf4):
        windows = thread_level_ranges(csf4, 5, 40)
        assert windows[-1].lo == 5 and windows[-1].hi == 40
        for lvl in range(csf4.ndim - 1):
            w = windows[lvl]
            assert 0 <= w.lo < w.hi <= csf4.fiber_counts[lvl]

    def test_empty_range(self, csf4):
        windows = thread_level_ranges(csf4, 7, 7)
        assert all(w.count == 0 for w in windows)

    def test_ancestor_windows_compose(self, csf4):
        # Ancestors computed from an intermediate level agree with those
        # computed from the leaves.
        from_leaves = thread_level_ranges(csf4, 10, 60)
        lvl = 2
        w = from_leaves[lvl]
        from_mid = ancestor_windows(csf4, lvl, w.lo, w.hi)
        for i in range(lvl + 1):
            assert from_mid[i] == from_leaves[i]


class TestUpwardSweep:
    def test_serial_t0_is_mode0_mttkrp(self, coo4, factors4):
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        ts = serial_upward_sweep(csf, level_factors(csf, factors4))
        out = np.zeros((coo4.shape[0], 4))
        out[csf.idx[0]] = ts[0]
        assert np.allclose(out, mttkrp_dense(coo4.to_dense(), factors4, 0))

    def test_serial_intermediate_levels_match_dense_partials(self, coo4, factors4):
        from repro.ops import partial_mttkrp_dense

        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        ts = serial_upward_sweep(csf, level_factors(csf, factors4))
        dense = coo4.to_dense()
        for lvl in (1, 2):
            ref = partial_mttkrp_dense(dense, factors4, lvl)
            got = np.zeros_like(ref)
            coords = tuple(
                csf.expand_to_level(i, lvl, csf.idx[i]) for i in range(lvl + 1)
            )
            got[coords] = ts[lvl]
            assert np.allclose(got, ref)

    @pytest.mark.parametrize("threads", [2, 3, 7])
    def test_threaded_partials_merge_to_serial(self, coo4, factors4, threads):
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        lf = level_factors(csf, factors4)
        serial = serial_upward_sweep(csf, lf)
        part = nnz_partition(csf, threads)
        reps = {
            lvl: ReplicatedArray(csf.fiber_counts[lvl], 4, threads)
            for lvl in range(csf.ndim - 1)
        }
        for th in range(threads):
            lo, hi = part.leaf_range(th)
            res = thread_upward_sweep(csf, lf, lo, hi)
            for lvl, (nlo, tp) in res.items():
                reps[lvl].view(th, nlo, nlo + tp.shape[0])[:] += tp
        for lvl in range(csf.ndim - 1):
            assert np.allclose(reps[lvl].merge(), serial[lvl])

    def test_resume_from_memo_matches_full(self, coo4, factors4):
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        lf = level_factors(csf, factors4)
        full = serial_upward_sweep(csf, lf)
        resumed = serial_upward_sweep(csf, lf, start_level=2, init=full[2])
        assert np.allclose(resumed[0], full[0])
        assert np.allclose(resumed[1], full[1])

    def test_resume_requires_init(self, coo4, factors4):
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        with pytest.raises(ValueError, match="init"):
            thread_upward_sweep(
                csf, level_factors(csf, factors4), 0, 10, start_level=2
            )

    def test_empty_thread_range(self, coo4, factors4):
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        res = thread_upward_sweep(csf, level_factors(csf, factors4), 5, 5)
        for lvl, (_nlo, tp) in res.items():
            assert tp.shape == (0, 4)

    def test_stop_level_limits_output(self, coo4, factors4):
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        res = thread_upward_sweep(
            csf, level_factors(csf, factors4), 0, csf.nnz, stop_level=2
        )
        assert set(res) == {2}

    def test_serial_sweep_charges_like_threaded_path(self, coo4, factors4):
        """Regression: ``serial_upward_sweep(counter=...)`` charges the
        same structure/sweep legs ``proc_tasks.charge_sweep`` does with a
        single thread owning every node (the serial path used to be
        unaccountable)."""
        from repro.parallel import TrafficCounter

        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        counter = TrafficCounter()
        result = serial_upward_sweep(
            csf, level_factors(csf, factors4), counter=counter
        )
        owned = [csf.fiber_counts[lvl] for lvl in range(csf.ndim - 1)]
        owned.append(csf.nnz)
        assert counter.reads == 2.0 * sum(owned)
        assert counter.flops == 2.0 * 4 * sum(owned[1:])
        assert counter.writes == 0
        assert set(counter.by_category) == {"r:structure", "f:sweep"}
        # The accounting must not perturb the arithmetic.
        silent = serial_upward_sweep(csf, level_factors(csf, factors4))
        for lvl in silent:
            assert np.allclose(result[lvl], silent[lvl])


class TestDownwardK:
    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_k_rows_match_explicit_krp(self, coo4, factors4, level):
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        lf = level_factors(csf, factors4)
        k = thread_downward_k(csf, lf, level, 0, csf.fiber_counts[level])
        paths = [csf.expand_to_level(i, level, csf.idx[i]) for i in range(level)]
        ref = krp_rows(lf[:level], paths)
        assert np.allclose(k, ref)

    def test_multiply_last_includes_own_factor(self, coo4, factors4):
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        lf = level_factors(csf, factors4)
        level = 2
        k_excl = thread_downward_k(csf, lf, level, 0, csf.fiber_counts[level])
        k_incl = thread_downward_k(
            csf, lf, level, 0, csf.fiber_counts[level], multiply_last=True
        )
        own = np.asarray(lf[level])[csf.idx[level]]
        assert np.allclose(k_incl, k_excl * own)

    def test_level0_without_last_is_ones(self, coo4, factors4):
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        lf = level_factors(csf, factors4)
        k = thread_downward_k(csf, lf, 0, 0, csf.fiber_counts[0])
        assert np.allclose(k, 1.0)

    def test_partial_ranges_concatenate(self, coo4, factors4):
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        lf = level_factors(csf, factors4)
        level = 2
        n = csf.fiber_counts[level]
        whole = thread_downward_k(csf, lf, level, 0, n)
        mid = n // 2
        a = thread_downward_k(csf, lf, level, 0, mid)
        b = thread_downward_k(csf, lf, level, mid, n)
        assert np.allclose(np.vstack([a, b]), whole)

    def test_empty_range(self, coo4, factors4):
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        k = thread_downward_k(csf, level_factors(csf, factors4), 2, 4, 4)
        assert k.shape == (0, 4)
