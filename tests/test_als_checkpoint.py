"""Tests for ALS checkpoint/resume."""

import os

import numpy as np
import pytest

from repro.baselines import SplattAll
from repro.cpd import cp_als
from repro.tensor import low_rank_tensor


@pytest.fixture
def workload():
    return low_rank_tensor((10, 9, 8), rank=2, nnz=500, noise=0.1, seed=0)


class TestCheckpoint:
    def test_checkpoint_written(self, workload, tmp_path):
        path = str(tmp_path / "ck.npz")
        cp_als(
            workload, 2, backend=SplattAll(workload, 2), max_iters=4, tol=0,
            checkpoint_path=path, checkpoint_every=2,
        )
        assert os.path.exists(path)
        with np.load(path) as data:
            assert int(data["iteration"]) == 4
            assert "factor_0" in data and "factor_2" in data

    def test_resume_continues_trajectory(self, workload, tmp_path):
        """Run 6 iterations straight vs 3 + resume 3: identical final
        factors (the checkpoint captures the full ALS state)."""
        path = str(tmp_path / "ck.npz")
        straight = cp_als(
            workload, 2, backend=SplattAll(workload, 2), max_iters=6, tol=0,
            seed=3,
        )
        cp_als(
            workload, 2, backend=SplattAll(workload, 2), max_iters=3, tol=0,
            seed=3, checkpoint_path=path, checkpoint_every=3,
        )
        resumed = cp_als(
            workload, 2, backend=SplattAll(workload, 2), max_iters=6, tol=0,
            seed=999,  # ignored: factors come from the checkpoint
            checkpoint_path=path, resume=True,
        )
        assert resumed.iterations == 3  # only the remaining iterations ran
        for a, b in zip(straight.model.factors, resumed.model.factors):
            assert np.allclose(a, b, atol=1e-10)

    def test_resume_without_path_raises(self, workload):
        with pytest.raises(ValueError, match="checkpoint_path"):
            cp_als(workload, 2, backend=SplattAll(workload, 2), resume=True)

    def test_resume_missing_file_starts_fresh(self, workload, tmp_path):
        path = str(tmp_path / "absent.npz")
        res = cp_als(
            workload, 2, backend=SplattAll(workload, 2), max_iters=2, tol=0,
            checkpoint_path=path, resume=True,
        )
        assert res.iterations == 2

    def test_resume_mismatched_rank_raises(self, workload, tmp_path):
        path = str(tmp_path / "ck.npz")
        cp_als(
            workload, 2, backend=SplattAll(workload, 2), max_iters=2, tol=0,
            checkpoint_path=path,
        )
        with pytest.raises(ValueError, match="does not match"):
            cp_als(
                workload, 5, backend=SplattAll(workload, 5), max_iters=2,
                tol=0, checkpoint_path=path, resume=True,
            )

    def test_resume_past_max_iters_is_noop(self, workload, tmp_path):
        path = str(tmp_path / "ck.npz")
        cp_als(
            workload, 2, backend=SplattAll(workload, 2), max_iters=4, tol=0,
            checkpoint_path=path,
        )
        res = cp_als(
            workload, 2, backend=SplattAll(workload, 2), max_iters=3, tol=0,
            checkpoint_path=path, resume=True,
        )
        assert res.iterations == 0
