"""Tests for the dimension-tree (BDT/HyperTensor-policy) backend."""

import numpy as np
import pytest

from repro.baselines import DimTreeBackend, SplattAll, build_mode_tree
from repro.cpd import cp_als
from repro.ops import mttkrp_dense
from repro.parallel import TrafficCounter
from repro.tensor import random_tensor
from tests.conftest import make_factors


class TestTreeConstruction:
    @pytest.mark.parametrize("ndim,expected_nodes", [(2, 3), (3, 5), (4, 7), (5, 9)])
    def test_node_counts(self, ndim, expected_nodes):
        tree = build_mode_tree(ndim)
        assert len(tree) == expected_nodes  # 2*d - 1 nodes of a binary tree

    def test_leaves_are_single_modes(self):
        tree = build_mode_tree(4)
        leaves = [n for n, c in tree.items() if not c]
        assert sorted(leaves) == [(0,), (1,), (2,), (3,)]

    def test_children_partition_parent(self):
        tree = build_mode_tree(5)
        for node, children in tree.items():
            if children:
                merged = tuple(sorted(children[0] + children[1]))
                assert merged == node

    def test_invalid_ndim(self):
        with pytest.raises(ValueError):
            build_mode_tree(0)


class TestCorrectness:
    @pytest.mark.parametrize("shape,nnz", [((9, 7, 6), 150), ((8, 7, 6, 5), 200)])
    def test_matches_oracle(self, shape, nnz):
        t = random_tensor(shape, nnz, seed=3)
        dense = t.to_dense()
        fac = make_factors(shape, 3, seed=4)
        b = DimTreeBackend(t, 3, num_threads=2)
        for lvl in range(t.ndim):
            assert np.allclose(
                b.mttkrp_level(fac, lvl), mttkrp_dense(dense, fac, lvl)
            )

    def test_als_matches_splatt_all(self, coo4):
        """Identical update order -> identical trajectory; the cached
        nodes must invalidate correctly as factors change."""
        r1 = cp_als(coo4, 3, engine=DimTreeBackend(coo4, 3), max_iters=5,
                    tol=0, seed=7)
        r2 = cp_als(coo4, 3, engine=SplattAll(coo4, 3), max_iters=5,
                    tol=0, seed=7)
        assert np.allclose(r1.fits, r2.fits, atol=1e-8)

    def test_stale_cache_detected(self, coo4):
        """Changing a factor object must force recomputation of every
        node that consumed it."""
        fac = make_factors(coo4.shape, 3, seed=9)
        dense = coo4.to_dense()
        b = DimTreeBackend(coo4, 3)
        b.mttkrp_level(fac, 0)  # caches (0,1) (contracted with A2, A3)
        fac[3] = make_factors(coo4.shape, 3, seed=10)[3]
        res = b.mttkrp_level(fac, 0)
        assert np.allclose(res, mttkrp_dense(dense, fac, 0))

    def test_cache_reused_across_sibling_modes(self, coo4):
        """Modes 0 and 1 share node (0,1): computing mode 1 right after
        mode 0 with unchanged factors must not rebuild it."""
        fac = make_factors(coo4.shape, 3, seed=11)
        c = TrafficCounter()
        b = DimTreeBackend(coo4, 3, counter=c)
        b.mttkrp_level(fac, 0)
        writes_after_mode0 = c.by_category.get("w:memo", 0.0)
        b.mttkrp_level(fac, 1)
        assert c.by_category.get("w:memo", 0.0) == writes_after_mode0


class TestAccounting:
    def test_memo_bytes_grow_then_stabilize(self, coo4):
        fac = make_factors(coo4.shape, 3, seed=12)
        b = DimTreeBackend(coo4, 3)
        assert b.memo_bytes() == 0
        b.mttkrp_level(fac, 0)
        first = b.memo_bytes()
        assert first > 0
        b.mttkrp_level(fac, 1)
        assert b.memo_bytes() == first  # reuse, no new nodes

    def test_traffic_charged(self, coo4):
        fac = make_factors(coo4.shape, 3, seed=13)
        c = TrafficCounter()
        b = DimTreeBackend(coo4, 3, num_threads=2, counter=c)
        for lvl in range(coo4.ndim):
            b.mttkrp_level(fac, lvl)
        assert c.reads > 0 and c.writes > 0 and c.flops > 0

    def test_level_load_factor(self, coo4):
        b = DimTreeBackend(coo4, 3, num_threads=4)
        assert b.level_load_factor(0) == 1.0

    def test_describe(self, coo4):
        b = DimTreeBackend(coo4, 3)
        assert "dimtree" in b.describe()
