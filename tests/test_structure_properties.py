"""Property tests for the secondary structures: HiCOO, Lexi-Order,
toolbox algebra."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.reorder import lexi_order, random_relabel
from repro.tensor import CooTensor, CsfTensor, HicooTensor
from repro.tensor.toolbox import (
    add,
    frobenius_distance,
    hadamard_product,
    mode_marginals,
    subtract,
)


@st.composite
def coo_small(draw, max_dim=8, max_nnz=40):
    ndim = draw(st.integers(2, 4))
    shape = tuple(draw(st.integers(2, max_dim)) for _ in range(ndim))
    nnz = draw(st.integers(1, max_nnz))
    idx = np.empty((ndim, nnz), dtype=np.int64)
    for m in range(ndim):
        idx[m] = draw(
            st.lists(st.integers(0, shape[m] - 1), min_size=nnz, max_size=nnz)
        )
    vals = np.array(
        draw(
            st.lists(
                st.floats(-8, 8, allow_nan=False, width=32),
                min_size=nnz,
                max_size=nnz,
            )
        )
    )
    return CooTensor.from_arrays(idx, vals, shape)


@st.composite
def coo_pairs(draw):
    a = draw(coo_small())
    nnz = draw(st.integers(1, 30))
    idx = np.empty((a.ndim, nnz), dtype=np.int64)
    for m in range(a.ndim):
        idx[m] = draw(
            st.lists(st.integers(0, a.shape[m] - 1), min_size=nnz, max_size=nnz)
        )
    vals = np.array(
        draw(
            st.lists(
                st.floats(-8, 8, allow_nan=False, width=32),
                min_size=nnz,
                max_size=nnz,
            )
        )
    )
    b = CooTensor.from_arrays(idx, vals, a.shape)
    return a, b


# ---------------------------------------------------------------------------
# HiCOO
# ---------------------------------------------------------------------------


@given(coo_small(), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_hicoo_roundtrip_any_block_bits(t, bits):
    h = HicooTensor.from_coo(t, block_bits=bits)
    assert np.allclose(h.to_coo().to_dense(), t.to_dense())
    assert h.nnz == t.nnz
    assert h.block_histogram().sum() == t.nnz


@given(coo_small())
@settings(max_examples=30, deadline=None)
def test_hicoo_blocks_monotone_in_bits(t):
    counts = [
        HicooTensor.from_coo(t, block_bits=b).n_blocks for b in (1, 3, 5)
    ]
    assert counts[0] >= counts[1] >= counts[2]


# ---------------------------------------------------------------------------
# Lexi-Order
# ---------------------------------------------------------------------------


@given(coo_small(), st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_relabel_roundtrip_and_invariants(t, seed):
    rel = lexi_order(t) if seed % 2 else random_relabel(t, seed)
    rt = rel.apply(t)
    # Bijection: inverse recovers the original exactly.
    assert np.allclose(rel.invert().apply(rt).to_dense(), t.to_dense())
    # Norm and nnz are invariant.
    assert rt.nnz == t.nnz
    assert np.isclose(rt.norm(), t.norm())
    # Fiber counts are invariant (any fixed order).
    order = tuple(range(t.ndim))
    assert (
        CsfTensor.from_coo(rt, order).fiber_counts
        == CsfTensor.from_coo(t, order).fiber_counts
    )


# ---------------------------------------------------------------------------
# toolbox algebra
# ---------------------------------------------------------------------------


@given(coo_pairs())
@settings(max_examples=30, deadline=None)
def test_add_commutes_and_matches_dense(pair):
    a, b = pair
    ab = add(a, b)
    ba = add(b, a)
    assert np.allclose(ab.to_dense(), a.to_dense() + b.to_dense(), atol=1e-6)
    assert np.allclose(ab.to_dense(), ba.to_dense(), atol=1e-6)


@given(coo_pairs())
@settings(max_examples=30, deadline=None)
def test_hadamard_commutes_and_matches_dense(pair):
    a, b = pair
    h = hadamard_product(a, b)
    assert np.allclose(h.to_dense(), a.to_dense() * b.to_dense(), atol=1e-6)
    assert np.allclose(
        h.to_dense(), hadamard_product(b, a).to_dense(), atol=1e-6
    )


@given(coo_pairs())
@settings(max_examples=30, deadline=None)
def test_distance_axioms(pair):
    a, b = pair
    d = frobenius_distance(a, b)
    assert d >= 0
    assert np.isclose(d, frobenius_distance(b, a))
    assert np.isclose(frobenius_distance(a, a), 0.0, atol=1e-7)
    assert np.isclose(
        d, np.linalg.norm(a.to_dense() - b.to_dense()), atol=1e-6
    )


@given(coo_small())
@settings(max_examples=30, deadline=None)
def test_marginals_sum_to_total(t):
    total = t.values.sum()
    for m in range(t.ndim):
        assert np.isclose(mode_marginals(t, m).sum(), total, atol=1e-6)


@given(coo_pairs())
@settings(max_examples=20, deadline=None)
def test_subtract_then_add_identity(pair):
    a, b = pair
    back = add(subtract(a, b), b)
    assert np.allclose(back.to_dense(), a.to_dense(), atol=1e-6)
