"""Tests for model persistence and the reorder CLI."""

import io

import numpy as np
import pytest

from repro.cpd import KruskalTensor, cp_als
from repro.baselines import SplattAll
from repro.tensor import low_rank_tensor, read_tns


class TestKruskalPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        kt = KruskalTensor(
            rng.random(3), [rng.standard_normal((n, 3)) for n in (5, 4, 6)]
        )
        path = str(tmp_path / "model.npz")
        kt.save(path)
        back = KruskalTensor.load(path)
        assert np.array_equal(back.weights, kt.weights)
        for a, b in zip(back.factors, kt.factors):
            assert np.array_equal(a, b)
        assert back.shape == kt.shape

    def test_loaded_model_scores_identically(self, tmp_path):
        t = low_rank_tensor((8, 7, 6), rank=2, nnz=200, noise=0.1, seed=2)
        res = cp_als(t, 2, engine=SplattAll(t, 2), max_iters=5, tol=0)
        path = str(tmp_path / "m.npz")
        res.model.save(path)
        loaded = KruskalTensor.load(path)
        assert np.isclose(loaded.fit(t), res.model.fit(t))

    def test_load_rejects_foreign_archive(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, stuff=np.ones(3))
        with pytest.raises(ValueError, match="archive"):
            KruskalTensor.load(path)

    def test_load_rejects_missing_factors(self, tmp_path):
        path = str(tmp_path / "nofac.npz")
        np.savez(path, weights=np.ones(2))
        with pytest.raises(ValueError, match="factor"):
            KruskalTensor.load(path)


class TestReorderCli:
    def test_reorder_writes_valid_tns(self, tmp_path):
        from repro.cli import main

        out_path = str(tmp_path / "re.tns")
        buf = io.StringIO()
        code = main(
            ["reorder", "nell-2", "--nnz", "1000", "--output", out_path],
            out=buf,
        )
        assert code == 0
        assert "blocks" in buf.getvalue()
        reloaded = read_tns(out_path)
        assert reloaded.nnz > 500

    def test_reorder_preserves_values(self, tmp_path):
        from repro.cli import main, load_tensor

        out_path = str(tmp_path / "re.tns")
        main(
            ["reorder", "uber", "--nnz", "800", "--seed", "3",
             "--output", out_path],
            out=io.StringIO(),
        )
        original = load_tensor("uber", 800, 3)
        reordered = read_tns(out_path)
        assert reordered.nnz == original.nnz
        assert np.allclose(
            np.sort(reordered.values), np.sort(original.values)
        )
