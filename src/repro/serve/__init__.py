"""repro.serve — an async decomposition job service over pooled engines.

``repro serve`` boots a daemon that accepts decomposition requests over
a local unix socket (line-delimited JSON), runs them on a bounded
worker pool of :func:`repro.engines.create_engine` engines, and streams
status/results back.  The pieces:

* :mod:`.protocol` — the NDJSON wire format, :class:`JobSpec`, and the
  tensor-content fingerprint that keys the engine cache;
* :mod:`.queue` — priority admission with backpressure and per-client
  in-flight limits;
* :mod:`.cache` — an LRU of planned engines: a resubmitted identical
  request reuses the plan and shm segments (no ``serve.plan`` span in
  its trace);
* :mod:`.jobs` / :mod:`.pool` — journaled, checkpoint-resumable job
  execution (a killed worker's job continues from its last complete
  checkpoint on restart);
* :mod:`.server` / :mod:`.client` — the asyncio daemon and the
  synchronous client behind ``repro submit`` / ``repro jobs``.
"""

from .cache import CacheEntry, EngineCache
from .client import ServeClient, ServeError, wait_for_socket
from .jobs import Job, Spool
from .pool import build_tensor, execute_job
from .protocol import JobSpec, cache_key, tensor_fingerprint
from .queue import ClientLimitExceeded, JobQueue, QueueFull
from .server import DecompositionServer, ServerHandle, start_in_thread

__all__ = [
    "CacheEntry",
    "ClientLimitExceeded",
    "DecompositionServer",
    "EngineCache",
    "Job",
    "JobQueue",
    "JobSpec",
    "QueueFull",
    "ServeClient",
    "ServeError",
    "ServerHandle",
    "Spool",
    "build_tensor",
    "cache_key",
    "execute_job",
    "start_in_thread",
    "tensor_fingerprint",
    "wait_for_socket",
]
