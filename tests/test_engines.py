"""Tests for the unified engine registry (:mod:`repro.engines`).

Three contracts:

* **registry round-trip** — ``create_engine(name, ...)`` is *the same
  construction* as calling the class directly: bit-identical MTTKRP
  outputs and identical configuration;
* **context-manager lifecycle** — every engine is a context manager
  whose ``__exit__`` releases resources even when the body raises
  (``/dev/shm`` segments under the ``processes`` backend must not leak);
* **protocol conformance** — every registered engine satisfies the
  :class:`~repro.engines.MttkrpEngine` protocol, and ``register_engine``
  rejects classes that don't.
"""

import glob

import numpy as np
import pytest

from repro.baselines import ALL_BACKENDS
from repro.compat import canonicalize_kwargs
from repro.engines import (
    EngineBase,
    MttkrpEngine,
    create_engine,
    engine_names,
    register_engine,
)
from repro.tensor import random_tensor
from tests.conftest import make_factors


@pytest.fixture
def tensor3():
    return random_tensor((12, 9, 7), nnz=150, seed=7)


@pytest.fixture
def factors3(tensor3):
    return make_factors(tensor3.shape, rank=4, seed=11)


class TestRegistry:
    def test_all_backends_registered(self):
        assert set(engine_names()) == set(ALL_BACKENDS)

    def test_unknown_name_lists_registered(self, tensor3):
        with pytest.raises(ValueError, match="unknown engine"):
            create_engine("no-such-engine", tensor3, 4)

    @pytest.mark.parametrize("name", sorted(ALL_BACKENDS))
    def test_round_trip_bit_identical(self, name, tensor3, factors3):
        """Factory construction == direct class construction, exactly."""
        with create_engine(name, tensor3, 4, num_threads=2) as via_factory:
            with ALL_BACKENDS[name](tensor3, 4, num_threads=2) as direct:
                a = via_factory.iteration_results(factors3)
                b = direct.iteration_results(factors3)
                assert len(a) == len(b) == tensor3.ndim
                for (mode_a, res_a), (mode_b, res_b) in zip(a, b):
                    assert mode_a == mode_b
                    assert np.array_equal(res_a, res_b)

    @pytest.mark.parametrize("name", sorted(ALL_BACKENDS))
    def test_protocol_conformance(self, name, tensor3, factors3):
        with create_engine(name, tensor3, 4, num_threads=2) as eng:
            assert isinstance(eng, MttkrpEngine)
            assert isinstance(eng, EngineBase)
            assert isinstance(eng.mode_order, tuple)
            assert eng.name == name
            assert isinstance(eng.describe(), str)
            eng.mttkrp_level(factors3, 0)
            traffic = eng.per_thread_traffic()
            assert isinstance(traffic, list)

    def test_register_rejects_non_enginebase(self):
        class Bare:
            name = "bare"

            def mttkrp_level(self, factors, level):
                return None

        with pytest.raises(TypeError, match="EngineBase"):
            register_engine("bare", Bare)

    def test_register_accepts_enginebase_subclass(self, tensor3):
        class Custom(EngineBase):
            name = "custom-test-engine"

            def __init__(self, tensor, rank, **opts):
                self.mode_order = tuple(range(tensor.ndim))

            def mttkrp_level(self, factors, level):
                return np.zeros((1, 1))

        from repro.engines import ENGINES

        try:
            register_engine("custom-test-engine", Custom)
            eng = create_engine("custom-test-engine", tensor3, 4)
            assert isinstance(eng, Custom)
        finally:
            ENGINES.pop("custom-test-engine", None)


class TestContextManager:
    def test_enter_returns_engine(self, tensor3):
        eng = create_engine("stef", tensor3, 4, num_threads=2)
        with eng as entered:
            assert entered is eng

    def test_bare_close_still_works(self, tensor3):
        eng = create_engine("stef", tensor3, 4, num_threads=2)
        eng.close()
        eng.close()  # idempotent

    @pytest.mark.parametrize("name", ["stef", "stef2", "splatt-all", "alto", "taco"])
    def test_shm_released_on_exception(self, name, tensor3, factors3):
        """__exit__ must release /dev/shm segments when the body raises."""
        before = set(glob.glob("/dev/shm/repro-*"))
        with pytest.raises(RuntimeError, match="injected"):
            with create_engine(
                name, tensor3, 4, num_threads=2, exec_backend="processes"
            ) as eng:
                eng.mttkrp_level(factors3, 0)
                raise RuntimeError("injected")
        after = set(glob.glob("/dev/shm/repro-*"))
        leaked = after - before
        assert not leaked, f"{name} leaked shm segments: {sorted(leaked)}"

    def test_stef_close_clears_process_context(self, tensor3, factors3):
        with create_engine(
            "stef", tensor3, 4, num_threads=2, exec_backend="processes"
        ) as eng:
            eng.mttkrp_level(factors3, 0)
        assert eng.engine._proc is None


class TestRetiredKwargs:
    """The pre-1.0 spellings finished their deprecation cycle: they now
    raise ``TypeError`` with a migration hint naming the canonical
    keyword."""

    def test_backend_spelling_rejected_with_hint(self, tensor3):
        with pytest.raises(TypeError, match="exec_backend"):
            create_engine(
                "splatt-1", tensor3, 4, num_threads=2, backend="serial"
            )

    def test_threads_spelling_rejected_with_hint(self, tensor3):
        with pytest.raises(TypeError, match="num_threads"):
            create_engine("stef", tensor3, 4, threads=3)

    def test_direct_constructor_rejects_backend(self, tensor3):
        from repro.core.stef import Stef

        with pytest.raises(TypeError, match="no longer accepts 'backend'"):
            Stef(tensor3, 4, backend="serial")

    def test_cp_als_rejects_backend(self, tensor3):
        from repro.baselines import SplattAll
        from repro.cpd.als import cp_als

        with pytest.raises(TypeError, match="engine"):
            cp_als(tensor3, 4, backend=SplattAll(tensor3, 4), max_iters=1)

    def test_unknown_kwarg_still_fails_loudly(self, tensor3):
        with pytest.raises(TypeError, match="unexpected keyword"):
            create_engine("stef", tensor3, 4, exec_backed="serial")

    def test_canonicalize_hint_names_replacement(self):
        with pytest.raises(TypeError, match="pass exec_backend= instead"):
            canonicalize_kwargs(
                "Probe", {"backend": "serial"}, {"backend": "exec_backend"}
            )


class TestTypedFactory:
    """create_engine's named knobs are validated against capability
    metadata before construction."""

    def test_engine_names_detail(self):
        infos = engine_names(detail=True)
        assert [i.name for i in infos] == engine_names()
        by_name = {i.name: i for i in infos}
        assert by_name["stef"].jit_capable
        assert by_name["stef"].jit_default == "off"
        assert by_name["stef"].memoize_capable
        assert by_name["stef-jit"].jit_default == "auto"
        assert not by_name["alto"].jit_capable
        assert "summary" in dir(by_name["stef"])
        assert "jit=auto" in by_name["stef-jit"].summary()

    def test_jit_rejected_on_non_capable_engine(self, tensor3):
        with pytest.raises(TypeError, match="does not support jit="):
            create_engine("alto", tensor3, 4, jit="auto")

    def test_bad_exec_backend_is_valueerror(self, tensor3):
        with pytest.raises(ValueError, match="exec_backend"):
            create_engine("stef", tensor3, 4, exec_backend="cluster")

    def test_memoize_rejected_on_non_capable_engine(self, tensor3):
        with pytest.raises(TypeError, match="does not support memoize="):
            create_engine("taco", tensor3, 4, memoize=True)

    def test_memoize_false_forces_empty_plan(self, tensor3):
        with create_engine("stef", tensor3, 4, memoize=False) as eng:
            assert list(eng.plan.save_levels) == []

    def test_memoize_false_conflicts_with_plan(self, tensor3):
        from repro.core.memoization import MemoPlan

        with pytest.raises(TypeError, match="conflicts"):
            create_engine(
                "stef", tensor3, 4, memoize=False, plan=MemoPlan((1,))
            )

    def test_jit_off_matches_plain_engine(self, tensor3, factors3):
        with create_engine("stef", tensor3, 4, jit="off") as eng:
            assert eng.kernel_tier == "numpy"
            res = eng.mttkrp_level(factors3, 0)
        with create_engine("stef", tensor3, 4) as plain:
            assert np.array_equal(res, plain.mttkrp_level(factors3, 0))


class TestLeasing:
    """Pooling primitives: the serve-layer cache checks engines out per
    job; exclusivity is enforced, release is idempotent."""

    def test_lease_release_cycle(self):
        tensor = random_tensor((8, 7, 6), nnz=100, seed=0)
        with create_engine("stef", tensor, 3) as eng:
            assert not eng.leased and eng.lease_owner is None
            assert eng.lease("job-1") is eng  # chains for pool code
            assert eng.leased and eng.lease_owner == "job-1"
            eng.release()
            assert not eng.leased
            eng.release()  # idempotent: releasing an idle engine is fine
            eng.lease("job-2")  # and it can be checked out again
            assert eng.lease_owner == "job-2"

    def test_double_lease_raises(self):
        tensor = random_tensor((8, 7, 6), nnz=100, seed=0)
        with create_engine("splatt-all", tensor, 3) as eng:
            eng.lease("job-1")
            with pytest.raises(RuntimeError, match="already leased by 'job-1'"):
                eng.lease("job-2")
            # The failed lease must not have clobbered the holder.
            assert eng.lease_owner == "job-1"
