"""Section IV-A motivation numbers — uber vs vast-2015-mc1-3d.

The paper motivates the data-movement model with two counted examples:

* **uber**: saving all intermediates costs 62M reads / 22M writes, while
  not saving the biggest partial costs 24M reads / 238K writes — *not*
  saving wins;
* **vast-2015-mc1-3d**: saving costs 1.7B reads / 833M writes vs 2.6B /
  833M without — saving wins.

This bench regenerates the comparison on the scaled instances: for each
tensor, model-predicted and counted reads/writes under "save-all" vs
"save-none", and which choice the model makes.  Absolute counts differ
(scaled tensors); the *winner flip* between the two tensors is the
reproduced result.
"""

import pytest

from common import bench_tensor, emit
from repro.analysis.traffic import model_vs_measured
from repro.core import (
    DataMovementModel,
    SAVE_ALL,
    SAVE_NONE,
    TensorStats,
    plan_decomposition,
)
from repro.parallel import INTEL_CLX_18
from repro.tensor import CsfTensor


def _motivation_rows(name, rank=32):
    tensor = bench_tensor(name, nnz=8000)
    csf = CsfTensor.from_coo(tensor)
    stats = TensorStats.from_csf(csf)
    model = DataMovementModel(stats, rank, INTEL_CLX_18)
    rows = {}
    for label, plan in (
        ("save-all", SAVE_ALL(tensor.ndim)),
        ("save-none", SAVE_NONE),
    ):
        bd = model.breakdown(plan)
        rows[label] = (bd.total_reads, bd.total_writes, bd.total)
    decision = plan_decomposition(csf, rank, INTEL_CLX_18, consider_swap=False)
    return rows, decision.plan


def test_section4_motivation(benchmark):
    out = benchmark.pedantic(
        lambda: {n: _motivation_rows(n) for n in ("uber", "vast-2015-mc1-3d")},
        rounds=1,
        iterations=1,
    )
    lines = ["Section IV-A — memoization win/lose motivation (model, R=32)"]
    for name, (rows, chosen) in out.items():
        lines.append(f"\n{name}: model chooses save={list(chosen.save_levels)}")
        for label, (r, w, t) in rows.items():
            lines.append(
                f"  {label:10} reads {r:12.0f}  writes {w:12.0f}  total {t:12.0f}"
            )
    emit("section4_motivation.txt", "\n".join(lines))

    # The reproduced claim: saving-all LOSES on uber and WINS on vast.
    uber_rows, _ = out["uber"]
    vast_rows, _ = out["vast-2015-mc1-3d"]
    assert uber_rows["save-all"][2] > uber_rows["save-none"][2]
    assert vast_rows["save-all"][2] < vast_rows["save-none"][2]
