#!/usr/bin/env python
"""Mini Figure 3: compare all eight methods on one tensor.

Runs a full MTTKRP set per method on the flickr-4d stand-in, on both
machine models, and prints performance relative to splatt-all in both
measurement channels (simulated traffic time and Python wall-clock).

Run:  python examples/compare_backends.py [tensor-name] [nnz]
"""

import sys

from repro import TABLE1_SPECS, generate
from repro.analysis import format_table, relative_performance, run_comparison
from repro.parallel import AMD_TR_64, INTEL_CLX_18

METHODS = (
    "stef", "stef2", "adatm", "alto",
    "splatt-1", "splatt-2", "splatt-all", "taco",
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "flickr-4d"
    nnz = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000
    if name not in TABLE1_SPECS:
        raise SystemExit(
            f"unknown tensor {name!r}; choose from {sorted(TABLE1_SPECS)}"
        )
    tensor = generate(TABLE1_SPECS[name], nnz=nnz, seed=0)
    print(f"{name} (scaled): shape={tensor.shape} nnz={tensor.nnz}\n")

    for machine in (INTEL_CLX_18, AMD_TR_64):
        grid = run_comparison(
            {name: tensor}, rank=32, machine=machine, methods=METHODS
        )
        for channel in ("simulated", "wall"):
            rel = relative_performance(grid, channel=channel)
            print(
                format_table(
                    rel,
                    list(METHODS),
                    title=f"{machine.name} — {channel} channel "
                    f"(relative to splatt-all, higher is better)",
                )
            )
            print()


if __name__ == "__main__":
    main()
