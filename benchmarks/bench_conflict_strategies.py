"""Extension: the write-conflict design space of Section II-D.

The paper rejects two standard conflict-handling schemes before proposing
boundary replication: "we could use atomic updates; however, the cost of
atomic operations will degrade the performance.  Another option is to use
privatization ... but it increases the amount of data movement."

This bench quantifies all three for the mode-0 sweep across the Table-I
tensors (T = 18 threads), in extra element traffic beyond the
conflict-free baseline:

* **replication** (STeF): one extra buffer row per shared boundary node
  per level — at most ``T`` rows/level — written and re-read at merge;
* **atomics**: every *accumulation* into a shared level becomes a
  read-modify-write: 2x traffic on all ``m_i·R`` partial updates (plus
  serialization the traffic metric cannot even see);
* **privatization**: each thread owns a full copy of every written level:
  ``T · m_i · R`` zero-init writes + the same volume re-read and reduced.

The outcome — replication smaller by orders of magnitude — is the
quantitative form of the paper's argument.
"""

import pytest

from common import bench_suite, emit
from repro.core import build_schedule
from repro.tensor import CsfTensor

THREADS = 18
RANK = 32


def _strategy_costs(csf, threads, rank):
    ws = build_schedule(csf, threads, "nnz")
    d = csf.ndim
    # Levels written during the mode-0 sweep: every internal level's
    # partials (transient or saved) + the root output.
    written_levels = list(range(d - 1))
    repl_rows = sum(len(nodes) for nodes in ws.shared_nodes_per_level)
    replication = 2 * repl_rows * rank  # write + merge-read of extras
    atomics = sum(2 * csf.fiber_counts[l] * rank for l in written_levels)
    privatization = sum(
        2 * threads * csf.fiber_counts[l] * rank for l in written_levels
    )
    return replication, atomics, privatization


def test_conflict_strategies(benchmark):
    tensors = {n: t for n, t in bench_suite().items()}

    def run():
        rows = {}
        for name, tensor in tensors.items():
            csf = CsfTensor.from_coo(tensor)
            rows[name] = _strategy_costs(csf, THREADS, RANK)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"Write-conflict strategies: extra element traffic of the mode-0 "
        f"sweep (T={THREADS}, R={RANK})",
        f"{'tensor':22}{'replication':>14}{'atomics':>14}{'privatized':>14}"
        f"{'repl/atomic':>13}",
        "-" * 77,
    ]
    for name, (repl, atom, priv) in rows.items():
        lines.append(
            f"{name:22}{repl:>14.0f}{atom:>14.0f}{priv:>14.0f}"
            f"{repl / max(atom, 1):>13.5f}"
        )
    emit("conflict_strategies.txt", "\n".join(lines))

    for name, (repl, atom, priv) in rows.items():
        assert repl < atom, name          # replication beats atomics
        assert atom < priv, name          # which beats full privatization
        assert repl < 0.05 * atom, name   # ... by a wide margin
