"""repro.engines — the unified MTTKRP-engine registry and factory.

Before this module existed, every consumer (the CLI, ``cp_als``, the
benchmark harness, the stress driver) carried its own copy of the
name → constructor dispatch.  Now there is exactly one:

    from repro.engines import create_engine

    with create_engine("stef2", tensor, rank, num_threads=8) as eng:
        result = cp_als(tensor, rank, engine=eng)

Every registered engine satisfies the :class:`MttkrpEngine` protocol —
``mttkrp_level``, ``iteration_results``, ``per_thread_traffic``,
``describe``, ``close`` (plus the ``mode_order`` attribute the ALS
driver reads) — and inherits :class:`~repro.engines.base.EngineBase`,
so each is a context manager whose ``__exit__`` releases shared-memory
segments even on exceptions (the ``engine-protocol`` lint rule enforces
the inheritance statically; ``tests/test_engines.py`` checks the
protocol at runtime).

The factory has a **typed signature**: ``create_engine(name, tensor,
rank, *, machine=None, num_threads=None, exec_backend=None,
memoize=None, jit=None, counter=None, tracer=None, **engine_opts)``.
The named keywords are validated against the engine's capability
metadata (:class:`EngineInfo` — ``jit_capable``, ``exec_backends``,
``memoize_capable``) *before* construction, so a typo'd backend or a
``jit=`` request to an engine without the kernel-ABI port fails with a
targeted message instead of a generic unknown-kwarg error.  The retired
spellings (``threads=``, ``backend=``) raise ``TypeError`` with a
migration hint via :mod:`repro.compat`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Type,
    Union,
    runtime_checkable,
)

import numpy as np

from .base import EngineBase, resolve_num_threads

__all__ = [
    "MttkrpEngine",
    "EngineBase",
    "EngineInfo",
    "ENGINES",
    "create_engine",
    "engine_names",
    "register_engine",
    "resolve_num_threads",
]


@runtime_checkable
class MttkrpEngine(Protocol):
    """What the ALS driver, harness, and CLI require of an engine.

    Engines additionally expose a ``mode_order`` tuple (update position →
    original mode) and a ``name`` string; those are data members, which
    ``runtime_checkable`` protocols cannot verify, so the registry's
    :func:`register_engine` checks them explicitly.
    """

    def mttkrp_level(self, factors: Sequence[np.ndarray], level: int) -> np.ndarray:
        """The MTTKRP result for update position ``level``."""

    def iteration_results(
        self, factors: Sequence[np.ndarray]
    ) -> List[Tuple[int, np.ndarray]]:
        """All MTTKRPs of one CPD iteration: ``[(mode, result), ...]``."""

    def per_thread_traffic(self) -> List[float]:
        """Most recent kernel's per-thread traffic totals."""

    def describe(self) -> str:
        """One-line configuration summary."""

    def close(self) -> None:
        """Release engine resources (idempotent)."""


#: name → engine class; populated by :func:`register_engine` below and
#: seeded from :mod:`repro.baselines` on first factory use.
ENGINES: Dict[str, Type[EngineBase]] = {}

_PROTOCOL_METHODS = (
    "mttkrp_level",
    "iteration_results",
    "per_thread_traffic",
    "describe",
    "close",
)


def register_engine(name: str, cls: Type[EngineBase]) -> Type[EngineBase]:
    """Register an engine class under ``name`` (idempotent re-register).

    Raises ``TypeError`` unless ``cls`` inherits :class:`EngineBase` and
    implements every :class:`MttkrpEngine` method — the same contract the
    ``engine-protocol`` lint rule checks statically.
    """
    if not (isinstance(cls, type) and issubclass(cls, EngineBase)):
        raise TypeError(
            f"engine {name!r} must inherit repro.engines.EngineBase, "
            f"got {cls!r}"
        )
    missing = [m for m in _PROTOCOL_METHODS if not callable(getattr(cls, m, None))]
    if missing:
        raise TypeError(
            f"engine {name!r} does not implement the MttkrpEngine "
            f"protocol: missing {missing}"
        )
    ENGINES[name] = cls
    return cls


@dataclass(frozen=True)
class EngineInfo:
    """Capability metadata of one registered engine (read off the class
    attributes :class:`~repro.engines.base.EngineBase` declares)."""

    name: str
    jit_capable: bool
    jit_default: str
    exec_backends: Tuple[str, ...]
    memoize_capable: bool

    @classmethod
    def of(cls, name: str, engine_cls: Type[EngineBase]) -> "EngineInfo":
        return cls(
            name=name,
            jit_capable=bool(engine_cls.jit_capable),
            jit_default=str(engine_cls.jit_default),
            exec_backends=tuple(engine_cls.exec_backends),
            memoize_capable=bool(engine_cls.memoize_capable),
        )

    def summary(self) -> str:
        """One-line capability summary (the CLI's ``--engine`` help)."""
        caps = []
        if self.jit_capable:
            caps.append(f"jit={self.jit_default}")
        if self.memoize_capable:
            caps.append("memoize")
        caps.append("/".join(self.exec_backends))
        return f"{self.name} [{', '.join(caps)}]"


def engine_names(detail: bool = False) -> Union[List[str], List[EngineInfo]]:
    """Sorted registered engine names (the CLI's ``--engine`` choices).

    With ``detail=True``, returns :class:`EngineInfo` records instead of
    bare names, in the same sorted order.
    """
    _ensure_seeded()
    names = sorted(ENGINES)
    if detail:
        return [EngineInfo.of(n, ENGINES[n]) for n in names]
    return names


def create_engine(
    name: str,
    tensor,
    rank: int,
    *,
    machine=None,
    num_threads: Optional[int] = None,
    exec_backend: Optional[str] = None,
    memoize: Optional[bool] = None,
    jit: Optional[str] = None,
    counter=None,
    tracer=None,
    **engine_opts: Any,
) -> EngineBase:
    """Construct the engine registered under ``name``.

    The named keywords are the canonical cross-engine knobs, validated
    against the engine's :class:`EngineInfo` capabilities before
    construction:

    * ``exec_backend`` must be one of the engine's ``exec_backends``;
    * ``jit`` requires a jit-capable engine (one whose kernels route
      through the flat-array ABI) and one of ``"auto"|"on"|"off"``;
    * ``memoize`` requires a memoize-capable engine; ``memoize=False``
      forces the empty memoization plan (and conflicts with an explicit
      ``plan=``), ``memoize=True`` just asserts the capability and lets
      the engine's planner choose.

    Engine-specific knobs (STeF's ``plan=`` / ``swap_last_two=``, TACO's
    ``autotune=``) pass through ``**engine_opts``.  This is the **only**
    supported construction path for name-driven dispatch; consumers must
    not reimplement the ``if name == ...`` ladder.
    """
    _ensure_seeded()
    try:
        cls = ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; registered engines: {engine_names()}"
        ) from None
    info = EngineInfo.of(name, cls)
    if exec_backend is not None and exec_backend not in info.exec_backends:
        raise ValueError(
            f"engine {name!r} supports exec_backend in "
            f"{list(info.exec_backends)}, got {exec_backend!r}"
        )
    if jit is not None and not info.jit_capable:
        raise TypeError(
            f"engine {name!r} does not support jit= (its kernels are not "
            "routed through the flat-array kernel ABI); jit-capable "
            f"engines: {[i.name for i in engine_names(detail=True) if i.jit_capable]}"
        )
    if memoize is not None:
        if not info.memoize_capable:
            raise TypeError(
                f"engine {name!r} does not support memoize= (it keeps no "
                "partial results); memoize-capable engines: "
                f"{[i.name for i in engine_names(detail=True) if i.memoize_capable]}"
            )
        if not memoize:
            if "plan" in engine_opts:
                raise TypeError(
                    "memoize=False conflicts with an explicit plan=; "
                    "pass one or the other"
                )
            from ..core.memoization import SAVE_NONE

            engine_opts["plan"] = SAVE_NONE
    opts: Dict[str, Any] = dict(engine_opts)
    if machine is not None:
        opts["machine"] = machine
    if num_threads is not None:
        opts["num_threads"] = num_threads
    if exec_backend is not None:
        opts["exec_backend"] = exec_backend
    if jit is not None:
        opts["jit"] = jit
    if counter is not None:
        opts["counter"] = counter
    if tracer is not None:
        opts["tracer"] = tracer
    return cls(tensor, rank, **opts)


_seeded = False


def _ensure_seeded() -> None:
    """Populate the registry with the built-in engines on first use.

    Seeding is lazy because the engine implementations themselves import
    :mod:`repro.engines.base` (via this package) at class-definition
    time — an eager ``from ..baselines import ALL_BACKENDS`` here would
    close that cycle while :mod:`repro.core.mttkrp` is still half
    initialized.  Deferring to the first ``create_engine`` /
    ``engine_names`` call keeps the import graph acyclic.
    """
    global _seeded
    if _seeded:
        return
    _seeded = True
    from ..baselines import ALL_BACKENDS

    for name, cls in ALL_BACKENDS.items():
        register_engine(name, cls)
