"""Unit tests for the ALTO linearized format."""

import numpy as np
import pytest

from repro.tensor import AltoMask, AltoTensor, bits_for_mode, random_tensor


class TestBits:
    @pytest.mark.parametrize(
        "length,expected",
        [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10), (1025, 11)],
    )
    def test_bits_for_mode(self, length, expected):
        assert bits_for_mode(length) == expected


class TestMask:
    def test_total_bits(self):
        mask = AltoMask.for_shape((8, 4, 2))
        assert mask.total_bits == 3 + 2 + 1

    def test_positions_disjoint_and_dense(self):
        mask = AltoMask.for_shape((100, 50, 7, 3))
        all_bits = sorted(b for pos in mask.positions for b in pos)
        assert all_bits == list(range(mask.total_bits))

    def test_encode_decode_roundtrip(self):
        rng = np.random.default_rng(0)
        shape = (37, 12, 90)
        idx = np.vstack([rng.integers(0, n, 500) for n in shape]).astype(np.int64)
        mask = AltoMask.for_shape(shape)
        lin = mask.encode(idx)
        assert np.array_equal(mask.decode(lin), idx)

    def test_encode_is_injective(self):
        shape = (5, 6, 7)
        mask = AltoMask.for_shape(shape)
        grid = np.array(
            [[i, j, k] for i in range(5) for j in range(6) for k in range(7)]
        ).T
        lin = mask.encode(grid)
        assert np.unique(lin).size == grid.shape[1]

    def test_wide_layout_uses_object_ints(self):
        # Five huge modes exceed 64 bits total.
        shape = (2**20, 2**20, 2**20, 2**20, 2**20)
        mask = AltoMask.for_shape(shape)
        assert mask.total_bits == 100
        idx = np.array([[2**19], [3], [2**18], [1], [2**20 - 1]], dtype=np.int64)
        lin = mask.encode(idx)
        assert lin.dtype == object
        assert np.array_equal(mask.decode(lin), idx)


class TestAltoTensor:
    def test_roundtrip(self, coo4):
        at = AltoTensor.from_coo(coo4)
        assert np.allclose(at.to_coo().to_dense(), coo4.to_dense())

    def test_sorted_linear_order(self, coo4):
        at = AltoTensor.from_coo(coo4)
        assert np.all(np.diff(at.linear.astype(np.int64)) >= 0)

    def test_index_bits_reporting(self, coo4):
        at = AltoTensor.from_coo(coo4)
        assert at.index_bits == 64

    def test_mode_indices_match_coo(self, coo3):
        at = AltoTensor.from_coo(coo3)
        back = at.to_coo()
        for m in range(coo3.ndim):
            assert np.array_equal(at.mode_indices(m), back.indices[m])

    def test_partitions_cover_exactly(self, coo4):
        at = AltoTensor.from_coo(coo4)
        parts = at.partitions(7)
        assert parts[0][0] == 0
        assert parts[-1][1] == at.nnz
        for (a, b), (c, _) in zip(parts, parts[1:]):
            assert b == c

    def test_partitions_balanced(self, coo4):
        at = AltoTensor.from_coo(coo4)
        sizes = [hi - lo for lo, hi in at.partitions(6)]
        assert max(sizes) - min(sizes) <= 1

    def test_partitions_invalid_raises(self, coo4):
        at = AltoTensor.from_coo(coo4)
        with pytest.raises(ValueError):
            at.partitions(0)

    def test_footprint(self, coo4):
        at = AltoTensor.from_coo(coo4)
        assert at.footprint_bytes() == coo4.nnz * 16  # 8B index + 8B value

    def test_shape_and_ndim(self, coo5):
        at = AltoTensor.from_coo(coo5)
        assert at.shape == coo5.shape
        assert at.ndim == coo5.ndim
        assert at.nnz == coo5.nnz
