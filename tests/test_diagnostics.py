"""Tests for decomposition diagnostics (FMS, CORCONDIA)."""

import numpy as np
import pytest

from repro.baselines import SplattAll
from repro.cpd import KruskalTensor, cp_als
from repro.cpd.diagnostics import congruence_matrix, corcondia, factor_match_score
from repro.tensor import CooTensor, low_rank_tensor


def planted_model(shape, rank, seed=0):
    rng = np.random.default_rng(seed)
    return KruskalTensor(
        rng.random(rank) + 0.5,
        [rng.standard_normal((n, rank)) for n in shape],
    )


class TestFactorMatchScore:
    def test_identical_models_score_one(self):
        kt = planted_model((8, 7, 6), 3)
        assert factor_match_score(kt, kt) == pytest.approx(1.0)

    def test_permuted_columns_score_one(self):
        kt = planted_model((8, 7, 6), 3, seed=1)
        perm = [2, 0, 1]
        other = KruskalTensor(
            kt.weights[perm], [f[:, perm] for f in kt.factors]
        )
        assert factor_match_score(kt, other) == pytest.approx(1.0)

    def test_sign_flips_score_one(self):
        kt = planted_model((8, 7, 6), 2, seed=2)
        flipped = KruskalTensor(
            kt.weights.copy(), [-f for f in kt.factors]
        )
        # Odd number of modes: the triple sign product is |.|-absorbed.
        assert factor_match_score(kt, flipped) == pytest.approx(1.0)

    def test_unrelated_models_score_low(self):
        a = planted_model((30, 30, 30), 3, seed=3)
        b = planted_model((30, 30, 30), 3, seed=4)
        assert factor_match_score(a, b) < 0.5

    def test_returns_permutation(self):
        kt = planted_model((8, 7, 6), 3, seed=5)
        perm = [1, 2, 0]
        other = KruskalTensor(kt.weights[perm], [f[:, perm] for f in kt.factors])
        score, (rows, cols) = factor_match_score(
            kt, other, return_permutation=True
        )
        assert score == pytest.approx(1.0)
        # Column r of kt matches column perm.index(r)... verify mapping.
        for r, c in zip(rows, cols):
            assert perm[c] == r

    def test_mode_mismatch_raises(self):
        a = planted_model((4, 4), 2)
        b = planted_model((4, 4, 4), 2)
        with pytest.raises(ValueError):
            factor_match_score(a, b)

    def test_als_recovers_planted_components(self):
        """End-to-end: ALS on a dense-ish noiseless rank-3 sample must
        recover the planted components up to permutation/scaling."""
        t, factors = low_rank_tensor(
            (12, 11, 10), rank=3, nnz=3500, noise=0.0, seed=7,
            return_factors=True,
        )
        planted = KruskalTensor(np.ones(3), factors)
        res = cp_als(t, 3, engine=SplattAll(t, 3), max_iters=60, tol=1e-9)
        assert factor_match_score(planted, res.model) > 0.85


class TestCongruence:
    def test_matrix_shape(self):
        a = planted_model((5, 4), 2)
        b = planted_model((5, 4), 3)
        assert congruence_matrix(a, b).shape == (2, 3)

    def test_bounded(self):
        a = planted_model((6, 5, 4), 3, seed=8)
        b = planted_model((6, 5, 4), 3, seed=9)
        c = congruence_matrix(a, b)
        assert np.all(c >= -1e-12) and np.all(c <= 1 + 1e-12)


class TestCorcondia:
    def test_perfect_cp_structure(self):
        kt = planted_model((7, 6, 5), 2, seed=10)
        tensor = CooTensor.from_dense(kt.to_dense())
        assert corcondia(tensor, kt) == pytest.approx(100.0, abs=1e-6)

    def test_overfactored_model_scores_lower(self):
        """Fitting rank 5 to rank-2 data: core consistency degrades.
        (HOSVD init avoids the degenerate local solution random init can
        hit on this instance — a phenomenon CORCONDIA itself flags.)"""
        true = planted_model((10, 9, 8), 2, seed=11)
        tensor = CooTensor.from_dense(true.to_dense())
        good = cp_als(
            tensor, 2, engine=SplattAll(tensor, 2), max_iters=40, init="hosvd"
        )
        over = cp_als(
            tensor, 5, engine=SplattAll(tensor, 5), max_iters=40, init="hosvd"
        )
        cc_good = corcondia(tensor, good.model)
        cc_over = corcondia(tensor, over.model)
        assert cc_good > 95
        assert cc_over < cc_good

    def test_detects_degenerate_solution(self):
        """Random init on this instance converges to a two-factor
        degeneracy (fit ~0.59, huge cancelling weights); CORCONDIA must
        flag it with a strongly negative score."""
        true = planted_model((10, 9, 8), 2, seed=11)
        tensor = CooTensor.from_dense(true.to_dense())
        bad = cp_als(
            tensor, 2, engine=SplattAll(tensor, 2), max_iters=30,
            init="random", seed=2,
        )
        if bad.final_fit < 0.9:  # the degenerate basin
            assert corcondia(tensor, bad.model) < 0

    def test_zero_weights(self):
        kt = KruskalTensor(np.zeros(2), [np.ones((3, 2))] * 3)
        tensor = CooTensor.from_dense(np.ones((3, 3, 3)))
        assert corcondia(tensor, kt) == 0.0
