#!/usr/bin/env python
"""Lexi-Order preprocessing pipeline (Section V's complementarity claim).

Workflow a downstream user would actually run:

1. Lexi-Order the tensor (cluster non-zeros; HiCOO blocks shrink).
2. Decompose the relabeled tensor with STeF — the planner's decisions are
   identical because relabeling cannot change fiber counts.
3. Map the factor matrices back to the original index space and verify
   the model scores the *original* tensor identically.

Run:  python examples/reordering_pipeline.py
"""

import numpy as np

from repro import TABLE1_SPECS, cp_als, create_engine, generate, lexi_order
from repro.cpd import KruskalTensor
from repro.tensor import CsfTensor, HicooTensor


def main() -> None:
    tensor = generate(TABLE1_SPECS["enron"], nnz=20_000, seed=0)
    print(f"enron (scaled): shape={tensor.shape} nnz={tensor.nnz}")

    rel = lexi_order(tensor, iterations=2)
    relabeled = rel.apply(tensor)

    blocks_before = HicooTensor.from_coo(tensor, 4).n_blocks
    blocks_after = HicooTensor.from_coo(relabeled, 4).n_blocks
    print(f"HiCOO blocks: {blocks_before} -> {blocks_after} "
          f"({100 * (1 - blocks_after / blocks_before):.0f}% fewer)")

    fb = CsfTensor.from_coo(tensor).fiber_counts
    fa = CsfTensor.from_coo(relabeled).fiber_counts
    print(f"CSF fiber counts unchanged: {fb} == {fa}: {fb == fa}")

    rank = 8
    with create_engine("stef", relabeled, rank, num_threads=8) as engine:
        print("planner on relabeled tensor:", engine.describe())
        result = cp_als(relabeled, rank, engine=engine, max_iters=10, tol=1e-4)
    print(f"fit on relabeled tensor: {result.final_fit:.4f}")

    # Map factors back to the original labels: the factor row for old id
    # i is the relabeled model's row perm[i].
    original_factors = rel.unrelabel_factors(result.model.factors)
    original_model = KruskalTensor(result.model.weights, original_factors)
    fit_orig = original_model.fit(tensor)
    print(f"same model scored on the ORIGINAL tensor: {fit_orig:.4f} "
          f"(delta {abs(fit_orig - result.final_fit):.2e})")
    assert abs(fit_orig - result.final_fit) < 1e-9


if __name__ == "__main__":
    main()
