"""Tests for CP-ALS variants: ridge damping, non-negative projection,
observed-only fit."""

import numpy as np
import pytest

from repro.baselines import SplattAll
from repro.cpd import KruskalTensor, cp_als
from repro.tensor import low_rank_tensor, random_tensor


@pytest.fixture(scope="module")
def counts3():
    """Non-negative count-like data."""
    from repro.tensor import CooTensor

    t = random_tensor((10, 9, 8), nnz=450, seed=21)
    return CooTensor(t.indices, np.abs(t.values), t.shape)


@pytest.fixture(scope="module")
def lowrank():
    return low_rank_tensor((10, 9, 8), rank=3, nnz=650, noise=0.05, seed=3)


class TestRidge:
    def test_ridge_runs_and_converges(self, lowrank):
        res = cp_als(
            lowrank, 3, engine=SplattAll(lowrank, 3), max_iters=8, tol=0,
            ridge=1e-3,
        )
        assert np.all(np.diff(res.fits) > -1e-6)

    def test_large_ridge_shrinks_solution(self, lowrank):
        free = cp_als(
            lowrank, 3, engine=SplattAll(lowrank, 3), max_iters=5, tol=0
        )
        damped = cp_als(
            lowrank, 3, engine=SplattAll(lowrank, 3), max_iters=5, tol=0,
            ridge=100.0,
        )
        assert damped.model.norm() < free.model.norm()

    def test_ridge_stabilizes_overparameterized(self):
        """Rank far above the data's rank makes V nearly singular; ridge
        keeps the iteration finite."""
        t = low_rank_tensor((8, 7, 6), rank=1, nnz=300, noise=0.0, seed=4)
        res = cp_als(
            t, 8, engine=SplattAll(t, 8), max_iters=6, tol=0, ridge=1e-6
        )
        assert np.all(np.isfinite(res.model.weights))
        for f in res.model.factors:
            assert np.all(np.isfinite(f))


class TestNonneg:
    def test_factors_nonnegative(self, counts3):
        res = cp_als(
            counts3, 4, engine=SplattAll(counts3, 4), max_iters=6, tol=0,
            nonneg=True,
        )
        for f in res.model.factors:
            assert np.all(f >= 0)
        assert np.all(res.model.weights >= 0)

    def test_nonneg_fits_count_data(self, counts3):
        res = cp_als(
            counts3, 4, engine=SplattAll(counts3, 4), max_iters=12, tol=0,
            nonneg=True,
        )
        assert res.fits[-1] > 0.0  # better than the zero model

    def test_unconstrained_can_go_negative(self, lowrank):
        res = cp_als(
            lowrank, 3, engine=SplattAll(lowrank, 3), max_iters=5, tol=0
        )
        assert any(np.any(f < 0) for f in res.model.factors)


class TestObservedFit:
    def test_exact_model_scores_one(self):
        t, factors = low_rank_tensor(
            (8, 7, 6), rank=2, nnz=150, noise=0.0, seed=5, return_factors=True
        )
        kt = KruskalTensor(np.ones(2), factors)
        assert np.isclose(kt.fit_observed(t), 1.0)
        # The zero-penalizing fit is strictly lower on a sparse sample.
        assert kt.fit(t) < kt.fit_observed(t)

    def test_zero_model(self, lowrank):
        kt = KruskalTensor(
            np.zeros(2), [np.zeros((n, 2)) for n in lowrank.shape]
        )
        assert np.isclose(kt.fit_observed(lowrank), 0.0)

    def test_empty_tensor(self):
        from repro.tensor import CooTensor

        t = CooTensor.from_arrays(
            np.empty((2, 0), dtype=np.int64), np.empty(0), shape=(3, 3)
        )
        kt = KruskalTensor(np.ones(1), [np.ones((3, 1))] * 2)
        assert kt.fit_observed(t) == 1.0
