#!/usr/bin/env python
"""One-shot driver: regenerate every table and figure of the paper.

Equivalent to ``pytest benchmarks/ --benchmark-only`` but callable as a
plain script (CI artifact generation, documentation refresh); each
experiment's table is printed and written under ``benchmarks/results/``.

    python scripts/run_all_experiments.py [--nnz 4000]
"""

import argparse
import os
import subprocess
import sys

BENCHES = [
    "bench_table1_tensors.py",
    "bench_fig3_intel.py",
    "bench_fig4_amd.py",
    "bench_fig5_preprocessing.py",
    "bench_fig6_ablation.py",
    "bench_table2_space.py",
    "bench_section4_motivation.py",
    "bench_scaling_threads.py",
    "bench_reordering.py",
    "bench_rank_sweep.py",
    "bench_dimtree.py",
    "bench_conflict_strategies.py",
    "bench_kernels.py",
    "bench_calibration.py",
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nnz", type=int, default=None,
                        help="override REPRO_BENCH_NNZ")
    parser.add_argument("--only", nargs="*", default=None,
                        help="substring filters on bench file names")
    args = parser.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    if args.nnz is not None:
        env["REPRO_BENCH_NNZ"] = str(args.nnz)

    benches = BENCHES
    if args.only:
        benches = [
            b for b in BENCHES if any(pat in b for pat in args.only)
        ]
    failures = []
    for bench in benches:
        path = os.path.join(root, "benchmarks", bench)
        print(f"\n=== {bench} ===", flush=True)
        result = subprocess.run(
            [sys.executable, "-m", "pytest", path, "--benchmark-only", "-q"],
            cwd=root,
            env=env,
        )
        if result.returncode != 0:
            failures.append(bench)
    if failures:
        print(f"\nFAILED: {failures}", file=sys.stderr)
        return 1
    print(f"\nall {len(benches)} experiment benches regenerated; "
          f"tables under benchmarks/results/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
