"""Fingerprint-keyed LRU cache of planned engines.

Planning an engine is the expensive part of a request — CSF/mode-order
construction, memoization planning, and (under the ``processes``
backend) allocating shared-memory segments all happen at
``create_engine`` time.  The cache keys on
:func:`~repro.serve.protocol.cache_key` (tensor content fingerprint +
plan options), so a resubmitted identical request reuses the planned
engine and its shm segments outright: no re-plan, no re-allocation —
and its trace carries no ``serve.plan`` span, which is how the e2e test
distinguishes a hit from a miss.

Concurrency contract: worker threads call :meth:`lease` / release under
the cache's internal lock, and an entry checked out to one job is
**never** handed to a second (``EngineBase.lease`` enforces
exclusivity).  A concurrent request for a busy entry gets ``None`` back
and runs on an ephemeral engine instead ("bypass" in the stats) —
correctness first, reuse when possible.  Eviction (LRU, capacity-bound)
closes the engine, releasing its shm segments; leased entries are
exempt until released.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..engines.base import EngineBase
from ..trace.tracer import ScopedTracer

__all__ = ["CacheEntry", "EngineCache"]


@dataclass
class CacheEntry:
    """One cached engine plus the per-engine state jobs swap in and out."""

    key: str
    engine: EngineBase
    tensor: object                 # the CooTensor the engine was planned for
    scoped_tracer: ScopedTracer    # the tracer the engine was built with
    counter: object                # the TrafficCounter the engine charges
    hits: int = 0
    plan_seconds: float = 0.0


class EngineCache:
    def __init__(self, capacity: int = 8) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        # Lifetime counters for the stats endpoint.
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def lease(self, key: str, owner: str) -> Tuple[Optional[CacheEntry], str]:
        """Check out the entry for ``key``, or report why not.

        Returns ``(entry, "hit")`` with the engine leased to ``owner``
        when the planned engine is available.  ``(None, "miss")`` means
        the caller must build the engine (and :meth:`offer` it back);
        ``(None, "bypass")`` means the entry exists but is busy with
        another job — build an ephemeral engine and close it after the
        run rather than serializing unrelated requests.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None, "miss"
            if entry.engine.leased:
                self.bypasses += 1
                return None, "bypass"
            self._entries.move_to_end(key)
            entry.engine.lease(owner)
            entry.hits += 1
            self.hits += 1
            return entry, "hit"

    def offer(self, entry: CacheEntry, owner: str) -> CacheEntry:
        """Insert a freshly-built engine, leased to ``owner``.

        If another worker raced us to the same key, the incumbent stays
        (it may already be leased out) and the newcomer is still returned
        leased — it simply runs as an unpooled engine and is closed on
        release via :meth:`release`'s ownership check.  Over-capacity
        inserts evict the least-recently-used idle entry.
        """
        entry.engine.lease(owner)
        with self._lock:
            if entry.key in self._entries:
                return entry  # lost the race; run ephemeral
            self._entries[entry.key] = entry
            self._entries.move_to_end(entry.key)
            self._evict_over_capacity()
            return entry

    def release(self, entry: CacheEntry) -> None:
        """Return a leased entry; close it if it is not (any longer) the
        cached engine for its key (race loser or evicted-while-leased)."""
        entry.engine.release()
        with self._lock:
            cached = self._entries.get(entry.key)
            if cached is not entry:
                entry.engine.close()
                return
            self._evict_over_capacity()

    # ------------------------------------------------------------------
    def _evict_over_capacity(self) -> None:
        """Drop idle LRU entries until within capacity (lock held)."""
        if len(self._entries) <= self.capacity:
            return
        for key in list(self._entries):
            if len(self._entries) <= self.capacity:
                break
            entry = self._entries[key]
            if entry.engine.leased:
                continue  # busy; reconsidered on its release
            del self._entries[key]
            entry.engine.close()
            self.evictions += 1

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every cached engine (server shutdown)."""
        with self._lock:
            for entry in self._entries.values():
                entry.engine.close()
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, float]:
        with self._lock:
            size = len(self._entries)
        lookups = self.hits + self.misses + self.bypasses
        return {
            "cache.size": float(size),
            "cache.capacity": float(self.capacity),
            "cache.hits": float(self.hits),
            "cache.misses": float(self.misses),
            "cache.bypasses": float(self.bypasses),
            "cache.evictions": float(self.evictions),
            "cache.hit_rate": (self.hits / lookups) if lookups else 0.0,
        }
