"""Integration tests: end-to-end paper stories on Table-I generators."""

import numpy as np
import pytest

from repro.analysis import (
    measure_method,
    model_vs_measured,
    ranking_agreement,
    relative_performance,
    run_comparison,
)
from repro.baselines import ALL_BACKENDS
from repro.core import SAVE_NONE, Stef, Stef2, plan_decomposition
from repro.cpd import cp_als
from repro.parallel import AMD_TR_64, INTEL_CLX_18
from repro.tensor import (
    TABLE1_SPECS,
    CsfTensor,
    generate,
    low_rank_tensor,
)


class TestEndToEndCpd:
    @pytest.mark.parametrize("name", ["uber", "nips", "chicago-crime-comm"])
    def test_cpd_on_table1_generators(self, name):
        t = generate(TABLE1_SPECS[name], nnz=1500, seed=0)
        res = cp_als(t, 8, engine=Stef(t, 8, num_threads=4), max_iters=5, tol=0)
        assert len(res.fits) == 5
        assert np.all(np.diff(res.fits) > -1e-6)

    def test_cpd_5d(self):
        t = generate(TABLE1_SPECS["vast-2015-mc1-5d"], nnz=1200, seed=0)
        res = cp_als(t, 4, engine=Stef2(t, 4, num_threads=3), max_iters=3, tol=0)
        assert len(res.fits) == 3

    def test_stef_and_stef2_same_trajectory(self):
        t = generate(TABLE1_SPECS["enron"], nnz=1500, seed=1)
        r1 = cp_als(t, 4, engine=Stef(t, 4, num_threads=2), max_iters=4, tol=0, seed=3)
        r2 = cp_als(t, 4, engine=Stef2(t, 4, num_threads=2), max_iters=4, tol=0, seed=3)
        assert np.allclose(r1.fits, r2.fits, atol=1e-8)


class TestFigureShapes:
    """Qualitative shape claims of Figures 3/4 on scaled tensors."""

    @pytest.fixture(scope="class")
    def vast_grid(self):
        t = generate(TABLE1_SPECS["vast-2015-mc1-3d"], nnz=15_000, seed=0)
        return run_comparison(
            {"vast": t},
            rank=32,
            machine=INTEL_CLX_18,
            methods=("stef", "alto", "splatt-all"),
            num_threads=18,
        )

    def test_stef_beats_slice_methods_on_vast(self, vast_grid):
        """Slice-parallel methods starve on vast's 2-slice root; STeF's
        fine-grained distribution must win by a wide margin."""
        rel = relative_performance(vast_grid)["vast"]
        assert rel["stef"] > 2.0 * rel["splatt-all"]

    def test_alto_competitive_on_vast(self, vast_grid):
        """ALTO's flat balanced layout also avoids the slice trap — the
        one case the paper concedes to ALTO."""
        rel = relative_performance(vast_grid)["vast"]
        assert rel["alto"] > rel["splatt-all"]

    def test_memoization_helps_on_compressing_tensor(self):
        """On flickr-4d-like structure memoization pays; STeF's simulated
        cost must beat splatt-1 (same CSF, no memoization)."""
        t = generate(TABLE1_SPECS["flickr-4d"], nnz=10_000, seed=0)
        grid = run_comparison(
            {"flickr": t},
            rank=32,
            machine=INTEL_CLX_18,
            methods=("stef", "splatt-1", "splatt-all"),
            num_threads=8,
        )
        rel = relative_performance(grid)["flickr"]
        assert rel["stef"] > rel["splatt-1"]


class TestModelValidation:
    def test_model_ranking_agrees_with_counted_traffic(self):
        """Integration-level check of the Section IV model: across all
        plans on a 4-D tensor the predicted and counted traffic must
        rank configurations concordantly."""
        t = generate(TABLE1_SPECS["enron"], nnz=6000, seed=0)
        csf = CsfTensor.from_coo(t)
        entries = model_vs_measured(csf, 32, INTEL_CLX_18, num_threads=4)
        assert ranking_agreement(entries) > 0.3

    def test_model_chosen_plan_close_to_best_measured(self):
        """The model's pick must be within 25% of the best measured
        configuration (it need not be optimal, just good)."""
        t = generate(TABLE1_SPECS["flickr-4d"], nnz=8000, seed=0)
        csf = CsfTensor.from_coo(t)
        entries = model_vs_measured(csf, 32, INTEL_CLX_18, num_threads=4)
        best_measured = min(e.measured for e in entries)
        chosen = min(entries, key=lambda e: e.predicted)
        assert chosen.measured <= 1.25 * best_measured


class TestPreprocessingOverhead:
    def test_planning_cheaper_than_mttkrp_set(self):
        """Fig. 5's claim: Algorithm 9 + model search costs less than one
        full MTTKRP set."""
        t = generate(TABLE1_SPECS["delicious-4d"], nnz=15_000, seed=0)
        s = Stef(t, 32, num_threads=4)
        m = measure_method("stef", t, 32, INTEL_CLX_18, num_threads=4)
        assert s.preprocessing_seconds < m.wall_seconds


class TestSpaceRequirements:
    def test_memo_ratio_bounded(self):
        """Table II: the model-chosen memo footprint stays a modest
        fraction of CSF+factors storage (average 0.35-0.45, max 2.34)."""
        import numpy as np

        for name in ("uber", "enron", "nips"):
            t = generate(TABLE1_SPECS[name], nnz=4000, seed=0)
            s = Stef(t, 32, machine=INTEL_CLX_18, num_threads=4)
            factors_bytes = sum(n * 32 * 8 for n in t.shape)
            denom = s.csf.total_bytes() + factors_bytes
            from repro.cpd import random_init

            s.mttkrp_level(random_init(t.shape, 32, 0), 0)
            ratio = s.memo_bytes() / denom
            assert ratio < 3.0, name
