"""AdaTM-style baseline: operation-count-driven memoization.

AdaTM (Li et al., IPDPS 2017) also memoizes partial MTTKRP results over a
CSF-like structure, choosing what to store with a model.  Two differences
from STeF matter for the evaluation (Sections V and VI-B):

* AdaTM's model minimizes *high-level operation count* (FLOPs), not data
  movement — so it happily stores large intermediates whose write/read
  traffic exceeds the arithmetic it saves (the uber tensor of
  Section IV-A is the canonical counterexample);
* it keeps the length-sorted mode order (no last-two-mode swap) and the
  prior-work slice distribution, so it inherits the vast-2015 imbalance.

The reimplementation reuses this library's memoized engine with a plan
chosen by an explicit FLOP model (:func:`flop_minimal_plan`), which — as
in the paper's characterization — "fails to select an optimal mode order
or memoizing decisions" whenever FLOPs and traffic disagree.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..compat import resolve_engine_aliases
from ..core.memoization import MemoPlan, enumerate_plans
from ..core.mttkrp import MemoizedMttkrp
from ..engines.base import EngineBase, resolve_num_threads
from ..parallel.counters import NULL_COUNTER, TrafficCounter
from ..parallel.machine import MachineSpec
from ..tensor.coo import CooTensor
from ..tensor.csf import CsfTensor, default_mode_order
from ..trace import NULL_TRACER, Tracer

__all__ = ["flop_count", "flop_minimal_plan", "AdaTm"]


def _plan_arrays(plan: MemoPlan, d: int) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten a :class:`MemoPlan` into typed arrays — the source level of
    each update mode and a saved-level mask — so the counting loop below
    takes only ndarrays and scalars (no object dispatch on the plan)."""
    # Mode 0 is produced by the sweep, never sourced: slot 0 is a filler.
    source = np.array(
        [0] + [plan.source_level(u, d) for u in range(1, d)], dtype=np.int64
    )
    saved = np.array([plan.saves(k) for k in range(d)], dtype=np.bool_)
    return source, saved


def flop_count(fiber_counts: Sequence[int], rank: int, plan: MemoPlan) -> float:
    """Multiply-add count of one CPD iteration's MTTKRPs under ``plan``.

    A sweep over levels ``j..k`` performs ``m_j·R`` multiply-adds per level
    (one fused gather-multiply-accumulate per fiber per rank column).  Mode
    ``u`` sourced from level ``k`` pays the downward ``k``-sweep
    (levels ``0..u-1``), the resumed contraction (``u..k``), and the final
    Hadamard-scatter at ``u``.
    """
    d = len(fiber_counts)
    m = np.asarray(fiber_counts, dtype=np.float64)
    source, saved = _plan_arrays(plan, d)
    # Mode 0: one full sweep (every level contributes m_j * R work).
    total = float(m.sum() * rank)
    for u in range(1, d):
        k = int(source[u]) if u < d - 1 else d - 1
        if u < d - 1 and not saved[k]:
            k = d - 1
        down = m[1 : u + 1].sum()  # k-vector expansions
        up = m[u : k + 1].sum() if k > u else m[u]
        total += float((down + up) * rank)
    return total


def flop_minimal_plan(fiber_counts: Sequence[int], rank: int) -> MemoPlan:
    """The memoization plan minimizing :func:`flop_count` — AdaTM's
    objective.  Ties break toward *more* memoization (AdaTM stores
    ``Θ(√N)`` intermediates by design)."""
    d = len(fiber_counts)
    best = None
    for plan in enumerate_plans(d):
        cost = flop_count(fiber_counts, rank, plan)
        key = (cost, -len(plan.save_levels))
        if best is None or key < best[0]:
            best = (key, plan)
    assert best is not None
    return best[1]


class AdaTm(EngineBase):
    """Op-count-driven memoized MTTKRP backend (AdaTM policy)."""

    name = "adatm"

    def __init__(
        self,
        tensor: CooTensor,
        rank: int,
        *,
        machine: Optional[MachineSpec] = None,
        num_threads: Optional[int] = None,
        exec_backend: Optional[str] = None,
        counter: TrafficCounter = NULL_COUNTER,
        tracer: Tracer = NULL_TRACER,
        **removed,
    ) -> None:
        num_threads, exec_backend = resolve_engine_aliases(
            type(self).__name__, num_threads, exec_backend, removed
        )
        self.tensor = tensor
        self.rank = rank
        self.tracer = tracer
        threads = resolve_num_threads(machine, num_threads)
        self.csf = CsfTensor.from_coo(tensor, default_mode_order(tensor.shape))
        self.plan = flop_minimal_plan(self.csf.fiber_counts, rank)
        self.engine = MemoizedMttkrp(
            self.csf,
            rank,
            plan=self.plan,
            num_threads=threads,
            partition="slice",
            exec_backend=exec_backend,
            counter=counter,
            tracer=tracer,
        )
        self.mode_order: Tuple[int, ...] = self.csf.mode_order

    def mttkrp_level(self, factors: Sequence[np.ndarray], level: int) -> np.ndarray:
        """MTTKRP at ``level`` with AdaTM's memoization plan."""
        if level == 0:
            return self.engine.mode0(factors)
        return self.engine.mode_level(factors, level)

    def memo_bytes(self) -> int:
        """Footprint of the stored intermediates."""
        return self.engine.memo_bytes()

    def level_load_factor(self, level: int) -> float:
        """Imbalance stretch of the slice schedule (level-independent)."""
        return self.engine.partition.max_over_mean

    @property
    def num_threads(self) -> int:
        return self.engine.num_threads

    def per_thread_traffic(self) -> List[float]:
        return self.engine.shards.per_thread_totals()

    def close(self) -> None:
        """Release the inner engine's resources (shm under processes)."""
        self.engine.close()

    def describe(self) -> str:
        return f"{self.name}: save={list(self.plan.save_levels)} (FLOP-minimal)"
