"""repro — reproduction of "Sparsity-Aware Tensor Decomposition" (IPDPS 2022).

STeF: memoized, load-balanced, data-movement-model-driven MTTKRP for
sparse CP decomposition, plus the substrates (CSF/ALTO storage, tensor
algebra, a simulated shared-memory machine) and the baselines (SPLATT
variants, AdaTM, ALTO, TACO-style) the paper evaluates against.

Quickstart::

    from repro import cp_als, create_engine, random_tensor

    tensor = random_tensor((500, 400, 300), nnz=50_000, seed=0)
    with create_engine("stef", tensor, 16, num_threads=8) as engine:
        result = cp_als(tensor, rank=16, engine=engine)
    print(result.final_fit, result.iterations)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .tensor import (
    AltoTensor,
    CooTensor,
    CsfTensor,
    TABLE1_SPECS,
    TensorSpec,
    default_mode_order,
    generate,
    load_or_generate,
    low_rank_tensor,
    random_tensor,
    read_tns,
    write_tns,
    HicooTensor,
    ValidationError,
)
from .core import (
    DataMovementModel,
    MemoPlan,
    MemoizedMttkrp,
    PlanDecision,
    Stef,
    Stef2,
    TensorStats,
    build_schedule,
    count_swapped_fibers,
    enumerate_plans,
    plan_decomposition,
)
from .cpd import AlsResult, KruskalTensor, cp_als
from .reorder import Relabeling, lexi_order, random_relabel
from .parallel import (
    AMD_TR_64,
    INTEL_CLX_18,
    MACHINES,
    MachineSpec,
    TrafficCounter,
)
from .baselines import ALL_BACKENDS
from .engines import MttkrpEngine, create_engine, engine_names, register_engine
from .trace import NULL_TRACER, NullTracer, Tracer

__version__ = "1.0.0"

__all__ = [
    "AltoTensor",
    "CooTensor",
    "CsfTensor",
    "TABLE1_SPECS",
    "TensorSpec",
    "default_mode_order",
    "generate",
    "load_or_generate",
    "low_rank_tensor",
    "random_tensor",
    "read_tns",
    "write_tns",
    "DataMovementModel",
    "MemoPlan",
    "MemoizedMttkrp",
    "PlanDecision",
    "Stef",
    "Stef2",
    "TensorStats",
    "build_schedule",
    "count_swapped_fibers",
    "enumerate_plans",
    "plan_decomposition",
    "AlsResult",
    "KruskalTensor",
    "cp_als",
    "Relabeling",
    "lexi_order",
    "random_relabel",
    "HicooTensor",
    "ValidationError",
    "AMD_TR_64",
    "INTEL_CLX_18",
    "MACHINES",
    "MachineSpec",
    "TrafficCounter",
    "ALL_BACKENDS",
    "MttkrpEngine",
    "create_engine",
    "engine_names",
    "register_engine",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "__version__",
]
