"""Unit tests for Khatri-Rao products."""

import numpy as np
import pytest

from repro.ops import khatri_rao, khatri_rao_chain, khatri_rao_excluding, krp_rows


class TestKhatriRao:
    def test_definition(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[5.0, 6.0], [7.0, 8.0], [9.0, 10.0]])
        m = khatri_rao(a, b)
        assert m.shape == (6, 2)
        # M[i*J + j, r] = A[i, r] * B[j, r]
        for i in range(2):
            for j in range(3):
                assert np.allclose(m[i * 3 + j], a[i] * b[j])

    def test_column_mismatch_raises(self):
        with pytest.raises(ValueError, match="column"):
            khatri_rao(np.ones((2, 3)), np.ones((2, 4)))

    def test_non_matrix_raises(self):
        with pytest.raises(ValueError):
            khatri_rao(np.ones(3), np.ones((3, 1)))

    def test_matches_kron_per_column(self):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((4, 3)), rng.standard_normal((5, 3))
        m = khatri_rao(a, b)
        for r in range(3):
            assert np.allclose(m[:, r], np.kron(a[:, r], b[:, r]))


class TestChain:
    def test_single_matrix_is_identity_op(self):
        a = np.ones((3, 2))
        assert np.array_equal(khatri_rao_chain([a]), a)

    def test_chain_associativity(self):
        rng = np.random.default_rng(1)
        mats = [rng.standard_normal((n, 2)) for n in (2, 3, 4)]
        left = khatri_rao(khatri_rao(mats[0], mats[1]), mats[2])
        assert np.allclose(khatri_rao_chain(mats), left)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            khatri_rao_chain([])

    def test_shape(self):
        mats = [np.ones((2, 5)), np.ones((3, 5)), np.ones((4, 5))]
        assert khatri_rao_chain(mats).shape == (24, 5)


class TestExcluding:
    def test_excludes_correct_matrix(self):
        rng = np.random.default_rng(2)
        mats = [rng.standard_normal((n, 2)) for n in (2, 3, 4)]
        m = khatri_rao_excluding(mats, 1)
        assert np.allclose(m, khatri_rao(mats[0], mats[2]))

    def test_exclude_only_raises(self):
        with pytest.raises(ValueError):
            khatri_rao_excluding([np.ones((2, 2))], 0)


class TestKrpRows:
    def test_matches_full_krp(self):
        rng = np.random.default_rng(3)
        a, b = rng.standard_normal((4, 3)), rng.standard_normal((5, 3))
        full = khatri_rao(a, b)
        ia = np.array([0, 2, 3])
        ib = np.array([1, 4, 0])
        rows = krp_rows([a, b], [ia, ib])
        for p in range(3):
            assert np.allclose(rows[p], full[ia[p] * 5 + ib[p]])

    def test_single_matrix(self):
        a = np.arange(6.0).reshape(3, 2)
        rows = krp_rows([a], [np.array([2, 0])])
        assert np.allclose(rows, a[[2, 0]])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="one row-index"):
            krp_rows([np.ones((2, 2))], [])

    def test_empty_matrices_raise(self):
        with pytest.raises(ValueError, match="at least one"):
            krp_rows([], [])
