"""Machine models for the two evaluation platforms.

The paper's experiments run on an 18-core Intel i9-10980XE (Cascade Lake)
and a 64-core AMD 3990X (Threadripper), both with 128 GB DRAM
(Section VI-A).  Two machine properties drive every decision STeF makes:

* **thread count** — the load-balancing experiments (Fig. 2, Fig. 6.1)
  depend on how many threads must be fed;
* **cache capacity** — the data-movement model's ``DM_factor`` rule
  (Section IV-C) charges a factor-matrix access stream either ``x·R``
  (streaming, matrix exceeds cache) or ``min(N_i·R, x·R)`` (resident).

A :class:`MachineSpec` carries exactly those parameters plus a relative
bandwidth figure used to convert modeled element traffic into a simulated
execution time.  The paper's observation that "the cache sizes and cache
structures are different [so] this phenomenon happens with different
tensors on different machines" falls out of the two presets' different
``cache_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["MachineSpec", "INTEL_CLX_18", "AMD_TR_64", "MACHINES"]


@dataclass(frozen=True)
class MachineSpec:
    """A shared-memory multiprocessor for the simulation substrate.

    Attributes
    ----------
    name:
        Display name used in harness output.
    num_threads:
        Hardware threads the kernels are partitioned across.
    cache_bytes:
        Capacity of the last-level cache.  The Section IV model treats the
        cache as a single capacity threshold; that is deliberately coarse
        (the paper's model is too) and is what the ablation validates.
    element_bytes:
        Bytes per tensor/factor element (double precision = 8).
    dram_gbps:
        Sustained memory bandwidth in GB/s; used only to convert modeled
        byte traffic into simulated seconds for reporting.
    """

    name: str
    num_threads: int
    cache_bytes: int
    element_bytes: int = 8
    dram_gbps: float = 50.0
    gflops: float = 500.0

    @property
    def cache_elements(self) -> int:
        """Cache capacity in elements (the unit the paper's model uses)."""
        return self.cache_bytes // self.element_bytes

    def effective_bandwidth_gbps(self, active_threads: Optional[int] = None) -> float:
        """Bandwidth available to ``active_threads`` concurrent streams.

        A single core cannot saturate DRAM; bandwidth ramps linearly and
        saturates once ~a quarter of the cores are streaming (typical for
        both evaluation machines).
        """
        if active_threads is None:
            return self.dram_gbps
        saturation = max(1.0, 0.25 * self.num_threads)
        return self.dram_gbps * min(1.0, active_threads / saturation)

    def effective_gflops(self, active_threads: Optional[int] = None) -> float:
        """Compute throughput of ``active_threads`` cores (linear)."""
        if active_threads is None:
            return self.gflops
        return self.gflops * min(1.0, active_threads / self.num_threads)

    def traffic_seconds(
        self, elements: float, active_threads: Optional[int] = None
    ) -> float:
        """Simulated time to move ``elements`` doubles to/from DRAM."""
        bw = self.effective_bandwidth_gbps(active_threads)
        return elements * self.element_bytes / (bw * 1e9)

    def compute_seconds(
        self, flops: float, active_threads: Optional[int] = None
    ) -> float:
        """Simulated time to execute ``flops`` floating-point operations."""
        return flops / (self.effective_gflops(active_threads) * 1e9)

    def roofline_seconds(
        self,
        elements: float,
        flops: float,
        active_threads: Optional[int] = None,
    ) -> float:
        """Roofline execution time: the binding resource (memory traffic
        or compute) determines the kernel's duration.  Pass
        ``active_threads`` for thread-scaling studies; omitted, the full
        machine's resources apply."""
        return max(
            self.traffic_seconds(elements, active_threads),
            self.compute_seconds(flops, active_threads),
        )

    def with_threads(self, num_threads: int) -> "MachineSpec":
        """Same machine with a different active thread count (scaling
        studies)."""
        return MachineSpec(
            name=f"{self.name}@{num_threads}t",
            num_threads=num_threads,
            cache_bytes=self.cache_bytes,
            element_bytes=self.element_bytes,
            dram_gbps=self.dram_gbps,
            gflops=self.gflops,
        )

    def with_cache_scale(self, scale: float) -> "MachineSpec":
        """Same machine with its cache scaled by ``scale``.

        The benchmark harness scales each tensor's mode lengths down by a
        per-tensor factor; scaling the cache by the *same* factor
        preserves which factor matrices are cache-resident — the
        relationship the ``DM_factor`` rule and the paper's "sharp
        slow down" cases depend on (DESIGN.md §2).
        """
        if not 0 < scale:
            raise ValueError("scale must be positive")
        return MachineSpec(
            name=self.name if scale == 1.0 else f"{self.name}~c{scale:.3g}",
            num_threads=self.num_threads,
            cache_bytes=max(1, int(self.cache_bytes * scale)),
            element_bytes=self.element_bytes,
            dram_gbps=self.dram_gbps,
            gflops=self.gflops,
        )


#: 18-core Intel i9-10980XE: 24.75 MB L3 (unified victim cache),
#: ~90 GB/s quad-channel DDR4.  ``gflops`` is the *effective* throughput
#: of irregular sparse-gather kernels (~2 ops/cycle/core), not peak FMA —
#: MTTKRP never vectorizes to peak, and using the sustained figure is
#: what lets the compute leg of the roofline discriminate methods the
#: way the paper's wall-clock does.
INTEL_CLX_18 = MachineSpec(
    name="intel-clx-18",
    num_threads=18,
    cache_bytes=24_750_000,
    dram_gbps=90.0,
    gflops=110.0,
)

#: 64-core AMD 3990X: 256 MB total L3 (8 MB per CCX × 32 CCX),
#: ~100 GB/s quad-channel DDR4; same sustained-irregular-throughput
#: convention as the Intel preset.
AMD_TR_64 = MachineSpec(
    name="amd-tr-64",
    num_threads=64,
    cache_bytes=256_000_000,
    dram_gbps=100.0,
    gflops=370.0,
)

#: Presets keyed by harness name.
MACHINES = {m.name: m for m in (INTEL_CLX_18, AMD_TR_64)}
