"""Memoization plans: which partial MTTKRP results to save.

During the mode-0 MTTKRP, STeF's upward sweep materializes every partial
result ``P^(i)`` transiently (``t_i`` vectors in Algorithm 5).  A
*memoization plan* selects the subset of levels whose ``P^(i)`` is written
to memory so the later per-mode MTTKRPs can reuse it (``T.save`` in
Algorithm 5).

Plan semantics (Section III-B):

* level ``0`` is the mode-0 output itself — never part of a plan;
* level ``d-1`` is the tensor — always "available", never saved;
* saveable levels are therefore ``1 .. d-2``; a ``d``-dimensional tensor
  has ``2^(d-2)`` plans (1 for 3-D: save/skip ``P^(1)``; 4 for 4-D; 8 for
  5-D), a space small enough for the exhaustive model search the paper
  performs.

For the MTTKRP of mode-level ``u > 0``, the plan determines the *source*
(:meth:`MemoPlan.source_level`): ``P^(u)`` itself when saved, else the
shallowest saved ``P^(k)`` with ``k > u``, else the tensor (full
re-traversal, Fig. 1d).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator, Tuple

from ..tensor.csf import CsfTensor

__all__ = ["MemoPlan", "enumerate_plans", "SAVE_ALL", "SAVE_NONE"]


@dataclass(frozen=True, order=True)
class MemoPlan:
    """An immutable set of CSF levels whose partial results are saved.

    ``save_levels`` is sorted ascending and every entry lies in
    ``1 .. d-2`` for the tensor the plan targets (validated on use, since
    the plan itself is dimension-agnostic).
    """

    save_levels: Tuple[int, ...]

    def __post_init__(self) -> None:
        lv = tuple(sorted(set(int(x) for x in self.save_levels)))
        object.__setattr__(self, "save_levels", lv)
        if any(x < 1 for x in lv):
            raise ValueError(f"level 0 / negative levels cannot be memoized: {lv}")

    # ------------------------------------------------------------------
    def validate(self, ndim: int) -> None:
        """Raise if the plan references levels outside ``1..ndim-2``."""
        if any(x > ndim - 2 for x in self.save_levels):
            raise ValueError(
                f"plan {self.save_levels} exceeds saveable levels of a "
                f"{ndim}-D tensor (1..{ndim - 2})"
            )

    def saves(self, level: int) -> bool:
        """True when ``P^(level)`` is written to memory (``T.save[level]``)."""
        return level in self.save_levels

    def source_level(self, u: int, ndim: int) -> int:
        """The level whose stored data feeds the MTTKRP of mode-level
        ``u > 0``: ``u`` itself if saved, else the shallowest saved level
        above ``u``, else ``ndim - 1`` (the tensor)."""
        if u <= 0:
            raise ValueError("mode 0 is produced by the sweep, not sourced")
        for k in self.save_levels:
            if k >= u:
                return k
        return ndim - 1

    # ------------------------------------------------------------------
    def memo_elements(self, csf: CsfTensor, rank: int, num_threads: int = 1) -> int:
        """Elements occupied by the saved partials, including the ``+T``
        boundary-replication rows (Table II's space accounting)."""
        self.validate(csf.ndim)
        return sum(
            (csf.fiber_counts[i] + num_threads) * rank for i in self.save_levels
        )

    def memo_bytes(
        self, csf: CsfTensor, rank: int, num_threads: int = 1, element_bytes: int = 8
    ) -> int:
        """Bytes occupied by the saved partials."""
        return self.memo_elements(csf, rank, num_threads) * element_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MemoPlan(save={list(self.save_levels)})"


#: Sentinel plans for the Fig. 6 ablation extremes.  ``SAVE_ALL`` is
#: resolved per-tensor by :func:`enumerate_plans`' last element.
SAVE_NONE = MemoPlan(())


def SAVE_ALL(ndim: int) -> MemoPlan:
    """The save-everything plan for a ``ndim``-dimensional tensor."""
    return MemoPlan(tuple(range(1, ndim - 1)))


def enumerate_plans(ndim: int) -> Iterator[MemoPlan]:
    """Yield all ``2^(ndim-2)`` memoization plans, smallest first."""
    levels = list(range(1, ndim - 1))
    for size in range(len(levels) + 1):
        for combo in combinations(levels, size):
            yield MemoPlan(combo)
