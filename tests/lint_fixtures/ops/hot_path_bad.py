"""Fixture: hot-path violations (never imported, AST-only).

Lives under ``lint_fixtures/ops/`` so the path-scoped hot-path rule
applies.  One instance of each flagged idiom.
"""

import numpy as np


def slow_scatter(out, idx, rows, tensor):
    np.add.at(out, idx, rows)  # buffered per-element scatter
    flat = rows.flatten()  # always-copy (use .ravel())
    acc = np.zeros(0)
    for _ in range(4):
        acc = np.concatenate([acc, flat])  # quadratic grow-in-loop
    for entry in tensor.iter_entries():  # per-non-zero interpretation
        acc[0] += entry[0]
    return acc
