"""Failure-injection tests for the structural validators."""

import dataclasses

import numpy as np
import pytest

from repro.tensor import (
    AltoTensor,
    CooTensor,
    CsfTensor,
    HicooTensor,
    ValidationError,
    check_alto,
    check_coo,
    check_csf,
    check_hicoo,
    random_tensor,
    validate_coo,
    validate_csf,
    validate_hicoo,
)


def _mutate(obj, **changes):
    """Frozen-dataclass field surgery for corruption injection."""
    return dataclasses.replace(obj, **changes)


class TestCooValidation:
    def test_valid_passes(self, coo4):
        assert validate_coo(coo4) == []
        check_coo(coo4)

    def test_out_of_range_detected(self, coo3):
        idx = coo3.indices.copy()
        idx[0, 0] = coo3.shape[0] + 5
        bad = CooTensor(idx, coo3.values, coo3.shape)
        assert any("out of" in p for p in validate_coo(bad))
        with pytest.raises(ValidationError):
            check_coo(bad)

    def test_unsorted_detected(self, coo3):
        idx = coo3.indices[:, ::-1].copy()
        bad = CooTensor(idx, coo3.values[::-1].copy(), coo3.shape)
        assert any("sorted" in p for p in validate_coo(bad))

    def test_duplicates_detected(self):
        idx = np.array([[0, 0], [1, 1]])
        bad = CooTensor(idx, np.ones(2), (2, 2))
        assert any("duplicate" in p for p in validate_coo(bad))

    def test_value_length_mismatch(self, coo3):
        bad = CooTensor(coo3.indices, coo3.values[:-1], coo3.shape)
        assert any("values" in p for p in validate_coo(bad))


class TestCsfValidation:
    def test_valid_passes(self, csf4):
        assert validate_csf(csf4) == []
        check_csf(csf4)

    def test_corrupt_ptr_monotonicity(self, csf4):
        ptr = [p.copy() for p in csf4.ptr]
        if ptr[0].shape[0] > 2:
            ptr[0][1] = ptr[0][2]  # create an empty node
        bad = _mutate(csf4, ptr=ptr)
        assert any("increasing" in p or "empty" in p for p in validate_csf(bad))

    def test_corrupt_ptr_coverage(self, csf4):
        ptr = [p.copy() for p in csf4.ptr]
        ptr[0][-1] += 1
        bad = _mutate(csf4, ptr=ptr)
        assert any("cover" in p for p in validate_csf(bad))
        with pytest.raises(ValidationError):
            check_csf(bad)

    def test_out_of_range_index(self, csf4):
        idx = [a.copy() for a in csf4.idx]
        idx[1][0] = csf4.level_shape(1) + 10
        bad = _mutate(csf4, idx=idx)
        assert any("out of" in p for p in validate_csf(bad))

    def test_unsorted_children(self, csf4):
        idx = [a.copy() for a in csf4.idx]
        # Find a node at level 0 with >= 2 children and swap them.
        counts = np.diff(csf4.ptr[0])
        node = int(np.argmax(counts))
        if counts[node] >= 2:
            s = int(csf4.ptr[0][node])
            idx[1][s], idx[1][s + 1] = idx[1][s + 1], idx[1][s]
            bad = _mutate(csf4, idx=idx)
            assert any("sorted within" in p for p in validate_csf(bad))

    def test_misaligned_values(self, csf4):
        bad = _mutate(csf4, values=csf4.values[:-1])
        assert any("aligned" in p for p in validate_csf(bad))

    def test_bad_mode_order(self, csf4):
        bad = _mutate(csf4, mode_order=(0, 0, 1, 2))
        assert any("permutation" in p for p in validate_csf(bad))


class TestAltoValidation:
    def test_valid_passes(self, coo4):
        check_alto(AltoTensor.from_coo(coo4))

    def test_unsorted_linear_detected(self, coo4):
        at = AltoTensor.from_coo(coo4)
        bad = _mutate(at, linear=at.linear[::-1].copy())
        with pytest.raises(ValidationError):
            check_alto(bad)

    def test_misaligned_values(self, coo4):
        at = AltoTensor.from_coo(coo4)
        bad = _mutate(at, values=at.values[:-1])
        with pytest.raises(ValidationError):
            check_alto(bad)


class TestHicooValidation:
    def test_valid_passes(self, coo4):
        check_hicoo(HicooTensor.from_coo(coo4, 3))

    def test_offset_overflow_detected(self, coo4):
        h = HicooTensor.from_coo(coo4, 2)
        off = h.offsets.copy()
        off[0, 0] = 99
        bad = _mutate(h, offsets=off)
        assert any("block width" in p for p in validate_hicoo(bad))

    def test_ptr_coverage_detected(self, coo4):
        h = HicooTensor.from_coo(coo4, 3)
        ptr = h.block_ptr.copy()
        ptr[-1] -= 1
        bad = _mutate(h, block_ptr=ptr)
        with pytest.raises(ValidationError):
            check_hicoo(bad)

    def test_block_coord_range(self, coo4):
        h = HicooTensor.from_coo(coo4, 3)
        bc = h.block_coords.copy()
        bc[0, 0] = 10**6
        bad = _mutate(h, block_coords=bc)
        assert any("block coordinates" in p for p in validate_hicoo(bad))
