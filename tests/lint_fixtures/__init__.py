# Intentionally-buggy fixture modules for tests/test_lint.py.
# Each file violates exactly one lint rule; none of them are imported.
