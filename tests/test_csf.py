"""Unit tests for the CSF tree structure."""

import numpy as np
import pytest

from repro.tensor import CooTensor, CsfTensor, default_mode_order, random_tensor


class TestDefaultModeOrder:
    def test_sorted_by_length(self):
        assert default_mode_order((10, 2, 5)) == (1, 2, 0)

    def test_ties_break_by_mode_number(self):
        assert default_mode_order((4, 4, 4)) == (0, 1, 2)


class TestConstruction:
    def test_roundtrip_identity_order(self, coo4):
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        assert np.allclose(csf.to_coo().to_dense(), coo4.to_dense())

    @pytest.mark.parametrize("order", [(1, 0, 3, 2), (3, 2, 1, 0), (2, 3, 0, 1)])
    def test_roundtrip_any_order(self, coo4, order):
        csf = CsfTensor.from_coo(coo4, order)
        assert np.allclose(csf.to_coo().to_dense(), coo4.to_dense())

    def test_default_order_used(self, coo4):
        csf = CsfTensor.from_coo(coo4)
        assert csf.mode_order == default_mode_order(coo4.shape)

    def test_invalid_order_raises(self, coo4):
        with pytest.raises(ValueError, match="permutation"):
            CsfTensor.from_coo(coo4, (0, 1, 2, 2))

    def test_leaf_count_is_nnz(self, coo4):
        csf = CsfTensor.from_coo(coo4)
        assert csf.fiber_counts[-1] == coo4.nnz
        assert csf.nnz == coo4.nnz

    def test_fiber_counts_match_coo(self, coo4):
        order = (1, 3, 0, 2)
        csf = CsfTensor.from_coo(coo4, order)
        for lvl in range(4):
            assert csf.fiber_counts[lvl] == coo4.fiber_count(list(order), lvl)

    def test_fiber_counts_nondecreasing(self, coo_any):
        csf = CsfTensor.from_coo(coo_any)
        fc = csf.fiber_counts
        assert all(a <= b for a, b in zip(fc, fc[1:]))

    def test_ptr_arrays_cover_children(self, csf4):
        for lvl in range(csf4.ndim - 1):
            ptr = csf4.ptr[lvl]
            assert ptr[0] == 0
            assert ptr[-1] == csf4.fiber_counts[lvl + 1]
            assert np.all(np.diff(ptr) >= 1)  # every node has >=1 child

    def test_empty_tensor(self):
        t = CooTensor.from_arrays(
            np.empty((3, 0), dtype=np.int64), np.empty(0), shape=(4, 4, 4)
        )
        csf = CsfTensor.from_coo(t)
        assert csf.nnz == 0
        assert csf.fiber_counts == (0, 0, 0)

    def test_2d_tensor(self):
        t = random_tensor((6, 8), nnz=20, seed=4)
        csf = CsfTensor.from_coo(t, (0, 1))
        assert np.allclose(csf.to_coo().to_dense(), t.to_dense())


class TestNavigation:
    def test_find_parent_basic(self, csf4):
        # Every child position maps to the node whose ptr range contains it.
        for lvl in range(csf4.ndim - 1):
            ptr = csf4.ptr[lvl]
            positions = np.arange(csf4.fiber_counts[lvl + 1])
            parents = csf4.find_parent(lvl, positions)
            assert np.all(ptr[parents] <= positions)
            assert np.all(positions < ptr[parents + 1])

    def test_find_parent_past_end(self, csf4):
        lvl = 0
        end = csf4.fiber_counts[1]
        parent = csf4.find_parent(lvl, np.array([end]))
        assert parent[0] == csf4.fiber_counts[0]

    def test_find_parent_bad_level_raises(self, csf4):
        with pytest.raises(ValueError, match="child"):
            csf4.find_parent(csf4.ndim - 1, np.array([0]))

    def test_leaf_span_covers_all(self, csf4):
        total = sum(
            csf4.leaf_span(0, n)[1] - csf4.leaf_span(0, n)[0]
            for n in range(csf4.fiber_counts[0])
        )
        assert total == csf4.nnz

    def test_leaf_span_consistent_with_expand(self, csf4):
        root_ids = np.arange(csf4.fiber_counts[0])
        expanded = csf4.expand_to_level(0, csf4.ndim - 1, root_ids)
        for n in range(csf4.fiber_counts[0]):
            lo, hi = csf4.leaf_span(0, n)
            assert np.all(expanded[lo:hi] == n)

    def test_expand_to_level_identity(self, csf4):
        arr = np.arange(csf4.fiber_counts[2])
        assert np.array_equal(csf4.expand_to_level(2, 2, arr), arr)

    def test_expand_bad_levels_raises(self, csf4):
        with pytest.raises(ValueError, match="dst_level"):
            csf4.expand_to_level(2, 1, np.arange(csf4.fiber_counts[2]))


class TestAccounting:
    def test_total_bytes_sums_parts(self, csf4):
        assert csf4.total_bytes() == csf4.index_bytes() + csf4.value_bytes()

    def test_value_bytes(self, csf4):
        assert csf4.value_bytes() == csf4.nnz * 8

    def test_index_bytes_positive(self, csf4):
        assert csf4.index_bytes() > 0


class TestReorderedViews:
    def test_with_mode_order_roundtrip(self, coo4):
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        re = csf.with_mode_order((2, 0, 1, 3))
        assert re.mode_order == (2, 0, 1, 3)
        assert np.allclose(re.to_coo().to_dense(), coo4.to_dense())

    def test_swapped_last_two(self, coo4):
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        sw = csf.swapped_last_two()
        assert sw.mode_order == (0, 1, 3, 2)
        assert np.allclose(sw.to_coo().to_dense(), coo4.to_dense())

    def test_swap_changes_level_d2_fibers_only_below(self, coo4):
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        sw = csf.swapped_last_two()
        # Levels above d-2 keep their fiber counts.
        assert sw.fiber_counts[:-2] == csf.fiber_counts[:-2]
        assert sw.fiber_counts[-1] == csf.fiber_counts[-1]

    def test_level_shape(self, coo4):
        csf = CsfTensor.from_coo(coo4, (2, 0, 3, 1))
        for lvl, mode in enumerate(csf.mode_order):
            assert csf.level_shape(lvl) == coo4.shape[mode]
