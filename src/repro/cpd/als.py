"""CPD-ALS: the alternating least squares driver (Algorithm 2).

The driver is generic over an *MTTKRP backend* — any object exposing

* ``mode_order`` — a tuple mapping update position (CSF level) to the
  original tensor mode it updates, and
* ``mttkrp_level(factors, level)`` — the MTTKRP result for that position
  given current factor matrices (indexed by original mode).

:class:`~repro.core.stef.Stef`, :class:`~repro.core.stef2.Stef2` and every
baseline in :mod:`repro.baselines` satisfy this protocol, so one driver
serves the whole evaluation; backends must produce *identical* ALS
trajectories (a property test asserts this), differing only in cost.

One iteration updates each factor in backend order: compute the MTTKRP,
solve against the Hadamard-of-Grams matrix ``V``, normalize columns into
``λ`` (Algorithm 2 lines 2-13).  Convergence is declared when the change
in fit drops below ``tol`` (line 14).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..compat import canonicalize_kwargs
from ..ops.hadamard import gram, normalize_columns, solve_factor
from ..tensor.coo import CooTensor
from ..trace import NULL_TRACER, Tracer
from .init import hosvd_init, random_init
from .kruskal import KruskalTensor

__all__ = ["AlsResult", "cp_als", "als_iteration"]


@dataclass
class AlsResult:
    """Outcome of a CP-ALS run.

    ``fits[i]`` is the fit after iteration ``i+1``; ``converged`` is True
    when the tolerance test (not the iteration cap) ended the run.
    ``iterations`` is *cumulative* across resumes — it counts every
    iteration that produced the model, matching the checkpoint's
    ``iteration`` field; ``len(seconds_per_iteration)`` gives just this
    run's share.
    """

    model: KruskalTensor
    fits: List[float]
    iterations: int
    converged: bool
    seconds: float
    seconds_per_iteration: List[float] = field(default_factory=list)

    @property
    def final_fit(self) -> float:
        return self.fits[-1] if self.fits else float("nan")


def als_iteration(
    backend,
    factors: List[np.ndarray],
    *,
    ridge: float = 0.0,
    nonneg: bool = False,
) -> np.ndarray:
    """Run one full CPD-ALS iteration in place, returning ``λ``.

    ``factors`` is indexed by original mode and mutated as each mode is
    updated — later MTTKRPs see the freshly updated matrices, exactly as
    Algorithm 2 prescribes.

    ``ridge`` adds Tikhonov damping (``V + ridge·I``), stabilizing
    ill-conditioned updates; ``nonneg`` projects each updated factor onto
    the non-negative orthant before normalization (projected ALS — the
    simple NN-CP variant; see PLANC [7] for the full constrained family).
    """
    lambdas = np.ones(factors[0].shape[1])
    rank = factors[0].shape[1]
    for level in range(len(factors)):
        mode = backend.mode_order[level]
        m = backend.mttkrp_level(factors, level)
        v = np.ones((rank, rank))
        for other in range(len(factors)):
            if other != mode:
                v *= gram(factors[other])
        if ridge > 0.0:
            v = v + ridge * np.eye(rank)
        updated = solve_factor(m, v)
        if nonneg:
            updated = np.maximum(updated, 0.0)
        factors[mode], lambdas = normalize_columns(updated)
    return lambdas


def cp_als(
    tensor: CooTensor,
    rank: int,
    *,
    engine=None,
    max_iters: int = 50,
    tol: float = 1e-5,
    init: str = "random",
    seed: int = 0,
    compute_fit: bool = True,
    ridge: float = 0.0,
    nonneg: bool = False,
    callback: Optional[Callable[[int, float], None]] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 5,
    resume: bool = False,
    tracer: Tracer = NULL_TRACER,
    **deprecated,
) -> AlsResult:
    """Compute the CP decomposition of a sparse tensor.

    Parameters
    ----------
    tensor:
        Input in COO form.
    rank:
        Number of rank-one components ``R``.
    engine:
        An MTTKRP engine instance (see
        :func:`repro.engines.create_engine`); default constructs
        :class:`~repro.core.stef.Stef` with the model-chosen
        configuration.  The old spelling ``backend=`` is accepted with
        a deprecation warning.
    max_iters, tol:
        Convergence controls (fit-change threshold).
    init:
        ``"random"`` or ``"hosvd"`` factor initialization.
    seed:
        Initialization seed (backends must not consume randomness, so the
        trajectory is fully determined by ``(init, seed)``).
    compute_fit:
        Disable to skip per-iteration fit evaluation (kernel benchmarking;
        convergence then runs to ``max_iters``).
    ridge:
        Tikhonov damping added to the ``V`` matrix of every solve.
    nonneg:
        Project factors onto the non-negative orthant each update
        (projected ALS; natural for the count data of Table I).
    callback:
        Called as ``callback(iteration, fit)`` after each iteration.
    checkpoint_path:
        When set, the current model and iteration count are written to
        this ``.npz`` every ``checkpoint_every`` iterations (long runs on
        big tensors survive interruption).
    resume:
        With ``checkpoint_path`` set and the file present, continue from
        the checkpointed factors, weights, and iteration count instead of
        ``init``.  Resuming a run that already reached ``max_iters``
        returns the checkpointed model untouched and leaves the
        checkpoint file as it was.
    tracer:
        Structured-tracing target (:mod:`repro.trace`): each iteration
        records an ``als.iteration`` span enclosing the engine's kernel
        spans.  The no-op tracer by default.
    """
    canonicalize_kwargs("cp_als", deprecated, {"backend": "engine"})
    if engine is None:
        from ..core.stef import Stef

        engine = Stef(tensor, rank, tracer=tracer)
    backend = engine

    start_iter = 0
    factors: Optional[List[np.ndarray]] = None
    resumed_lambdas: Optional[np.ndarray] = None
    if resume:
        if checkpoint_path is None:
            raise ValueError("resume=True requires checkpoint_path")
        import os

        if os.path.exists(checkpoint_path):
            with np.load(checkpoint_path) as data:
                start_iter = int(data["iteration"])
                # The weights belong to the model: without them a
                # resumed-but-already-converged run would return λ = ones
                # instead of the checkpointed model.
                resumed_lambdas = np.ascontiguousarray(data["weights"])
                factors = []
                m = 0
                while f"factor_{m}" in data:
                    factors.append(np.ascontiguousarray(data[f"factor_{m}"]))
                    m += 1
            if len(factors) != tensor.ndim or factors[0].shape[1] != rank:
                raise ValueError(
                    f"checkpoint {checkpoint_path} does not match "
                    f"tensor/rank ({len(factors)} factors)"
                )
    if factors is None:
        if init == "random":
            factors = random_init(tensor.shape, rank, seed)
        elif init == "hosvd":
            factors = hosvd_init(tensor, rank, seed)
        else:
            raise ValueError(f"unknown init {init!r}")

    def _write_checkpoint(iteration: int, lambdas: np.ndarray) -> None:
        if checkpoint_path is None:
            return
        import os

        arrays = {
            "iteration": np.int64(iteration),
            "weights": lambdas,
        }
        for m, f in enumerate(factors):
            arrays[f"factor_{m}"] = f
        parent = os.path.dirname(os.path.abspath(checkpoint_path))
        os.makedirs(parent, exist_ok=True)
        # Write-then-rename so a job killed mid-write can never leave a
        # truncated .npz behind: resume either sees the previous complete
        # checkpoint or the new one, nothing in between.  The temp file
        # lives in the same directory so os.replace stays atomic (same
        # filesystem); writing through a file object keeps numpy from
        # appending a second .npz suffix to the temp name.
        tmp_path = f"{checkpoint_path}.tmp-{os.getpid()}"
        try:
            with open(tmp_path, "wb") as fh:
                np.savez_compressed(fh, **arrays)
            os.replace(tmp_path, checkpoint_path)
        finally:
            if os.path.exists(tmp_path):
                os.remove(tmp_path)

    fits: List[float] = []
    iter_seconds: List[float] = []
    lambdas = resumed_lambdas if resumed_lambdas is not None else np.ones(rank)
    converged = False
    start = time.perf_counter()
    prev_fit = -np.inf
    for it in range(start_iter, max_iters):
        t0 = time.perf_counter()
        with tracer.span("als.iteration", iteration=it):
            lambdas = als_iteration(backend, factors, ridge=ridge, nonneg=nonneg)
        iter_seconds.append(time.perf_counter() - t0)
        if checkpoint_path is not None and (it + 1) % checkpoint_every == 0:
            _write_checkpoint(it + 1, lambdas)
        if compute_fit:
            model = KruskalTensor(lambdas, factors)
            fit = model.fit(tensor)
            fits.append(fit)
            if callback is not None:
                callback(it, fit)
            if abs(fit - prev_fit) < tol:
                converged = True
                break
            prev_fit = fit
    total = time.perf_counter() - start
    if checkpoint_path is not None and iter_seconds:
        # Zero iterations ran (e.g. resuming a finished run): writing here
        # would clobber the checkpoint's weights with the loop-local λ.
        _write_checkpoint(start_iter + len(iter_seconds), lambdas)
    return AlsResult(
        model=KruskalTensor(lambdas, [f.copy() for f in factors]),
        fits=fits,
        iterations=start_iter + len(iter_seconds),
        converged=converged,
        seconds=total,
        seconds_per_iteration=iter_seconds,
    )
