"""Tests for the STeF and STeF2 facades."""

import numpy as np
import pytest

from repro.core import MemoPlan, SAVE_NONE, Stef, Stef2
from repro.ops import mttkrp_dense
from repro.parallel import AMD_TR_64, INTEL_CLX_18, TrafficCounter
from repro.tensor import TABLE1_SPECS, generate, random_tensor
from tests.conftest import make_factors


@pytest.fixture(scope="module")
def workload():
    t = random_tensor((9, 7, 6, 5), nnz=220, seed=17)
    return t, t.to_dense(), make_factors(t.shape, 4, seed=18)


class TestStefConstruction:
    def test_planner_ran(self, workload):
        t, _, _ = workload
        s = Stef(t, 4)
        assert s.decision is not None
        assert s.preprocessing_seconds > 0
        assert len(s.decision.configurations) == 8  # 2 orders x 4 plans

    def test_machine_sets_threads(self, workload):
        t, _, _ = workload
        assert Stef(t, 4, machine=INTEL_CLX_18).num_threads == 18
        assert Stef(t, 4, machine=AMD_TR_64).num_threads == 64
        assert Stef(t, 4, machine=AMD_TR_64, num_threads=4).num_threads == 4

    def test_forced_plan_respected(self, workload):
        t, _, _ = workload
        s = Stef(t, 4, plan=MemoPlan((2,)))
        assert s.plan == MemoPlan((2,))

    def test_forced_swap_respected(self, workload):
        t, _, _ = workload
        for swap in (True, False):
            s = Stef(t, 4, swap_last_two=swap)
            assert s.swap_last_two is swap

    def test_swap_changes_csf_layout(self, workload):
        t, _, _ = workload
        a = Stef(t, 4, swap_last_two=False)
        b = Stef(t, 4, swap_last_two=True)
        assert a.mode_order[-2:] == b.mode_order[::-1][:2]

    def test_both_forced_skips_planner(self, workload):
        """Regression: forcing plan AND swap leaves nothing to search, so
        the enumeration must not run (benches were paying it anyway)."""
        t, dense, factors = workload
        s = Stef(t, 4, plan=MemoPlan((1,)), swap_last_two=False)
        assert s.decision is None
        assert s.preprocessing_seconds == 0.0
        assert s.plan == MemoPlan((1,))
        assert s.swap_last_two is False
        for level in range(t.ndim):
            assert np.allclose(
                s.mttkrp_level(factors, level),
                mttkrp_dense(dense, factors, s.mode_order[level]),
            )

    def test_single_forced_knob_still_plans(self, workload):
        t, _, _ = workload
        assert Stef(t, 4, plan=MemoPlan((1,))).decision is not None
        assert Stef(t, 4, swap_last_two=True).decision is not None

    def test_describe(self, workload):
        t, _, _ = workload
        s = Stef(t, 4)
        text = s.describe()
        assert "stef" in text and "save=" in text


class TestStefCorrectness:
    @pytest.mark.parametrize("swap", [False, True])
    @pytest.mark.parametrize("threads", [1, 4])
    def test_full_iteration(self, workload, swap, threads):
        t, dense, factors = workload
        s = Stef(t, 4, num_threads=threads, swap_last_two=swap)
        for mode, res in s.iteration_results(factors):
            assert np.allclose(res, mttkrp_dense(dense, factors, mode))

    def test_mttkrp_level_api(self, workload):
        t, dense, factors = workload
        s = Stef(t, 4, num_threads=2)
        s.mttkrp_level(factors, 0)
        for lvl in range(1, t.ndim):
            res = s.mttkrp_level(factors, lvl)
            mode = s.mode_order[lvl]
            assert np.allclose(res, mttkrp_dense(dense, factors, mode))

    def test_memo_bytes_after_mode0(self, workload):
        t, _, factors = workload
        s = Stef(t, 4, plan=MemoPlan((1,)), num_threads=2)
        s.mttkrp_level(factors, 0)
        assert s.memo_bytes() > 0
        s2 = Stef(t, 4, plan=SAVE_NONE)
        s2.mttkrp_level(factors, 0)
        assert s2.memo_bytes() == 0


class TestStef2:
    def test_second_csf_rooted_at_leaf_mode(self, workload):
        t, _, _ = workload
        s = Stef2(t, 4)
        assert s.csf2.mode_order[0] == s.csf.mode_order[-1]

    def test_full_iteration_matches_oracle(self, workload):
        t, dense, factors = workload
        s = Stef2(t, 4, num_threads=3)
        s.mttkrp_level(factors, 0)
        for lvl in range(1, t.ndim):
            res = s.mttkrp_level(factors, lvl)
            mode = s.mode_order[lvl]
            assert np.allclose(res, mttkrp_dense(dense, factors, mode))

    def test_extra_csf_bytes_positive(self, workload):
        t, _, _ = workload
        s = Stef2(t, 4)
        assert s.extra_csf_bytes() > 0

    def test_leaf_mode_avoids_leaf_kernel_traffic(self):
        """On a compressing tensor (nell-2's pathology) STeF2's leaf-mode
        sweep on the second CSF must generate less counted traffic than
        STeF's per-leaf scatter kernel — the gap the paper says STeF2
        closes on nell-2."""
        t = generate(TABLE1_SPECS["nell-2"], nnz=6000, seed=0)
        factors = make_factors(t.shape, 16, seed=3)
        c1, c2 = TrafficCounter(), TrafficCounter()
        s1 = Stef(t, 16, num_threads=2, counter=c1, plan=SAVE_NONE)
        s2 = Stef2(t, 16, num_threads=2, counter=c2, plan=SAVE_NONE)
        leaf = t.ndim - 1
        s1.mttkrp_level(factors, 0)
        s2.mttkrp_level(factors, 0)
        c1.reset(), c2.reset()
        s1.mttkrp_level(factors, leaf)
        s2.mttkrp_level(factors, leaf)
        # STeF's leaf kernel scatters one accumulation per *non-zero* into
        # the output (atomics or privatization, read+write); STeF2's sweep
        # writes each output row exactly once with no conflicted reads.
        out1 = c1.by_category.get("w:output", 0) + c1.by_category.get("r:output", 0)
        out2 = c2.by_category.get("w:output", 0) + c2.by_category.get("r:output", 0)
        assert out2 < 0.5 * out1


class TestModelDecisionsOnTable1:
    def test_vast_saving_beats_not_saving(self):
        """vast-2015-mc1-3d: within the base layout, heavy fiber
        compression makes saving clearly profitable (Section IV-A: 2.5B
        vs 3.4B total elements)."""
        t = generate(TABLE1_SPECS["vast-2015-mc1-3d"], nnz=15_000, seed=0)
        s = Stef(t, 32, machine=INTEL_CLX_18, num_threads=4)
        base_best = s.decision.best_with_swap(False)
        assert len(base_best.plan.save_levels) > 0

    def test_uber_avoids_biggest_partial(self):
        """uber: the model must not save the barely-compressing deepest
        partial (Section IV-A)."""
        t = generate(TABLE1_SPECS["uber"], nnz=6000, seed=0)
        s = Stef(t, 32, machine=INTEL_CLX_18, num_threads=4)
        assert (t.ndim - 2) not in s.plan.save_levels


class TestLevelLoadFactor:
    """Regression: ``level_load_factor(level)`` used to ignore ``level``
    and always return the leaf-count stretch."""

    def _skewed_engine(self):
        # Thread 0's half of the leaves sits in ONE level-1 fiber while
        # thread 1's half spreads over 50: leaf balance is perfect (1.0)
        # but the level-1 node deal is maximally skewed.
        from repro.core import MemoizedMttkrp
        from repro.tensor import CooTensor, CsfTensor

        n = 50
        idx = np.concatenate(
            [
                np.stack([np.zeros(n), np.zeros(n), np.arange(n)]),
                np.stack([np.ones(n), np.arange(n), np.zeros(n)]),
            ],
            axis=1,
        ).astype(np.int64)
        coo = CooTensor.from_arrays(idx, np.ones(2 * n), (2, n, n))
        csf = CsfTensor.from_coo(coo, (0, 1, 2))
        return MemoizedMttkrp(csf, 4, plan=MemoPlan((1,)), num_threads=2)

    def test_memo_fed_level_uses_source_level_balance(self):
        engine = self._skewed_engine()
        leaf_stretch = engine.level_load_factor(0)
        memo_stretch = engine.level_load_factor(1)
        assert leaf_stretch == pytest.approx(1.0)
        # Level 1 is memo-fed from the saved level-1 partials: 1 node vs
        # 50 nodes -> stretch 50 / 25.5.
        assert memo_stretch == pytest.approx(50 / 25.5)
        assert engine.level_load_factor(2) == leaf_stretch

    def test_out_of_range_level_raises(self, workload):
        tensor, _, _ = workload
        s = Stef(tensor, 4, machine=INTEL_CLX_18, num_threads=2)
        with pytest.raises(ValueError):
            s.engine.level_load_factor(tensor.ndim)
        with pytest.raises(ValueError):
            s.engine.level_load_factor(-1)

    def test_stef_delegates_to_engine(self, workload):
        tensor, _, _ = workload
        s = Stef(tensor, 4, machine=INTEL_CLX_18, num_threads=3)
        for level in range(tensor.ndim):
            assert s.level_load_factor(level) == s.engine.level_load_factor(
                level
            )

    def test_stef2_leaf_level_uses_second_engine(self, workload):
        tensor, _, _ = workload
        s2 = Stef2(tensor, 4, machine=INTEL_CLX_18, num_threads=3)
        d = tensor.ndim
        assert s2.level_load_factor(d - 1) == s2.engine2.level_load_factor(0)
        for level in range(d - 1):
            assert s2.level_load_factor(level) == s2.engine.level_load_factor(
                level
            )
