"""CP decomposition driver: Kruskal tensors, initialization, CPD-ALS."""

from .kruskal import KruskalTensor
from .init import hosvd_init, random_init
from .als import AlsResult, als_iteration, cp_als
from .diagnostics import congruence_matrix, corcondia, factor_match_score

__all__ = [
    "KruskalTensor",
    "hosvd_init",
    "random_init",
    "AlsResult",
    "als_iteration",
    "cp_als",
    "congruence_matrix",
    "corcondia",
    "factor_match_score",
]
