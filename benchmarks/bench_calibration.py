"""Extension: calibrate the roofline model against this host's kernels.

Fits the two machine constants (effective bandwidth, effective compute
throughput) to the observed wall-clock of the NumPy kernels and reports
how well the two-resource model explains them.  On this Python substrate
the constants describe the interpreter+NumPy "machine"; the median
relative error quantifies how faithfully the simulated channel's *shape*
carries over to local wall-clock.
"""

import pytest

from common import bench_tensor, emit
from repro.analysis import collect_samples, fit_roofline
from repro.parallel import INTEL_CLX_18

TENSORS = ("uber", "nell-2", "flickr-4d", "vast-2015-mc1-3d")


def test_calibrate_local_machine(benchmark):
    tensors = [(name, bench_tensor(name, nnz=8000)) for name in TENSORS]

    def run():
        samples = collect_samples(
            tensors, 32, INTEL_CLX_18,
            methods=("stef", "splatt-all", "alto"),
            num_threads=4, repeats=2,
        )
        return fit_roofline(samples), samples

    fit, samples = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Roofline calibration of the local (Python/NumPy) machine",
        f"samples: {fit.samples} kernel executions "
        f"({len(TENSORS)} tensors x 3 methods x levels x 2 repeats)",
        f"fitted effective bandwidth: {fit.dram_gbps:.2f} GB/s",
        f"fitted effective compute:   {fit.gflops:.2f} GFLOP/s",
        f"median relative error:      {100 * fit.median_rel_error:.0f}%",
        "",
        "(paper machines for scale: intel-clx-18 = 90 GB/s / 110 GF/s "
        "sustained-irregular; the Python substrate is orders of magnitude "
        "below — which is why figure-shape claims are validated on counted "
        "traffic, not wall-clock)",
    ]
    emit("calibration.txt", "\n".join(lines))

    assert fit.dram_gbps > 0 and fit.gflops > 0
    assert fit.median_rel_error < 5.0  # the model explains the kernels
