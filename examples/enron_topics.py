#!/usr/bin/env python
"""Topic mining on the enron tensor with non-negative CP.

enron (sender x receiver x word x week) is one of Table I's datasets;
its natural analysis is a *non-negative* decomposition: each component
couples a group of senders/receivers with a word distribution — a
"topic".  This example runs projected non-negative ALS with the STeF
backend on the scaled stand-in and reports:

* the heaviest senders/receivers/words per component (`top_slices`-style
  factor inspection),
* the sparsity benefit of non-negativity (many exact zeros in factors),
* observed-entry fit vs the zero-penalizing fit.

Run:  python examples/enron_topics.py
"""

import numpy as np

from repro import TABLE1_SPECS, cp_als, create_engine, generate


def main() -> None:
    tensor = generate(TABLE1_SPECS["enron"], nnz=25_000, seed=0)
    print(f"enron (scaled): shape={tensor.shape} nnz={tensor.nnz}")
    print("values are count-like (lognormal) -> non-negative CP is natural")

    rank = 6
    with create_engine("stef", tensor, rank, num_threads=8) as engine:
        print("\nplanner:", engine.describe())
        result = cp_als(
            tensor, rank, engine=engine, max_iters=20, tol=1e-5, nonneg=True,
        )
    model = result.model
    print(
        f"fit {result.final_fit:.4f} (zeros penalized) | "
        f"observed-only fit {model.fit_observed(tensor):.4f}"
    )

    labels = ("sender", "receiver", "word", "week")
    order = np.argsort(-model.weights)
    for r in order[:3]:
        print(f"\ntopic (weight {model.weights[r]:.1f}):")
        for m, label in enumerate(labels[: tensor.ndim]):
            col = model.factors[m][:, r]
            top = np.argsort(-col)[:4]
            tops = ", ".join(f"{label[0]}{i}" for i in top)
            print(f"  top {label}s: {tops}")

    zero_frac = np.mean(
        [np.mean(f == 0.0) for f in model.factors]
    )
    print(
        f"\nnon-negativity produced {100 * zero_frac:.0f}% exact zeros in "
        f"the factors (sparse, interpretable parts)"
    )
    for f in model.factors:
        assert np.all(f >= 0)


if __name__ == "__main__":
    main()
