"""Table I — the tensor inventory.

Regenerates the table with the *scaled* synthetic instances actually used
by this reproduction next to the paper's dimensions/nnz, and benchmarks
CSF construction (the storage build every method amortizes).
"""

import pytest

from common import BENCH_NNZ, bench_tensor, emit
from repro.tensor import TABLE1_SPECS, CsfTensor


def test_table1_inventory(benchmark):
    benchmark.pedantic(
        lambda: [bench_tensor(n) for n in sorted(TABLE1_SPECS)],
        rounds=1,
        iterations=1,
    )
    lines = [
        f"Table I (scaled to ~{BENCH_NNZ} nnz per tensor)",
        f"{'tensor':22}{'paper dims':>34}{'paper nnz':>12}"
        f"{'scaled dims':>30}{'nnz':>8}",
        "-" * 106,
    ]
    for name in sorted(TABLE1_SPECS):
        spec = TABLE1_SPECS[name]
        t = bench_tensor(name)
        paper_dims = "x".join(str(d) for d in spec.paper_dims)
        scaled_dims = "x".join(str(d) for d in t.shape)
        lines.append(
            f"{name:22}{paper_dims:>34}{spec.paper_nnz:>12}"
            f"{scaled_dims:>30}{t.nnz:>8}"
        )
    emit("table1_tensors.txt", "\n".join(lines))


@pytest.mark.parametrize("name", ["delicious-4d", "vast-2015-mc1-3d", "nell-2"])
def test_csf_build(benchmark, name):
    t = bench_tensor(name)
    benchmark(CsfTensor.from_coo, t)
