"""ALTO baseline: MTTKRP over the linearized bit-interleaved format.

ALTO (Helal et al., ICS 2021) stores non-zeros as a flat array sorted by a
bit-interleaved linear index (:mod:`repro.tensor.alto`).  Its MTTKRP:

* splits the flat array into perfectly equal non-zero partitions — load
  balance is trivial by construction (the property the paper credits for
  ALTO's wins on vast-2015);
* recomputes every mode *from scratch*: for each non-zero, decode its
  coordinates, gather one factor row per non-contracted mode, multiply,
  and scatter — "the work currently computes all mode contractions from
  scratch, and hence has a significantly higher FLOP count" (Section V);
* needs no per-mode tensor reorganization (a single representation serves
  all modes).

Output conflicts between partitions are handled by per-partition
accumulation merged by the coordinator (standing in for ALTO's recursive
reduction).  Traffic accounting charges the linearized-index decode
(8 or 16 bytes per non-zero per mode pass), the values, the factor-row
gathers for all ``d-1`` non-target modes with the cache rule, and the
output scatter.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.csf_kernels import scatter_add_rows
from ..parallel.counters import NULL_COUNTER, ShardedTrafficCounter, TrafficCounter
from ..parallel.executor import SimulatedPool
from ..parallel.machine import MachineSpec
from ..tensor.alto import AltoTensor
from ..tensor.coo import CooTensor

__all__ = ["AltoBackend"]


class AltoBackend:
    """ALTO-format MTTKRP backend (recompute-all-modes policy)."""

    name = "alto"

    def __init__(
        self,
        tensor: CooTensor,
        rank: int,
        *,
        machine: Optional[MachineSpec] = None,
        num_threads: Optional[int] = None,
        backend: str = "serial",
        counter: TrafficCounter = NULL_COUNTER,
    ) -> None:
        self.tensor = tensor
        self.rank = rank
        self.counter = counter
        threads = num_threads if num_threads is not None else (
            machine.num_threads if machine else 1
        )
        self.alto = AltoTensor.from_coo(tensor)
        self.pool = SimulatedPool(threads, backend)
        self.shards = ShardedTrafficCounter.like(counter, threads)
        self.partitions = self.alto.partitions(threads)
        self.mode_order: Tuple[int, ...] = tuple(range(tensor.ndim))
        # Decoded per-mode coordinates are cached: ALTO decodes with a few
        # bit operations per access; the Python stand-in hoists the decode
        # but charges its traffic per use (see _charge).
        self._coords: List[np.ndarray] = [
            self.alto.mode_indices(m) for m in range(tensor.ndim)
        ]

    @property
    def num_threads(self) -> int:
        return self.pool.num_threads

    def mttkrp_level(self, factors: Sequence[np.ndarray], level: int) -> np.ndarray:
        """From-scratch MTTKRP for mode ``level`` over equal-nnz chunks."""
        mode = self.mode_order[level]
        d = self.tensor.ndim
        n_out = self.tensor.shape[mode]
        out = np.zeros((n_out, self.rank))
        vals = self.alto.values
        other = [m for m in range(d) if m != mode]
        self.shards.reset()

        def body(th: int) -> Tuple[int, np.ndarray]:
            lo, hi = self.partitions[th]
            # Per-thread legs, charged race-free to this thread's shard:
            # the linearized-index decode, the values stream and the
            # recompute arithmetic of this partition's non-zeros.
            shard = self.shards.shard(th)
            n = hi - lo
            shard.read(n * (self.alto.index_bits // 64), "structure")
            shard.read(n, "values")
            shard.flop(2.0 * (d - 1) * n * self.rank, "recompute")
            shard.flop(2.0 * self.alto.mask.total_bits * n, "decode")
            acc = vals[lo:hi, None] * np.asarray(factors[other[0]])[
                self._coords[other[0]][lo:hi]
            ]
            for m in other[1:]:
                acc = acc * np.asarray(factors[m])[self._coords[m][lo:hi]]
            return lo, acc

        for lo, acc in self.pool.map(body):
            hi = lo + acc.shape[0]
            scatter_add_rows(out, self._coords[mode][lo:hi], acc)

        self.shards.merge_into(self.counter)
        self._charge(mode, factors)
        return out

    def _charge(self, mode: int, factors: Sequence[np.ndarray]) -> None:
        """Kernel-level legs (per-thread legs are charged in the thread
        bodies): the cache-rule factor gathers and the output scatter."""
        nnz = self.tensor.nnz
        d = self.tensor.ndim
        for m in range(d):
            if m == mode:
                continue
            self.counter.read_factor_rows(
                nnz, self.tensor.shape[m], self.rank, "factor"
            )
        # Scatter-accumulate into the output (atomics or recursive
        # reduction; charged like the tree methods' conflicted outputs).
        self.counter.scatter_update(
            nnz, self.tensor.shape[mode], self.rank, self.num_threads, "output"
        )

    def level_load_factor(self, level: int) -> float:
        """ALTO's flat equal-nnz split is perfectly balanced by
        construction."""
        if self.tensor.nnz == 0:
            return 1.0
        sizes = [hi - lo for lo, hi in self.partitions]
        mean = sum(sizes) / len(sizes)
        return max(sizes) / mean if mean else 1.0

    def tensor_bytes(self) -> int:
        """ALTO storage footprint."""
        return self.alto.footprint_bytes()

    def describe(self) -> str:
        return f"{self.name}: {self.alto.index_bits}-bit linearized indices"
