"""Figure 5 — preprocessing overhead of the mode-order decision.

The swap decision needs Algorithm 9's swapped-order fiber count plus the
model search.  The paper reports the overhead as a percentage of one full
MTTKRP-set execution (all bars below 100%, averaging 19%/25% on
Intel/AMD at R=32 and 10%/14% at R=64).

Regenerates the per-tensor overhead bars for both machines and both
ranks, and pytest-benchmarks Algorithm 9 itself (serial and threaded).
"""

import time

import pytest

from common import bench_suite, bench_tensor, emit
from repro.analysis import measure_method
from repro.core import count_swapped_fibers, count_swapped_fibers_threaded, plan_decomposition
from repro.parallel import AMD_TR_64, INTEL_CLX_18
from repro.tensor import CsfTensor


def _preprocessing_seconds(csf, rank, machine):
    t0 = time.perf_counter()
    plan_decomposition(csf, rank, machine)
    return time.perf_counter() - t0


@pytest.mark.parametrize("machine", [INTEL_CLX_18, AMD_TR_64], ids=lambda m: m.name)
def test_figure5_overhead(benchmark, machine):
    tensors = {
        name: t for name, t in bench_suite().items() if t.ndim >= 3
    }
    rows = {}

    def run():
        for name, tensor in tensors.items():
            csf = CsfTensor.from_coo(tensor)
            row = {}
            for rank in (32, 64):
                pre = _preprocessing_seconds(csf, rank, machine)
                mset = measure_method(
                    "stef", tensor, rank, machine,
                    num_threads=4, tensor_name=name,
                )
                row[f"R{rank} overhead %"] = 100.0 * pre / mset.wall_seconds
            rows[name] = row
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.analysis import format_table

    lines = [
        format_table(
            rows,
            ["R32 overhead %", "R64 overhead %"],
            title=(
                f"Figure 5 — preprocessing overhead as % of one MTTKRP set "
                f"({machine.name}, wall-clock channel)"
            ),
            fmt="{:8.1f}",
            col_width=16,
        )
    ]
    avg32 = sum(r["R32 overhead %"] for r in rows.values()) / len(rows)
    avg64 = sum(r["R64 overhead %"] for r in rows.values()) / len(rows)
    lines.append(f"\naverage overhead: R=32 {avg32:.1f}%   R=64 {avg64:.1f}%")
    emit(f"fig5_preprocessing_{machine.name}.txt", "\n".join(lines))


@pytest.mark.parametrize("name", ["delicious-4d", "nell-1", "vast-2015-mc1-5d"])
def test_algorithm9_serial(benchmark, name):
    csf = CsfTensor.from_coo(bench_tensor(name))
    benchmark(count_swapped_fibers, csf)


@pytest.mark.parametrize("threads", [1, 4, 16])
def test_algorithm9_threaded(benchmark, threads):
    csf = CsfTensor.from_coo(bench_tensor("delicious-4d"))
    benchmark(count_swapped_fibers_threaded, csf, threads)
