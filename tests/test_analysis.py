"""Tests for the analysis layer: harness, reports, traffic validation."""

import numpy as np
import pytest

from repro.analysis import (
    compare_strategies,
    format_table,
    geomean_speedups,
    geometric_mean,
    measure_method,
    model_vs_measured,
    ranking_agreement,
    relative_performance,
    run_comparison,
)
from repro.analysis.traffic import ConfigTraffic
from repro.parallel import INTEL_CLX_18
from repro.tensor import CsfTensor, random_tensor


@pytest.fixture(scope="module")
def small_tensor():
    return random_tensor((12, 10, 8, 6), nnz=400, seed=23)


class TestMeasureMethod:
    def test_measurement_fields(self, small_tensor):
        m = measure_method(
            "stef", small_tensor, 4, INTEL_CLX_18, num_threads=4,
            tensor_name="toy",
        )
        assert m.method == "stef"
        assert m.tensor_name == "toy"
        assert len(m.levels) == small_tensor.ndim
        assert m.traffic_total > 0
        assert m.simulated_seconds > 0
        assert m.wall_seconds > 0

    def test_per_level_modes_cover_all(self, small_tensor):
        m = measure_method("splatt-all", small_tensor, 4, INTEL_CLX_18, num_threads=2)
        assert sorted(lc.mode for lc in m.levels) == list(range(4))

    def test_backend_kwargs_forwarded(self, small_tensor):
        from repro.core import MemoPlan

        m = measure_method(
            "stef", small_tensor, 4, INTEL_CLX_18, num_threads=2,
            backend_kwargs={"plan": MemoPlan((1,))},
        )
        assert m.traffic_total > 0


class TestRunComparison:
    @pytest.fixture(scope="class")
    def grid(self, small_tensor):
        return run_comparison(
            {"toy": small_tensor},
            rank=4,
            machine=INTEL_CLX_18,
            methods=("stef", "splatt-1", "splatt-all"),
            num_threads=4,
        )

    def test_grid_structure(self, grid):
        assert set(grid) == {"toy"}
        assert set(grid["toy"]) == {"stef", "splatt-1", "splatt-all"}

    def test_relative_performance_baseline_is_one(self, grid):
        rel = relative_performance(grid)
        assert np.isclose(rel["toy"]["splatt-all"], 1.0)

    def test_wall_channel(self, grid):
        rel = relative_performance(grid, channel="wall")
        assert all(v > 0 for v in rel["toy"].values())

    def test_missing_baseline_raises(self, small_tensor):
        with pytest.raises(ValueError, match="baseline"):
            run_comparison(
                {"toy": small_tensor}, 4, INTEL_CLX_18, methods=("stef",)
            )


class TestReportHelpers:
    def test_geometric_mean(self):
        assert np.isclose(geometric_mean([1, 4]), 2.0)
        assert np.isnan(geometric_mean([]))
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_geomean_speedups(self):
        rel = {
            "a": {"stef": 2.0, "alto": 1.0},
            "b": {"stef": 8.0, "alto": 2.0},
        }
        sp = geomean_speedups(rel, "stef", ["alto"])
        assert np.isclose(sp["alto"], np.sqrt(2.0 * 4.0))

    def test_format_table(self):
        rows = {"x": {"m1": 1.0, "m2": 2.0}}
        text = format_table(rows, ["m1", "m2"], title="T")
        assert "T" in text and "x" in text and "2.000" in text

    def test_format_table_missing_cell(self):
        text = format_table({"x": {"m1": 1.0}}, ["m1", "m2"])
        assert "-" in text


class TestTrafficValidation:
    def test_model_vs_measured_entries(self, small_tensor):
        csf = CsfTensor.from_coo(small_tensor)
        entries = model_vs_measured(csf, 4, INTEL_CLX_18, num_threads=2)
        assert len(entries) == 4  # 2^(4-2) plans
        for e in entries:
            assert e.predicted > 0 and e.measured > 0

    def test_ranking_agreement_strong(self, small_tensor):
        """The model and the counted traffic must largely agree on which
        plans are cheaper — the property the paper's selection relies on."""
        csf = CsfTensor.from_coo(small_tensor)
        entries = model_vs_measured(csf, 16, INTEL_CLX_18, num_threads=2)
        assert ranking_agreement(entries) >= 0.3

    def test_ranking_agreement_edge_cases(self):
        assert ranking_agreement([]) == 1.0
        e = [
            ConfigTraffic((), 1.0, 1.0),
            ConfigTraffic((1,), 2.0, 2.0),
        ]
        assert ranking_agreement(e) == 1.0
        rev = [
            ConfigTraffic((), 1.0, 2.0),
            ConfigTraffic((1,), 2.0, 1.0),
        ]
        assert ranking_agreement(rev) == -1.0


class TestCompareStrategies:
    def test_summary(self, small_tensor):
        csf = CsfTensor.from_coo(small_tensor)
        cmp = compare_strategies(csf, 4)
        rows = cmp.summary_rows()
        assert set(rows) == {"nnz", "slice"}
        assert rows["nnz"]["imbalance_pct"] <= rows["slice"]["imbalance_pct"] + 1e-9
