"""Interprocedural dataflow analyses (``repro lint --flow``).

Importing this package registers the project-scope rules:

* :mod:`.traffic` — ``flow.traffic-conformance``
* :mod:`.typestate` — ``flow.buffer-typestate``, ``flow.arena-typestate``
* :mod:`.jit` — ``flow.jit-readiness``

on top of the shared machinery:

* :mod:`.cfg` — statement CFGs with dominators/postdominators
* :mod:`.callgraph` — import-aware call graph incl. ``pool.map`` dispatch
* :mod:`.facts` — per-function charge/access/lifecycle facts
* :mod:`.analysis` — :class:`~.analysis.FlowAnalysis`, the per-run cache

These rules carry ``scope = "project"``: they see every linted file at
once (they need the call graph) and only run under ``--flow`` or when
selected explicitly.  DESIGN.md §9 documents the architecture.
"""

from . import jit, traffic, typestate
from .analysis import FlowAnalysis

__all__ = ["FlowAnalysis", "jit", "traffic", "typestate"]
