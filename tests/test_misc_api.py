"""Coverage for small public APIs not exercised elsewhere."""

import numpy as np
import pytest

from repro.parallel import SimulatedPool, TrafficCounter
from repro.parallel.executor import run_partitioned
from repro.tensor import CooTensor, CsfTensor, random_tensor


class TestRunPartitioned:
    def test_runs_body_per_thread(self):
        pool = SimulatedPool(5)
        results = run_partitioned(pool, lambda th: th**2)
        assert results == [0, 1, 4, 9, 16]


class TestCounterMergeFlops:
    def test_flops_merge(self):
        a, b = TrafficCounter(), TrafficCounter()
        a.flop(100, "x")
        b.flop(50, "x")
        b.flop(25, "y")
        a.merge(b)
        assert a.flops == 175
        assert a.by_category["f:x"] == 150
        assert a.by_category["f:y"] == 25

    def test_reset_clears_flops(self):
        c = TrafficCounter()
        c.flop(10)
        c.reset()
        assert c.flops == 0

    def test_snapshot_includes_flops(self):
        c = TrafficCounter()
        c.flop(7)
        assert c.snapshot()["flops"] == 7


class TestCsfSmallApis:
    def test_num_children(self, csf4):
        for lvl in range(csf4.ndim - 1):
            counts = csf4.num_children(lvl)
            assert counts.sum() == csf4.fiber_counts[lvl + 1]
            assert np.all(counts >= 1)

    def test_repr(self, csf4, coo4):
        assert "CsfTensor" in repr(csf4)
        assert "CooTensor" in repr(coo4)

    def test_hicoo_repr(self, coo4):
        from repro.tensor import HicooTensor

        assert "HicooTensor" in repr(HicooTensor.from_coo(coo4))


class TestPoolRepr:
    def test_repr(self):
        assert "SimulatedPool" in repr(SimulatedPool(2))


class TestStefDescribeVariants:
    def test_stef2_describe_mentions_second_csf(self, coo4):
        from repro.core import Stef2

        s = Stef2(coo4, 3, num_threads=2)
        assert "csf2" in s.describe()

    def test_splatt_describes(self, coo4):
        from repro.baselines import Splatt1, Splatt2, SplattAll

        assert "splatt-1" in Splatt1(coo4, 2).describe()
        assert "splatt-2" in Splatt2(coo4, 2).describe()
        assert "CSF copies" in SplattAll(coo4, 2).describe()


class TestPartialTensorToDense:
    def test_to_dense_shape(self, coo4):
        from repro.ops import ttm_last_mode
        from tests.conftest import make_factors

        fac = make_factors(coo4.shape, 2, seed=0)
        p = ttm_last_mode(coo4, fac[3], [0, 1, 2, 3])
        assert p.to_dense().shape == coo4.shape[:3] + (2,)


class TestModelBreakdownProperties:
    def test_totals(self):
        from repro.core import DataMovementModel, SAVE_NONE, TensorStats

        st = TensorStats((5, 20, 50), (8, 32, 64), (0, 1, 2))
        model = DataMovementModel(st, 4)
        bd = model.breakdown(SAVE_NONE)
        assert bd.total == bd.total_reads + bd.total_writes
        assert len(bd.writes_per_mode) == 3


class TestConfigurationDescribe:
    def test_describe_fields(self, csf4):
        from repro.core import plan_decomposition

        d = plan_decomposition(csf4, 4)
        text = d.configurations[-1].describe()
        assert "order=" in text and "traffic=" in text
