"""Compressed Sparse Fiber (CSF) storage.

The CSF format (Smith et al., SPLATT) stores a sparse tensor as a forest:
level ``i`` of the tree corresponds to mode ``mode_order[i]`` and holds one
node per distinct *fiber prefix*.  Each internal node records the index of
its fiber in that mode plus a pointer range delimiting its children on the
next level; leaves additionally carry the non-zero values.

This module provides:

* :class:`CsfTensor` — immutable CSF built from a :class:`~repro.tensor.coo.CooTensor`
  in any mode order, with the per-level arrays used by every kernel in
  :mod:`repro.core`:

  - ``idx[i]`` — ``(m_i,)`` fiber indices at level ``i``,
  - ``ptr[i]`` — ``(m_i + 1,)`` child ranges into level ``i+1`` (for
    ``i < d-1``),
  - ``values`` — ``(nnz,)`` leaf values.

* ``find_parent`` — the ``find_parent_CSF`` primitive of Algorithm 3 (thread
  start discovery), vectorized over query positions.

* fiber counts ``m_i`` and byte-footprint accounting, both inputs to the
  Section IV data-movement model.

Vectorized construction
-----------------------
The builder never loops over non-zeros.  For each level it detects "new
fiber starts" on the lexicographically sorted index stream with a single
vectorized comparison, then compresses with ``flatnonzero``/``searchsorted``.
This is the same strategy SPLATT's ``csf_alloc`` uses, expressed in NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from .coo import CooTensor

__all__ = ["CsfTensor", "default_mode_order"]


def default_mode_order(shape: Sequence[int]) -> Tuple[int, ...]:
    """The common CSF heuristic: sort modes by increasing length.

    Ties are broken by original mode number so the order is deterministic.
    The paper uses this ordering as the base configuration and then decides
    whether to swap the *last two* modes (Section II-E).
    """
    return tuple(sorted(range(len(shape)), key=lambda m: (shape[m], m)))


@dataclass(frozen=True)
class CsfTensor:
    """A sparse tensor stored as a Compressed Sparse Fiber tree.

    Attributes
    ----------
    mode_order:
        ``mode_order[i]`` is the original tensor mode stored at tree level
        ``i`` (level 0 = root/slice mode, level ``d-1`` = leaf mode).
    idx:
        Per-level fiber index arrays; ``idx[i][n]`` is the coordinate (in
        mode ``mode_order[i]``) of node ``n`` at level ``i``.
    ptr:
        Per-level child pointers; children of node ``n`` at level ``i``
        occupy ``idx[i+1][ptr[i][n]:ptr[i][n+1]]``.  ``len(ptr) == d - 1``.
    values:
        Leaf values aligned with ``idx[d-1]``.
    shape:
        Dense extents in the *original* mode numbering.
    """

    mode_order: Tuple[int, ...]
    idx: List[np.ndarray]
    ptr: List[np.ndarray]
    values: np.ndarray
    shape: Tuple[int, ...]
    # Cached fiber counts (m_i in the paper); derived, not part of identity.
    _fiber_counts: Tuple[int, ...] = field(default=(), compare=False)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls, coo: CooTensor, mode_order: Sequence[int] | None = None
    ) -> "CsfTensor":
        """Build a CSF tree from a COO tensor in ``mode_order``.

        When ``mode_order`` is omitted the increasing-mode-length heuristic
        of :func:`default_mode_order` is used.
        """
        if mode_order is None:
            mode_order = default_mode_order(coo.shape)
        mode_order = tuple(int(m) for m in mode_order)
        d = coo.ndim
        if sorted(mode_order) != list(range(d)):
            raise ValueError(f"{mode_order} is not a permutation of 0..{d - 1}")

        coo = coo.sorted_by(mode_order)
        nnz = coo.nnz
        stream = coo.indices[list(mode_order)]  # (d, nnz) in level order

        if nnz == 0:
            idx = [np.empty(0, dtype=np.int64) for _ in range(d)]
            ptr = [np.zeros(1, dtype=np.int64) for _ in range(d - 1)]
            return cls(
                mode_order, idx, ptr, np.empty(0, dtype=np.float64), coo.shape,
                tuple(0 for _ in range(d)),
            )

        # new_fiber[i][p] is True when non-zero p starts a new fiber at
        # level i, i.e. its prefix (levels 0..i) differs from p-1's.
        idx: List[np.ndarray] = [None] * d  # type: ignore[list-item]
        ptr: List[np.ndarray] = [None] * (d - 1)  # type: ignore[list-item]
        fiber_counts: List[int] = [0] * d

        # prefix_change accumulates "differs at or above this level".
        prefix_change = np.zeros(nnz, dtype=bool)
        prefix_change[0] = True
        starts_per_level: List[np.ndarray] = []
        for i in range(d):
            if i < d - 1:
                level_diff = np.empty(nnz, dtype=bool)
                level_diff[0] = True
                level_diff[1:] = stream[i, 1:] != stream[i, :-1]
                prefix_change = prefix_change | level_diff
                starts = np.flatnonzero(prefix_change)
            else:
                # Leaf level: every non-zero is a node.
                starts = np.arange(nnz, dtype=np.int64)
            starts_per_level.append(starts)
            idx[i] = stream[i, starts].copy()
            fiber_counts[i] = int(starts.size)

        # ptr[i] maps level-i node n to its child range at level i+1: the
        # children are the level-(i+1) starts lying inside node n's nnz span.
        for i in range(d - 1):
            spans = np.append(starts_per_level[i], nnz)
            ptr[i] = np.searchsorted(starts_per_level[i + 1], spans).astype(np.int64)

        return cls(
            mode_order, idx, ptr, coo.values.copy(), coo.shape,
            tuple(fiber_counts),
        )

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of modes / tree depth."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros (leaf count)."""
        return self.values.shape[0]

    @property
    def fiber_counts(self) -> Tuple[int, ...]:
        """``m_i`` for every level: the number of fibers (tree nodes)."""
        if self._fiber_counts:
            return self._fiber_counts
        return tuple(int(a.shape[0]) for a in self.idx)

    def level_shape(self, level: int) -> int:
        """Dense extent of the mode stored at ``level``."""
        return self.shape[self.mode_order[level]]

    def num_children(self, level: int) -> np.ndarray:
        """Per-node child counts at ``level`` (valid for ``level < d-1``)."""
        return np.diff(self.ptr[level])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CsfTensor(order={self.mode_order}, shape={self.shape}, "
            f"fibers={self.fiber_counts})"
        )

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    def find_parent(self, level: int, positions: np.ndarray | int) -> np.ndarray:
        """``find_parent_CSF`` of Algorithm 3, vectorized.

        Maps positions at ``level + 1`` to the index of the owning node at
        ``level``:  ``parent = max{n : ptr[level][n] <= pos}``.

        Accepts positions equal to ``m_{level+1}`` (one-past-the-end), which
        map to ``m_level`` — convenient for converting *exclusive* thread
        end boundaries.
        """
        pos = np.atleast_1d(np.asarray(positions, dtype=np.int64))
        if level < 0 or level >= self.ndim - 1:
            raise ValueError(f"level {level} has no child level")
        # ptr is non-decreasing with ptr[0] == 0; a position p belongs to the
        # node n with ptr[n] <= p < ptr[n+1].  side="right" makes exact hits
        # on ptr[n] resolve to n, and p == nnz resolves to m_level
        # (one-past-the-end), which Algorithm 3 uses for the final thread.
        return np.searchsorted(self.ptr[level], pos, side="right") - 1

    def leaf_span(self, level: int, node: int) -> Tuple[int, int]:
        """Half-open leaf (non-zero) range covered by ``node`` at ``level``."""
        lo, hi = int(node), int(node) + 1
        for i in range(level, self.ndim - 1):
            lo = int(self.ptr[i][lo])
            hi = int(self.ptr[i][hi])
        return lo, hi

    def expand_to_level(self, src_level: int, dst_level: int, arr: np.ndarray) -> np.ndarray:
        """Repeat a per-node array at ``src_level`` so it aligns with nodes
        at the deeper ``dst_level`` (each node's value is copied to all of
        its descendants).  Used by the downward (k-vector) sweep."""
        if dst_level < src_level:
            raise ValueError("dst_level must be >= src_level")
        out = arr
        for i in range(src_level, dst_level):
            out = np.repeat(out, self.num_children(i), axis=0)
        return out

    # ------------------------------------------------------------------
    # conversions & accounting
    # ------------------------------------------------------------------
    def to_coo(self) -> CooTensor:
        """Reconstruct the COO tensor (original mode numbering)."""
        d = self.ndim
        cols = [self.expand_to_level(i, d - 1, self.idx[i]) for i in range(d)]
        level_idx = np.vstack(cols)
        # Undo the mode permutation.
        original = np.empty_like(level_idx)
        for lvl, mode in enumerate(self.mode_order):
            original[mode] = level_idx[lvl]
        return CooTensor.from_arrays(
            original, self.values, self.shape, sum_duplicates=False
        )

    def index_bytes(self) -> int:
        """Bytes used by the structural (idx + ptr) arrays."""
        total = sum(a.nbytes for a in self.idx)
        total += sum(p.nbytes for p in self.ptr)
        return int(total)

    def value_bytes(self) -> int:
        """Bytes used by the leaf value array."""
        return int(self.values.nbytes)

    def total_bytes(self) -> int:
        """Total CSF footprint in bytes."""
        return self.index_bytes() + self.value_bytes()

    # ------------------------------------------------------------------
    # reordered views
    # ------------------------------------------------------------------
    def with_mode_order(self, mode_order: Sequence[int]) -> "CsfTensor":
        """Rebuild the CSF in a different mode order (via COO round-trip)."""
        return CsfTensor.from_coo(self.to_coo(), mode_order)

    def swapped_last_two(self) -> "CsfTensor":
        """Rebuild with the last two levels exchanged (Section II-E)."""
        order = list(self.mode_order)
        order[-1], order[-2] = order[-2], order[-1]
        return self.with_mode_order(order)
