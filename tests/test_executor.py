"""Unit tests for the simulated pool and boundary-replicated buffers."""

import numpy as np
import pytest

from repro.parallel import ReplicatedArray, SimulatedPool


class TestSimulatedPool:
    def test_serial_order(self):
        pool = SimulatedPool(4, "serial")
        assert pool.map(lambda th: th * 2) == [0, 2, 4, 6]

    def test_threads_backend(self):
        pool = SimulatedPool(4, "threads")
        assert pool.map(lambda th: th * th) == [0, 1, 4, 9]

    def test_invalid_backend_raises(self):
        with pytest.raises(ValueError):
            SimulatedPool(2, "mpi")

    def test_invalid_threads_raise(self):
        with pytest.raises(ValueError):
            SimulatedPool(0)


class TestReplicatedArray:
    def test_buffer_shape_is_n_plus_t(self):
        rep = ReplicatedArray(10, 4, 3)
        assert rep.buffer.shape == (13, 4)
        assert rep.nbytes == 13 * 4 * 8

    def test_disjoint_writes_merge_exactly(self):
        rep = ReplicatedArray(6, 2, 2)
        rep.view(0, 0, 3)[:] = 1.0
        rep.view(1, 3, 6)[:] = 2.0
        merged = rep.merge()
        assert np.allclose(merged[:3], 1.0)
        assert np.allclose(merged[3:], 2.0)

    def test_shared_boundary_row_sums(self):
        # Both threads contribute to row 3 (the boundary node).
        rep = ReplicatedArray(6, 2, 2)
        rep.view(0, 0, 4)[:] += 1.0  # rows 0..3 from thread 0
        rep.view(1, 3, 6)[:] += 2.0  # rows 3..5 from thread 1
        merged = rep.merge()
        assert np.allclose(merged[3], 3.0)  # 1 + 2
        assert np.allclose(merged[:3], 1.0)
        assert np.allclose(merged[4:], 2.0)

    def test_shifted_slots_never_collide(self):
        # Thread th writes nodes [a_th, b_th] with b_th == a_{th+1}; the
        # underlying buffer slots must all be distinct.
        n, t = 20, 5
        rep = ReplicatedArray(n, 1, t)
        bounds = [0, 4, 9, 13, 17, n]
        slots = set()
        for th in range(t):
            lo, hi = bounds[th], min(bounds[th + 1] + 1, n)
            for node in range(lo, hi):
                slot = node + th
                assert slot not in slots or node == bounds[th]  # boundary only
            rep.view(th, lo, hi)[:] += 1.0
        merged = rep.merge()
        # Interior rows touched once, boundary rows twice.
        expected = np.ones(n)
        for b in bounds[1:-1]:
            expected[b] = 2.0
        assert np.allclose(merged[:, 0], expected)

    def test_merge_into_accumulates(self):
        rep = ReplicatedArray(4, 2, 1)
        rep.view(0, 0, 4)[:] = 1.0
        target = np.full((4, 2), 10.0)
        rep.merge_into(target)
        assert np.allclose(target, 11.0)

    def test_merge_into_shape_check(self):
        rep = ReplicatedArray(4, 2, 1)
        with pytest.raises(ValueError):
            rep.merge_into(np.zeros((3, 2)))

    def test_view_bounds_checked(self):
        rep = ReplicatedArray(4, 2, 2)
        with pytest.raises(ValueError):
            rep.view(0, 0, 5)
        with pytest.raises(ValueError):
            rep.view(2, 0, 1)

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            ReplicatedArray(-1, 2, 1)
        with pytest.raises(ValueError):
            ReplicatedArray(4, 0, 1)


class TestReplicatedArrayLifecycle:
    def test_reset_clears_written_stripes(self):
        rep = ReplicatedArray(6, 2, 2)
        rep.view(0, 0, 3)[:] = 1.0
        rep.view(1, 3, 6)[:] = 2.0
        rep.reset()
        assert np.all(rep.buffer == 0.0)
        assert np.allclose(rep.merge(), 0.0)

    def test_reuse_after_reset_matches_fresh(self):
        reused = ReplicatedArray(8, 3, 3)
        reused.view(0, 0, 4)[:] = 5.0
        reused.view(1, 4, 8)[:] = 7.0
        reused.reset()
        fresh = ReplicatedArray(8, 3, 3)
        for rep in (reused, fresh):
            rep.view(0, 0, 3)[:] += 1.0
            rep.view(1, 2, 6)[:] += 2.0  # boundary row 2 shared
            rep.view(2, 6, 8)[:] += 3.0
        assert np.array_equal(reused.merge(), fresh.merge())

    def test_repeat_view_without_reset_rejected(self):
        rep = ReplicatedArray(6, 2, 2)
        rep.view(0, 0, 3)
        with pytest.raises(ValueError, match="reset"):
            rep.view(0, 0, 3)

    def test_partial_overlap_same_thread_rejected(self):
        rep = ReplicatedArray(10, 2, 2)
        rep.view(0, 0, 5)
        with pytest.raises(ValueError, match="overlap"):
            rep.view(0, 4, 8)

    def test_disjoint_same_thread_views_allowed(self):
        # The same thread may take multiple views as long as they are
        # disjoint (e.g. one kernel writing two separate node ranges).
        rep = ReplicatedArray(10, 2, 2)
        rep.view(0, 0, 3)[:] = 1.0
        rep.view(0, 5, 8)[:] = 2.0
        merged = rep.merge()
        assert np.allclose(merged[:3], 1.0)
        assert np.allclose(merged[5:8], 2.0)

    def test_different_threads_may_share_boundary(self):
        # Cross-thread overlap at a boundary node is the whole point of
        # replication; only same-thread overlap is a bug.
        rep = ReplicatedArray(6, 2, 2)
        rep.view(0, 0, 4)[:] = 1.0
        rep.view(1, 3, 6)[:] = 1.0  # row 3 shared with thread 0
        assert np.allclose(rep.merge()[3], 2.0)

    def test_empty_view_needs_no_reset(self):
        rep = ReplicatedArray(6, 2, 3)
        rep.view(1, 2, 2)
        rep.view(1, 2, 2)  # empty ranges record nothing
        rep.view(1, 0, 6)[:] = 1.0
        assert np.allclose(rep.merge(), 1.0)
