"""Extension: thread-scaling study (the mechanism behind Figs. 2-4).

The paper's machines differ mainly in thread count (18 vs 64); the
slice-starved tensors lose more ground as threads grow.  This bench
sweeps the simulated thread count on the vast-2015 stress tensor and on a
well-behaved tensor (flickr-4d) and prints speedup-over-1-thread curves
for STeF (nnz-balanced), splatt-all (slice) and ALTO (flat):

* on vast, slice scheduling saturates at 2 threads while STeF/ALTO keep
  scaling;
* on flickr, all three scale (slices are plentiful), reproducing the
  paper's observation that slice parallelism suffices there.
"""

import os
import time

import numpy as np
import pytest

from common import bench_tensor, emit
from repro.analysis import measure_method
from repro.core import MemoPlan, MemoizedMttkrp
from repro.parallel import AMD_TR_64
from repro.tensor import CsfTensor

THREAD_SWEEP = (1, 2, 4, 8, 16, 32, 64)
METHODS = ("stef", "splatt-all", "alto")

#: Thread count and nnz budget for the wall-clock executor-backend arm.
EXEC_THREADS = 4
EXEC_NNZ = int(os.environ.get("REPRO_BENCH_EXEC_NNZ", "400000"))


@pytest.mark.parametrize("name", ["vast-2015-mc1-3d", "flickr-4d"])
def test_thread_scaling(benchmark, name):
    tensor = bench_tensor(name, nnz=8000)

    def run():
        curves = {}
        for method in METHODS:
            times = {}
            for t in THREAD_SWEEP:
                m = measure_method(
                    method, tensor, 32, AMD_TR_64,
                    num_threads=t, tensor_name=name,
                )
                times[t] = m.simulated_seconds
            curves[method] = {
                t: times[1] / times[t] for t in THREAD_SWEEP
            }
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Thread scaling on {name} (speedup over 1 thread, simulated)"]
    header = "threads".ljust(12) + "".join(f"{t:>8}" for t in THREAD_SWEEP)
    lines.append(header)
    lines.append("-" * len(header))
    for method, curve in curves.items():
        lines.append(
            method.ljust(12)
            + "".join(f"{curve[t]:8.2f}" for t in THREAD_SWEEP)
        )
    emit(f"scaling_threads_{name}.txt", "\n".join(lines))

    if name == "vast-2015-mc1-3d":
        # Slice scheduling cannot use more than the 2 root slices.
        assert curves["splatt-all"][64] < 3.0
        assert curves["stef"][64] > 3.0 * curves["splatt-all"][64]


def _time_exec_backend(csf, factors, rank, backend, reps=3):
    """Best-of-``reps`` wall-clock for one full MTTKRP iteration."""
    engine = MemoizedMttkrp(
        csf, rank, plan=MemoPlan((1,)), num_threads=EXEC_THREADS,
        exec_backend=backend,
    )
    try:
        list(engine.iteration_results(factors))  # warmup: pools, shm, memo
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            list(engine.iteration_results(factors))
            best = min(best, time.perf_counter() - t0)
        return best
    finally:
        engine.close()


def test_exec_backend_wall_clock(benchmark):
    """The processes arm: *real* wall-clock (not simulated traffic) of the
    memoized engine under each execution backend at ``T=4``.

    The threads backend is GIL-bound on the Python-level sweep loops; the
    processes backend forks workers that never share a GIL, so on a host
    with ``>= EXEC_THREADS`` cores it must beat serial by at least 1.5x.
    On starved hosts (CI containers often pin one core) genuine
    parallel speedup is physically impossible, so the bench records the
    measured overhead instead and only bounds it.
    """
    tensor = bench_tensor("flickr-4d", nnz=EXEC_NNZ)
    csf = CsfTensor.from_coo(tensor)
    rank = 32
    rng = np.random.default_rng(0)
    factors = [rng.standard_normal((n, rank)) for n in tensor.shape]

    def run():
        return {
            backend: _time_exec_backend(csf, factors, rank, backend)
            for backend in ("serial", "threads", "processes")
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    cores = len(os.sched_getaffinity(0))
    lines = [
        f"Execution-backend wall clock (flickr-4d, nnz={EXEC_NNZ}, "
        f"rank={rank}, T={EXEC_THREADS}, host cores={cores})",
        "backend".ljust(12) + f"{'seconds':>10}{'speedup':>10}",
        "-" * 32,
    ]
    for backend, t in times.items():
        lines.append(
            backend.ljust(12) + f"{t:10.3f}{times['serial'] / t:10.2f}"
        )
    if cores < EXEC_THREADS:
        lines.append(
            f"(host exposes {cores} core(s) < T={EXEC_THREADS}: parallel "
            "speedup not measurable; recording dispatch overhead only)"
        )
    emit("scaling_exec_backends.txt", "\n".join(lines))

    speedup = times["serial"] / times["processes"]
    if cores >= EXEC_THREADS:
        # Acceptance: genuine multicore wall-clock win.
        assert speedup > 1.5, times
    else:
        # Single-core host: the backend cannot be faster, but its
        # dispatch + shm overhead must stay bounded.
        assert speedup > 0.5, times
