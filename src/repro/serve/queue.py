"""Priority job queue with backpressure and per-client admission limits.

The queue is the server's *admission control* point, not just a buffer:

* **priority** — jobs pop in ``(priority, submission order)`` order, so
  a low-priority bulk batch cannot starve an interactive request, and
  equal priorities stay FIFO (heapq on a monotone sequence number).
* **backpressure** — a hard ``max_depth``: once the backlog is full the
  server *refuses* the submit (``queue-full``, retryable) instead of
  buffering without bound.  Unbounded acceptance just moves the failure
  from the client's retry loop to the server's memory.
* **per-client limits** — each client name may hold at most
  ``per_client`` jobs in flight (queued + running).  One greedy client
  saturating the workers is a rate-limit error (``client-limit``) for
  that client while others keep submitting.

All methods run on the server's event loop thread, so the only
synchronization needed is the ``asyncio.Condition`` that parks the
dispatcher while the queue is empty.  Jobs cancelled while queued are
skipped lazily at pop time (heap surgery is not worth it at these
depths).
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Dict, List, Tuple

from .jobs import CANCELLED, Job

__all__ = ["ClientLimitExceeded", "JobQueue", "QueueFull"]


class QueueFull(Exception):
    """The backlog reached ``max_depth``; the submit was refused."""


class ClientLimitExceeded(Exception):
    """The submitting client already has ``per_client`` jobs in flight."""


class JobQueue:
    def __init__(self, max_depth: int = 64, per_client: int = 16) -> None:
        self.max_depth = max_depth
        self.per_client = per_client
        self._heap: List[Tuple[int, int, Job]] = []
        self._seq = 0
        self._in_flight: Dict[str, int] = {}
        self._cond = asyncio.Condition()
        # Lifetime counters for the stats endpoint.
        self.submitted = 0
        self.refused_full = 0
        self.refused_client = 0
        self.max_depth_seen = 0

    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Jobs waiting to run (cancelled-but-unpopped entries excluded)."""
        return sum(1 for _, _, job in self._heap if job.state != CANCELLED)

    def in_flight(self, client: str) -> int:
        return self._in_flight.get(client, 0)

    # ------------------------------------------------------------------
    async def push(self, job: Job, *, force: bool = False) -> None:
        """Admit a job, or raise the applicable admission error.

        ``force=True`` skips admission checks — used only when replaying
        journaled jobs on restart, which were already admitted once.
        """
        async with self._cond:
            client = job.spec.client
            if not force:
                if self.depth() >= self.max_depth:
                    self.refused_full += 1
                    raise QueueFull(
                        f"queue depth {self.max_depth} reached; retry later"
                    )
                if self._in_flight.get(client, 0) >= self.per_client:
                    self.refused_client += 1
                    raise ClientLimitExceeded(
                        f"client {client!r} already has {self.per_client} "
                        f"jobs in flight"
                    )
            self._seq += 1
            heapq.heappush(self._heap, (job.spec.priority, self._seq, job))
            self._in_flight[client] = self._in_flight.get(client, 0) + 1
            self.submitted += 1
            self.max_depth_seen = max(self.max_depth_seen, self.depth())
            self._cond.notify()

    async def pop(self) -> Job:
        """Next runnable job, parking until one is available.

        Cancelled entries are dropped here (their in-flight slot is
        released) rather than dug out of the heap at cancel time.
        """
        async with self._cond:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.state == CANCELLED:
                        self.release(job)
                        continue
                    return job
                await self._cond.wait()

    def release(self, job: Job) -> None:
        """Return a finished (or cancelled) job's per-client slot."""
        client = job.spec.client
        count = self._in_flight.get(client, 0) - 1
        if count <= 0:
            self._in_flight.pop(client, None)
        else:
            self._in_flight[client] = count

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        return {
            "queue.depth": float(self.depth()),
            "queue.max_depth": float(self.max_depth),
            "queue.max_depth_seen": float(self.max_depth_seen),
            "queue.submitted": float(self.submitted),
            "queue.refused_full": float(self.refused_full),
            "queue.refused_client": float(self.refused_client),
        }
