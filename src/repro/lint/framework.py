"""The AST lint framework: rules, per-file context, suppressions, reports.

The invariants that keep the threads backend race-free and the traffic
channel honest (DESIGN.md §8/§9) are conventions a one-line refactor can
break without any small-scale test noticing.  This framework walks the
repository's own source as ASTs and checks those invariants mechanically:

* a **rule registry** (:func:`register` / :func:`all_rules`) — each rule is
  a small class with an ``id``, a paper reference, and a ``check(ctx)``
  generator over :class:`Finding`;
* a **per-file context** (:class:`FileContext`) — parsed tree, source
  lines, and the suppression table;
* **suppressions** — append ``# lint: disable=<rule>[,<rule>...]`` to a
  line to silence specific rules there, put
  ``# lint: disable-next-line=<rule>`` on the line *above* the finding,
  or put ``# lint: disable-file=<rule>`` anywhere in a file to allowlist
  the whole file (``all`` is accepted in every form; dotted rule ids like
  ``flow.traffic-conformance`` are accepted too).  Pragmas are resolved
  from real comment tokens, so a pragma-shaped substring inside a string
  literal never suppresses anything;
* **reporters** — stable text (``path:line:col: [rule] message``), JSON,
  and SARIF 2.1.0 (:mod:`repro.lint.sarif`);
* **exit codes** — 0 clean, 1 findings, 2 unparseable input or usage error.

Per-file rules live in :mod:`repro.lint.rules`; the interprocedural
(project-scope) analyses in :mod:`repro.lint.flow`; the CLI in
:mod:`repro.lint.cli`.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Type

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_ERROR",
    "Finding",
    "LintError",
    "FileContext",
    "Rule",
    "ProjectContext",
    "register",
    "all_rules",
    "get_rule",
    "LintReport",
    "run_lint",
    "format_text",
    "format_json",
]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

#: ``# lint: disable=a,b`` (same line) / ``# lint: disable-next-line=a``
#: (the following line) / ``# lint: disable-file=a`` (whole file).  Rule
#: ids may be dotted (``flow.buffer-typestate``); several pragmas may
#: share one comment.
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable(?P<scope>-file|-next-line)?=(?P<rules>[A-Za-z0-9_.,\- ]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class LintError:
    """A file the linter could not analyze (syntax / decode errors)."""

    path: str
    message: str

    def format(self) -> str:
        return f"{self.path}: error: {self.message}"


class FileContext:
    """Everything a rule needs about one source file.

    Parameters
    ----------
    path:
        Filesystem path of the file (used for rule scoping).
    source:
        Full file contents.
    display_path:
        The path findings report (defaults to ``path`` as given).
    """

    def __init__(self, path: Path, source: str, display_path: Optional[str] = None) -> None:
        self.path = path
        self.display_path = display_path if display_path is not None else str(path)
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self.line_suppressions: Dict[int, FrozenSet[str]] = {}
        self.file_suppressions: FrozenSet[str] = frozenset()
        self._scan_suppressions()

    # ------------------------------------------------------------------
    @property
    def posix_path(self) -> str:
        """Resolved path with ``/`` separators — what scoped rules match."""
        return self.path.resolve().as_posix()

    def _comment_tokens(self) -> List[tokenize.TokenInfo]:
        """The file's COMMENT tokens (pragmas in string literals are not
        comments and must not suppress anything)."""
        try:
            return [
                tok
                for tok in tokenize.generate_tokens(io.StringIO(self.source).readline)
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            # ast.parse accepted the file, so tokenize failures are exotic;
            # fall back to treating every line as a potential comment.
            return [
                tokenize.TokenInfo(tokenize.COMMENT, text, (i, 0), (i, len(text)), text)
                for i, text in enumerate(self.lines, start=1)
            ]

    def _scan_suppressions(self) -> None:
        file_wide: set = set()
        for tok in self._comment_tokens():
            lineno = tok.start[0]
            for m in _SUPPRESS_RE.finditer(tok.string):
                rules = frozenset(
                    r.strip() for r in m.group("rules").split(",") if r.strip()
                )
                scope = m.group("scope")
                if scope == "-file":
                    file_wide |= rules
                    continue
                # ``disable`` silences the pragma's own line;
                # ``disable-next-line`` the one after it.
                target = lineno + 1 if scope == "-next-line" else lineno
                self.line_suppressions[target] = (
                    self.line_suppressions.get(target, frozenset()) | rules
                )
        self.file_suppressions = frozenset(file_wide)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``rule_id`` is silenced at ``line`` (or file-wide)."""
        if {"all", rule_id} & self.file_suppressions:
            return True
        at_line = self.line_suppressions.get(line, frozenset())
        return bool({"all", rule_id} & at_line)

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            rule=rule_id,
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` / ``description`` / ``paper_ref`` and implement
    :meth:`check`; :meth:`applies_to` scopes path-restricted rules (the
    hot-path and dtype rules only police kernel modules).

    ``scope`` selects the analysis granularity: ``"file"`` rules see one
    :class:`FileContext` at a time through :meth:`check`; ``"project"``
    rules (the :mod:`repro.lint.flow` analyses) see every parsed file at
    once through :meth:`check_project` — they need the call graph, so a
    single file is never enough.  Project rules only run under
    ``repro lint --flow`` (or when selected explicitly with a flow run).
    """

    id: str = ""
    description: str = ""
    #: The paper section the enforced invariant derives from.
    paper_ref: str = ""
    #: ``"file"`` (per-file AST rule) or ``"project"`` (interprocedural).
    scope: str = "file"

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        """Project-scope entry point (``scope == "project"`` rules)."""
        raise NotImplementedError


class ProjectContext:
    """Every parsed file of one lint run, plus lazily built flow state.

    The interprocedural analyses all need the same two artifacts — the
    project-wide call graph and per-function summaries — so the context
    builds them once and every project rule shares them (see
    :mod:`repro.lint.flow.analysis`).
    """

    def __init__(self, files: Sequence[FileContext]) -> None:
        self.files: List[FileContext] = list(files)
        self.by_path: Dict[str, FileContext] = {
            ctx.posix_path: ctx for ctx in self.files
        }
        self._analysis = None

    @property
    def analysis(self):
        """The shared :class:`repro.lint.flow.analysis.FlowAnalysis`."""
        if self._analysis is None:
            from .flow.analysis import FlowAnalysis

            self._analysis = FlowAnalysis(self)
        return self._analysis

    def context_for(self, display_path: str) -> Optional[FileContext]:
        """The FileContext whose display path matches ``display_path``."""
        for ctx in self.files:
            if ctx.display_path == display_path:
                return ctx
        return None


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id!r}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    _load_builtin_rules()
    return [_REGISTRY[rid]() for rid in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Instantiate one registered rule by id."""
    _load_builtin_rules()
    if rule_id not in _REGISTRY:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[rule_id]()


def _load_builtin_rules() -> None:
    """Import the built-in rule modules (they self-register on import)."""
    from . import rules as _rules  # noqa: F401
    from . import flow as _flow  # noqa: F401


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    errors: List[LintError] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Findings absorbed by a baseline file (tracked debt, not failures).
    baselined: int = 0

    @property
    def exit_code(self) -> int:
        if self.errors:
            return EXIT_ERROR
        return EXIT_FINDINGS if self.findings else EXIT_CLEAN


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(
                f for f in sorted(p.rglob("*.py"))
                if not any(part.startswith(".") for part in f.parts)
            )
        elif p.is_file():
            out.append(p)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    # De-duplicate while keeping order (a file may be reachable twice).
    seen: set = set()
    uniq: List[Path] = []
    for f in out:
        key = f.resolve()
        if key not in seen:
            seen.add(key)
            uniq.append(f)
    return uniq


def lint_file(
    path: Path, rules: Sequence[Rule], report: LintReport
) -> Optional[FileContext]:
    """Lint one file into ``report``; returns its context when parseable."""
    try:
        source = path.read_text(encoding="utf-8")
        ctx = FileContext(path, source, display_path=str(path))
    except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
        report.errors.append(LintError(path=str(path), message=str(exc)))
        return None
    report.files_checked += 1
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding.rule, finding.line):
                report.suppressed += 1
            else:
                report.findings.append(finding)
    return ctx


def run_lint(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    *,
    ignore: Optional[Iterable[str]] = None,
    flow: bool = False,
) -> LintReport:
    """Lint ``paths`` with every registered rule (or just ``select``).

    ``ignore`` drops rule ids from whatever ``select`` (or the full
    registry) produced — CI uses the pair to run one rule family in
    isolation without touching exit-code semantics.  ``flow=True``
    additionally runs the project-scope interprocedural analyses
    (:mod:`repro.lint.flow`); without it they are skipped even when the
    registry knows them, because they need every file of the project in
    one pass.  Selecting a project rule by id implies ``flow``.
    """
    if select is None:
        rules: List[Rule] = all_rules()
    else:
        rules = [get_rule(rid) for rid in select]
    if ignore is not None:
        dropped = set(ignore)
        # Validate the ignored ids so a typo fails loudly like --select.
        for rid in dropped:
            get_rule(rid)
        rules = [r for r in rules if r.id not in dropped]
    file_rules = [r for r in rules if r.scope == "file"]
    project_rules = [r for r in rules if r.scope == "project"]
    run_project = project_rules and (flow or select is not None)

    report = LintReport()
    try:
        files = collect_files(paths)
    except FileNotFoundError as exc:
        report.errors.append(LintError(path=str(paths), message=str(exc)))
        return report
    contexts: List[FileContext] = []
    for f in files:
        ctx = lint_file(f, file_rules, report)
        if ctx is not None:
            contexts.append(ctx)
    if run_project and contexts:
        project = ProjectContext(contexts)
        by_display = {ctx.display_path: ctx for ctx in contexts}
        for rule in project_rules:
            for finding in rule.check_project(project):
                ctx = by_display.get(finding.path)
                if ctx is not None and ctx.is_suppressed(finding.rule, finding.line):
                    report.suppressed += 1
                else:
                    report.findings.append(finding)
    report.findings.sort(key=lambda fi: (fi.path, fi.line, fi.col, fi.rule))
    return report


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------
def format_text(report: LintReport) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [e.format() for e in report.errors]
    lines += [f.format() for f in report.findings]
    noun = "file" if report.files_checked == 1 else "files"
    summary = (
        f"checked {report.files_checked} {noun}: "
        f"{len(report.findings)} finding(s), {report.suppressed} suppressed"
    )
    if report.baselined:
        summary += f", {report.baselined} baselined"
    if report.errors:
        summary += f", {len(report.errors)} error(s)"
    lines.append(summary)
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "exit_code": report.exit_code,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in report.findings
        ],
        "errors": [{"path": e.path, "message": e.message} for e in report.errors],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
