"""Unit tests for mode-order utilities (Algorithm 9)."""

import numpy as np
import pytest

from repro.core import (
    average_leaf_fiber_length,
    count_swapped_fibers,
    count_swapped_fibers_threaded,
)
from repro.tensor import CooTensor, CsfTensor, random_tensor


class TestCountSwappedFibers:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_rebuilt_csf_4d(self, seed):
        t = random_tensor((8, 7, 6, 5), nnz=150, seed=seed)
        csf = CsfTensor.from_coo(t, (0, 1, 2, 3))
        predicted = count_swapped_fibers(csf)
        actual = csf.swapped_last_two().fiber_counts[-2]
        assert predicted == actual

    def test_matches_rebuilt_csf_3d(self, coo3):
        csf = CsfTensor.from_coo(coo3, (0, 1, 2))
        assert (
            count_swapped_fibers(csf)
            == csf.swapped_last_two().fiber_counts[-2]
        )

    def test_matches_rebuilt_csf_5d(self, coo5):
        csf = CsfTensor.from_coo(coo5)
        assert (
            count_swapped_fibers(csf)
            == csf.swapped_last_two().fiber_counts[-2]
        )

    def test_2d_raises(self):
        t = random_tensor((5, 5), nnz=10, seed=0)
        csf = CsfTensor.from_coo(t, (0, 1))
        with pytest.raises(ValueError):
            count_swapped_fibers(csf)

    def test_empty_tensor(self):
        t = CooTensor.from_arrays(
            np.empty((3, 0), dtype=np.int64), np.empty(0), shape=(4, 4, 4)
        )
        csf = CsfTensor.from_coo(t)
        assert count_swapped_fibers(csf) == 0


class TestThreadedVariant:
    @pytest.mark.parametrize("threads", [1, 2, 4, 9])
    def test_total_matches_serial(self, coo4, threads):
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        total, per_thread = count_swapped_fibers_threaded(csf, threads)
        assert total == count_swapped_fibers(csf)
        assert sum(per_thread) == total
        assert len(per_thread) == threads

    def test_no_double_counting_across_threads(self, coo4):
        """Threads split at root slices, so per-thread counts must sum
        exactly (a pair belongs to exactly one root slice)."""
        csf = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        t1, _ = count_swapped_fibers_threaded(csf, 1)
        t8, _ = count_swapped_fibers_threaded(csf, 8)
        assert t1 == t8

    def test_invalid_threads(self, csf4):
        with pytest.raises(ValueError):
            count_swapped_fibers_threaded(csf4, 0)


class TestAverageFiberLength:
    def test_definition(self, csf4):
        m = csf4.fiber_counts
        assert average_leaf_fiber_length(csf4) == csf4.nnz / m[-2]

    def test_swap_decision_quantity(self, coo4):
        """Whichever layout has the longer average leaf fibers has fewer
        level d-2 fibers — the compression the swap decision chases."""
        base = CsfTensor.from_coo(coo4, (0, 1, 2, 3))
        swapped = base.swapped_last_two()
        fl_base = average_leaf_fiber_length(base)
        fl_swap = average_leaf_fiber_length(swapped)
        if fl_base > fl_swap:
            assert base.fiber_counts[-2] < swapped.fiber_counts[-2]
        elif fl_swap > fl_base:
            assert swapped.fiber_counts[-2] < base.fiber_counts[-2]
