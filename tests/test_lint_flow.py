"""Tests for :mod:`repro.lint.flow` — the interprocedural analyses.

Covers the flow substrate (CFG dominators, call-graph resolution), the
three project-scope rules against injected violations in scratch copies
of real kernel modules (the issue's acceptance scenarios: an uncounted
array write, a ``view()`` after ``merge()`` without ``reset()``, and an
object-mode op in a kernel inner loop must each produce exactly one
finding with the right rule id), suppression edge cases, the SARIF
reporter, the baseline workflow, and the cross-check that the statically
computed per-kernel charged-category summaries agree with the traffic
deltas observed on traced engine runs.
"""

import ast
import io
import json
import textwrap
from collections import Counter
from pathlib import Path

import pytest

from repro.lint import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    FileContext,
    ProjectContext,
    all_rules,
    apply_baseline,
    baseline_key,
    format_sarif,
    load_baseline,
    main as lint_main,
    run_lint,
    write_baseline,
)
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.cfg import ENTRY, EXIT, build_cfg

REPO = Path(__file__).resolve().parents[1]
BASELINE = REPO / "lint-flow-baseline.json"

FLOW_RULES = {
    "flow.traffic-conformance",
    "flow.buffer-typestate",
    "flow.arena-typestate",
    "flow.jit-readiness",
}


def kernel_file(tmp_path, source, name="scratch.py"):
    """Write ``source`` under a kernel-marked fixture path."""
    scoped = tmp_path / "lint_fixtures" / "ops"
    scoped.mkdir(parents=True, exist_ok=True)
    mod = scoped / name
    mod.write_text(textwrap.dedent(source))
    return mod


def finding_counts(report):
    return Counter((f.rule, f.message) for f in report.findings)


class TestRegistry:
    def test_flow_rules_registered_as_project_scope(self):
        by_id = {r.id: r for r in all_rules()}
        for rid in FLOW_RULES:
            assert rid in by_id
            assert by_id[rid].scope == "project"
            assert by_id[rid].description and by_id[rid].paper_ref

    def test_flow_rules_skipped_without_flag(self, tmp_path):
        mod = kernel_file(
            tmp_path,
            """\
            def f(out, idx, rows):
                for p in range(idx.shape[0]):
                    out[idx[p]] += rows[p]
            """,
        )
        report = run_lint([str(mod)])
        assert {f.rule for f in report.findings} & FLOW_RULES == set()
        report = run_lint([str(mod)], flow=True)
        assert {f.rule for f in report.findings} & FLOW_RULES

    def test_selecting_flow_rule_implies_flow(self, tmp_path):
        mod = kernel_file(
            tmp_path,
            """\
            def f(out, idx, rows):
                for p in range(idx.shape[0]):
                    out[idx[p]] += rows[p]
            """,
        )
        report = run_lint([str(mod)], select=["flow.traffic-conformance"])
        assert report.exit_code == EXIT_FINDINGS
        assert {f.rule for f in report.findings} == {"flow.traffic-conformance"}


class TestCfg:
    def _cfg(self, source):
        fn = ast.parse(textwrap.dedent(source)).body[0]
        return fn, build_cfg(fn)

    def test_straight_line_dominance(self):
        fn, cfg = self._cfg(
            """\
            def f(c, x):
                a = charge()
                b = x + 1
                return b
            """
        )
        charge_id = cfg.node_of(fn.body[0])
        use_id = cfg.node_of(fn.body[1])
        assert cfg.covered_by(use_id, {charge_id})

    def test_branch_only_charge_does_not_dominate(self):
        fn, cfg = self._cfg(
            """\
            def f(c, x):
                if c:
                    a = charge()
                b = x + 1
                return b
            """
        )
        charge_id = cfg.node_of(fn.body[0].body[0])
        use_id = cfg.node_of(fn.body[1])
        assert not cfg.covered_by(use_id, {charge_id})

    def test_postdominating_charge_covers(self):
        fn, cfg = self._cfg(
            """\
            def f(c, x):
                b = x + 1
                a = charge()
                return b
            """
        )
        use_id = cfg.node_of(fn.body[0])
        charge_id = cfg.node_of(fn.body[1])
        assert cfg.covered_by(use_id, {charge_id})

    def test_early_return_breaks_postdominance(self):
        fn, cfg = self._cfg(
            """\
            def f(c, x):
                b = x + 1
                if c:
                    return None
                a = charge()
                return b
            """
        )
        use_id = cfg.node_of(fn.body[0])
        charge_id = cfg.node_of(fn.body[2])
        assert not cfg.covered_by(use_id, {charge_id})

    def test_entry_dominates_and_exit_postdominates_everything(self):
        fn, cfg = self._cfg(
            """\
            def f(xs):
                for x in xs:
                    y = x
                return None
            """
        )
        dom = cfg.dominators()
        post = cfg.postdominators()
        for nid in cfg.nodes:
            assert ENTRY in dom[nid]
            assert EXIT in post[nid]


class TestCallGraph:
    def _graph(self, files):
        ctxs = [
            FileContext(Path(path), textwrap.dedent(src))
            for path, src in files.items()
        ]
        return CallGraph(ctxs)

    def test_cross_module_name_call(self):
        g = self._graph(
            {
                "/x/repro/moda.py": """\
                    def helper(v):
                        return v
                    """,
                "/x/repro/modb.py": """\
                    from repro.moda import helper

                    def caller(v):
                        return helper(v)
                    """,
            }
        )
        assert "repro.modb.caller" in g.functions
        assert g.callees["repro.modb.caller"] == {"repro.moda.helper"}

    def test_self_method_resolution_in_nested_thread_body(self):
        g = self._graph(
            {
                "/x/repro/eng.py": """\
                    class Engine:
                        def _charge(self, th):
                            return th

                        def run(self, pool):
                            def body(th):
                                self._charge(th)
                                return th
                            return pool.map(body)
                    """,
            }
        )
        # The closure keeps the enclosing class, so self._charge resolves.
        assert g.callees["repro.eng.Engine.run.body"] == {
            "repro.eng.Engine._charge"
        }

    def test_dispatch_edge_for_pool_map(self):
        g = self._graph(
            {
                "/x/repro/eng.py": """\
                    class Engine:
                        def run(self, pool):
                            def body(th):
                                return th
                            return pool.map(body)
                    """,
            }
        )
        sites = [
            s for s in g.call_sites
            if s.caller == "repro.eng.Engine.run" and s.is_dispatch
        ]
        assert [s.callee for s in sites] == ["repro.eng.Engine.run.body"]


class TestAcceptanceInjections:
    """Issue acceptance: inject one violation into a scratch copy of the
    real ``ops/partial.py`` and diff against the pristine copy — exactly
    one new finding with the expected rule id each time."""

    PARTIAL = (REPO / "src" / "repro" / "ops" / "partial.py").read_text()

    def _diff(self, tmp_path, injected_suffix):
        mod = kernel_file(tmp_path, self.PARTIAL, name="partial.py")
        base = finding_counts(run_lint([str(mod)], flow=True))
        mod.write_text(self.PARTIAL + textwrap.dedent(injected_suffix))
        new = finding_counts(run_lint([str(mod)], flow=True))
        return new - base

    def test_uncounted_write_is_exactly_one_traffic_finding(self, tmp_path):
        diff = self._diff(
            tmp_path,
            """\

            def scratch_kernel(out, idx, rows):
                for p in range(idx.shape[0]):
                    out[idx[p]] += rows[p]
            """,
        )
        assert sum(diff.values()) == 1
        ((rule, message),) = diff
        assert rule == "flow.traffic-conformance"
        assert "scratch_kernel" in message and "uncounted" in message

    def test_charged_write_adds_no_finding(self, tmp_path):
        diff = self._diff(
            tmp_path,
            """\

            def scratch_kernel(out, idx, rows, counter):
                counter.write(float(idx.shape[0]), "output")
                for p in range(idx.shape[0]):
                    out[idx[p]] += rows[p]
            """,
        )
        # The counter call is legitimately on the JIT worklist (object
        # dispatch), but the write itself is accounted: no traffic finding.
        assert not [k for k in diff if k[0] == "flow.traffic-conformance"]

    def test_view_after_merge_is_exactly_one_typestate_finding(self, tmp_path):
        diff = self._diff(
            tmp_path,
            """\

            def scratch_lifecycle(n, threads):
                rep = ReplicatedArray(n, 4, threads)
                rep.merge()
                return rep.view(0, 0, n)
            """,
        )
        assert sum(diff.values()) == 1
        ((rule, message),) = diff
        assert rule == "flow.buffer-typestate"
        assert "reset()" in message

    def test_merge_after_reset_adds_no_finding(self, tmp_path):
        diff = self._diff(
            tmp_path,
            """\

            def scratch_lifecycle(n, threads):
                rep = ReplicatedArray(n, 4, threads)
                rep.merge()
                rep.reset()
                return rep.view(0, 0, n)
            """,
        )
        assert diff == Counter()

    def test_object_mode_op_in_loop_is_exactly_one_jit_finding(self, tmp_path):
        diff = self._diff(
            tmp_path,
            """\

            def scratch_jit(rows):
                total = 0.0
                for p in range(rows.shape[0]):
                    opts = {"p": p}
                    total += rows[p, 0]
                return total
            """,
        )
        assert sum(diff.values()) == 1
        ((rule, message),) = diff
        assert rule == "flow.jit-readiness"
        assert "scratch_jit" in message and "not nopython-ready" in message


class TestJitWorklist:
    """jit_candidates refinements: kernels routed through the flat-array
    kernel ABI and charge-only accounting helpers leave the worklist."""

    DISPATCH = str(REPO / "src" / "repro" / "kernels" / "dispatch.py")

    def test_ported_kernel_leaves_worklist(self, tmp_path):
        mod = kernel_file(
            tmp_path,
            """\
            from repro.kernels.dispatch import segment_reduce_rows

            def scratch_ported(rows, seg):
                for _ in range(2):
                    opts = {"tier": "numpy"}
                return segment_reduce_rows(rows, seg)
            """,
        )
        # With the ABI module in the file set the call resolves, the
        # kernel counts as ported, and its dict blocker is moot.
        report = run_lint(
            [str(mod), self.DISPATCH], select=["flow.jit-readiness"]
        )
        assert not [f for f in report.findings if "scratch_ported" in f.message]
        # Without it, the call cannot resolve and the blocker resurfaces.
        report = run_lint([str(mod)], select=["flow.jit-readiness"])
        assert [f for f in report.findings if "scratch_ported" in f.message]

    def test_charge_only_helper_leaves_worklist(self, tmp_path):
        mod = kernel_file(
            tmp_path,
            """\
            def scratch_charges(counter, chunks, rank):
                for n in chunks:
                    counter.read(n, "values")
                    counter.flop(2.0 * n * rank, "recompute")
            """,
        )
        report = run_lint([str(mod)], select=["flow.jit-readiness"])
        assert report.findings == []


class TestTypestate:
    def test_use_after_close_is_caught(self, tmp_path):
        mod = kernel_file(
            tmp_path,
            """\
            def scratch_arena(shape):
                arena = SharedArena()
                try:
                    buf = arena.zeros(shape)
                finally:
                    arena.close()
                return arena.zeros(shape)
            """,
        )
        report = run_lint([str(mod)], select=["flow.arena-typestate"])
        assert len(report.findings) == 1
        assert "after close()" in report.findings[0].message

    def test_unprotected_close_of_local_arena_is_caught(self, tmp_path):
        mod = kernel_file(
            tmp_path,
            """\
            def scratch_arena(shape):
                arena = SharedArena()
                buf = arena.zeros(shape)
                arena.close()
                return buf
            """,
        )
        report = run_lint([str(mod)], select=["flow.arena-typestate"])
        assert len(report.findings) == 1
        assert "context manager" in report.findings[0].message

    def test_finally_close_of_local_arena_is_fine(self, tmp_path):
        mod = kernel_file(
            tmp_path,
            """\
            def scratch_arena(shape):
                arena = SharedArena()
                try:
                    return arena.zeros(shape)
                finally:
                    arena.close()
            """,
        )
        report = run_lint([str(mod)], select=["flow.arena-typestate"])
        assert report.findings == []

    def test_escaping_view_is_caught(self, tmp_path):
        mod = kernel_file(
            tmp_path,
            """\
            def run(pool, rep, n):
                window = rep.view(0, 0, n)
                def body(th):
                    window[:] = th
                    return th
                return pool.map(body)
            """,
        )
        report = run_lint([str(mod)], select=["flow.buffer-typestate"])
        assert len(report.findings) == 1
        assert "escapes into a task closure" in report.findings[0].message

    def test_view_taken_inside_body_is_fine(self, tmp_path):
        mod = kernel_file(
            tmp_path,
            """\
            def run(pool, rep, n):
                def body(th):
                    window = rep.view(th, 0, n)
                    window[:] = th
                    return th
                return pool.map(body)
            """,
        )
        report = run_lint([str(mod)], select=["flow.buffer-typestate"])
        assert report.findings == []


class TestSuppressionEdgeCases:
    def test_two_pragmas_in_one_comment(self, tmp_path):
        mod = kernel_file(
            tmp_path,
            """\
            import numpy as np

            def f(out, idx, rows):
                np.add.at(out, idx, rows)  # lint: disable=hot-path # lint: disable-next-line=hot-path
                np.add.at(out, idx, rows)
            """,
        )
        report = run_lint([str(mod)])
        assert report.exit_code == EXIT_CLEAN
        assert report.suppressed == 2

    def test_all_plus_specific_rule_in_one_pragma(self, tmp_path):
        mod = kernel_file(
            tmp_path,
            """\
            # lint: disable-file=all,hot-path
            import numpy as np

            def f(out, idx, rows):
                np.add.at(out, idx, rows)
            """,
        )
        report = run_lint([str(mod)])
        assert report.exit_code == EXIT_CLEAN
        assert report.suppressed == 1

    def test_pragma_inside_string_literal_does_not_suppress(self, tmp_path):
        mod = kernel_file(
            tmp_path,
            """\
            import numpy as np

            DOC = "# lint: disable-file=all"

            def f(out, idx, rows):
                np.add.at(out, idx, rows)
            """,
        )
        report = run_lint([str(mod)])
        assert report.exit_code == EXIT_FINDINGS
        assert report.suppressed == 0

    def test_dotted_flow_rule_next_line_suppression(self, tmp_path):
        mod = kernel_file(
            tmp_path,
            """\
            def f(out, idx, rows):
                for p in range(idx.shape[0]):
                    # lint: disable-next-line=flow.traffic-conformance
                    out[idx[p]] += rows[p]
            """,
        )
        report = run_lint([str(mod)], flow=True)
        assert {f.rule for f in report.findings} & FLOW_RULES == set()
        assert report.suppressed >= 1


class TestSarif:
    def _sarif(self, paths, **kw):
        return json.loads(format_sarif(run_lint(paths, **kw)))

    def test_structure_and_rule_metadata(self, tmp_path):
        mod = kernel_file(
            tmp_path,
            """\
            def f(out, idx, rows):
                for p in range(idx.shape[0]):
                    out[idx[p]] += rows[p]
            """,
        )
        doc = self._sarif([str(mod)], flow=True)
        assert doc["version"] == "2.1.0"
        assert "sarif" in doc["$schema"]
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = {r["id"] for r in driver["rules"]}
        assert FLOW_RULES <= rule_ids
        assert run["results"], "expected at least one result"
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert result["message"]["text"]
            (loc,) = result["locations"]
            phys = loc["physicalLocation"]
            assert phys["artifactLocation"]["uri"]
            assert phys["region"]["startLine"] >= 1
        (invocation,) = run["invocations"]
        assert invocation["executionSuccessful"] is True

    def test_errors_become_notifications(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        doc = self._sarif([str(bad)])
        (invocation,) = json.loads(json.dumps(doc))["runs"][0]["invocations"]
        assert invocation["executionSuccessful"] is False
        assert invocation["toolExecutionNotifications"]

    def test_cli_sarif_output_parses(self, tmp_path):
        mod = kernel_file(
            tmp_path,
            """\
            import numpy as np

            def f(out, idx, rows):
                np.add.at(out, idx, rows)
            """,
        )
        out = io.StringIO()
        code = lint_main(["--format", "sarif", str(mod)], out)
        assert code == EXIT_FINDINGS
        doc = json.loads(out.getvalue())
        assert doc["runs"][0]["results"]


class TestBaseline:
    SOURCE = """\
        def f(out, idx, rows):
            for p in range(idx.shape[0]):
                out[idx[p]] += rows[p]
        """

    def test_round_trip_silences_known_findings(self, tmp_path):
        mod = kernel_file(tmp_path, self.SOURCE)
        baseline = tmp_path / "baseline.json"
        report = run_lint([str(mod)], flow=True)
        assert report.exit_code == EXIT_FINDINGS
        write_baseline(report, baseline)

        report = run_lint([str(mod)], flow=True)
        apply_baseline(report, load_baseline(baseline))
        assert report.findings == []
        assert report.baselined >= 1
        assert report.exit_code == EXIT_CLEAN

    def test_new_finding_survives_baseline(self, tmp_path):
        mod = kernel_file(tmp_path, self.SOURCE)
        baseline = tmp_path / "baseline.json"
        write_baseline(run_lint([str(mod)], flow=True), baseline)

        mod.write_text(
            mod.read_text()
            + textwrap.dedent(
                """\

                def g(out, idx, rows):
                    for p in range(idx.shape[0]):
                        out[idx[p]] += rows[p]
                """
            )
        )
        report = run_lint([str(mod)], flow=True)
        apply_baseline(report, load_baseline(baseline))
        live = {f.rule for f in report.findings}
        assert "flow.traffic-conformance" in live
        assert all("`g`" in f.message for f in report.findings)

    def test_baseline_key_has_no_line_numbers(self, tmp_path):
        mod = kernel_file(tmp_path, self.SOURCE)
        report = run_lint([str(mod)], flow=True)
        for finding in report.findings:
            key = baseline_key(finding)
            assert str(finding.line) not in key.split("::")[1]

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_cli_update_baseline_requires_file(self):
        out = io.StringIO()
        assert lint_main(["--update-baseline", "src"], out) == EXIT_ERROR

    def test_cli_update_then_apply(self, tmp_path):
        mod = kernel_file(tmp_path, self.SOURCE)
        baseline = tmp_path / "baseline.json"
        out = io.StringIO()
        code = lint_main(
            ["--flow", "--baseline", str(baseline), "--update-baseline", str(mod)],
            out,
        )
        assert code == EXIT_CLEAN
        out = io.StringIO()
        code = lint_main(["--flow", "--baseline", str(baseline), str(mod)], out)
        assert code == EXIT_CLEAN
        assert "baselined" in out.getvalue()


class TestShippedTree:
    def test_flow_run_is_hard_clean(self):
        """The flow-debt baseline was burned down to zero and deleted —
        ``repro lint --flow src/`` must exit clean with no baseline."""
        report = run_lint([str(REPO / "src")], flow=True)
        assert report.errors == []
        live = "\n".join(f.format() for f in report.findings)
        assert report.findings == [], f"flow findings on shipped tree:\n{live}"
        assert report.exit_code == EXIT_CLEAN

    def test_no_baseline_file_checked_in(self):
        """Regression guard: debt must be fixed (or narrowly pragma'd),
        never re-baselined — the file must not reappear."""
        assert not BASELINE.exists(), (
            "lint-flow-baseline.json reappeared; fix the findings instead "
            "of re-introducing a debt baseline (CONTRIBUTING.md)"
        )


class TestChargedCategorySummaries:
    """The static per-kernel charged-category summaries must agree with
    the categories observed in traced engine runs (trace span deltas)."""

    ENGINE_MODULES = {
        "stef": "repro.core.mttkrp",
        "taco": "repro.baselines.taco",
        "dimtree": "repro.baselines.dimtree",
    }

    @pytest.fixture(scope="class")
    def module_categories(self):
        files = sorted((REPO / "src").rglob("*.py"))
        ctxs = [FileContext(p, p.read_text()) for p in files]
        return ProjectContext(ctxs).analysis.module_categories()

    @pytest.mark.parametrize("method", sorted(ENGINE_MODULES))
    def test_observed_categories_subset_of_summary(self, method, module_categories):
        from repro.cpd import cp_als
        from repro.engines import create_engine
        from repro.parallel import MACHINES, TrafficCounter
        from repro.tensor import random_tensor
        from repro.trace import Tracer

        machine = MACHINES["intel-clx-18"]
        tensor = random_tensor((10, 8, 6), nnz=120, seed=3)
        tracer = Tracer()
        counter = TrafficCounter(cache_elements=machine.cache_elements)
        with create_engine(
            method, tensor, 4, machine=machine, num_threads=2,
            exec_backend="serial", counter=counter, tracer=tracer,
        ) as engine:
            cp_als(
                tensor, 4, engine=engine, max_iters=1,
                compute_fit=False, seed=0, tracer=tracer,
            )
        observed = set()
        for rec in tracer.kernel_spans():
            observed |= {
                key.split(":", 1)[1] for key in rec.traffic if ":" in key
            }
        predicted = module_categories[self.ENGINE_MODULES[method]]
        assert observed, "traced run recorded no kernel spans"
        assert observed <= predicted, (
            f"{method}: observed categories {sorted(observed - predicted)} "
            "missing from the static summary"
        )
