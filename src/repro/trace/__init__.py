"""repro.trace — low-overhead structured tracing for the hot path.

Opt-in observability: pass a :class:`Tracer` to
:func:`~repro.engines.create_engine` / :func:`~repro.cpd.als.cp_als`
(or ``repro decompose --trace out.jsonl`` on the CLI) and every ALS
iteration, MTTKRP kernel, and per-thread task records a span with wall
time, attributes, and exact :class:`TrafficCounter` category deltas.
Export as JSONL run records, Chrome trace-event files, or a flat
metrics dict (``scripts/bench_regress.py`` diffs those against the
recorded bench trajectory).

Off by default: the shared :data:`NULL_TRACER` makes every span a no-op.
"""

from .export import (
    chrome_trace_events,
    engine_run_meta,
    flat_metrics,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .tracer import (
    MAIN_LANE,
    NULL_TRACER,
    NullTracer,
    ScopedTracer,
    SpanRecord,
    Tracer,
)

__all__ = [
    "MAIN_LANE",
    "NULL_TRACER",
    "NullTracer",
    "ScopedTracer",
    "SpanRecord",
    "Tracer",
    "chrome_trace_events",
    "engine_run_meta",
    "flat_metrics",
    "read_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
