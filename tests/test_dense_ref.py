"""Tests for the dense reference oracle itself (two independent oracles
cross-check each other)."""

import numpy as np
import pytest

from repro.ops import (
    cp_fit,
    cp_reconstruct,
    mttkrp_coo_reference,
    mttkrp_dense,
    partial_mttkrp_dense,
    unfold,
)
from tests.conftest import make_factors


class TestUnfold:
    def test_shape(self):
        t = np.arange(24.0).reshape(2, 3, 4)
        assert unfold(t, 0).shape == (2, 12)
        assert unfold(t, 1).shape == (3, 8)
        assert unfold(t, 2).shape == (4, 6)

    def test_content_mode0(self):
        t = np.arange(24.0).reshape(2, 3, 4)
        assert np.array_equal(unfold(t, 0), t.reshape(2, 12))

    def test_frobenius_preserved(self):
        rng = np.random.default_rng(0)
        t = rng.standard_normal((3, 4, 5))
        for m in range(3):
            assert np.isclose(np.linalg.norm(unfold(t, m)), np.linalg.norm(t))


class TestTwoOracles:
    """The dense einsum path and the COO scatter path are structurally
    different; they must agree on every mode and dimensionality."""

    def test_agree_3d(self, coo3):
        fac = make_factors(coo3.shape, 3, seed=0)
        d = coo3.to_dense()
        for u in range(3):
            assert np.allclose(
                mttkrp_dense(d, fac, u), mttkrp_coo_reference(coo3, fac, u)
            )

    def test_agree_4d(self, coo4):
        fac = make_factors(coo4.shape, 4, seed=1)
        d = coo4.to_dense()
        for u in range(4):
            assert np.allclose(
                mttkrp_dense(d, fac, u), mttkrp_coo_reference(coo4, fac, u)
            )

    def test_agree_5d(self, coo5):
        fac = make_factors(coo5.shape, 2, seed=2)
        d = coo5.to_dense()
        for u in range(5):
            assert np.allclose(
                mttkrp_dense(d, fac, u), mttkrp_coo_reference(coo5, fac, u)
            )


class TestPartialDense:
    def test_full_chain_shapes(self, coo4):
        fac = make_factors(coo4.shape, 3, seed=3)
        d = coo4.to_dense()
        for upto in range(3):
            p = partial_mttkrp_dense(d, fac, upto)
            assert p.shape == d.shape[: upto + 1] + (3,)

    def test_bad_upto_raises(self, coo3):
        fac = make_factors(coo3.shape, 2, seed=4)
        with pytest.raises(ValueError):
            partial_mttkrp_dense(coo3.to_dense(), fac, 2)

    def test_p0_is_mode0_mttkrp(self, coo4):
        fac = make_factors(coo4.shape, 3, seed=5)
        d = coo4.to_dense()
        assert np.allclose(
            partial_mttkrp_dense(d, fac, 0), mttkrp_dense(d, fac, 0)
        )


class TestReconstruct:
    def test_rank1(self):
        a = np.array([[2.0], [3.0]])
        b = np.array([[5.0], [7.0]])
        recon = cp_reconstruct([a, b])
        assert np.allclose(recon, np.outer(a[:, 0], b[:, 0]))

    def test_weights_scale(self):
        rng = np.random.default_rng(6)
        factors = [rng.standard_normal((3, 2)) for _ in range(3)]
        base = cp_reconstruct(factors, np.ones(2))
        doubled = cp_reconstruct(factors, 2 * np.ones(2))
        assert np.allclose(doubled, 2 * base)

    def test_fit_perfect(self):
        rng = np.random.default_rng(7)
        factors = [rng.standard_normal((4, 2)) for _ in range(3)]
        dense = cp_reconstruct(factors)
        assert np.isclose(cp_fit(dense, factors), 1.0)

    def test_fit_zero_tensor(self):
        factors = [np.zeros((3, 1)) for _ in range(2)]
        assert cp_fit(np.zeros((3, 3)), factors) == 1.0
