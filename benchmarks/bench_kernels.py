"""Kernel microbenchmarks — the performance-regression suite.

Wall-times the primitives everything else is built from: CSF
construction, the upward/downward sweeps, the scatter, Algorithm 9,
ALTO encode/decode, partition construction, and the full memoized
MTTKRP set.  Useful for catching performance regressions in the
vectorized kernels (the paper's wall-clock story lives or dies on
these loops being level-vectorized rather than per-node).
"""

import numpy as np
import pytest

from common import bench_tensor
from repro.core import (
    MemoPlan,
    MemoizedMttkrp,
    count_swapped_fibers,
    plan_decomposition,
    serial_upward_sweep,
    thread_downward_k,
)
from repro.core.csf_kernels import scatter_add_rows
from repro.cpd import random_init
from repro.parallel import nnz_partition, slice_partition
from repro.tensor import AltoTensor, CsfTensor, random_tensor

TENSOR = "flickr-4d"
RANK = 32


@pytest.fixture(scope="module")
def setup():
    tensor = bench_tensor(TENSOR, nnz=20_000)
    csf = CsfTensor.from_coo(tensor)
    factors = random_init(tensor.shape, RANK, 0)
    lf = [factors[m] for m in csf.mode_order]
    return tensor, csf, factors, lf


def test_csf_construction(benchmark, setup):
    tensor, _, _, _ = setup
    benchmark(CsfTensor.from_coo, tensor)


def test_upward_sweep(benchmark, setup):
    _, csf, _, lf = setup
    benchmark(serial_upward_sweep, csf, lf)


def test_downward_k_full(benchmark, setup):
    _, csf, _, lf = setup
    level = csf.ndim - 1
    benchmark(thread_downward_k, csf, lf, level, 0, csf.nnz)


def test_scatter_add(benchmark, setup):
    tensor, csf, _, _ = setup
    rng = np.random.default_rng(0)
    rows = rng.standard_normal((csf.nnz, RANK))
    idx = csf.idx[csf.ndim - 1]
    n = csf.level_shape(csf.ndim - 1)

    def run():
        out = np.zeros((n, RANK))
        scatter_add_rows(out, idx, rows)
        return out

    benchmark(run)


def test_algorithm9(benchmark, setup):
    _, csf, _, _ = setup
    benchmark(count_swapped_fibers, csf)


def test_planner_search(benchmark, setup):
    _, csf, _, _ = setup
    benchmark(plan_decomposition, csf, RANK)


def test_alto_encode(benchmark, setup):
    tensor, _, _, _ = setup
    benchmark(AltoTensor.from_coo, tensor)


def test_alto_decode_mode(benchmark, setup):
    tensor, _, _, _ = setup
    alto = AltoTensor.from_coo(tensor)
    benchmark(alto.mode_indices, 1)


@pytest.mark.parametrize("strategy", ["nnz", "slice"])
def test_partition_construction(benchmark, setup, strategy):
    _, csf, _, _ = setup
    fn = nnz_partition if strategy == "nnz" else slice_partition
    benchmark(fn, csf, 64)


def test_coo_to_dense(benchmark):
    # flickr-4d is far too large to densify; use a dense-able cube that
    # still stresses the bincount scatter with duplicate indices.
    tensor = random_tensor((60, 50, 40), nnz=50_000, seed=0)
    benchmark(tensor.to_dense)


def test_scatter_guard_flat_bincount_vs_add_at():
    """Regression guard for the densification scatter.

    ``CooTensor.to_dense`` and ``PartialTensor.to_dense`` used to scatter
    with a multi-index ``np.add.at``; they now flatten with
    ``ravel_multi_index`` and reduce with ``np.bincount`` / segmented
    reduction.  Recent NumPy gave ``add.at`` a fast path, so the win is
    modest on this host — the guard therefore asserts the vectorized path
    never becomes a *pessimization* (within 1.3x of the add.at baseline,
    measured best-of-5).  If it trips, the to_dense rewrites should be
    revisited rather than papered over.
    """
    import time

    rng = np.random.default_rng(0)
    shape = (200, 300, 150)
    nnz = 200_000
    idx = tuple(rng.integers(0, s, size=nnz) for s in shape)
    vals = rng.standard_normal(nnz)

    def add_at_multi():
        out = np.zeros(shape)
        np.add.at(out, idx, vals)
        return out

    def flat_bincount():
        flat = np.ravel_multi_index(idx, shape)
        size = int(np.prod(shape))
        return np.bincount(flat, weights=vals, minlength=size).reshape(shape)

    def best_of(fn, rounds=5):
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    assert np.allclose(add_at_multi(), flat_bincount())
    t_add_at = best_of(add_at_multi)
    t_bincount = best_of(flat_bincount)
    assert t_bincount <= 1.3 * t_add_at, (
        f"flat bincount scatter ({t_bincount * 1e3:.2f} ms) is a "
        f"pessimization vs np.add.at ({t_add_at * 1e3:.2f} ms) — revisit "
        "the to_dense scatter idiom"
    )


@pytest.mark.parametrize("plan_levels", [(), (1, 2)])
def test_full_mttkrp_set(benchmark, setup, plan_levels):
    _, csf, factors, _ = setup
    engine = MemoizedMttkrp(
        csf, RANK, plan=MemoPlan(plan_levels), num_threads=8
    )
    benchmark.pedantic(
        engine.iteration_results, args=(factors,), rounds=3, iterations=1,
        warmup_rounds=1,
    )
