"""End-to-end tests for the decomposition job service.

The acceptance criteria of the serve subsystem, verified against a live
server:

* **correctness under concurrency** — ≥8 jobs submitted at once across
  all three exec backends return factors *bit-identical* to direct
  ``cp_als`` runs, with exactly equal ``TrafficCounter`` totals;
* **cache semantics** — a resubmitted identical job hits the engine
  cache, and its JSONL request log carries **no** ``serve.plan`` span
  (the miss's log does);
* **admission control** — per-client limits and queue backpressure
  refuse with retryable errors instead of buffering without bound;
* **crash recovery** — a server process SIGKILLed mid-job resumes the
  job from its checkpoint after restart, with the cumulative iteration
  count intact.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.cpd import cp_als
from repro.engines import create_engine
from repro.parallel import MACHINES
from repro.parallel.counters import TrafficCounter
from repro.serve import (
    JobSpec,
    ServeClient,
    ServeError,
    start_in_thread,
    wait_for_socket,
)
from repro.tensor import random_tensor
from repro.trace import read_jsonl

BACKENDS = ("serial", "threads", "processes")
MACHINE_NAME = "intel-clx-18"
MACHINE = MACHINES[MACHINE_NAME]


def inline_coo(tensor) -> dict:
    return {
        "indices": tensor.indices.tolist(),
        "values": tensor.values.tolist(),
        "shape": list(tensor.shape),
    }


def make_spec(tensor, **overrides) -> JobSpec:
    options = dict(
        coo=inline_coo(tensor), engine="stef", rank=4, max_iters=3,
        tol=0.0, seed=0, machine=MACHINE_NAME, num_threads=2,
        exec_backend="serial",
    )
    options.update(overrides)
    return JobSpec(**options)


def direct_run(tensor, spec):
    """The single-engine ground truth a served job must reproduce."""
    counter = TrafficCounter(cache_elements=MACHINE.cache_elements)
    kwargs = {}
    if spec.jit is not None:
        kwargs["jit"] = spec.jit
    with create_engine(
        spec.engine, tensor, spec.rank, machine=MACHINE,
        num_threads=spec.num_threads, exec_backend=spec.exec_backend,
        counter=counter, **kwargs,
    ) as engine:
        result = cp_als(
            tensor, spec.rank, engine=engine, max_iters=spec.max_iters,
            tol=spec.tol, init=spec.init, seed=spec.seed,
            compute_fit=spec.compute_fit,
        )
    totals = {"reads": counter.reads, "writes": counter.writes,
              "flops": counter.flops}
    totals.update(counter.by_category)
    return result, {k: v for k, v in totals.items() if v}


@pytest.fixture
def server(tmp_path):
    """An in-thread server; yields (socket_path, spool_dir, handle)."""
    sock = str(tmp_path / "s.sock")
    spool = str(tmp_path / "spool")
    handle = start_in_thread(sock, spool, workers=3)
    wait_for_socket(sock)
    yield sock, spool, handle
    handle.stop()


class TestConcurrentCorrectness:
    def test_nine_concurrent_jobs_bit_identical_across_backends(
        self, server
    ):
        """3 tensors x 3 exec backends, all in flight at once: every
        served result equals its direct cp_als twin bit for bit, and the
        per-job traffic deltas equal a fresh counter's totals exactly."""
        sock, _, _ = server
        tensors = {
            seed: random_tensor((12, 9, 7), nnz=200, seed=seed)
            for seed in (1, 2, 3)
        }
        with ServeClient(sock) as client:
            submitted = []
            for seed, tensor in tensors.items():
                for backend in BACKENDS:
                    spec = make_spec(tensor, exec_backend=backend)
                    response = client.submit(spec)
                    submitted.append((response["job_id"], seed, backend))
            assert len(submitted) == 9
            for job_id, seed, backend in submitted:
                job = client.wait(job_id, timeout=120)
                assert job["state"] == "done", job["error"]
                result = job["result"]
                spec = make_spec(tensors[seed], exec_backend=backend)
                direct, traffic = direct_run(tensors[seed], spec)
                assert result["exec_backend"] == backend
                assert result["iterations"] == direct.iterations
                assert np.array_equal(
                    np.asarray(result["weights"]), direct.model.weights
                ), (seed, backend)
                for got, want in zip(
                    result["factors"], direct.model.factors
                ):
                    assert np.array_equal(np.asarray(got), want), (
                        seed, backend,
                    )
                assert result["traffic"] == traffic, (seed, backend)

    def test_inline_and_by_name_submissions_share_fingerprint(
        self, server, tmp_path
    ):
        """A tensor submitted inline and the same tensor submitted as a
        server-readable .tns path land on one cache entry."""
        from repro.tensor import write_tns

        sock, _, _ = server
        tensor = random_tensor((10, 8, 6), nnz=150, seed=4)
        path = str(tmp_path / "t.tns")
        write_tns(tensor, path)
        with ServeClient(sock) as client:
            first = client.submit(make_spec(tensor), wait=True)
            spec = JobSpec(
                tensor=path, engine="stef", rank=4, max_iters=3, tol=0.0,
                seed=0, machine=MACHINE_NAME, num_threads=2,
            )
            second = client.submit(spec, wait=True)
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        assert first["result"]["fingerprint"] == (
            second["result"]["fingerprint"]
        )
        assert first["result"]["factors"] == second["result"]["factors"]


class TestCacheTrace:
    def test_resubmit_hits_and_log_has_no_plan_span(self, server):
        """The miss's request log records the serve.plan span; the
        identical resubmit's log must not — proof it skipped planning."""
        sock, spool, _ = server
        tensor = random_tensor((10, 8, 6), nnz=150, seed=5)
        with ServeClient(sock) as client:
            first = client.submit(make_spec(tensor), wait=True)
            second = client.submit(make_spec(tensor), wait=True)
            stats = client.stats()
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"

        def span_names(job):
            log = os.path.join(spool, "logs", f"{job['job_id']}.jsonl")
            return [s["name"] for s in read_jsonl(log)["spans"]]

        assert "serve.plan" in span_names(first)
        assert "serve.plan" not in span_names(second)
        # Both logs still carry the per-job ALS spans.
        assert "als.iteration" in span_names(second)
        assert stats["cache.hits"] >= 1.0
        assert stats["cache.hit_rate"] > 0.0

    def test_request_log_header_is_self_describing(self, server):
        sock, spool, _ = server
        tensor = random_tensor((10, 8, 6), nnz=150, seed=6)
        with ServeClient(sock) as client:
            job = client.submit(
                make_spec(tensor, exec_backend="threads"), wait=True
            )
        log = os.path.join(spool, "logs", f"{job['job_id']}.jsonl")
        meta = read_jsonl(log)["meta"]
        assert meta["engine"] == "stef"
        assert meta["jit_tier"] in ("numpy", "numba")
        assert meta["exec_backend"] == "threads"
        assert meta["num_threads"] == 2
        assert meta["job_id"] == job["job_id"]
        assert meta["cache"] == "miss"


class TestAdmissionControl:
    def test_per_client_limit_refuses_with_retryable_error(self, tmp_path):
        sock = str(tmp_path / "s.sock")
        handle = start_in_thread(
            sock, str(tmp_path / "spool"), workers=1, per_client=1,
        )
        wait_for_socket(sock)
        try:
            # A job slow enough to still be in flight for the second
            # submit: plenty of iterations on a non-trivial tensor.
            tensor = random_tensor((30, 25, 20), nnz=4000, seed=7)
            slow = make_spec(tensor, max_iters=200, client="greedy")
            with ServeClient(sock) as client:
                first = client.submit(slow)
                with pytest.raises(ServeError) as excinfo:
                    client.submit(make_spec(tensor, client="greedy"))
                assert excinfo.value.reason == "client-limit"
                assert excinfo.value.retry
                # Another client is still admitted.
                other = client.submit(
                    make_spec(tensor, max_iters=1, client="patient")
                )
                client.wait(other["job_id"], timeout=120)
                client.wait(first["job_id"], timeout=120)
        finally:
            handle.stop()

    def test_queue_full_refuses_with_retryable_error(self, tmp_path):
        sock = str(tmp_path / "s.sock")
        handle = start_in_thread(
            sock, str(tmp_path / "spool"), workers=1, max_depth=1,
            per_client=16,
        )
        wait_for_socket(sock)
        try:
            tensor = random_tensor((30, 25, 20), nnz=4000, seed=8)
            with ServeClient(sock) as client:
                running = client.submit(
                    make_spec(tensor, max_iters=200)
                )  # occupies the worker
                time.sleep(0.2)  # let the dispatcher pop it off the queue
                queued = client.submit(make_spec(tensor, max_iters=1))
                with pytest.raises(ServeError) as excinfo:
                    client.submit(make_spec(tensor, max_iters=1))
                assert excinfo.value.reason == "queue-full"
                assert excinfo.value.retry
                client.wait(running["job_id"], timeout=120)
                client.wait(queued["job_id"], timeout=120)
        finally:
            handle.stop()

    def test_priority_orders_the_backlog(self, tmp_path):
        sock = str(tmp_path / "s.sock")
        handle = start_in_thread(sock, str(tmp_path / "spool"), workers=1)
        wait_for_socket(sock)
        try:
            blocker = random_tensor((30, 25, 20), nnz=4000, seed=9)
            quick = random_tensor((8, 7, 6), nnz=80, seed=10)
            with ServeClient(sock) as client:
                client.submit(make_spec(blocker, max_iters=150))
                time.sleep(0.2)
                low = client.submit(
                    make_spec(quick, priority=20, seed=1)
                )
                high = client.submit(
                    make_spec(quick, priority=1, seed=2)
                )
                done_high = client.wait(high["job_id"], timeout=120)
                low_state = client.status(low["job_id"])["state"]
                # When the urgent job finished, the low-priority one
                # submitted *earlier* had not been picked up before it.
                assert done_high["state"] == "done"
                assert done_high["spec"]["priority"] == 1
                client.wait(low["job_id"], timeout=120)
                assert low_state in ("queued", "running", "done")
        finally:
            handle.stop()


class TestCancelAndStatus:
    def test_cancel_queued_job(self, tmp_path):
        sock = str(tmp_path / "s.sock")
        handle = start_in_thread(sock, str(tmp_path / "spool"), workers=1)
        wait_for_socket(sock)
        try:
            blocker = random_tensor((30, 25, 20), nnz=4000, seed=11)
            quick = random_tensor((8, 7, 6), nnz=80, seed=12)
            with ServeClient(sock) as client:
                running = client.submit(make_spec(blocker, max_iters=150))
                time.sleep(0.2)
                victim = client.submit(make_spec(quick))
                cancelled = client.cancel(victim["job_id"])
                assert cancelled["state"] == "cancelled"
                job = client.wait(victim["job_id"], timeout=10)
                assert job["state"] == "cancelled"
                client.wait(running["job_id"], timeout=120)
                rows = client.jobs()
                states = {r["job_id"]: r["state"] for r in rows}
                assert states[victim["job_id"]] == "cancelled"
                assert states[running["job_id"]] == "done"
        finally:
            handle.stop()


class TestCrashRecovery:
    def serve_argv(self, sock, spool):
        return [
            sys.executable, "-m", "repro", "serve", "--socket", sock,
            "--spool", spool, "--workers", "1",
        ]

    def test_sigkill_mid_job_resumes_from_checkpoint(self, tmp_path):
        """Kill -9 the server while a checkpointing job is mid-run; a
        restarted server on the same spool finishes it from the last
        complete checkpoint with the cumulative iteration count."""
        sock = str(tmp_path / "s.sock")
        spool = str(tmp_path / "spool")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")

        max_iters = 300
        tensor = random_tensor((25, 20, 15), nnz=3000, seed=13)
        spec = make_spec(
            tensor, max_iters=max_iters, checkpoint_every=1,
        )

        proc = subprocess.Popen(
            self.serve_argv(sock, spool), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            wait_for_socket(sock)
            with ServeClient(sock) as client:
                job_id = client.submit(spec)["job_id"]
            checkpoint = os.path.join(spool, "checkpoints", f"{job_id}.npz")

            # Wait for evidence of real progress, then kill without
            # ceremony: at least 2 complete checkpoints but far from done.
            deadline = time.monotonic() + 60
            progressed = 0
            while time.monotonic() < deadline:
                if os.path.exists(checkpoint):
                    try:
                        with np.load(checkpoint) as data:
                            progressed = int(data["iteration"])
                    except Exception:
                        pass  # mid-replace; retry
                    if progressed >= 2:
                        break
                time.sleep(0.01)
            assert 2 <= progressed < max_iters, (
                f"job finished too fast to kill mid-run "
                f"(checkpoint at {progressed})"
            )
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        # The journal must still say the job was in flight.
        with open(os.path.join(spool, "jobs", f"{job_id}.json")) as fh:
            journal = json.load(fh)
        assert journal["state"] == "running"

        proc = subprocess.Popen(
            self.serve_argv(sock, spool), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            wait_for_socket(sock)
            with ServeClient(sock) as client:
                job = client.wait(job_id, timeout=300)
                stats = client.stats()
            assert job["state"] == "done", job["error"]
            # Cumulative count: checkpointed iterations + the resumed
            # remainder reach exactly max_iters, and the second attempt
            # is on record.
            assert job["result"]["iterations"] == max_iters
            assert job["attempts"] == 2
            assert stats["jobs.completed"] >= 1.0
        finally:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=30)

        # Success cleared the checkpoint; the journal reached "done".
        assert not os.path.exists(
            os.path.join(spool, "checkpoints", f"{job_id}.npz")
        )
