"""Kruskal tensors: the output of CP decomposition.

A rank-``R`` Kruskal tensor is ``X = Σ_r λ_r · a_r^(0) ∘ ... ∘ a_r^(d-1)``
— column-normalized factor matrices plus a weight vector ``λ``
(Algorithm 2 stores the column norms there).

Everything needed to *evaluate* a decomposition is here and is computed
sparsely: the model values at the non-zero coordinates, the inner product
``⟨T, X⟩``, and the fit ``1 - ‖T - X‖/‖T‖`` via the identity
``‖T - X‖² = ‖T‖² - 2⟨T, X⟩ + ‖X‖²`` with ``‖X‖²`` from the Gram-matrix
Hadamard chain — no dense reconstruction at any size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..ops.hadamard import cp_gram_norm_sq
from ..tensor.coo import CooTensor

__all__ = ["KruskalTensor"]


@dataclass
class KruskalTensor:
    """A CP model: ``weights`` (λ) plus one factor matrix per mode."""

    weights: np.ndarray
    factors: List[np.ndarray]

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float64)
        self.factors = [np.asarray(f, dtype=np.float64) for f in self.factors]
        rank = self.weights.shape[0]
        for m, f in enumerate(self.factors):
            if f.ndim != 2 or f.shape[1] != rank:
                raise ValueError(
                    f"factor {m} has shape {f.shape}, expected (*, {rank})"
                )

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return int(self.weights.shape[0])

    @property
    def ndim(self) -> int:
        return len(self.factors)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(f.shape[0] for f in self.factors)

    # ------------------------------------------------------------------
    def norm(self) -> float:
        """Frobenius norm ``‖X‖`` via the Gram chain — O(d·N·R²)."""
        return float(np.sqrt(max(0.0, cp_gram_norm_sq(self.factors, self.weights))))

    def values_at(self, indices: np.ndarray) -> np.ndarray:
        """Model values at a ``(ndim, m)`` coordinate matrix — O(m·d·R)."""
        indices = np.asarray(indices)
        acc = np.broadcast_to(self.weights, (indices.shape[1], self.rank)).copy()
        for m, f in enumerate(self.factors):
            acc *= f[indices[m]]
        return acc.sum(axis=1)

    def inner(self, tensor: CooTensor) -> float:
        """Sparse inner product ``⟨T, X⟩``."""
        return float(tensor.values @ self.values_at(tensor.indices))

    def fit(self, tensor: CooTensor) -> float:
        """CP fit ``1 - ‖T - X‖ / ‖T‖`` against a sparse tensor.

        A fit of 1 is exact; 0 means no better than the zero model.
        """
        t_norm_sq = float(tensor.values @ tensor.values)
        if t_norm_sq == 0.0:
            return 1.0
        resid_sq = t_norm_sq - 2.0 * self.inner(tensor) + self.norm() ** 2
        return 1.0 - float(np.sqrt(max(0.0, resid_sq)) / np.sqrt(t_norm_sq))

    def relative_error(self, tensor: CooTensor) -> float:
        """``‖T - X‖ / ‖T‖`` (1 - fit)."""
        return 1.0 - self.fit(tensor)

    def fit_estimate(
        self, tensor: CooTensor, n_samples: int = 10_000, seed: int = 0
    ) -> Tuple[float, float]:
        """Monte-Carlo fit estimate for huge tensors: ``(fit, stderr)``.

        The exact sparse fit (:meth:`fit`) needs ``‖X‖`` (cheap) and
        ``⟨T, X⟩`` (one pass over nnz) — both scale fine; what does *not*
        scale on real FROSTT tensors is validating against a dense
        reference.  This estimator instead evaluates the residual
        directly: the observed part exactly (over nnz), and the
        zero-region contribution ``Σ_{unobserved} X(i)²`` by uniform
        coordinate sampling with an unbiased rescale.  Returns the fit
        estimate and the standard error contributed by the sampling.

        For tensors whose dense size barely exceeds nnz the variance
        correction can exceed the estimate; intended for the hyper-sparse
        regime (density ≪ 1).
        """
        rng = np.random.default_rng(seed)
        t_norm_sq = float(tensor.values @ tensor.values)
        if t_norm_sq == 0.0:
            return 1.0, 0.0
        resid_obs = tensor.values - self.values_at(tensor.indices)
        obs_sq = float(resid_obs @ resid_obs)

        dense_size = float(np.prod([float(s) for s in tensor.shape]))
        n_zero = dense_size - tensor.nnz
        if n_zero <= 0 or n_samples <= 0:
            resid_sq = obs_sq
            stderr = 0.0
        else:
            # Uniform coordinates; collisions with observed entries are
            # rare in the hyper-sparse regime and simply re-sampled away
            # by accepting the tiny bias instead of an O(nnz) lookup.
            samples = np.vstack(
                [rng.integers(0, s, n_samples) for s in tensor.shape]
            )
            vals = self.values_at(samples)
            sq = vals**2
            mean = float(sq.mean())
            var = float(sq.var(ddof=1)) if n_samples > 1 else 0.0
            zero_sq = n_zero * mean
            resid_sq = obs_sq + zero_sq
            stderr_zero = n_zero * np.sqrt(var / n_samples)
            # Propagate through fit = 1 - sqrt(resid)/sqrt(‖T‖²).
            stderr = float(
                stderr_zero / (2 * np.sqrt(max(resid_sq, 1e-300)) * np.sqrt(t_norm_sq))
            )
        fit = 1.0 - float(np.sqrt(max(0.0, resid_sq)) / np.sqrt(t_norm_sq))
        return fit, stderr

    def fit_observed(self, tensor: CooTensor) -> float:
        """Fit restricted to the *observed* (stored) coordinates:
        ``1 - ‖(T - X)|_Ω‖ / ‖T|_Ω‖``.

        Unlike :meth:`fit`, unobserved cells impose no zero penalty —
        the completion-style quality measure appropriate when the stored
        entries are samples rather than the full tensor.
        """
        t_norm = float(np.linalg.norm(tensor.values))
        if t_norm == 0.0:
            return 1.0
        resid = tensor.values - self.values_at(tensor.indices)
        return 1.0 - float(np.linalg.norm(resid) / t_norm)

    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize the dense tensor (test oracles; small shapes only)."""
        from ..ops.dense_ref import cp_reconstruct

        return cp_reconstruct(self.factors, self.weights)

    def normalized(self) -> "KruskalTensor":
        """Return a copy with unit-norm factor columns, norms folded into
        ``weights``."""
        from ..ops.hadamard import normalize_columns

        weights = self.weights.copy()
        factors = []
        for f in self.factors:
            nf, lam = normalize_columns(f)
            factors.append(nf)
            weights = weights * lam
        return KruskalTensor(weights, factors)

    def with_factor(self, mode: int, factor: np.ndarray) -> "KruskalTensor":
        """Copy with one factor matrix replaced."""
        factors = list(self.factors)
        factors[mode] = np.asarray(factor)
        return KruskalTensor(self.weights.copy(), factors)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist the model as a compressed ``.npz`` archive
        (``weights`` + one ``factor_<m>`` array per mode)."""
        arrays = {"weights": self.weights}
        for m, f in enumerate(self.factors):
            arrays[f"factor_{m}"] = f
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: str) -> "KruskalTensor":
        """Load a model written by :meth:`save`.

        Raises
        ------
        ValueError
            If the archive is missing the expected arrays.
        """
        with np.load(path) as data:
            if "weights" not in data:
                raise ValueError(f"{path}: not a KruskalTensor archive")
            weights = data["weights"]
            factors = []
            m = 0
            while f"factor_{m}" in data:
                factors.append(data[f"factor_{m}"])
                m += 1
            if not factors:
                raise ValueError(f"{path}: no factor matrices found")
        return cls(weights, factors)
