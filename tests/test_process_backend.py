"""Unit tests for the ``processes`` backend plumbing.

Covers the executor surface (:class:`SimulatedPool` dispatch rules, the
shared worker-pool registry) and the shared-memory layer
(:class:`SharedArena` / :func:`attach` round-trips, the zero-copy factor
slot update, :class:`ReplicatedArray` external buffers).  The end-to-end
bit-identity of the engine under this backend lives in
``tests/test_threads_stress.py``.
"""

import numpy as np
import pytest

from repro.parallel import (
    EXEC_BACKENDS,
    ReplicatedArray,
    SharedArena,
    ShmToken,
    SimulatedPool,
    attach,
    shutdown_worker_pools,
)
from repro.parallel.shm import attached_segment_count


def _double_task(payload):
    """Module-level task: picklable across the process boundary."""
    th, x = payload
    return (th, x * 2)


def _sum_task(token):
    """Read a shared segment inside the worker and reduce it."""
    return float(attach(token).sum())


class TestSimulatedPool:
    def test_exec_backends_exposes_all_three(self):
        assert EXEC_BACKENDS == ("serial", "threads", "processes")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SimulatedPool(2, "mpi")

    def test_map_raises_under_processes(self):
        pool = SimulatedPool(2, "processes")
        with pytest.raises(TypeError, match="run_tasks"):
            pool.map(lambda th: th)

    @pytest.mark.parametrize("backend", EXEC_BACKENDS)
    def test_run_tasks_results_in_payload_order(self, backend):
        pool = SimulatedPool(3, backend)
        payloads = [(th, th + 10) for th in range(3)]
        assert pool.run_tasks(_double_task, payloads) == [
            (0, 20), (1, 22), (2, 24)
        ]

    def test_run_tasks_single_thread_processes_runs_inline(self):
        # num_threads == 1 short-circuits: no pool spawn for serial work.
        pool = SimulatedPool(1, "processes")
        assert pool.run_tasks(_double_task, [(0, 1)]) == [(0, 2)]

    def test_shutdown_worker_pools_idempotent_and_respawns(self):
        pool = SimulatedPool(2, "processes")
        assert pool.run_tasks(_double_task, [(0, 1), (1, 2)]) == [
            (0, 2), (1, 4)
        ]
        shutdown_worker_pools()
        shutdown_worker_pools()  # idempotent
        # A fresh dispatch transparently builds a new shared pool.
        assert pool.run_tasks(_double_task, [(0, 3)]) == [(0, 6)]


class TestSharedArena:
    def test_share_round_trip(self):
        arena = SharedArena()
        try:
            src = np.arange(12, dtype=np.float64).reshape(3, 4)
            token = arena.share(src)
            assert isinstance(token, ShmToken)
            assert token.shape == (3, 4)
            assert np.array_equal(arena.array(token), src)
            assert np.array_equal(attach(token), src)
        finally:
            arena.close()

    def test_updates_visible_through_attach_without_resharing(self):
        """The zero-copy contract: the coordinator writes into the slot,
        every existing attachment sees the new values."""
        arena = SharedArena()
        try:
            token = arena.zeros((4, 2))
            view = attach(token)
            assert view.sum() == 0.0
            arena.array(token)[...] = 7.0
            assert view.sum() == 7.0 * 8
        finally:
            arena.close()

    def test_worker_reads_coordinator_update(self):
        """A forked worker attaches the segment and sees in-place slot
        updates across successive dispatches — no re-pickling."""
        arena = SharedArena()
        pool = SimulatedPool(2, "processes")
        try:
            token = arena.share(np.ones((5, 3)))
            assert pool.run_tasks(_sum_task, [token, token]) == [15.0, 15.0]
            arena.array(token)[...] = 2.0
            assert pool.run_tasks(_sum_task, [token, token]) == [30.0, 30.0]
        finally:
            arena.close()

    def test_len_counts_segments(self):
        arena = SharedArena()
        try:
            assert len(arena) == 0
            arena.zeros((2, 2))
            arena.share(np.ones(3))
            assert len(arena) == 2
        finally:
            arena.close()
        assert len(arena) == 0

    def test_close_idempotent_and_unlinks(self):
        arena = SharedArena()
        token = arena.zeros((2, 2))
        arena.close()
        arena.close()  # idempotent
        # The segment is gone: a fresh (uncached) attach must fail.
        fresh = ShmToken(token.name + "-x", token.shape, token.dtype)
        with pytest.raises(FileNotFoundError):
            attach(fresh)

    def test_attach_cache_reuses_mapping(self):
        arena = SharedArena()
        try:
            token = arena.zeros((3, 3))
            before = attached_segment_count()
            first = attach(token)
            after_first = attached_segment_count()
            second = attach(token)
            assert second is first  # same cached view, no re-mmap
            assert attached_segment_count() == after_first
            assert after_first >= before
        finally:
            arena.close()

    def test_token_nbytes(self):
        token = ShmToken("t", (3, 4), "<f8")
        assert token.nbytes() == 3 * 4 * 8


class TestReplicatedArrayExternalBuffer:
    def test_buffer_shape_validated(self):
        with pytest.raises(ValueError, match="buffer shape"):
            ReplicatedArray(10, 2, 3, buffer=np.zeros((10, 2)))

    def test_external_buffer_zeroed_and_used(self):
        buf = np.full((10 + 3, 2), 99.0)
        rep = ReplicatedArray(10, 2, 3, buffer=buf)
        assert rep.buffer is buf
        assert buf.sum() == 0.0  # init must zero caller storage
        rep.view(0, 0, 4)[...] = 1.0
        rep.view(1, 3, 8)[...] = 1.0
        merged = rep.merge()
        assert merged.shape == (10, 2)
        # Row 3 is the shared boundary node: both stripes contribute.
        assert np.array_equal(merged[3], [2.0, 2.0])

    def test_record_only_view_matches_worker_writes(self):
        """The coordinator-side pattern for the processes backend: the
        worker writes the shifted stripe directly into shared storage and
        the coordinator only *records* the range via view()."""
        buf = np.zeros((8 + 2, 2))
        rep = ReplicatedArray(8, 2, 2, buffer=buf)
        # "Worker" writes thread 1's stripe for nodes [2, 6) at slot +1.
        buf[2 + 1 : 6 + 1] += 5.0
        rep.view(1, 2, 6)  # record only — no coordinator-side write
        merged = rep.merge()
        assert np.array_equal(merged[2:6], np.full((4, 2), 5.0))
        assert merged[:2].sum() == 0.0 and merged[6:].sum() == 0.0
