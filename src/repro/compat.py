"""Retired-keyword guard rails.

Three PRs of engines accreted three spellings for the same knobs:
``threads`` vs ``num_threads``, ``backend`` vs ``exec_backend`` (and, on
:func:`~repro.cpd.als.cp_als`, ``backend=`` meaning the *engine object*).
The canonical names are

* ``num_threads`` — simulated/real thread count,
* ``exec_backend`` — ``"serial" | "threads" | "processes"`` pool mode,
* ``engine`` — the MTTKRP engine object handed to ``cp_als``.

The old spellings went through a deprecation cycle (accepted with a
:class:`DeprecationWarning`) and are now **removed**:
:func:`canonicalize_kwargs` raises ``TypeError`` for a retired spelling
with a migration hint naming the canonical keyword, and raises the
ordinary unknown-keyword ``TypeError`` for anything else — so typos
still fail loudly instead of being swallowed by a ``**kwargs`` sink.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

__all__ = ["canonicalize_kwargs", "resolve_engine_aliases"]


def canonicalize_kwargs(
    owner: str,
    extra: Dict[str, Any],
    aliases: Mapping[str, str],
) -> None:
    """Reject retired keyword spellings with a migration hint.

    Parameters
    ----------
    owner:
        The accepting callable's name (used in the error text).
    extra:
        The ``**kwargs`` catch-all as received.
    aliases:
        ``{retired_name: canonical_name}``.

    Raises
    ------
    TypeError
        For a retired spelling (with the canonical replacement named),
        or for keywords that were never valid.
    """
    for key in extra:
        new = aliases.get(key)
        if new is None:
            raise TypeError(f"{owner}() got an unexpected keyword argument {key!r}")
        raise TypeError(
            f"{owner}() no longer accepts {key!r}; pass {new}= instead "
            f"(the {key}= spelling was removed after its deprecation cycle)"
        )


def resolve_engine_aliases(
    owner: str,
    num_threads,
    exec_backend,
    extra: Dict[str, Any],
) -> Tuple[Any, str]:
    """The engine-constructor flavor of :func:`canonicalize_kwargs`.

    Rejects the two retired engine spellings (``threads=`` and
    ``backend=``) with migration hints, and normalizes a defaulted
    ``exec_backend`` to ``"serial"``.
    """
    canonicalize_kwargs(
        owner, extra, {"backend": "exec_backend", "threads": "num_threads"}
    )
    return num_threads, (exec_backend if exec_backend is not None else "serial")
