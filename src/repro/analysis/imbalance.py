"""Load-imbalance analysis across partitioning strategies (Fig. 2 / 6.1).

Compares the slice and nnz work distributions on one tensor the way the
paper's Section II-D prose does: active thread counts, percentage
imbalance, and the stretch factor each schedule imposes on a perfectly
parallel execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.schedule import WorkSchedule, build_schedule
from ..tensor.csf import CsfTensor

__all__ = ["StrategyComparison", "compare_strategies"]


@dataclass(frozen=True)
class StrategyComparison:
    """Side-by-side schedule diagnostics for one tensor/thread count."""

    num_threads: int
    schedules: Dict[str, WorkSchedule]

    def summary_rows(self) -> Dict[str, Dict[str, float]]:
        """Per-strategy diagnostics for the report layer."""
        out: Dict[str, Dict[str, float]] = {}
        for name, ws in self.schedules.items():
            out[name] = {
                "active_threads": float(ws.active_threads),
                "imbalance_pct": ws.imbalance_percent,
                "max_over_mean": ws.max_over_mean,
                "replicated_rows": float(ws.replicated_rows),
            }
        return out

    def stretch_ratio(self) -> float:
        """How much slower the slice schedule is than the nnz schedule in
        the bandwidth-bound machine model (>1 = nnz wins)."""
        return (
            self.schedules["slice"].max_over_mean
            / self.schedules["nnz"].max_over_mean
        )


def compare_strategies(csf: CsfTensor, num_threads: int) -> StrategyComparison:
    """Build both schedules for ``csf`` at ``num_threads``."""
    return StrategyComparison(
        num_threads=num_threads,
        schedules={
            "nnz": build_schedule(csf, num_threads, "nnz"),
            "slice": build_schedule(csf, num_threads, "slice"),
        },
    )
