"""Dense reference implementations — the test oracle.

Every sparse kernel in :mod:`repro.core` and :mod:`repro.baselines` is
validated against this module on small random tensors.  Everything here
favours obvious correctness over speed: plain ``einsum`` on materialized
dense arrays.

Conventions
-----------
Mode-``u`` unfolding is C-order: ``T_(u) = moveaxis(T, u, 0).reshape(I_u, -1)``
with the remaining modes in increasing order, the last varying fastest.
:func:`repro.ops.krp.khatri_rao_excluding` chains factors in increasing
mode order with the first operand varying slowest, which matches this
unfolding exactly; the pair ``(unfold, khatri_rao_excluding)`` therefore
reproduces the textbook ``Ā^(u) = T_(u) · ⊙_{m≠u} A^(m)``.
"""

from __future__ import annotations

# This module is the deliberately-naive reference path: obvious-by-
#-inspection kernels the fast implementations are validated against.
# Hot-path idioms (np.add.at, per-nnz loops) are the point here, not a bug.
# It is never traffic-counted and never a compilation candidate either.
# lint: disable-file=hot-path,flow.traffic-conformance,flow.jit-readiness

from typing import List, Sequence

import numpy as np

from ..tensor.coo import CooTensor
from .krp import khatri_rao_excluding

__all__ = [
    "unfold",
    "mttkrp_dense",
    "mttkrp_coo_reference",
    "partial_mttkrp_dense",
    "cp_reconstruct",
    "cp_fit",
]


def unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding (C-order, increasing remaining modes)."""
    tensor = np.asarray(tensor)
    return np.moveaxis(tensor, mode, 0).reshape(tensor.shape[mode], -1)


def mttkrp_dense(
    tensor: np.ndarray, factors: Sequence[np.ndarray], mode: int
) -> np.ndarray:
    """Textbook MTTKRP on a dense ndarray: ``T_(u) · ⊙_{m≠u} A^(m)``."""
    krp = khatri_rao_excluding(list(factors), mode)
    return unfold(tensor, mode) @ krp


def mttkrp_coo_reference(
    tensor: CooTensor, factors: Sequence[np.ndarray], mode: int
) -> np.ndarray:
    """Sparse-aware but deliberately simple MTTKRP over COO.

    For each non-zero, multiply the value by the Hadamard product of the
    relevant factor rows and scatter into the output row.  O(nnz·d·R), no
    tree reuse — a second, structurally different oracle to defend against
    a bug shared by the dense path and the CSF kernels.
    """
    n_out = tensor.shape[mode]
    rank = np.asarray(factors[0]).shape[1]
    acc = tensor.values[:, None] * np.ones((tensor.nnz, rank))
    for m in range(tensor.ndim):
        if m == mode:
            continue
        acc = acc * np.asarray(factors[m])[tensor.indices[m]]
    out = np.zeros((n_out, rank))
    np.add.at(out, tensor.indices[mode], acc)
    return out


def partial_mttkrp_dense(
    tensor: np.ndarray, factors: Sequence[np.ndarray], upto: int
) -> np.ndarray:
    """Dense partial MTTKRP result ``P^(upto)``: the tensor with factor
    matrices ``A^(upto+1) .. A^(d-1)`` contracted out (Section II-A).

    Returns an array of shape ``I_0 × ... × I_upto × R``.
    ``P^(d-1)`` is the tensor itself broadcast against nothing, so ``upto``
    must satisfy ``0 <= upto <= d-2``.
    """
    tensor = np.asarray(tensor)
    d = tensor.ndim
    if not 0 <= upto <= d - 2:
        raise ValueError(f"upto={upto} out of range for d={d}")
    rank = np.asarray(factors[0]).shape[1]
    # Contract the last mode first (TTM), then successive mTTVs.
    out = np.einsum("...k,kr->...r", tensor, np.asarray(factors[d - 1]))
    for m in range(d - 2, upto, -1):
        out = np.einsum("...kr,kr->...r", out, np.asarray(factors[m]))
    assert out.shape == tensor.shape[: upto + 1] + (rank,)
    return out


def cp_reconstruct(
    factors: Sequence[np.ndarray], weights: np.ndarray | None = None
) -> np.ndarray:
    """Materialize the dense tensor of a Kruskal model
    ``sum_r λ_r · a_r^(0) ∘ a_r^(1) ∘ ...``."""
    factors = [np.asarray(f) for f in factors]
    rank = factors[0].shape[1]
    lam = np.ones(rank) if weights is None else np.asarray(weights)
    subs = []
    letters = "abcdefghij"
    for m in range(len(factors)):
        subs.append(f"{letters[m]}r")
    spec = ",".join(subs) + ",r->" + letters[: len(factors)]
    return np.einsum(spec, *factors, lam)


def cp_fit(
    dense: np.ndarray,
    factors: Sequence[np.ndarray],
    weights: np.ndarray | None = None,
) -> float:
    """CP fit ``1 - ‖T - X‖ / ‖T‖`` against a dense tensor (test use)."""
    recon = cp_reconstruct(factors, weights)
    denom = np.linalg.norm(dense)
    if denom == 0:
        return 1.0
    return 1.0 - float(np.linalg.norm(dense - recon) / denom)
