"""Fidelity tests: vectorized kernels vs the per-node Algorithm 4-8
rendering (the third oracle)."""

import numpy as np
import pytest

from repro.core import MemoPlan, MemoizedMttkrp, enumerate_plans
from repro.core.reference import ReferenceEngine
from repro.ops import mttkrp_dense
from repro.tensor import CsfTensor, random_tensor
from tests.conftest import make_factors


@pytest.fixture(scope="module")
def small4():
    t = random_tensor((7, 6, 5, 4), nnz=90, seed=13)
    return t, CsfTensor.from_coo(t), make_factors(t.shape, 3, seed=14)


class TestAgainstOracle:
    def test_reference_matches_dense(self, small4):
        t, csf, fac = small4
        dense = t.to_dense()
        ref = ReferenceEngine(csf, 3, plan=MemoPlan((1, 2)), num_threads=2)
        for mode, res in ref.iteration_results(fac):
            assert np.allclose(res, mttkrp_dense(dense, fac, mode))


class TestEngineFidelity:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_engine_equals_reference_all_plans(self, small4, threads):
        """The production kernels compute exactly what the paper's
        per-node control flow computes, for every memoization plan."""
        t, csf, fac = small4
        for plan in enumerate_plans(t.ndim):
            ref = ReferenceEngine(csf, 3, plan=plan, num_threads=threads)
            eng = MemoizedMttkrp(csf, 3, plan=plan, num_threads=threads)
            for (m1, a), (m2, b) in zip(
                ref.iteration_results(fac), eng.iteration_results(fac)
            ):
                assert m1 == m2
                assert np.allclose(a, b, atol=1e-10), (plan, m1)

    def test_memo_buffers_match_engine(self, small4):
        """The replicated-slot memo buffers merge to the engine's memo."""
        t, csf, fac = small4
        plan = MemoPlan((1, 2))
        ref = ReferenceEngine(csf, 3, plan=plan, num_threads=3)
        eng = MemoizedMttkrp(csf, 3, plan=plan, num_threads=3)
        ref.mode0(fac)
        eng.mode0(fac)
        for lvl in plan.save_levels:
            assert np.allclose(ref._merged_memo(lvl), eng.memo[lvl])

    def test_3d_and_2d(self):
        for shape, nnz in (((8, 6, 5), 70), ((9, 7), 30)):
            t = random_tensor(shape, nnz, seed=5)
            csf = CsfTensor.from_coo(t)
            fac = make_factors(t.shape, 2, seed=6)
            dense = t.to_dense()
            ref = ReferenceEngine(csf, 2, num_threads=2)
            for mode, res in ref.iteration_results(fac):
                assert np.allclose(res, mttkrp_dense(dense, fac, mode))

    def test_missing_memo_raises(self, small4):
        t, csf, fac = small4
        ref = ReferenceEngine(csf, 3, plan=MemoPlan((1,)), num_threads=2)
        with pytest.raises(RuntimeError, match="mode0"):
            ref.mode_level(fac, 1)

    def test_invalid_plan(self, small4):
        t, csf, _ = small4
        with pytest.raises(ValueError):
            ReferenceEngine(csf, 3, plan=MemoPlan((3,)))
