"""Vectorized per-thread CSF sweep primitives.

Algorithms 4-8 of the paper are recursive pointer-chasing loops over the
CSF tree.  A pure-Python transcription would spend all its time in the
interpreter, so this module re-expresses each loop as a *level-by-level
vectorized sweep* — identical arithmetic, identical access pattern, one
NumPy call per tree level instead of one Python iteration per node:

* **upward sweep** (:func:`thread_upward_sweep`) — the TTM + chain of
  mTTV contractions that produce the partial results ``t_i`` /
  ``P^(i)``: per level, one gather of factor rows, one elementwise
  multiply, one ``np.add.reduceat`` segmented sum over the ``ptr`` array.
* **downward sweep** (:func:`thread_downward_k`) — the ``k_i`` rows of
  Algorithm 5 (row-wise KRP of ``A^(0..i)`` along each tree path): per
  level, one ``np.repeat`` expansion by child counts and one gather-
  multiply.
* **scatter** (:func:`scatter_add_rows`) — the ``Ā^(u)[idx] += ...``
  accumulation, implemented as one ``bincount`` per rank column (gathered
  writes with duplicate indices).

Thread decomposition follows Algorithm 3: every primitive takes a
*half-open child range* owned by the calling thread and clips segment
boundaries to it.  Boundary tree nodes are therefore computed *partially*
by each adjacent thread; because every contraction is linear in ``t``,
partial contributions merge correctly at any level (this is exactly the
property STeF's boundary-replication scheme exploits).

The inner loops themselves live behind the flat-array kernel ABI
(:mod:`repro.kernels`): every primitive here takes a ``tier=`` name and
routes its gathers, multiplies, expansions and segmented reduces through
the dispatch layer, so the same wrapper drives either the NumPy
reference tier or the Numba-compiled tier with bit-identical results.
Traffic stays charged in these wrappers (never inside the tiers), which
is what keeps TrafficCounter totals exactly equal across tiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..kernels.dispatch import (
    TIER_NUMPY,
    gather_multiply_rows,
    parent_of,
    repeat_rows,
    scatter_rows_add,
    segment_reduce_rows,
    take_factor_rows,
    value_gather_rows,
)
from ..parallel.counters import NULL_COUNTER, TrafficCounter
from ..tensor.csf import CsfTensor

__all__ = [
    "scatter_add_rows",
    "LevelSlice",
    "thread_level_ranges",
    "thread_upward_sweep",
    "thread_downward_k",
    "serial_upward_sweep",
]


def scatter_add_rows(
    out: np.ndarray, idx: np.ndarray, rows: np.ndarray, tier: str = TIER_NUMPY
) -> None:
    """``out[idx[p], :] += rows[p, :]`` with duplicate indices.

    Sorts by target row and segment-reduces — one vectorized pass over
    all rank columns at once, with temporaries sized by the *input*
    (nnz) rather than the output matrix.  Orders of magnitude faster
    than ``np.add.at`` and beats per-column ``bincount`` whenever the
    output has many rows.  The loop lives in the kernel ABI
    (:func:`repro.kernels.dispatch.scatter_rows_add`).
    """
    scatter_rows_add(out, idx, rows, tier=tier)


@dataclass(frozen=True)
class LevelSlice:
    """A thread's node window at one CSF level.

    ``lo`` is the first touched node; ``hi`` is one past the last touched
    node (so boundary nodes shared with a neighbouring thread are *inside*
    the window for both threads).
    """

    lo: int
    hi: int

    @property
    def count(self) -> int:
        return self.hi - self.lo


def ancestor_windows(
    csf: CsfTensor, level: int, lo: int, hi: int
) -> List[LevelSlice]:
    """Node windows at levels ``0..level`` for a thread owning the
    half-open position range ``[lo, hi)`` at ``level``.

    The window at level ``i < level`` spans the ancestors of the owned
    positions — inclusive of boundary nodes shared with neighbouring
    threads.  An empty range yields empty windows everywhere.
    """
    out: List[LevelSlice] = [LevelSlice(0, 0)] * (level + 1)
    if hi <= lo:
        return [LevelSlice(lo, lo)] * (level + 1)
    # O(d) window bookkeeping on a Python list, not element traffic.
    # lint: disable-next-line=flow.traffic-conformance
    out[level] = LevelSlice(lo, hi)
    a, b = lo, hi - 1
    for i in range(level - 1, -1, -1):
        a = parent_of(csf.ptr[i], a)
        b = parent_of(csf.ptr[i], b)
        # lint: disable-next-line=flow.traffic-conformance
        out[i] = LevelSlice(a, b + 1)
    return out


def thread_level_ranges(
    csf: CsfTensor, leaf_lo: int, leaf_hi: int
) -> List[LevelSlice]:
    """Node windows at every level for the thread owning leaves
    ``[leaf_lo, leaf_hi)`` — the ancestors of those leaves."""
    return ancestor_windows(csf, csf.ndim - 1, leaf_lo, leaf_hi)


def _segment_starts(
    csf: CsfTensor, level: int, window: LevelSlice, child_lo: int, child_hi: int
) -> np.ndarray:
    """Relative ``reduceat`` boundaries for the nodes of ``window`` at
    ``level`` over the thread-owned child positions ``[child_lo, child_hi)``."""
    starts = csf.ptr[level][window.lo : window.hi]
    return np.clip(starts, child_lo, child_hi) - child_lo


def thread_upward_sweep(
    csf: CsfTensor,
    level_factors: Sequence[np.ndarray],
    child_lo: int,
    child_hi: int,
    *,
    start_level: Optional[int] = None,
    init: Optional[np.ndarray] = None,
    stop_level: int = 0,
    tier: str = TIER_NUMPY,
) -> Dict[int, Tuple[int, np.ndarray]]:
    """One thread's share of the TTM/mTTV contraction chain.

    Parameters
    ----------
    csf:
        The tensor.
    level_factors:
        ``level_factors[i]`` is the factor matrix of the mode stored at
        CSF level ``i`` (callers translate from original mode numbering).
    child_lo, child_hi:
        Half-open range of positions this thread owns at ``start_level``
        (leaf positions when starting from the tensor values, node
        positions when starting from a memoized partial result).
    start_level:
        Level whose values seed the sweep.  Default ``d-1`` seeds from the
        tensor values; pass ``i`` with ``init`` to resume from a complete
        memoized ``P^(i)``.
    init:
        Full ``(m_start, R)`` array of memoized values when resuming.
    stop_level:
        Deepest level whose partial ``t`` should be *returned* — the sweep
        contracts down to (and including) ``stop_level``.
    tier:
        Kernel-ABI execution tier (``"numpy"`` or ``"numba"``); resolved
        by the owning engine's ``jit=`` knob.

    Returns
    -------
    dict
        ``level -> (node_lo, t_partial)`` for ``stop_level <= level <
        start_level``; ``t_partial[j]`` is this thread's (possibly
        partial, for boundary nodes) contribution to node
        ``node_lo + j``.  Empty ranges produce zero-row arrays.
    """
    d = csf.ndim
    if start_level is None:
        start_level = d - 1
    if not stop_level <= start_level:
        raise ValueError(f"stop_level {stop_level} > start_level {start_level}")
    rank = np.asarray(level_factors[-1]).shape[1]
    out: Dict[int, Tuple[int, np.ndarray]] = {}

    if child_hi <= child_lo:
        for level in range(stop_level, start_level):
            out[level] = (0, np.zeros((0, rank)))
        return out

    # Seed contributions at the start level, already multiplied by the
    # start level's factor rows (the TTM step when starting from leaves).
    if start_level == d - 1:
        contrib = value_gather_rows(
            csf.values,
            np.asarray(level_factors[d - 1]),
            csf.idx[d - 1],
            child_lo,
            child_hi,
            tier=tier,
        )
    else:
        if init is None:
            raise ValueError("resuming from a memoized level requires init")
        contrib = gather_multiply_rows(
            init[child_lo:child_hi],
            np.asarray(level_factors[start_level]),
            csf.idx[start_level],
            child_lo,
            child_hi,
            tier=tier,
        )

    lo, hi = child_lo, child_hi
    for level in range(start_level - 1, stop_level - 1, -1):
        window = LevelSlice(
            parent_of(csf.ptr[level], lo),
            parent_of(csf.ptr[level], hi - 1) + 1,
        )
        rel = _segment_starts(csf, level, window, lo, hi)
        t_partial = segment_reduce_rows(contrib, rel, tier=tier)
        out[level] = (window.lo, t_partial)
        if level > stop_level:
            contrib = gather_multiply_rows(
                t_partial,
                np.asarray(level_factors[level]),
                csf.idx[level],
                window.lo,
                window.hi,
                tier=tier,
            )
            lo, hi = window.lo, window.hi
    return out


def expand_rows(
    csf: CsfTensor,
    rows: np.ndarray,
    level: int,
    window: LevelSlice,
    child_window: LevelSlice,
    tier: str = TIER_NUMPY,
) -> np.ndarray:
    """Repeat per-node ``rows`` at ``level`` once per owned child.

    Child counts are clipped to ``child_window`` so boundary nodes only
    expand over the children this thread owns.
    """
    child_starts = np.clip(
        csf.ptr[level][window.lo : window.hi], child_window.lo, child_window.hi
    )
    child_ends = np.clip(
        csf.ptr[level][window.lo + 1 : window.hi + 1],
        child_window.lo,
        child_window.hi,
    )
    return repeat_rows(rows, child_ends - child_starts, tier=tier)


def thread_downward_k(
    csf: CsfTensor,
    level_factors: Sequence[np.ndarray],
    level: int,
    lo: int,
    hi: int,
    *,
    multiply_last: bool = False,
    windows: Optional[List[LevelSlice]] = None,
    tier: str = TIER_NUMPY,
) -> np.ndarray:
    """One thread's ``k`` rows aligned with the half-open node range
    ``[lo, hi)`` at ``level``.

    With the default ``multiply_last=False`` this is the ``k_{level-1}``
    vector of Algorithm 5 *expanded to level-``level`` positions*: the
    row-wise KRP of the factor matrices of levels ``0..level-1`` along
    each node's ancestor path — exactly the left operand of the mode-``u``
    update ``Ā^(u)[idx] += k_{u-1} ⊙ t_u``.  Pass ``multiply_last=True``
    to also fold in level ``level``'s own factor rows (full ``k_level``).

    The sweep starts at the root window (the ancestors of the owned
    range) and expands down: at each level the per-node ``k`` row is
    repeated once per owned child (:func:`expand_rows`) and multiplied by
    the child's factor row.  Returns ``(hi - lo, R)`` rows.
    """
    rank = np.asarray(level_factors[0]).shape[1]
    if hi <= lo:
        return np.zeros((0, rank))
    if windows is None:
        windows = ancestor_windows(csf, level, lo, hi)
    w0 = windows[0]
    k = take_factor_rows(
        np.asarray(level_factors[0]), csf.idx[0], w0.lo, w0.hi, tier=tier
    )
    if level == 0:
        return k if multiply_last else np.ones((hi - lo, rank))
    for i in range(level):
        w, w_child = windows[i], windows[i + 1]
        k = expand_rows(csf, k, i, w, w_child, tier=tier)
        if i + 1 < level or multiply_last:
            k = gather_multiply_rows(
                k,
                np.asarray(level_factors[i + 1]),
                csf.idx[i + 1],
                w_child.lo,
                w_child.hi,
                tier=tier,
            )
    return k


def serial_upward_sweep(
    csf: CsfTensor,
    level_factors: Sequence[np.ndarray],
    *,
    stop_level: int = 0,
    start_level: Optional[int] = None,
    init: Optional[np.ndarray] = None,
    counter: TrafficCounter = NULL_COUNTER,
    tier: str = TIER_NUMPY,
) -> Dict[int, np.ndarray]:
    """Single-threaded full sweep: complete ``t`` arrays per level.

    A thin wrapper over :func:`thread_upward_sweep` with one thread owning
    everything — used by tests and by the serial reference path.  Pass a
    ``counter`` to charge the same structure/sweep legs the threaded path
    charges (:func:`repro.core.proc_tasks.charge_sweep` with one thread
    owning every node); the default ``NULL_COUNTER`` discards them.
    """
    d = csf.ndim
    if start_level is None:
        start_level = d - 1
    rank = int(np.asarray(level_factors[0]).shape[1])
    owned = np.zeros(d, dtype=np.int64)
    for level in range(stop_level, start_level + 1):
        owned[level] = csf.nnz if level == d - 1 else csf.fiber_counts[level]
    counter.read(2.0 * int(owned.sum()), "structure")
    counter.flop(2.0 * rank * int(owned[1:].sum()), "sweep")
    n_children = csf.nnz if start_level == d - 1 else csf.fiber_counts[start_level]
    parts = thread_upward_sweep(
        csf,
        level_factors,
        0,
        n_children,
        start_level=start_level,
        init=init,
        stop_level=stop_level,
        tier=tier,
    )
    return {level: t for level, (lo, t) in parts.items()}
