"""Shared interprocedural state for the flow rules.

Built once per ``repro lint --flow`` run (lazily, through
:attr:`repro.lint.framework.ProjectContext.analysis`) and shared by every
project-scope rule:

* the :class:`~.callgraph.CallGraph` over all linted files;
* :class:`~.facts.FunctionFacts` per function (CFG, charge/access/
  lifecycle sites), built on demand and cached;
* **transitive charge categories** — the least fixpoint of
  ``cats(f) = direct(f) ∪ ⋃ cats(callee)`` over the call graph, giving
  each kernel its "charged categories" summary (what the traffic model
  can possibly attribute when this kernel runs);
* **coverage** — a statement *covers* traffic when it charges directly
  or calls (or dispatches to) a function whose transitive categories are
  non-empty; an access site is intra-covered when some covering node
  dominates or postdominates it;
* the **external-coverage fixpoint** — a function whose accesses are not
  intra-covered is still conformant when every analyzed call site of it
  is covered in its caller (the dimtree pattern: pure helpers in
  ``ops/partial.py`` are bracketed by the caller's charges).  Computed as
  a greatest fixpoint so mutually recursive helpers don't flip-flop; a
  function with *no* analyzed call sites can never be externally covered.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, TYPE_CHECKING

from ..rules.hot_path import is_kernel_path
from .callgraph import CallGraph, CallSite, FunctionInfo
from .facts import AccessSite, FunctionFacts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..framework import ProjectContext

__all__ = ["FlowAnalysis"]


class FlowAnalysis:
    """Call graph + per-function facts + coverage, computed once per run."""

    def __init__(self, project: "ProjectContext") -> None:
        self.project = project
        self.graph = CallGraph(project.files)
        self._facts: Dict[str, FunctionFacts] = {}
        self._transitive: Optional[Dict[str, Set[str]]] = None
        self._ext_covered: Optional[Set[str]] = None
        self._ported: Optional[Set[str]] = None

    # ------------------------------------------------------------------
    def facts(self, qname: str) -> FunctionFacts:
        if qname not in self._facts:
            self._facts[qname] = FunctionFacts(self.graph.functions[qname], self.graph)
        return self._facts[qname]

    def kernel_functions(self) -> List[FunctionInfo]:
        """Functions living in kernel modules, the traffic-conformance and
        JIT-readiness domain."""
        return [
            info
            for info in self.graph.functions.values()
            if is_kernel_path(info.ctx.posix_path)
        ]

    # ------------------------------------------------------------------
    # transitive charge categories
    # ------------------------------------------------------------------
    def transitive_categories(self) -> Dict[str, Set[str]]:
        """Least fixpoint of direct-∪-callee categories per function."""
        if self._transitive is not None:
            return self._transitive
        cats: Dict[str, Set[str]] = {
            q: set(self.facts(q).direct_categories()) for q in self.graph.functions
        }
        changed = True
        while changed:
            changed = False
            for q in self.graph.functions:
                for callee in self.graph.callees.get(q, ()):  # noqa: B007
                    add = cats.get(callee, set()) - cats[q]
                    if add:
                        cats[q] |= add
                        changed = True
        self._transitive = cats
        return cats

    def charged_categories(self, qname: str) -> Set[str]:
        """The per-kernel "charged categories" summary for one function."""
        return set(self.transitive_categories().get(qname, set()))

    def module_categories(self) -> Dict[str, Set[str]]:
        """Charged categories aggregated per kernel module — the summary
        tests cross-check against observed trace span deltas."""
        out: Dict[str, Set[str]] = {}
        for info in self.kernel_functions():
            out.setdefault(info.module, set()).update(
                self.charged_categories(info.qname)
            )
        return out

    # ------------------------------------------------------------------
    # coverage
    # ------------------------------------------------------------------
    def cover_nodes(self, qname: str) -> Set[int]:
        """CFG nodes of ``qname`` that account traffic: direct charges plus
        call/dispatch sites whose target transitively charges."""
        facts = self.facts(qname)
        nodes = set(facts.charge_nodes)
        cats = self.transitive_categories()
        for site in [s for s in self.graph.call_sites if s.caller == qname]:
            if cats.get(site.callee):
                nid = facts.cfg.node_of(site.stmt)
                if nid is not None:
                    nodes.add(nid)
        return nodes

    def uncovered_accesses(self, qname: str) -> List[AccessSite]:
        """Access sites of ``qname`` not dominated/postdominated by a
        covering node."""
        facts = self.facts(qname)
        cover = self.cover_nodes(qname)
        out: List[AccessSite] = []
        for site in facts.accesses:
            nid = facts.cfg.node_of(site.stmt)
            if nid is None or not facts.cfg.covered_by(nid, cover):
                out.append(site)
        return out

    def externally_covered(self) -> Set[str]:
        """Functions whose traffic is accounted at every analyzed call
        site (greatest fixpoint — see module docstring)."""
        if self._ext_covered is not None:
            return self._ext_covered
        candidates = {q for q in self.graph.functions if self.graph.callers.get(q)}
        ext = set(candidates)
        # Pre-compute per-caller cover nodes once; they don't change.
        cover_cache: Dict[str, Set[int]] = {}

        def site_covered(site: CallSite) -> bool:
            caller = site.caller
            if caller not in cover_cache:
                cover_cache[caller] = self.cover_nodes(caller)
            facts = self.facts(caller)
            nid = facts.cfg.node_of(site.stmt)
            if nid is not None and facts.cfg.covered_by(nid, cover_cache[caller]):
                return True
            return caller in ext

        changed = True
        while changed:
            changed = False
            for q in list(ext):
                if not all(site_covered(s) for s in self.graph.callers.get(q, [])):
                    ext.discard(q)
                    changed = True
        self._ext_covered = ext
        return ext

    # ------------------------------------------------------------------
    # JIT worklist
    # ------------------------------------------------------------------
    def ported_kernels(self) -> Set[str]:
        """Functions already routed through the flat-array kernel ABI:
        they call — directly or transitively — a function defined under
        ``repro/kernels/``.  Their inner loops live behind the dispatch
        layer (NumPy reference tier or Numba tier), so the Python that
        remains in their bodies is deliberately interpreted wrapper code
        (traffic charges, window bookkeeping, shm plumbing) and leaves
        the JIT worklist.  Least fixpoint over the call graph, like
        :meth:`transitive_categories`."""
        if self._ported is not None:
            return self._ported
        ported = {
            q
            for q, info in self.graph.functions.items()
            if info.module.startswith("repro.kernels")
        }
        changed = True
        while changed:
            changed = False
            for q in self.graph.functions:
                if q in ported:
                    continue
                if any(c in ported for c in self.graph.callees.get(q, ())):
                    ported.add(q)
                    changed = True
        self._ported = ported
        return ported

    def jit_candidates(self) -> List[FunctionInfo]:
        """Kernel-module functions still needing a nopython port:
        module-level (Numba does not JIT bound methods or closures),
        loop- or access-bearing (the inner loops worth compiling), not
        yet routed through the kernel ABI (:meth:`ported_kernels`), and
        not charge-only accounting helpers (they touch the
        TrafficCounter, never tensor data — there is nothing to
        compile)."""
        ported = self.ported_kernels()
        out: List[FunctionInfo] = []
        for info in self.kernel_functions():
            if info.cls is not None or info.parent is not None:
                continue
            if info.qname in ported:
                continue
            facts = self.facts(info.qname)
            if facts.charge_nodes and not facts.accesses:
                continue
            has_loop = any(
                isinstance(n, (ast.For, ast.While))
                for n in ast.walk(info.node)
            )
            if has_loop or facts.accesses:
                out.append(info)
        return out
