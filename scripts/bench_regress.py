#!/usr/bin/env python
"""Trace-metric regression gate.

Runs a fixed, deterministic CPD-ALS workload per (tensor, method,
exec-backend) cell with tracing on, and either **records** the resulting
metric trajectory to a JSON baseline or **compares** a fresh run against
a recorded baseline:

* **deterministic metrics** (``traffic.*`` totals and per-span
  ``*.count``) are gated: a relative change beyond ``--threshold``
  (default 15%) in either direction fails the run with exit code 1.
  Traffic is counted, not measured, so any drift means the kernels'
  work actually changed — an unannounced algorithmic regression (or an
  intended change that must re-record the baseline).
* **wall-clock metrics** (``*.seconds``) are advisory only: printed in
  the report, never gated — CI machines are too noisy for a hard bound.

CI runs record-then-compare on two small Table-I tensors so the gate
itself can never be broken by a stale checked-in baseline::

    python scripts/bench_regress.py record  --output /tmp/base.json
    python scripts/bench_regress.py compare --baseline /tmp/base.json

A long-lived baseline can be recorded into ``benchmarks/results/`` and
compared against across commits the same way.

The third subcommand, ``jit``, is the numpy-vs-compiled speedup arm: for
every jit-capable engine it runs the same MTTKRP workload on both kernel
tiers, **gates** the tier contract (bit-identical outputs, exactly equal
traffic totals) and reports the wall-clock speedup (advisory, like all
wall metrics here).  Without Numba it prints a skip notice and exits 0,
so the arm is safe on any runner; CI's with-numba arm passes
``--require`` to turn that skip into a failure::

    python scripts/bench_regress.py jit --require
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.cpd import cp_als
from repro.engines import create_engine
from repro.parallel import MACHINES, TrafficCounter
from repro.tensor import TABLE1_SPECS, generate
from repro.trace import Tracer, flat_metrics

DEFAULT_TENSORS = ("uber", "enron")
DEFAULT_METHODS = ("stef", "splatt-all")
#: (compiled-tier engine, reference engine) per jit-capable method.
JIT_PAIRS = (
    ("stef-jit", "stef"),
    ("stef2-jit", "stef2"),
    ("taco-jit", "taco"),
    ("dimtree-jit", "dimtree"),
)


def cell_key(tensor: str, method: str, exec_backend: str) -> str:
    return f"{tensor}/{method}/{exec_backend}"


def run_cell(
    tensor_name: str,
    method: str,
    exec_backend: str,
    *,
    nnz: int,
    rank: int,
    iters: int,
    threads: int,
    machine_name: str,
) -> dict:
    """One traced workload; returns the tracer's flat metrics dict."""
    tensor = generate(TABLE1_SPECS[tensor_name], nnz=nnz, seed=0)
    machine = MACHINES[machine_name]
    tracer = Tracer()
    counter = TrafficCounter(cache_elements=machine.cache_elements)
    with create_engine(
        method, tensor, rank, machine=machine, num_threads=threads,
        exec_backend=exec_backend, counter=counter, tracer=tracer,
    ) as engine:
        # compute_fit off + tol 0 → exactly `iters` iterations, so the
        # counted trajectory is a pure function of the kernels.
        cp_als(
            tensor, rank, engine=engine, max_iters=iters,
            compute_fit=False, seed=0, tracer=tracer,
        )
    return flat_metrics(tracer)


def collect(args) -> dict:
    cells = {}
    for tensor in args.tensors:
        for method in args.methods:
            key = cell_key(tensor, method, args.exec_backend)
            print(f"  running {key} ...", flush=True)
            cells[key] = run_cell(
                tensor, method, args.exec_backend,
                nnz=args.nnz, rank=args.rank, iters=args.iters,
                threads=args.threads, machine_name=args.machine,
            )
    return {
        "config": {
            "tensors": list(args.tensors),
            "methods": list(args.methods),
            "exec_backend": args.exec_backend,
            "nnz": args.nnz,
            "rank": args.rank,
            "iters": args.iters,
            "threads": args.threads,
            "machine": args.machine,
        },
        "cells": cells,
    }


def is_gated(metric: str) -> bool:
    """Deterministic metrics: counted traffic/flops and span counts."""
    return metric.startswith("traffic.") or metric.endswith(".count")


def compare(baseline: dict, current: dict, threshold: float) -> int:
    """Print the per-cell diff; return the number of gated regressions."""
    failures = 0
    for key, base_metrics in baseline["cells"].items():
        cur_metrics = current["cells"].get(key)
        if cur_metrics is None:
            print(f"FAIL {key}: cell missing from current run")
            failures += 1
            continue
        cell_bad = []
        advisory = []
        for metric, base_val in sorted(base_metrics.items()):
            if not isinstance(base_val, (int, float)):
                continue
            cur_val = cur_metrics.get(metric)
            if cur_val is None:
                if is_gated(metric):
                    cell_bad.append(f"{metric}: missing (was {base_val:g})")
                continue
            denom = abs(base_val) if base_val else 1.0
            rel = (cur_val - base_val) / denom
            if is_gated(metric):
                if abs(rel) > threshold:
                    cell_bad.append(
                        f"{metric}: {base_val:g} -> {cur_val:g} ({rel:+.1%})"
                    )
            elif metric.endswith(".seconds") and abs(rel) > threshold:
                advisory.append(
                    f"{metric}: {base_val:.4g}s -> {cur_val:.4g}s ({rel:+.1%})"
                )
        if cell_bad:
            failures += 1
            print(f"FAIL {key}")
            for line in cell_bad:
                print(f"     {line}")
        else:
            print(f"ok   {key}")
        for line in advisory:
            print(f"     (wall, advisory) {line}")
    return failures


def _timed_iteration(name, tensor, rank, factors, *, threads, jit):
    """One engine's full MTTKRP set: (results, counter snapshot, seconds).
    The engine is constructed outside the timer (jit="on" pays its
    compilation inside construction-adjacent first calls, so a warmup
    iteration runs untimed first)."""
    from repro.parallel.counters import TrafficCounter

    counter = TrafficCounter()
    with create_engine(
        name, tensor, rank, num_threads=threads, counter=counter, jit=jit
    ) as eng:
        eng.iteration_results(factors)  # warmup: triggers JIT compilation
        counter.reset()
        t0 = time.perf_counter()
        results = eng.iteration_results(factors)
        seconds = time.perf_counter() - t0
    return results, counter.snapshot(), seconds


def jit_speedup(args) -> int:
    """The numpy-vs-compiled arm: gate the tier contract, report speedup."""
    import numpy as np

    from repro.kernels.dispatch import jit_available

    if not jit_available():
        msg = ("compiled kernel tier unavailable "
               "(numba not importable, or REPRO_NO_JIT is set)")
        if args.require:
            print(f"FAIL: {msg}")
            return 1
        print(f"skip: {msg}")
        return 0
    rng = np.random.default_rng(0)
    failures = 0
    for tensor_name in args.tensors:
        tensor = generate(TABLE1_SPECS[tensor_name], nnz=args.nnz, seed=0)
        factors = [rng.standard_normal((n, args.rank)) for n in tensor.shape]
        for jit_name, base_name in JIT_PAIRS:
            res_j, snap_j, sec_j = _timed_iteration(
                jit_name, tensor, args.rank, factors,
                threads=args.threads, jit="on",
            )
            res_n, snap_n, sec_n = _timed_iteration(
                base_name, tensor, args.rank, factors,
                threads=args.threads, jit="off",
            )
            bad = []
            for (mode_j, out_j), (mode_n, out_n) in zip(res_j, res_n):
                if mode_j != mode_n or not np.array_equal(out_j, out_n):
                    bad.append(f"mode {mode_n}: outputs not bit-identical")
            if snap_j != snap_n:
                bad.append(f"traffic diverged: {snap_j} != {snap_n}")
            key = f"{tensor_name}/{base_name}"
            if bad:
                failures += 1
                print(f"FAIL {key}")
                for line in bad:
                    print(f"     {line}")
                continue
            speedup = sec_n / sec_j if sec_j > 0 else float("inf")
            print(f"ok   {key}: numpy {sec_n:.4f}s, jit {sec_j:.4f}s "
                  f"-> {speedup:.2f}x (advisory)")
    if failures:
        print(f"\n{failures} pair(s) violated the tier contract")
        return 1
    print("\ntier contract held on every pair; speedups are advisory")
    return 0


def serve_bench(args) -> int:
    """Throughput + correctness arm for the ``repro serve`` daemon.

    Boots an in-thread server, floods it with a mixed batch of Table-I
    jobs over two exec backends, then **gates** every result against a
    direct ``create_engine`` + ``cp_als`` run: factors and weights must
    be bit-identical and the per-job traffic deltas exactly equal.
    Reports requests/sec and the cache hit rate (advisory, like all wall
    metrics here).  ``--log-dir`` points the server's spool there so the
    JSONL request logs survive as a CI artifact.
    """
    import shutil
    import tempfile

    import numpy as np

    from repro.serve import (
        JobSpec, ServeClient, start_in_thread, wait_for_socket,
    )

    backends = ("serial", "threads")
    workdir = tempfile.mkdtemp(prefix="repro-serve-bench-")
    socket_path = os.path.join(workdir, "serve.sock")
    spool = args.log_dir or os.path.join(workdir, "spool")
    handle = start_in_thread(socket_path, spool, workers=args.workers)
    wait_for_socket(socket_path)

    specs = [
        JobSpec(
            tensor=tensor, nnz=args.nnz, tensor_seed=0, engine=method,
            rank=args.rank, machine=args.machine, num_threads=args.threads,
            exec_backend=backend, max_iters=args.iters, tol=0.0, seed=0,
            compute_fit=False, client="bench",
        )
        for tensor in args.tensors
        for method in args.methods
        for backend in backends
    ]
    print(f"  submitting {len(specs)} jobs "
          f"({len(args.tensors)} tensors x {len(args.methods)} methods "
          f"x {len(backends)} backends) ...", flush=True)
    t0 = time.perf_counter()
    try:
        with ServeClient(socket_path) as client:
            job_ids = [client.submit(spec)["job_id"] for spec in specs]
            jobs = [client.wait(job_id, timeout=600) for job_id in job_ids]
            stats = client.stats()
        elapsed = time.perf_counter() - t0
    finally:
        handle.stop()
        # With --log-dir the spool lives outside workdir and survives;
        # only the socket scratch directory goes.
        shutil.rmtree(workdir, ignore_errors=True)

    failures = 0
    for spec, job in zip(specs, jobs):
        label = f"{spec.tensor}/{spec.engine}/{spec.exec_backend}"
        if job["state"] != "done":
            print(f"    FAIL {label}: {job['state']} ({job['error']})")
            failures += 1
            continue
        tensor = generate(TABLE1_SPECS[spec.tensor], nnz=spec.nnz, seed=0)
        machine = MACHINES[spec.machine]
        counter = TrafficCounter(cache_elements=machine.cache_elements)
        with create_engine(
            spec.engine, tensor, spec.rank, machine=machine,
            num_threads=spec.num_threads, exec_backend=spec.exec_backend,
            counter=counter,
        ) as engine:
            direct = cp_als(
                tensor, spec.rank, engine=engine, max_iters=spec.max_iters,
                tol=spec.tol, seed=spec.seed, compute_fit=spec.compute_fit,
            )
        served = job["result"]
        identical = np.array_equal(
            np.asarray(served["weights"]), direct.model.weights
        ) and all(
            np.array_equal(np.asarray(got), want)
            for got, want in zip(served["factors"], direct.model.factors)
        )
        totals = {"reads": counter.reads, "writes": counter.writes,
                  "flops": counter.flops}
        totals.update(counter.by_category)
        traffic_equal = served["traffic"] == {
            k: v for k, v in totals.items() if v
        }
        if not identical or not traffic_equal:
            print(f"    FAIL {label}: "
                  f"{'factors differ' if not identical else 'traffic differs'}")
            failures += 1
        else:
            print(f"    ok   {label}: {served['iterations']} iters, "
                  f"cache {job['cache']}")

    print(f"\n  {len(specs)} requests in {elapsed:.2f}s = "
          f"{len(specs) / elapsed:.2f} requests/sec "
          f"(cache hit rate {stats['cache.hit_rate']:.0%}, "
          f"workers {args.workers})")
    if args.log_dir:
        logs = os.path.join(args.log_dir, "logs")
        count = len(os.listdir(logs)) if os.path.isdir(logs) else 0
        print(f"  request logs: {count} JSONL files under {logs}")
    if failures:
        print(f"\n{failures} job(s) diverged from direct runs")
        return 1
    print("\nall served results bit-identical to direct runs")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload(p):
        p.add_argument("--tensors", nargs="+", default=list(DEFAULT_TENSORS),
                       choices=sorted(TABLE1_SPECS))
        p.add_argument("--methods", nargs="+", default=list(DEFAULT_METHODS))
        p.add_argument("--exec-backend", default="serial",
                       choices=("serial", "threads", "processes"))
        p.add_argument("--nnz", type=int, default=3000)
        p.add_argument("--rank", type=int, default=8)
        p.add_argument("--iters", type=int, default=2)
        p.add_argument("--threads", type=int, default=2)
        p.add_argument("--machine", default="intel-clx-18",
                       choices=sorted(MACHINES))

    p_rec = sub.add_parser("record", help="record a metric baseline")
    add_workload(p_rec)
    p_rec.add_argument("--output", required=True, help="baseline JSON path")

    p_cmp = sub.add_parser("compare", help="compare against a baseline")
    p_cmp.add_argument("--baseline", required=True, help="baseline JSON path")
    p_cmp.add_argument("--threshold", type=float, default=0.15,
                       help="gated relative-change bound (default 0.15)")

    p_jit = sub.add_parser(
        "jit", help="numpy-vs-compiled tier: gate equality, report speedup"
    )
    p_jit.add_argument("--tensors", nargs="+", default=list(DEFAULT_TENSORS),
                       choices=sorted(TABLE1_SPECS))
    p_jit.add_argument("--nnz", type=int, default=3000)
    p_jit.add_argument("--rank", type=int, default=8)
    p_jit.add_argument("--threads", type=int, default=2)
    p_jit.add_argument("--require", action="store_true",
                       help="fail (instead of skip) when the compiled "
                       "tier is unavailable")

    p_srv = sub.add_parser(
        "serve", help="daemon throughput: gate bit-identity, report req/s"
    )
    add_workload(p_srv)
    p_srv.add_argument("--workers", type=int, default=3,
                       help="server worker threads (default 3)")
    p_srv.add_argument("--log-dir", default=None, dest="log_dir",
                       help="persist the server spool (JSONL request "
                       "logs under <log-dir>/logs) for artifact upload")

    args = parser.parse_args()
    if args.command == "jit":
        return jit_speedup(args)
    if args.command == "serve":
        return serve_bench(args)
    if args.command == "record":
        data = collect(args)
        with open(args.output, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
        print(f"recorded {len(data['cells'])} cells -> {args.output}")
        return 0

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    # Re-run the exact workload the baseline recorded.
    cfg = baseline["config"]
    ns = argparse.Namespace(
        tensors=cfg["tensors"], methods=cfg["methods"],
        exec_backend=cfg["exec_backend"], nnz=cfg["nnz"], rank=cfg["rank"],
        iters=cfg["iters"], threads=cfg["threads"], machine=cfg["machine"],
    )
    current = collect(ns)
    failures = compare(baseline, current, args.threshold)
    if failures:
        print(f"\n{failures} cell(s) regressed beyond "
              f"{args.threshold:.0%} on gated metrics")
        return 1
    print("\nall cells within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
