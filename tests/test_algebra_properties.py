"""Hypothesis property tests for the tensor-algebra identities the
library's correctness rests on."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ops import (
    cp_gram_norm_sq,
    gram,
    khatri_rao,
    khatri_rao_chain,
    krp_rows,
    mttkrp_dense,
    unfold,
)
from repro.ops.dense_ref import cp_reconstruct


@st.composite
def matrices(draw, max_rows=6, rank=None):
    r = rank or draw(st.integers(1, 4))
    rows = draw(st.integers(1, max_rows))
    data = draw(
        st.lists(
            st.floats(-5, 5, allow_nan=False, width=32),
            min_size=rows * r,
            max_size=rows * r,
        )
    )
    return np.array(data).reshape(rows, r)


@st.composite
def matrix_pairs(draw):
    r = draw(st.integers(1, 4))
    return draw(matrices(rank=r)), draw(matrices(rank=r))


@given(matrix_pairs())
@settings(max_examples=50, deadline=None)
def test_krp_gram_identity(pair):
    """(A ⊙ B)ᵀ(A ⊙ B) == (AᵀA) * (BᵀB) — the identity CPD-ALS uses to
    avoid forming the KRP (Algorithm 2's V matrices)."""
    a, b = pair
    m = khatri_rao(a, b)
    assert np.allclose(gram(m), gram(a) * gram(b), atol=1e-8)


@given(matrix_pairs())
@settings(max_examples=50, deadline=None)
def test_krp_column_norms(pair):
    """Column norms of a KRP factor into products of column norms."""
    a, b = pair
    m = khatri_rao(a, b)
    na = np.linalg.norm(a, axis=0)
    nb = np.linalg.norm(b, axis=0)
    assert np.allclose(np.linalg.norm(m, axis=0), na * nb, atol=1e-8)


@given(matrix_pairs(), st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_krp_rows_consistent_with_full(pair, seed):
    a, b = pair
    rng = np.random.default_rng(seed)
    ia = rng.integers(0, a.shape[0], 5)
    ib = rng.integers(0, b.shape[0], 5)
    full = khatri_rao(a, b)
    rows = krp_rows([a, b], [ia, ib])
    for p in range(5):
        assert np.allclose(rows[p], full[ia[p] * b.shape[0] + ib[p]])


@given(st.integers(1, 3), st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_cp_norm_identity(rank, seed):
    """‖[[λ; A, B, C]]‖² == λᵀ(⊛ AᵀA)λ for random models."""
    rng = np.random.default_rng(seed)
    shape = rng.integers(2, 5, size=3)
    factors = [rng.standard_normal((n, rank)) for n in shape]
    weights = rng.random(rank) + 0.1
    dense = cp_reconstruct(factors, weights)
    assert np.isclose(
        cp_gram_norm_sq(factors, weights), np.sum(dense**2), rtol=1e-8
    )


@given(st.integers(2, 4), st.integers(1, 3), st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_mttkrp_of_exact_cp_model(ndim, rank, seed):
    """For T = [[A_0..A_{d-1}]], MTTKRP_u(T) == A_u · ⊛_{m≠u}(A_mᵀA_m) —
    the fixed-point property that makes ALS stationary at exact models."""
    rng = np.random.default_rng(seed)
    shape = rng.integers(2, 5, size=ndim)
    factors = [rng.standard_normal((n, rank)) for n in shape]
    dense = cp_reconstruct(factors)
    for u in range(ndim):
        v = np.ones((rank, rank))
        for m in range(ndim):
            if m != u:
                v *= gram(factors[m])
        assert np.allclose(
            mttkrp_dense(dense, factors, u), factors[u] @ v, atol=1e-7
        )


@given(st.integers(2, 4), st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_unfold_preserves_norm_and_entries(ndim, seed):
    rng = np.random.default_rng(seed)
    shape = rng.integers(2, 5, size=ndim)
    t = rng.standard_normal(tuple(shape))
    for u in range(ndim):
        m = unfold(t, u)
        assert m.shape == (shape[u], t.size // shape[u])
        assert np.isclose(np.linalg.norm(m), np.linalg.norm(t))


@given(st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_chain_matches_nested_pairwise(seed):
    rng = np.random.default_rng(seed)
    r = int(rng.integers(1, 4))
    mats = [rng.standard_normal((int(rng.integers(1, 4)), r)) for _ in range(4)]
    nested = khatri_rao(khatri_rao(khatri_rao(mats[0], mats[1]), mats[2]), mats[3])
    assert np.allclose(khatri_rao_chain(mats), nested)
