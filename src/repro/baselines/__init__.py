"""Reimplemented baselines: SPLATT variants, AdaTM, ALTO, TACO-style.

Each baseline satisfies the MTTKRP-backend protocol of
:mod:`repro.cpd.als` (``mode_order`` + ``mttkrp_level``), so the one ALS
driver and benchmark harness serve every method.  :data:`ALL_BACKENDS`
maps harness names to constructors with the shared signature
``(tensor, rank, *, machine=None, num_threads=None,
exec_backend="serial", counter=NULL_COUNTER)``.
"""

from ..core.stef import Stef
from ..core.stef2 import Stef2
from .adatm import AdaTm, flop_count, flop_minimal_plan
from .alto_mttkrp import AltoBackend
from .dimtree import DimTreeBackend, build_mode_tree
from .splatt import Splatt1, Splatt2, SplattAll
from .taco import TacoBackend

# Imported after the base engines above: the jit module subclasses them.
from ..engines.jit import DimTreeJit, Stef2Jit, StefJit, TacoJit

#: Every method of Figures 3-4, keyed by its harness/plot name.
ALL_BACKENDS = {
    "stef": Stef,
    "stef2": Stef2,
    "adatm": AdaTm,
    "alto": AltoBackend,
    "splatt-1": Splatt1,
    "splatt-2": Splatt2,
    "splatt-all": SplattAll,
    "taco": TacoBackend,
    # Extension: the dimension-tree (BDT/HyperTensor) policy the paper
    # could not compare against (closed source, Section V).
    "dimtree": DimTreeBackend,
    # The compiled kernel tier (jit_default="auto"): same engines, same
    # traffic, Numba-compiled inner loops when the [jit] extra is there.
    "stef-jit": StefJit,
    "stef2-jit": Stef2Jit,
    "taco-jit": TacoJit,
    "dimtree-jit": DimTreeJit,
}

__all__ = [
    "StefJit",
    "Stef2Jit",
    "TacoJit",
    "DimTreeJit",
    "AdaTm",
    "flop_count",
    "flop_minimal_plan",
    "AltoBackend",
    "DimTreeBackend",
    "build_mode_tree",
    "Splatt1",
    "Splatt2",
    "SplattAll",
    "TacoBackend",
    "ALL_BACKENDS",
]
