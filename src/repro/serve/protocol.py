"""Wire protocol and job specification for the decomposition service.

Everything the daemon speaks is **line-delimited JSON** over a local
unix socket: one request object per line in, one (or more, for
``wait``-style ops) response objects per line out.  NDJSON keeps the
protocol inspectable with ``nc -U`` + eyes, trivially framable from
asyncio's ``readline``, and append-friendly for the request logs.

Two identities anchor the server's caching story:

* :func:`tensor_fingerprint` — a content hash over the *canonical* COO
  arrays (``from_arrays``-sorted indices, values, shape).  Two requests
  naming the same tensor differently (a ``.tns`` path vs the same
  non-zeros inlined) still collide onto one fingerprint, so they share
  one planned engine and one set of shm segments.
* :func:`cache_key` — the fingerprint joined with every *plan-affecting*
  option (engine, rank, machine, threads, exec backend, jit, memoize).
  ALS-trajectory options (iterations, tolerance, init, seed) are
  deliberately excluded: they do not change the planned engine, so runs
  that differ only there still hit the cache.

Floats survive the wire bit-exactly: ``json`` emits ``repr`` shortest
round-trip representations, so factor matrices serialized as nested
lists compare ``np.array_equal`` with the in-process result.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

import numpy as np

__all__ = [
    "MAX_LINE_BYTES",
    "JobSpec",
    "cache_key",
    "decode_line",
    "encode",
    "tensor_fingerprint",
]

#: Stream limit for asyncio readline framing.  Inline COO payloads for
#: the Table-I tensors are a few MB; 256 MB leaves headroom without
#: letting one client exhaust the host.
MAX_LINE_BYTES = 256 * 1024 * 1024


def encode(obj: Dict[str, Any]) -> bytes:
    """One protocol message: compact JSON, newline-terminated."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one protocol line into a message dict."""
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ValueError("protocol messages must be JSON objects")
    return obj


def tensor_fingerprint(indices: np.ndarray, values: np.ndarray,
                       shape) -> str:
    """Content hash of a canonical COO tensor (sha256, hex).

    Hashes the dense extents plus the raw bytes of the contiguous
    int64 index and float64 value arrays.  Callers must pass arrays in
    canonical order (``CooTensor.from_arrays`` sorting) so equal tensors
    fingerprint equally regardless of the order the request listed the
    non-zeros in.
    """
    digest = hashlib.sha256()
    digest.update(np.asarray(shape, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(indices, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(values, dtype=np.float64).tobytes())
    return digest.hexdigest()


@dataclass
class JobSpec:
    """One decomposition request, as submitted over the wire.

    ``tensor`` names a Table-I generator or a ``.tns[.gz]`` path readable
    by the *server*; ``coo`` inlines the non-zeros (``{"indices":
    [[...]...], "values": [...], "shape": [...]}``) for clients whose
    tensors the server cannot see.  Exactly one of the two must be set.
    """

    # -- what to decompose --------------------------------------------
    tensor: Optional[str] = None
    coo: Optional[Dict[str, Any]] = None
    nnz: int = 5000          # Table-I generator size
    tensor_seed: int = 0     # Table-I generator seed

    # -- plan-affecting engine options (part of the cache key) ---------
    engine: str = "stef"
    rank: int = 8
    machine: str = "intel-clx-18"
    num_threads: Optional[int] = None
    exec_backend: str = "serial"
    jit: Optional[str] = None
    memoize: Optional[bool] = None

    # -- ALS trajectory options (not part of the cache key) ------------
    max_iters: int = 50
    tol: float = 1e-5
    init: str = "random"
    seed: int = 0
    compute_fit: bool = True
    checkpoint_every: int = 5

    # -- scheduling ----------------------------------------------------
    priority: int = 10       # lower runs first
    client: str = "anon"

    def __post_init__(self) -> None:
        if (self.tensor is None) == (self.coo is None):
            raise ValueError("exactly one of tensor= or coo= must be set")

    # ------------------------------------------------------------------
    def plan_options(self) -> Dict[str, Any]:
        """The options that change the planned engine (cache key part)."""
        return {
            "engine": self.engine,
            "rank": self.rank,
            "machine": self.machine,
            "num_threads": self.num_threads,
            "exec_backend": self.exec_backend,
            "jit": self.jit,
            "memoize": self.memoize,
        }

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown job spec fields: {sorted(unknown)}")
        return cls(**data)


def cache_key(fingerprint: str, spec: JobSpec) -> str:
    """Engine-cache key: tensor content identity + plan options."""
    opts = spec.plan_options()
    parts = [fingerprint] + [f"{k}={opts[k]}" for k in sorted(opts)]
    return "|".join(parts)
