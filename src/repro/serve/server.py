"""The asyncio job server: unix socket in, worker pool out.

One event loop owns all coordination state (queue, job table, stats);
the only work that leaves the loop is :func:`~repro.serve.pool
.execute_job`, dispatched to a bounded ``ThreadPoolExecutor``.  MTTKRP
sweeps are numpy/numba calls that release the GIL, so thread workers
overlap real work while keeping one shared
:class:`~repro.serve.cache.EngineCache` — a process pool would defeat
the whole point of pooling planned engines and their shm segments.

Lifecycle guarantees:

* every state transition is journaled (atomic JSON under the spool)
  *before* the transition is visible to clients, so a ``SIGKILL`` at any
  point leaves a replayable record;
* on :meth:`start`, journals of ``queued``/``running`` jobs from a dead
  process re-enter the queue (``force=True`` — they were admitted once)
  and resume from their checkpoints;
* ``wait`` is event-driven: each job has an ``asyncio.Event`` set on
  reaching a terminal state, so waiting clients cost nothing but a
  parked coroutine.

Protocol ops (one JSON object per line, one response line each):
``ping``, ``submit`` (optionally ``"wait": true``), ``wait``,
``status``, ``jobs``, ``stats``, ``cancel``, ``shutdown``.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional

from .cache import EngineCache
from .jobs import CANCELLED, DONE, FAILED, QUEUED, RUNNING, Job, Spool
from .pool import execute_job
from .protocol import MAX_LINE_BYTES, JobSpec, decode_line, encode
from .queue import ClientLimitExceeded, JobQueue, QueueFull

__all__ = ["DecompositionServer", "ServerHandle", "start_in_thread"]


class DecompositionServer:
    def __init__(
        self,
        socket_path: str,
        spool_dir: str,
        *,
        workers: int = 2,
        max_depth: int = 64,
        per_client: int = 16,
        cache_capacity: int = 8,
    ) -> None:
        self.socket_path = socket_path
        self.spool = Spool(spool_dir)
        self.queue = JobQueue(max_depth=max_depth, per_client=per_client)
        self.cache = EngineCache(capacity=cache_capacity)
        self.workers = workers
        self.jobs: Dict[str, Job] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve",
        )
        self._events: Dict[str, asyncio.Event] = {}
        self._seq = itertools.count(1)
        self._latency: Dict[str, Dict[str, float]] = {}
        self.completed = 0
        self.failed = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._stopping: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._stopping = asyncio.Event()
        for job in self.spool.recoverable_jobs():
            self.jobs[job.job_id] = job
            self.spool.write_journal(job)
            await self.queue.push(job, force=True)
        if os.path.exists(self.socket_path):
            os.remove(self.socket_path)  # stale socket from a dead server
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=self.socket_path,
            limit=MAX_LINE_BYTES,
        )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def run(self) -> None:
        """Start and serve until a ``shutdown`` op (or :meth:`stop`)."""
        await self.start()
        assert self._stopping is not None
        await self._stopping.wait()
        await self.stop()

    async def stop(self) -> None:
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Let in-flight jobs finish so their journals reach a terminal
        # state; queued jobs stay journaled for the next start().
        await asyncio.get_running_loop().run_in_executor(
            None, self._executor.shutdown, True,
        )
        self.cache.close()
        if os.path.exists(self.socket_path):
            os.remove(self.socket_path)

    def request_stop(self) -> None:
        if self._stopping is not None:
            self._stopping.set()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        semaphore = asyncio.Semaphore(self.workers)
        while True:
            # Acquire the worker slot *first*: a popped-but-unstarted job
            # would vanish from the queue's depth while still pending,
            # silently widening the backpressure bound by one.
            await semaphore.acquire()
            job = await self.queue.pop()
            asyncio.create_task(self._run_job(job, semaphore))

    async def _run_job(self, job: Job, semaphore: asyncio.Semaphore) -> None:
        try:
            job.state = RUNNING
            job.started_at = time.time()
            job.attempts += 1
            self.spool.write_journal(job)
            loop = asyncio.get_running_loop()
            try:
                await loop.run_in_executor(
                    self._executor, execute_job, job, self.spool, self.cache,
                )
                job.state = DONE
                self.completed += 1
                self._record_latency(job)
            except Exception as exc:  # worker errors fail the job, not us
                job.state = FAILED
                job.error = f"{type(exc).__name__}: {exc}"
                self.failed += 1
            job.finished_at = time.time()
            self.spool.write_journal(job)
            self.queue.release(job)
            self._event_for(job.job_id).set()
        finally:
            semaphore.release()

    def _record_latency(self, job: Job) -> None:
        assert job.result is not None
        stats = self._latency.setdefault(
            job.spec.engine, {"count": 0.0, "seconds": 0.0},
        )
        stats["count"] += 1.0
        stats["seconds"] += float(job.result["seconds"])

    def _event_for(self, job_id: str) -> asyncio.Event:
        event = self._events.get(job_id)
        if event is None:
            event = asyncio.Event()
            self._events[job_id] = event
        return event

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = decode_line(line)
                    response = await self._dispatch_op(message)
                except Exception as exc:
                    response = {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                        "reason": "bad-request",
                    }
                writer.write(encode(response))
                await writer.drain()
        finally:
            try:
                writer.close()
            except RuntimeError:
                pass  # loop already torn down under us (shutdown race)

    async def _dispatch_op(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "submit":
            return await self._op_submit(message)
        if op == "wait":
            return await self._op_wait(message)
        if op == "status":
            return self._op_status(message)
        if op == "jobs":
            return {
                "ok": True,
                "jobs": [j.summary() for j in self.jobs.values()],
            }
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "cancel":
            return self._op_cancel(message)
        if op == "shutdown":
            self.request_stop()
            return {"ok": True, "op": "shutdown"}
        return {"ok": False, "error": f"unknown op {op!r}",
                "reason": "bad-request"}

    async def _op_submit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        spec = JobSpec.from_dict(message["spec"])
        job_id = f"job-{next(self._seq):06d}-{uuid.uuid4().hex[:8]}"
        job = Job(job_id=job_id, spec=spec)
        try:
            await self.queue.push(job)
        except QueueFull as exc:
            return {"ok": False, "error": str(exc), "reason": "queue-full",
                    "retry": True}
        except ClientLimitExceeded as exc:
            return {"ok": False, "error": str(exc), "reason": "client-limit",
                    "retry": True}
        self.jobs[job_id] = job
        self.spool.write_journal(job)
        if message.get("wait"):
            await self._event_for(job_id).wait()
            return {"ok": True, "job": job.to_dict()}
        return {"ok": True, "job_id": job_id, "state": job.state}

    async def _op_wait(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job = self.jobs.get(message.get("job_id", ""))
        if job is None:
            return {"ok": False, "error": "no such job", "reason": "not-found"}
        if not job.terminal:
            timeout = message.get("timeout")
            try:
                await asyncio.wait_for(
                    self._event_for(job.job_id).wait(), timeout,
                )
            except asyncio.TimeoutError:
                return {"ok": False, "error": "timed out waiting",
                        "reason": "timeout", "retry": True}
        return {"ok": True, "job": job.to_dict()}

    def _op_status(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job = self.jobs.get(message.get("job_id", ""))
        if job is None:
            return {"ok": False, "error": "no such job", "reason": "not-found"}
        if message.get("result"):
            return {"ok": True, "job": job.to_dict()}
        return {"ok": True, "job": job.summary()}

    def _op_cancel(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job = self.jobs.get(message.get("job_id", ""))
        if job is None:
            return {"ok": False, "error": "no such job", "reason": "not-found"}
        if job.state != QUEUED:
            return {"ok": False,
                    "error": f"job is {job.state}; only queued jobs cancel",
                    "reason": "not-cancellable"}
        job.state = CANCELLED
        job.finished_at = time.time()
        self.spool.write_journal(job)
        self._event_for(job.job_id).set()
        return {"ok": True, "job_id": job.job_id, "state": job.state}

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The flat-metrics endpoint behind ``repro jobs --stats``."""
        out: Dict[str, Any] = {}
        out.update(self.queue.stats())
        out.update(self.cache.stats())
        out["jobs.completed"] = float(self.completed)
        out["jobs.failed"] = float(self.failed)
        out["jobs.total"] = float(len(self.jobs))
        out["workers"] = float(self.workers)
        for engine, stats in sorted(self._latency.items()):
            count = stats["count"] or 1.0
            out[f"latency.{engine}.count"] = stats["count"]
            out[f"latency.{engine}.seconds"] = stats["seconds"]
            out[f"latency.{engine}.mean_seconds"] = stats["seconds"] / count
        return out


class ServerHandle:
    """A server running on a background thread (tests, benches, CI)."""

    def __init__(self, server: DecompositionServer,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.server = server
        self.loop = loop
        self.thread = thread

    def stop(self, timeout: float = 30.0) -> None:
        self.loop.call_soon_threadsafe(self.server.request_stop)
        self.thread.join(timeout)


def start_in_thread(socket_path: str, spool_dir: str,
                    **kwargs: Any) -> ServerHandle:
    """Boot a server on a daemon thread and wait for its socket."""
    server = DecompositionServer(socket_path, spool_dir, **kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def main() -> None:
        asyncio.set_event_loop(loop)

        async def run() -> None:
            await server.start()
            started.set()
            assert server._stopping is not None
            await server._stopping.wait()
            await server.stop()

        try:
            loop.run_until_complete(run())
        finally:
            loop.close()

    thread = threading.Thread(target=main, name="repro-serve-loop",
                              daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("serve loop failed to start within 30s")
    return ServerHandle(server, loop, thread)
