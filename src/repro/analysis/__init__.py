"""Measurement & validation: experiments harness, traffic, imbalance, reports."""

from .experiments import (
    LevelCost,
    MethodMeasurement,
    measure_method,
    run_comparison,
    scale_for_tensor,
)
from .imbalance import StrategyComparison, compare_strategies
from .report import (
    format_table,
    geomean_speedups,
    geometric_mean,
    relative_performance,
)
from .traffic import (
    CANONICAL_TRAFFIC_CATEGORIES,
    ConfigTraffic,
    model_vs_measured,
    ranking_agreement,
)
from .profile import LevelProfile, MethodProfile, profile_method
from .calibration import (
    CalibrationResult,
    CalibrationSample,
    collect_samples,
    fit_roofline,
)

__all__ = [
    "LevelCost",
    "MethodMeasurement",
    "measure_method",
    "run_comparison",
    "scale_for_tensor",
    "StrategyComparison",
    "compare_strategies",
    "format_table",
    "geomean_speedups",
    "geometric_mean",
    "relative_performance",
    "CANONICAL_TRAFFIC_CATEGORIES",
    "ConfigTraffic",
    "model_vs_measured",
    "ranking_agreement",
    "LevelProfile",
    "MethodProfile",
    "profile_method",
    "CalibrationResult",
    "CalibrationSample",
    "collect_samples",
    "fit_roofline",
]
