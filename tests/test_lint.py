"""Tests for :mod:`repro.lint` — the kernel-invariant static analyzer.

Covers the framework (registry, suppressions, reporters, exit codes),
each rule against a dedicated fixture, the clean-tree guarantee on the
shipped ``src/`` tree, and the acceptance scenario from the issue:
moving a counter charge or a ``merge()`` into a thread body in a scratch
copy of a real kernel module must be caught.
"""

import io
import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    FileContext,
    all_rules,
    format_json,
    format_text,
    get_rule,
    main as lint_main,
    run_lint,
)

REPO = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

RULE_IDS = {
    "thread-body-safety",
    "process-task-safety",
    "counter-category",
    "hot-path",
    "dtype-discipline",
}


class TestFramework:
    def test_all_four_rule_families_registered(self):
        assert {r.id for r in all_rules()} >= RULE_IDS

    def test_get_rule_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown rule"):
            get_rule("no-such-rule")

    def test_rules_carry_paper_refs(self):
        for rule in all_rules():
            assert rule.description
            assert rule.paper_ref

    def test_finding_format_is_stable(self):
        report = run_lint([str(FIXTURES / "counter_bad.py")])
        line = report.findings[0].format()
        assert re.match(r"^.*counter_bad\.py:\d+:\d+: \[counter-category\] ", line)

    def test_syntax_error_exits_2(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        report = run_lint([str(bad)])
        assert report.exit_code == EXIT_ERROR
        assert report.errors and "broken.py" in report.errors[0].path

    def test_missing_path_exits_2(self):
        report = run_lint([str(REPO / "no" / "such" / "dir")])
        assert report.exit_code == EXIT_ERROR

    def test_reporters_agree_with_exit_code(self):
        report = run_lint([str(FIXTURES / "counter_bad.py")])
        assert report.exit_code == EXIT_FINDINGS
        assert "finding(s)" in format_text(report)
        payload = json.loads(format_json(report))
        assert payload["exit_code"] == EXIT_FINDINGS
        assert {f["rule"] for f in payload["findings"]} == {"counter-category"}


class TestRuleFixtures:
    """Each fixture file violates exactly one rule family."""

    CASES = [
        ("thread_body_bad.py", "thread-body-safety", 3),
        ("process_task_bad.py", "process-task-safety", 5),
        ("counter_bad.py", "counter-category", 2),
        ("ops/hot_path_bad.py", "hot-path", 4),
        ("ops/dtype_bad.py", "dtype-discipline", 2),
    ]

    @pytest.mark.parametrize("fixture,rule_id,count", CASES)
    def test_fixture_trips_exactly_its_rule(self, fixture, rule_id, count):
        report = run_lint([str(FIXTURES / fixture)])
        assert report.exit_code == EXIT_FINDINGS
        assert {f.rule for f in report.findings} == {rule_id}
        assert len(report.findings) == count

    @pytest.mark.parametrize("fixture,rule_id,count", CASES)
    def test_select_narrows_to_one_rule(self, fixture, rule_id, count):
        report = run_lint([str(FIXTURES / fixture)], select=[rule_id])
        assert len(report.findings) == count
        other = (RULE_IDS - {rule_id}).pop()
        report = run_lint([str(FIXTURES / fixture)], select=[other])
        assert report.exit_code == EXIT_CLEAN


class TestSuppressions:
    def test_shipped_suppressed_fixture_is_clean(self):
        report = run_lint([str(FIXTURES / "suppressed_ok.py")])
        assert report.exit_code == EXIT_CLEAN
        assert report.suppressed == 1

    def test_line_suppression_round_trip(self, tmp_path):
        src = textwrap.dedent(
            """\
            def run(pool, counter):
                def body(th):
                    counter.flop(1.0)
                    return th
                return pool.map(body)
            """
        )
        mod = tmp_path / "mod.py"
        mod.write_text(src)
        report = run_lint([str(mod)])
        assert report.exit_code == EXIT_FINDINGS
        line = report.findings[0].line

        lines = src.splitlines()
        lines[line - 1] += "  # lint: disable=thread-body-safety"
        mod.write_text("\n".join(lines) + "\n")
        report = run_lint([str(mod)])
        assert report.exit_code == EXIT_CLEAN
        assert report.suppressed == 1

    def test_file_level_suppression(self, tmp_path):
        scoped = tmp_path / "lint_fixtures" / "ops"
        scoped.mkdir(parents=True)
        mod = scoped / "mod.py"
        mod.write_text(
            "import numpy as np\n"
            "def f(out, idx, rows):\n"
            "    np.add.at(out, idx, rows)\n"
        )
        assert run_lint([str(mod)]).exit_code == EXIT_FINDINGS
        mod.write_text("# lint: disable-file=hot-path\n" + mod.read_text())
        report = run_lint([str(mod)])
        assert report.exit_code == EXIT_CLEAN
        assert report.suppressed == 1

    def test_disable_all(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "# lint: disable-file=all\n"
            "def run(pool, counter):\n"
            "    def body(th):\n"
            "        counter.flop(1.0)\n"
            "        return th\n"
            "    return pool.map(body)\n"
        )
        report = run_lint([str(mod)])
        assert report.exit_code == EXIT_CLEAN
        assert report.suppressed == 1

    def test_suppression_is_rule_specific(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "def run(pool, counter):\n"
            "    def body(th):\n"
            "        counter.flop(1.0)  # lint: disable=hot-path\n"
            "        return th\n"
            "    return pool.map(body)\n"
        )
        assert run_lint([str(mod)]).exit_code == EXIT_FINDINGS


class TestCleanTree:
    def test_shipped_src_tree_is_clean(self):
        report = run_lint([str(REPO / "src")])
        assert report.errors == []
        assert report.findings == [], format_text(report)
        assert report.exit_code == EXIT_CLEAN
        assert report.files_checked > 50

    def test_fixture_dir_is_dirty_by_design(self):
        report = run_lint([str(FIXTURES)])
        assert report.exit_code == EXIT_FINDINGS
        assert {f.rule for f in report.findings} == RULE_IDS


class TestAcceptanceScenario:
    """Issue acceptance: inject a violation into a scratch copy of the
    real engine module and the analyzer must catch it."""

    def _scratch_copy(self, tmp_path, mutate):
        src = (REPO / "src" / "repro" / "core" / "mttkrp.py").read_text()
        m = re.search(r"^(\s*)def body\(th.*:\n", src, flags=re.M)
        assert m, "mttkrp.py no longer defines a thread body?"
        indent = m.group(1) + "    "
        injected = src[: m.end()] + indent + mutate + "\n" + src[m.end() :]
        scratch = tmp_path / "mttkrp_scratch.py"
        scratch.write_text(injected)
        return scratch

    def test_baseline_engine_module_is_clean(self):
        report = run_lint([str(REPO / "src" / "repro" / "core" / "mttkrp.py")])
        assert report.exit_code == EXIT_CLEAN

    def test_counter_charge_in_thread_body_is_caught(self, tmp_path):
        scratch = self._scratch_copy(
            tmp_path, 'self.counter.read(1.0, "structure")'
        )
        report = run_lint([str(scratch)], select=["thread-body-safety"])
        assert report.exit_code == EXIT_FINDINGS
        assert any("shard" in f.message for f in report.findings)

    def test_merge_in_thread_body_is_caught(self, tmp_path):
        scratch = self._scratch_copy(tmp_path, "self.replicated.merge()")
        report = run_lint([str(scratch)], select=["thread-body-safety"])
        assert report.exit_code == EXIT_FINDINGS
        assert any("coordinator-only" in f.message for f in report.findings)


class TestCli:
    def test_module_main_text(self):
        out = io.StringIO()
        code = lint_main([str(FIXTURES / "counter_bad.py")], out)
        assert code == EXIT_FINDINGS
        assert "[counter-category]" in out.getvalue()

    def test_module_main_json(self):
        out = io.StringIO()
        code = lint_main(
            ["--format", "json", str(FIXTURES / "ops" / "dtype_bad.py")], out
        )
        assert code == EXIT_FINDINGS
        payload = json.loads(out.getvalue())
        assert payload["exit_code"] == EXIT_FINDINGS

    def test_module_main_clean_src(self):
        out = io.StringIO()
        assert lint_main([str(REPO / "src")], out) == EXIT_CLEAN
        assert "0 finding(s)" in out.getvalue()

    def test_list_rules(self):
        out = io.StringIO()
        assert lint_main(["--list-rules"], out) == EXIT_CLEAN
        for rid in RULE_IDS:
            assert rid in out.getvalue()

    def test_unknown_select_exits_2(self):
        out = io.StringIO()
        code = lint_main(["--select", "bogus", str(REPO / "src")], out)
        assert code == EXIT_ERROR
        assert "unknown rule" in out.getvalue()

    def test_repro_subcommand(self):
        out = io.StringIO()
        code = repro_main(["lint", str(FIXTURES / "thread_body_bad.py")], out)
        assert code == EXIT_FINDINGS
        assert "[thread-body-safety]" in out.getvalue()


class TestNoFalsePositives:
    """Idioms the shipped kernels rely on must stay clean."""

    def _check(self, source, rule_id, path="mod.py"):
        ctx = FileContext(Path(path), textwrap.dedent(source))
        rule = get_rule(rule_id)
        assert rule.applies_to(ctx) or path == "mod.py"
        return list(rule.check(ctx))

    def test_shard_charges_are_fine(self):
        findings = self._check(
            """\
            def run(pool, shards, rep):
                def body(th):
                    shard = shards.shard(th)
                    shard.read(4.0, "structure")
                    shards.shard(th).flop(2.0)
                    out = rep.view(th, 0, 4)
                    out[:] = th
                    local = {}
                    local["x"] = th
                    return th
                return pool.map(body)
            """,
            "thread-body-safety",
        )
        assert findings == []

    def test_two_arg_executor_map_is_not_a_thread_body(self):
        findings = self._check(
            """\
            def run(pool, counter, items):
                def body(item):
                    counter.read(1.0, "structure")
                return list(pool.map(body, items))
            """,
            "thread-body-safety",
        )
        assert findings == []

    def test_file_read_is_not_a_charge(self):
        findings = self._check(
            """\
            def load(path, counter):
                with open(path) as fh:
                    data = fh.read()
                counter.read(8.0, "structure")
                return data
            """,
            "counter-category",
        )
        assert findings == []

    def test_hot_path_rule_is_path_scoped(self):
        ctx = FileContext(
            Path("/somewhere/repro/analysis/report.py"),
            "import numpy as np\n",
        )
        assert not get_rule("hot-path").applies_to(ctx)
        ctx = FileContext(
            Path("/somewhere/repro/ops/krp.py"), "import numpy as np\n"
        )
        assert get_rule("hot-path").applies_to(ctx)

    def test_concatenate_outside_loop_is_fine(self):
        ctx = FileContext(
            Path("/x/repro/ops/mod.py"),
            "import numpy as np\n"
            "def join(parts):\n"
            "    return np.concatenate(parts)\n",
        )
        assert list(get_rule("hot-path").check(ctx)) == []

    def test_float64_dtype_is_fine(self):
        ctx = FileContext(
            Path("/x/repro/core/mod.py"),
            "import numpy as np\n"
            "def alloc(n):\n"
            "    return np.zeros(n, dtype=np.float64)\n",
        )
        assert list(get_rule("dtype-discipline").check(ctx)) == []
