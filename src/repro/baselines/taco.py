"""TACO-style baseline: compiler-generated per-mode kernels + auto-tuning.

The paper uses the scheduling-enabled TACO compiler as a baseline and
characterizes it as "very similar [to splatt-all] ... the main reason
[TACO is faster] is that TACO uses auto-tuning across various chunk sizes
and selects the best, paying a small preprocessing overhead for faster run
time" (Section VI-B).

The reimplementation mirrors that characterization:

* one CSF per mode (like splatt-all), each MTTKRP a root-mode sweep with
  no memoization and slice distribution;
* a chunk auto-tuner (:meth:`TacoBackend.autotune`) that times the mode-0
  kernel over a grid of slice-chunk granularities on a sample and fixes
  the fastest, recording the tuning time as preprocessing overhead.

The chunk granularity controls how many root slices each simulated-thread
task covers: small chunks approximate dynamic scheduling (better balance,
more scheduling overhead), large chunks the static slice deal.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compat import resolve_engine_aliases
from ..core.csf_kernels import scatter_add_rows, thread_upward_sweep
from ..core.proc_tasks import counter_state, merge_counter_state
from ..engines.base import EngineBase, resolve_num_threads
from ..kernels.dispatch import TIER_NUMPY, resolve_tier
from ..parallel.counters import NULL_COUNTER, ShardedTrafficCounter, TrafficCounter
from ..parallel.executor import SimulatedPool
from ..parallel.machine import MachineSpec
from ..parallel.shm import SharedArena, ShmToken, attach
from ..tensor.coo import CooTensor
from ..tensor.csf import CsfTensor
from ..trace import NULL_TRACER, Tracer

__all__ = ["TacoBackend"]

#: Chunk-size grid the tuner explores (root slices per task).
CHUNK_GRID = (8, 64, 512, 4096)


def _charge_chunk(
    shard: TrafficCounter, csf: CsfTensor, s_lo: int, s_hi: int, rank: int
) -> None:
    """Per-thread legs of one slice chunk: structure walk and contraction
    arithmetic of the chunk's subtree.  Chunk boundaries are
    slice-aligned, so the per-level node spans tile every level exactly
    and the merged totals match the single-counter tallies.  Shared by
    the closure body and the process task."""
    a, b = s_lo, s_hi
    nodes = b - a
    children = 0
    for j in range(csf.ndim - 1):
        a, b = int(csf.ptr[j][a]), int(csf.ptr[j][b])
        nodes += b - a
        children += b - a
    shard.read(2.0 * nodes, "structure")
    shard.flop(2.0 * rank * children, "sweep")


def _taco_sweep_task(
    payload: Dict[str, Any]
) -> Tuple[List[Tuple[int, np.ndarray]], tuple]:
    """Process-worker body of one thread's round-robin chunk deal:
    identical sweeps on the shared CSF, chunk partials returned in deal
    order so the coordinator accumulates exactly like the serial path."""
    ctx, th = payload["ctx"], payload["th"]
    spec = ctx["csf"]
    csf = CsfTensor(
        spec["mode_order"],
        [attach(t) for t in spec["idx"]],
        [attach(t) for t in spec["ptr"]],
        attach(spec["values"]),
        spec["shape"],
        spec["fiber_counts"],
    )
    lf = [attach(ctx["factors"][m]) for m in csf.mode_order]
    counter = TrafficCounter(
        cache_elements=ctx["cache_elements"], enabled=ctx["enabled"]
    )
    tasks, pool_t = ctx["tasks"], ctx["pool_t"]
    results: List[Tuple[int, np.ndarray]] = []
    for ti in range(th, len(tasks), pool_t):
        s_lo, s_hi = tasks[ti]
        leaf_lo, _ = csf.leaf_span(0, s_lo) if s_hi > s_lo else (0, 0)
        if s_hi > s_lo:
            _, leaf_hi = csf.leaf_span(0, s_hi - 1)
        else:
            leaf_hi = leaf_lo
        if ctx["charge"]:
            _charge_chunk(counter, csf, s_lo, s_hi, ctx["rank"])
        res = thread_upward_sweep(
            csf, lf, leaf_lo, leaf_hi, stop_level=0,
            tier=ctx.get("tier", TIER_NUMPY),
        )
        results.append(res[0])
    return results, counter_state(counter)


class TacoBackend(EngineBase):
    """Per-mode generated-kernel backend with chunk auto-tuning."""

    name = "taco"
    jit_capable = True

    def __init__(
        self,
        tensor: CooTensor,
        rank: int,
        *,
        machine: Optional[MachineSpec] = None,
        num_threads: Optional[int] = None,
        exec_backend: Optional[str] = None,
        jit: Optional[str] = None,
        counter: TrafficCounter = NULL_COUNTER,
        tracer: Tracer = NULL_TRACER,
        autotune: bool = True,
        **removed,
    ) -> None:
        num_threads, exec_backend = resolve_engine_aliases(
            type(self).__name__, num_threads, exec_backend, removed
        )
        self.tensor = tensor
        self.rank = rank
        #: Resolved kernel-ABI tier for every chunk sweep.
        self.kernel_tier = resolve_tier(
            jit if jit is not None else type(self).jit_default
        )
        self.counter = counter
        self.tracer = tracer
        threads = resolve_num_threads(machine, num_threads)
        d = tensor.ndim
        self.mode_order: Tuple[int, ...] = tuple(range(d))
        self.pool = SimulatedPool(threads, exec_backend, tracer=tracer)
        self.shards = ShardedTrafficCounter.like(counter, threads)
        self.csfs: List[CsfTensor] = []
        for mode in range(d):
            rest = sorted(
                (m for m in range(d) if m != mode),
                key=lambda m: (tensor.shape[m], m),
            )
            self.csfs.append(CsfTensor.from_coo(tensor, (mode, *rest)))
        self.chunk_slices = CHUNK_GRID[-1]
        self.tuning_seconds = 0.0
        # Shared-memory state for the processes backend: per-mode CSFs are
        # shared lazily (first sweep of that mode); factor slots refreshed
        # in place before every dispatch.
        self._arena: Optional[SharedArena] = None
        self._csf_tokens: Dict[int, Dict[str, Any]] = {}
        self._factor_tokens: Optional[List[ShmToken]] = None
        if self.pool.backend == "processes":
            self._arena = SharedArena()
        if autotune:
            self.autotune()

    # ------------------------------------------------------------------
    def autotune(self) -> int:
        """Probe each chunk granularity and keep the best.  A chunk is
        scored first by the parallel load balance it yields (the quantity
        that dominates the target machines) and then by the probe's wall
        time (scheduling overhead).  The spent wall time is recorded in
        ``tuning_seconds`` (the paper's "small preprocessing overhead")."""
        rng = np.random.default_rng(0)
        probe = [rng.random((n, self.rank)) for n in self.tensor.shape]
        t0 = time.perf_counter()
        best: Tuple[Tuple[float, float], int] = (
            (float("inf"), float("inf")),
            self.chunk_slices,
        )
        for chunk in CHUNK_GRID:
            self.chunk_slices = chunk
            t1 = time.perf_counter()
            self._sweep_mode(0, probe, charge=False)
            dt = time.perf_counter() - t1
            balance = max(self.level_load_factor(lvl) for lvl in self.mode_order)
            score = (round(balance, 3), dt)
            if score < best[0]:
                best = (score, chunk)
        self.chunk_slices = best[1]
        self.tuning_seconds = time.perf_counter() - t0
        return self.chunk_slices

    # ------------------------------------------------------------------
    def _task_bounds(self, csf: CsfTensor) -> List[Tuple[int, int]]:
        """Chunk the root slices into tasks of ``chunk_slices`` each."""
        n_slices = csf.fiber_counts[0]
        edges = list(range(0, n_slices, self.chunk_slices)) + [n_slices]
        return [(edges[i], edges[i + 1]) for i in range(len(edges) - 1)]

    def _sweep_mode(
        self, mode: int, factors: Sequence[np.ndarray], *, charge: bool = True
    ) -> np.ndarray:
        csf = self.csfs[mode]
        lf = [np.asarray(factors[m]) for m in csf.mode_order]
        rank = self.rank
        out = np.zeros((csf.level_shape(0), rank))
        tasks = self._task_bounds(csf)
        n_tasks = len(tasks)
        pool_t = self.pool.num_threads

        d = csf.ndim
        if charge:
            self.shards.reset()

        if self._arena is not None:
            ctx = self._proc_ctx(mode, factors, charge)
            results = self.pool.run_tasks(
                _taco_sweep_task, [{"ctx": ctx, "th": th} for th in range(pool_t)]
            )
            for th, (chunk_results, traffic) in enumerate(results):
                if charge:
                    merge_counter_state(self.shards.shard(th), traffic)
                for nlo, tp in chunk_results:
                    out[csf.idx[0][nlo : nlo + tp.shape[0]]] += tp
        else:

            def body(th: int) -> List[Tuple[int, np.ndarray]]:
                results = []
                shard = self.shards.shard(th)
                # Tasks dealt round-robin: the dynamic-ish schedule
                # chunking buys TACO its balance edge over a static deal.
                for ti in range(th, n_tasks, pool_t):
                    s_lo, s_hi = tasks[ti]
                    leaf_lo, _ = csf.leaf_span(0, s_lo) if s_hi > s_lo else (0, 0)
                    if s_hi > s_lo:
                        _, leaf_hi = csf.leaf_span(0, s_hi - 1)
                    else:
                        leaf_hi = leaf_lo
                    if charge:
                        _charge_chunk(shard, csf, s_lo, s_hi, rank)
                    res = thread_upward_sweep(
                        csf, lf, leaf_lo, leaf_hi, stop_level=0,
                        tier=self.kernel_tier,
                    )
                    results.append(res[0])
                return results

            for chunk_results in self.pool.map(body):
                for nlo, tp in chunk_results:
                    out[csf.idx[0][nlo : nlo + tp.shape[0]]] += tp

        if charge:
            # Kernel-level legs on the coordinator: cache-rule factor
            # gathers and the dense output write.
            self.shards.merge_into(self.counter)
            m = csf.fiber_counts
            for j in range(1, d):
                self.counter.read_factor_rows(
                    m[j], csf.level_shape(j), rank, "factor"
                )
            self.counter.write(csf.level_shape(0) * rank, "output")
        return out

    def _csf_spec(self, mode: int) -> Dict[str, Any]:
        """Token spec of mode ``mode``'s CSF, shared on first use."""
        spec = self._csf_tokens.get(mode)
        if spec is None:
            arena = self._arena
            assert arena is not None
            csf = self.csfs[mode]
            spec = {
                "mode_order": csf.mode_order,
                "shape": csf.shape,
                "fiber_counts": csf.fiber_counts,
                "idx": [arena.share(a) for a in csf.idx],
                "ptr": [arena.share(p) for p in csf.ptr],
                "values": arena.share(csf.values),
            }
            self._csf_tokens[mode] = spec
        return spec

    def _proc_ctx(
        self, mode: int, factors: Sequence[np.ndarray], charge: bool
    ) -> Dict[str, Any]:
        """Refresh the factor slots and build the shared task context.
        Factor slots are keyed by *original* mode number; workers reorder
        to CSF levels via the spec's ``mode_order``."""
        arena = self._arena
        assert arena is not None
        fs = [np.ascontiguousarray(np.asarray(f)) for f in factors]
        if self._factor_tokens is None or any(
            t.shape != f.shape or np.dtype(t.dtype) != f.dtype
            for t, f in zip(self._factor_tokens, fs)
        ):
            self._factor_tokens = [arena.zeros(f.shape, f.dtype) for f in fs]
        for t, f in zip(self._factor_tokens, fs):
            arena.array(t)[...] = f
        return {
            "csf": self._csf_spec(mode),
            "factors": self._factor_tokens,
            "tasks": self._task_bounds(self.csfs[mode]),
            "pool_t": self.pool.num_threads,
            "rank": self.rank,
            "charge": charge,
            "cache_elements": self.counter.cache_elements,
            "enabled": self.counter.enabled,
            "tier": self.kernel_tier,
        }

    def close(self) -> None:
        """Release the processes backend's shared segments (no-op else)."""
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    # ------------------------------------------------------------------
    def mttkrp_level(self, factors: Sequence[np.ndarray], level: int) -> np.ndarray:
        """Mode-``level`` MTTKRP on its dedicated CSF with tuned chunks."""
        mode = self.mode_order[level]
        attrs = dict(
            level=level,
            mode=int(mode),
            nnz=int(self.tensor.nnz),
            threads=self.pool.num_threads,
        )
        if level == 0:
            span = self.tracer.span(
                "mttkrp.mode0", counter=self.counter, **attrs
            )
        else:
            span = self.tracer.span(
                "mttkrp.mode_level", counter=self.counter, source="recompute",
                **attrs,
            )
        with span:
            return self._sweep_mode(mode, factors)

    def level_load_factor(self, level: int) -> float:
        """Imbalance stretch of the chunked round-robin schedule for
        ``level``'s tree: per-thread nnz after dealing chunk tasks."""
        csf = self.csfs[self.mode_order[level]]
        tasks = self._task_bounds(csf)
        pool_t = self.pool.num_threads
        loads = [0] * pool_t
        for ti, (s_lo, s_hi) in enumerate(tasks):
            if s_hi <= s_lo:
                continue
            leaf_lo, _ = csf.leaf_span(0, s_lo)
            _, leaf_hi = csf.leaf_span(0, s_hi - 1)
            loads[ti % pool_t] += leaf_hi - leaf_lo
        mean = sum(loads) / pool_t
        return max(loads) / mean if mean else 1.0

    @property
    def num_threads(self) -> int:
        return self.pool.num_threads

    def tensor_bytes(self) -> int:
        """Tensor storage footprint (``d`` CSF copies)."""
        return sum(c.total_bytes() for c in self.csfs)

    def describe(self) -> str:
        return f"{self.name}: chunk={self.chunk_slices} slices/task"
