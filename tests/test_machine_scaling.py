"""Tests for the roofline machine model's resource-scaling behaviour."""

import numpy as np
import pytest

from repro.parallel import AMD_TR_64, INTEL_CLX_18, MachineSpec


class TestEffectiveResources:
    def test_bandwidth_saturates(self):
        m = AMD_TR_64
        # Saturation at a quarter of the cores.
        assert m.effective_bandwidth_gbps(16) == m.dram_gbps
        assert m.effective_bandwidth_gbps(64) == m.dram_gbps
        assert m.effective_bandwidth_gbps(8) == pytest.approx(m.dram_gbps / 2)
        assert m.effective_bandwidth_gbps(1) < m.dram_gbps / 10

    def test_bandwidth_default_full(self):
        assert INTEL_CLX_18.effective_bandwidth_gbps() == INTEL_CLX_18.dram_gbps

    def test_gflops_linear(self):
        m = INTEL_CLX_18
        assert m.effective_gflops(9) == pytest.approx(m.gflops / 2)
        assert m.effective_gflops(18) == m.gflops
        assert m.effective_gflops(100) == m.gflops  # capped

    def test_roofline_picks_binding_resource(self):
        m = MachineSpec("toy", 4, 1024, dram_gbps=8.0, gflops=1.0)
        # 1e9 elements = 8 GB -> 1s at 8 GB/s; 1e9 flops -> 1s at 1 GF/s.
        assert m.roofline_seconds(1e9, 0) == pytest.approx(1.0)
        assert m.roofline_seconds(0, 1e9) == pytest.approx(1.0)
        assert m.roofline_seconds(1e9, 2e9) == pytest.approx(2.0)

    def test_roofline_with_threads(self):
        m = MachineSpec("toy", 8, 1024, dram_gbps=8.0, gflops=8.0)
        # 1 of 8 threads: bandwidth 8*(1/2)=4 GB/s, compute 1 GF/s.
        t_full = m.roofline_seconds(1e9, 1e9)
        t_one = m.roofline_seconds(1e9, 1e9, active_threads=1)
        assert t_one > t_full

    def test_with_cache_scale(self):
        m = INTEL_CLX_18.with_cache_scale(0.5)
        assert m.cache_bytes == INTEL_CLX_18.cache_bytes // 2
        assert m.dram_gbps == INTEL_CLX_18.dram_gbps
        assert "~c" in m.name

    def test_with_cache_scale_identity_keeps_name(self):
        assert INTEL_CLX_18.with_cache_scale(1.0).name == INTEL_CLX_18.name

    def test_with_cache_scale_invalid(self):
        with pytest.raises(ValueError):
            INTEL_CLX_18.with_cache_scale(0)


class TestScatterCharging:
    def test_atomic_path_small_stream(self):
        from repro.parallel import TrafficCounter

        c = TrafficCounter(cache_elements=None)
        # 10 updates x 4 cols into 1000x4 with 2 threads: atomic total =
        # footprint 4000 + rmw 40; privatized = 5*4000.  Atomic wins.
        c.scatter_update(10, 1000, 4, 2)
        assert c.writes == 4000
        assert c.reads == 40
        assert c.flops == 8 * 40

    def test_privatized_path_heavy_contention(self):
        from repro.parallel import TrafficCounter

        c = TrafficCounter(cache_elements=None)
        # 1e6 updates into a tiny 4x4 output with 2 threads: privatization
        # (2*2+1)*16 = 80 beats footprint+stream = 16 + 4e6.
        c.scatter_update(1_000_000, 4, 4, 2)
        assert c.writes == (2 + 1) * 16
        assert c.reads == 2 * 16

    def test_cache_absorbs_rmw_reads(self):
        from repro.parallel import TrafficCounter

        c = TrafficCounter(cache_elements=10_000)
        # Resident output: rmw reads capped at footprint.
        c.scatter_update(5_000, 100, 4, 1)
        assert c.reads == 400  # min(footprint=400, stream=20000)
        assert c.writes == 400

    def test_single_thread_never_privatizes(self):
        from repro.parallel import TrafficCounter

        c = TrafficCounter(cache_elements=None)
        c.scatter_update(10_000, 2, 2, 1)
        assert c.writes == 4  # footprint
        assert c.reads == 20_000 * 1  # stream rmw reads... (2 cols x 1e4)


class TestScaleForTensor:
    def test_known_tensor_scales(self):
        from repro.analysis import scale_for_tensor
        from repro.tensor import TABLE1_SPECS, generate

        t = generate(TABLE1_SPECS["uber"], nnz=3000, seed=0)
        s = scale_for_tensor(t, "uber")
        expected = (t.nnz / TABLE1_SPECS["uber"].paper_nnz) ** 0.25
        assert s == pytest.approx(expected)

    def test_unknown_tensor_scale_one(self):
        from repro.analysis import scale_for_tensor
        from repro.tensor import random_tensor

        t = random_tensor((5, 5, 5), nnz=20, seed=0)
        assert scale_for_tensor(t, "mystery") == 1.0
