"""Table II — space requirement for the memoized partial MTTKRP results.

For every tensor and R ∈ {32, 64}: the bytes of the partial results the
model chooses to save, the bytes of the CSF structure plus factor
matrices, and their ratio.  The paper's averages are 0.35 (R=32) and 0.45
(R=64) with a 2.34 maximum (delicious-4d) and 0.00 rows where the model
declines to memoize (freebase, vast-5d).
"""

import pytest

from common import bench_suite, emit
from repro.analysis import format_table
from repro.core import Stef
from repro.cpd import random_init
from repro.parallel import INTEL_CLX_18


def _space_row(tensor, name, rank):
    from repro.analysis.experiments import scale_for_tensor

    machine = INTEL_CLX_18.with_cache_scale(scale_for_tensor(tensor, name))
    stef = Stef(tensor, rank, machine=machine, num_threads=8)
    stef.mttkrp_level(random_init(tensor.shape, rank, 0), 0)
    memo_gb = stef.memo_bytes()
    base_gb = stef.csf.total_bytes() + sum(n * rank * 8 for n in tensor.shape)
    return memo_gb, base_gb


def test_table2_space(benchmark):
    tensors = bench_suite()
    rows = {}

    def run():
        for name, tensor in tensors.items():
            row = {}
            for rank in (32, 64):
                memo, base = _space_row(tensor, name, rank)
                row[f"memo MB R{rank}"] = memo / 1e6
                row[f"base MB R{rank}"] = base / 1e6
                row[f"ratio R{rank}"] = memo / base
            rows[name] = row
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    cols = [
        "memo MB R32", "base MB R32", "ratio R32",
        "memo MB R64", "base MB R64", "ratio R64",
    ]
    table = format_table(
        rows, cols,
        title="Table II — space for stored partial MTTKRP results (scaled)",
        fmt="{:8.3f}",
        col_width=13,
    )
    avg32 = sum(r["ratio R32"] for r in rows.values()) / len(rows)
    avg64 = sum(r["ratio R64"] for r in rows.values()) / len(rows)
    mx = max(max(r["ratio R32"], r["ratio R64"]) for r in rows.values())
    summary = (
        f"average ratio: R=32 {avg32:.2f}  R=64 {avg64:.2f}  max {mx:.2f}\n"
        f"(paper: 0.35 / 0.45 / 2.34)"
    )
    emit("table2_space.txt", table + "\n\n" + summary)

    # Shape assertion mirrored from the paper: for a fixed memoization
    # plan the ratio grows with R (CSF bytes are R-independent).  The
    # model may switch plans between ranks (it does for vast-2015 at this
    # scale), so the check applies per-tensor where the saved set is
    # non-empty at both ranks.
    for name, row in rows.items():
        if row["memo MB R32"] > 0 and row["memo MB R64"] > 0:
            assert row["ratio R64"] >= row["ratio R32"] * 0.99, name
