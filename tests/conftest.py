"""Shared fixtures: small random tensors with dense oracles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import CooTensor, CsfTensor, random_tensor


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def coo3(rng) -> CooTensor:
    """Small 3-D tensor with duplicates-free random structure."""
    return random_tensor((11, 8, 6), nnz=120, seed=1)


@pytest.fixture
def coo4(rng) -> CooTensor:
    """Small 4-D tensor."""
    return random_tensor((9, 7, 6, 5), nnz=200, seed=2)


@pytest.fixture
def coo5(rng) -> CooTensor:
    """Small 5-D tensor."""
    return random_tensor((7, 6, 5, 4, 4), nnz=250, seed=3)


@pytest.fixture(params=["coo3", "coo4", "coo5"])
def coo_any(request) -> CooTensor:
    """Parametrized over 3/4/5-D tensors."""
    return request.getfixturevalue(request.param)


@pytest.fixture
def csf4(coo4) -> CsfTensor:
    return CsfTensor.from_coo(coo4, (0, 1, 2, 3))


def make_factors(shape, rank, seed=0):
    """Random Gaussian factor matrices for a tensor shape."""
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((n, rank)) for n in shape]


@pytest.fixture
def factors4(coo4):
    return make_factors(coo4.shape, rank=4, seed=10)
