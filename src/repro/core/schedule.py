"""Work-schedule construction and inspection (Section III-A).

:func:`build_schedule` wraps partition construction (Algorithm 3 or the
prior-work slice scheme) together with the statistics the paper quotes:
per-thread load, percentage imbalance (vast-2015's 1674%), how many
threads actually receive work (Fig. 2a's idle threads), and the rows that
need boundary replication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..parallel.partition import ThreadPartition, nnz_partition, slice_partition
from ..tensor.csf import CsfTensor

__all__ = ["WorkSchedule", "build_schedule"]


@dataclass(frozen=True)
class WorkSchedule:
    """A thread partition plus its load-balance diagnostics.

    Attributes
    ----------
    partition:
        The per-level thread start table.
    leaf_loads:
        Non-zeros assigned to each thread.
    shared_nodes_per_level:
        Node ids requiring boundary replication at each internal level.
    """

    partition: ThreadPartition
    leaf_loads: np.ndarray
    shared_nodes_per_level: List[List[int]]

    @property
    def num_threads(self) -> int:
        return self.partition.num_threads

    @property
    def active_threads(self) -> int:
        """Threads that received at least one non-zero (Fig. 2a shows the
        slice scheme leaving threads idle)."""
        return int(np.count_nonzero(self.leaf_loads))

    @property
    def imbalance_percent(self) -> float:
        """Load imbalance as ``(max - min) / max(min, 1) * 100`` over
        *active* threads — the statistic behind the paper's "1674% load
        imbalance" for a 2-way split of vast-2015-mc1."""
        active = self.leaf_loads[self.leaf_loads > 0]
        if active.size == 0:
            return 0.0
        lo = float(active.min())
        hi = float(active.max())
        return (hi - lo) / max(lo, 1.0) * 100.0

    @property
    def max_over_mean(self) -> float:
        """``max load / mean load`` over all threads — the parallel
        slowdown factor this schedule implies (1.0 = perfect)."""
        mean = float(self.leaf_loads.mean()) if self.leaf_loads.size else 0.0
        if mean == 0:
            return 1.0
        return float(self.leaf_loads.max()) / mean

    @property
    def replicated_rows(self) -> int:
        """Total boundary rows replicated across all levels — bounded by
        ``T`` per level (Section II-D)."""
        return sum(len(level) for level in self.shared_nodes_per_level)


def build_schedule(
    csf: CsfTensor, num_threads: int, strategy: str = "nnz"
) -> WorkSchedule:
    """Construct a :class:`WorkSchedule` for ``csf``.

    ``strategy`` is ``"nnz"`` (Algorithm 3, STeF) or ``"slice"`` (prior
    work, the Fig. 6.1 ablation arm).
    """
    if strategy == "nnz":
        part = nnz_partition(csf, num_threads)
    elif strategy == "slice":
        part = slice_partition(csf, num_threads)
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    return WorkSchedule(
        partition=part,
        leaf_loads=part.per_thread_leaf_counts(),
        shared_nodes_per_level=part.shared_boundary_nodes(csf),
    )
