"""repro.engines — the unified MTTKRP-engine registry and factory.

Before this module existed, every consumer (the CLI, ``cp_als``, the
benchmark harness, the stress driver) carried its own copy of the
name → constructor dispatch.  Now there is exactly one:

    from repro.engines import create_engine

    with create_engine("stef2", tensor, rank, num_threads=8) as eng:
        result = cp_als(tensor, rank, engine=eng)

Every registered engine satisfies the :class:`MttkrpEngine` protocol —
``mttkrp_level``, ``iteration_results``, ``per_thread_traffic``,
``describe``, ``close`` (plus the ``mode_order`` attribute the ALS
driver reads) — and inherits :class:`~repro.engines.base.EngineBase`,
so each is a context manager whose ``__exit__`` releases shared-memory
segments even on exceptions (the ``engine-protocol`` lint rule enforces
the inheritance statically; ``tests/test_engines.py`` checks the
protocol at runtime).

Constructors share the canonical keyword set ``(tensor, rank, *,
machine=None, num_threads=None, exec_backend="serial",
counter=NULL_COUNTER, tracer=NULL_TRACER, ...engine-specific opts)``;
deprecated spellings (``threads=``, ``backend=``) are accepted with a
one-time :class:`DeprecationWarning` via :mod:`repro.compat`.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Sequence, Tuple, Type, runtime_checkable

import numpy as np

from .base import EngineBase, resolve_num_threads

__all__ = [
    "MttkrpEngine",
    "EngineBase",
    "ENGINES",
    "create_engine",
    "engine_names",
    "register_engine",
    "resolve_num_threads",
]


@runtime_checkable
class MttkrpEngine(Protocol):
    """What the ALS driver, harness, and CLI require of an engine.

    Engines additionally expose a ``mode_order`` tuple (update position →
    original mode) and a ``name`` string; those are data members, which
    ``runtime_checkable`` protocols cannot verify, so the registry's
    :func:`register_engine` checks them explicitly.
    """

    def mttkrp_level(self, factors: Sequence[np.ndarray], level: int) -> np.ndarray:
        """The MTTKRP result for update position ``level``."""

    def iteration_results(
        self, factors: Sequence[np.ndarray]
    ) -> List[Tuple[int, np.ndarray]]:
        """All MTTKRPs of one CPD iteration: ``[(mode, result), ...]``."""

    def per_thread_traffic(self) -> List[float]:
        """Most recent kernel's per-thread traffic totals."""

    def describe(self) -> str:
        """One-line configuration summary."""

    def close(self) -> None:
        """Release engine resources (idempotent)."""


#: name → engine class; populated by :func:`register_engine` below and
#: seeded from :mod:`repro.baselines` on first factory use.
ENGINES: Dict[str, Type[EngineBase]] = {}

_PROTOCOL_METHODS = (
    "mttkrp_level",
    "iteration_results",
    "per_thread_traffic",
    "describe",
    "close",
)


def register_engine(name: str, cls: Type[EngineBase]) -> Type[EngineBase]:
    """Register an engine class under ``name`` (idempotent re-register).

    Raises ``TypeError`` unless ``cls`` inherits :class:`EngineBase` and
    implements every :class:`MttkrpEngine` method — the same contract the
    ``engine-protocol`` lint rule checks statically.
    """
    if not (isinstance(cls, type) and issubclass(cls, EngineBase)):
        raise TypeError(
            f"engine {name!r} must inherit repro.engines.EngineBase, "
            f"got {cls!r}"
        )
    missing = [m for m in _PROTOCOL_METHODS if not callable(getattr(cls, m, None))]
    if missing:
        raise TypeError(
            f"engine {name!r} does not implement the MttkrpEngine "
            f"protocol: missing {missing}"
        )
    ENGINES[name] = cls
    return cls


def engine_names() -> List[str]:
    """Sorted registered engine names (the CLI's ``--backend`` choices)."""
    _ensure_seeded()
    return sorted(ENGINES)


def create_engine(name: str, tensor, rank: int, **opts) -> EngineBase:
    """Construct the engine registered under ``name``.

    All keyword options pass through to the engine constructor —
    ``machine=``, ``num_threads=``, ``exec_backend=``, ``counter=``,
    ``tracer=``, and engine-specific knobs like STeF's ``plan=`` /
    ``swap_last_two=``.  This is the **only** supported construction
    path for name-driven dispatch; consumers must not reimplement the
    ``if name == ...`` ladder.
    """
    _ensure_seeded()
    try:
        cls = ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; registered engines: {engine_names()}"
        ) from None
    return cls(tensor, rank, **opts)


_seeded = False


def _ensure_seeded() -> None:
    """Populate the registry with the built-in engines on first use.

    Seeding is lazy because the engine implementations themselves import
    :mod:`repro.engines.base` (via this package) at class-definition
    time — an eager ``from ..baselines import ALL_BACKENDS`` here would
    close that cycle while :mod:`repro.core.mttkrp` is still half
    initialized.  Deferring to the first ``create_engine`` /
    ``engine_names`` call keeps the import graph acyclic.
    """
    global _seeded
    if _seeded:
        return
    _seeded = True
    from ..baselines import ALL_BACKENDS

    for name, cls in ALL_BACKENDS.items():
        register_engine(name, cls)
