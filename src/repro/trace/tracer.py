"""Structured tracing: nested spans with wall time and traffic deltas.

The planner's whole premise is that the right (memoization, mode-order,
exec-backend) configuration is workload-dependent — but until now the
only observability into a run was the aggregate
:class:`~repro.parallel.counters.TrafficCounter` totals and the
after-the-fact ``profile_method`` table.  This module supplies the
measurement substrate: a :class:`Tracer` records a tree of **spans**
(``als.iteration`` → ``mttkrp.mode0`` → per-thread ``executor.task``
lanes), each carrying

* wall time (``perf_counter`` pairs, relative to the tracer's epoch),
* a **lane** — ``MAIN_LANE`` for coordinator work, ``th`` for simulated
  thread ``th``'s task spans (one Chrome-trace row per lane),
* free-form numeric/string attributes (``level``, ``mode``, ``nnz``), and
* optionally the **category deltas** of a :class:`TrafficCounter`
  snapshotted at entry and exit.

Traffic-delta discipline
------------------------
Only *kernel* spans (``mttkrp.mode0`` / ``mttkrp.mode_level``) pass a
``counter=``; they never overlap each other, so summing every span's
deltas reproduces the counter's totals **exactly** — the invariant
``tests/test_trace.py`` asserts on all three execution backends.
Enclosing spans (``als.iteration``) and per-thread task spans carry no
counter, so nothing is double-counted.

Tracing is **off by default**: the hot path holds a :data:`NULL_TRACER`
whose ``span()`` returns a shared no-op context manager, keeping the
traced-off overhead within noise (guarded by a test).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = [
    "MAIN_LANE",
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "ScopedTracer",
]

#: Lane id of coordinator-side (main thread) spans; simulated thread
#: ``th`` uses lane ``th`` (Chrome export maps lanes to tid rows).
MAIN_LANE = -1

Attr = Union[int, float, str, bool, None]


@dataclass
class SpanRecord:
    """One completed span.

    ``t0``/``t1`` are seconds relative to the owning tracer's epoch;
    ``traffic`` holds counter deltas (``reads``/``writes``/``flops`` plus
    per-category keys) when the span was opened with a ``counter=``.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    lane: int
    t0: float
    t1: float
    attrs: Dict[str, Attr] = field(default_factory=dict)
    traffic: Optional[Dict[str, float]] = None

    @property
    def seconds(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (the JSONL exporter's span payload)."""
        out: Dict[str, Any] = {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "lane": self.lane,
            "t0": self.t0,
            "t1": self.t1,
            "seconds": self.seconds,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        if self.traffic is not None:
            out["traffic"] = self.traffic
        return out


class _ActiveSpan:
    """Context manager for an in-flight span (returned by Tracer.span)."""

    __slots__ = ("_tracer", "_name", "_lane", "_counter", "_attrs",
                 "_span_id", "_parent_id", "_t0", "_snap")

    def __init__(self, tracer: "Tracer", name: str, lane: int,
                 counter, attrs: Dict[str, Attr]) -> None:
        self._tracer = tracer
        self._name = name
        self._lane = lane
        self._counter = counter
        self._attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        self._span_id = tracer._next_id()
        stack = tracer._stack()
        self._parent_id = stack[-1] if stack else None
        stack.append(self._span_id)
        if self._counter is not None:
            self._snap = _counter_snapshot(self._counter)
        else:
            self._snap = None
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        tracer = self._tracer
        traffic = None
        if self._snap is not None:
            traffic = _counter_delta(self._snap, _counter_snapshot(self._counter))
        stack = tracer._stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        tracer._emit(SpanRecord(
            span_id=self._span_id,
            parent_id=self._parent_id,
            name=self._name,
            lane=self._lane,
            t0=self._t0 - tracer.epoch,
            t1=t1 - tracer.epoch,
            attrs=self._attrs,
            traffic=traffic,
        ))
        return False

    def annotate(self, **attrs: Attr) -> None:
        """Attach attributes discovered mid-span (e.g. a computed source
        level) to the record that will be emitted on exit."""
        self._attrs.update(attrs)


def _counter_snapshot(counter) -> Dict[str, float]:
    snap = {"reads": counter.reads, "writes": counter.writes,
            "flops": counter.flops}
    snap.update(counter.by_category)
    return snap


def _counter_delta(before: Dict[str, float], after: Dict[str, float]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for key, val in after.items():
        delta = val - before.get(key, 0.0)
        if delta:
            out[key] = delta
    return out


class Tracer:
    """Collects :class:`SpanRecord`\\ s; safe to append from worker threads.

    Parameters
    ----------
    meta:
        Free-form run metadata (tensor name, rank, backend, ...) carried
        into every export.
    """

    enabled = True

    def __init__(self, **meta: Attr) -> None:
        self.epoch = time.perf_counter()
        self.meta: Dict[str, Attr] = dict(meta)
        self.records: List[SpanRecord] = []
        self._counter_lock = threading.Lock()
        self._id = 0
        # Parent tracking is per OS thread: worker-thread task spans must
        # not adopt whatever coordinator span happens to be open.
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _next_id(self) -> int:
        with self._counter_lock:
            self._id += 1
            return self._id

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _emit(self, record: SpanRecord) -> None:
        # list.append is atomic under the GIL; records from concurrent
        # task spans interleave but are re-sorted by t0 at export time.
        self.records.append(record)

    # ------------------------------------------------------------------
    def span(self, name: str, *, counter=None, lane: int = MAIN_LANE,
             **attrs: Attr) -> _ActiveSpan:
        """Open a span; use as ``with tracer.span("als.iteration", it=3):``.

        Pass ``counter=`` **only** on non-overlapping kernel spans — the
        recorded deltas are meant to tile the counter's totals exactly.
        """
        return _ActiveSpan(self, name, lane, counter, dict(attrs))

    def record_span(self, name: str, t0: float, t1: float, *,
                    lane: int = MAIN_LANE,
                    parent_id: Optional[int] = None,
                    **attrs: Attr) -> None:
        """Record an already-measured span (worker-side task timings whose
        ``perf_counter`` pairs came back through the result channel).

        ``t0``/``t1`` are absolute ``perf_counter`` values — on the
        platforms we support the monotonic clock is system-wide, so
        values measured inside forked process workers share this epoch.
        Without an explicit ``parent_id`` the span adopts the calling
        thread's innermost open span.
        """
        if parent_id is None:
            stack = self._stack()
            parent_id = stack[-1] if stack else None
        self._emit(SpanRecord(
            span_id=self._next_id(),
            parent_id=parent_id,
            name=name,
            lane=lane,
            t0=t0 - self.epoch,
            t1=t1 - self.epoch,
            attrs=dict(attrs),
        ))

    # ------------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[SpanRecord]:
        """Completed spans in start order, optionally filtered by name."""
        out = sorted(self.records, key=lambda r: (r.t0, r.span_id))
        if name is not None:
            out = [r for r in out if r.name == name]
        return out

    def kernel_spans(self) -> List[SpanRecord]:
        """Spans that carried a counter (the traffic-delta tiling)."""
        return [r for r in self.spans() if r.traffic is not None]

    def traffic_totals(self) -> Dict[str, float]:
        """Sum of every span's traffic deltas — equals the counter's
        final tallies exactly (the invariant the tests pin)."""
        out: Dict[str, float] = {}
        for rec in self.kernel_spans():
            for key, val in rec.traffic.items():
                out[key] = out.get(key, 0.0) + val
        return out

    def metrics(self) -> Dict[str, float]:
        """Flat metrics dict: per-span-name counts/seconds plus traffic
        aggregates — the record :mod:`scripts.bench_regress` diffs."""
        out: Dict[str, float] = {}
        for rec in self.spans():
            out[f"{rec.name}.count"] = out.get(f"{rec.name}.count", 0.0) + 1.0
            out[f"{rec.name}.seconds"] = (
                out.get(f"{rec.name}.seconds", 0.0) + rec.seconds
            )
        for key, val in self.traffic_totals().items():
            out[f"traffic.{key}"] = val
        return out

    def clear(self) -> None:
        """Drop recorded spans (metadata and epoch are kept)."""
        self.records.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(spans={len(self.records)}, meta={self.meta})"


class _NullSpan:
    """Shared no-op context manager — the traced-off fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: Attr) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """A tracer that records nothing; the default everywhere.

    ``span()`` hands back one shared no-op context manager, so a
    traced-off hot path costs one attribute lookup and one call — the
    overhead test pins ``cp_als`` with this tracer to within noise of an
    untraced run.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, *, counter=None, lane: int = MAIN_LANE,
             **attrs: Attr) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def record_span(self, name: str, t0: float, t1: float, *,
                    lane: int = MAIN_LANE,
                    parent_id: Optional[int] = None,
                    **attrs: Attr) -> None:
        return None


#: Shared do-nothing tracer; pass a real :class:`Tracer` to opt in.
NULL_TRACER = NullTracer()


class ScopedTracer(Tracer):
    """A tracer-shaped forwarder whose real target can be swapped.

    Engines bind their tracer once at construction, but a pooled engine
    (``repro.serve``'s fingerprint cache) outlives any single request and
    each request wants its own span record.  The pool constructs the
    engine with a ``ScopedTracer`` and, for the duration of a job, points
    ``target`` at that job's private :class:`Tracer`; between jobs the
    target rests on :data:`NULL_TRACER`, so an unattributed kernel call
    costs the same as a traced-off one.

    Only span *recording* is scoped: ``span``/``record_span`` and the
    ``enabled`` fast-path flag forward to the current target.  Swapping
    is a single attribute store (atomic under the GIL), and the pool
    leases an engine to at most one job at a time, so no lock is needed.
    """

    def __init__(self, target: Tracer = NULL_TRACER) -> None:
        super().__init__()
        self.target: Tracer = target

    @property  # type: ignore[override]
    def enabled(self) -> bool:
        return self.target.enabled

    def span(self, name: str, *, counter=None, lane: int = MAIN_LANE,
             **attrs: Attr):
        return self.target.span(name, counter=counter, lane=lane, **attrs)

    def record_span(self, name: str, t0: float, t1: float, *,
                    lane: int = MAIN_LANE,
                    parent_id: Optional[int] = None,
                    **attrs: Attr) -> None:
        self.target.record_span(name, t0, t1, lane=lane,
                                parent_id=parent_id, **attrs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScopedTracer(target={self.target!r})"
