"""Tests for the Table-I synthetic tensor generators — including the
sparsity pathologies each dataset must reproduce."""

import numpy as np
import pytest

from repro.tensor import (
    TABLE1_SPECS,
    CsfTensor,
    default_mode_order,
    generate,
    load_or_generate,
    low_rank_tensor,
    random_tensor,
)


class TestSpecs:
    def test_all_sixteen_tensors_present(self):
        assert len(TABLE1_SPECS) == 16

    @pytest.mark.parametrize("name", sorted(TABLE1_SPECS))
    def test_spec_consistency(self, name):
        spec = TABLE1_SPECS[name]
        assert spec.ndim == len(spec.paper_dims) == len(spec.skews)
        assert spec.paper_nnz > 0

    def test_paper_dims_match_table1(self):
        assert TABLE1_SPECS["uber"].paper_dims == (183, 24, 1_140, 1_717)
        assert TABLE1_SPECS["nell-2"].paper_dims == (12_092, 9_184, 28_818)
        assert TABLE1_SPECS["vast-2015-mc1-3d"].paper_dims == (165_427, 11_374, 2)
        assert TABLE1_SPECS["chicago-crime-geo"].ndim == 5
        assert TABLE1_SPECS["lbln-network"].ndim == 5

    def test_scaled_dims_keep_structural_modes(self):
        spec = TABLE1_SPECS["uber"]
        dims = spec.scaled_dims(3000)
        assert dims[1] == 24  # hour-of-day is structural
        assert dims[0] == 183

    def test_scaled_dims_shrink_large_modes(self):
        spec = TABLE1_SPECS["delicious-3d"]
        dims = spec.scaled_dims(5000)
        assert all(d <= 65536 for d in dims)
        assert dims[1] > dims[0]  # ordering of magnitudes preserved


class TestGeneration:
    @pytest.mark.parametrize("name", sorted(TABLE1_SPECS))
    def test_generates_valid_tensor(self, name):
        t = generate(TABLE1_SPECS[name], nnz=800, seed=0)
        assert t.nnz <= 800
        assert t.nnz > 400  # dedup should not destroy most of the sample
        assert t.ndim == TABLE1_SPECS[name].ndim
        assert np.all(t.values > 0)  # lognormal count-like data

    def test_deterministic_per_seed(self):
        a = generate(TABLE1_SPECS["uber"], nnz=500, seed=3)
        b = generate(TABLE1_SPECS["uber"], nnz=500, seed=3)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.values, b.values)

    def test_seeds_differ(self):
        a = generate(TABLE1_SPECS["uber"], nnz=500, seed=1)
        b = generate(TABLE1_SPECS["uber"], nnz=500, seed=2)
        assert not np.array_equal(a.indices, b.indices)


class TestPathologies:
    def test_vast_two_root_slices(self):
        """vast-2015's length-2 mode is the root after length sorting and
        must show the heavy imbalance of Section II-D."""
        t = generate(TABLE1_SPECS["vast-2015-mc1-3d"], nnz=5000, seed=0)
        order = default_mode_order(t.shape)
        assert t.shape[order[0]] == 2
        csf = CsfTensor.from_coo(t)
        assert csf.fiber_counts[0] == 2
        # Imbalance is over leaf non-zeros per root slice, not child fibers.
        loads = [csf.leaf_span(0, n)[1] - csf.leaf_span(0, n)[0] for n in (0, 1)]
        big, small = max(loads), min(loads)
        # Paper reports ~1674% imbalance => max/min ~ 17.7; allow slack.
        assert big / small > 8

    def test_delicious4d_fiber_length_inversion(self):
        """The longest mode must NOT have the longest average fibers
        (Section II-E's motivation for the last-two-mode swap): leaf
        fibers in the swapped layout (2M-analog mode as leaf) must be
        markedly longer than in the base layout (17M-analog as leaf)."""
        t = generate(TABLE1_SPECS["delicious-4d"], nnz=8000, seed=0)
        order = list(default_mode_order(t.shape))
        base = CsfTensor.from_coo(t, order)
        swapped = CsfTensor.from_coo(t, order[:-2] + [order[-1], order[-2]])
        base_avg = t.nnz / base.fiber_counts[-2]
        swap_avg = t.nnz / swapped.fiber_counts[-2]
        # Paper stats: 1.5 vs 3 -> the swapped layout compresses ~2x more.
        assert swap_avg > 1.5 * base_avg

    def test_freebase_is_hypersparse(self):
        t = generate(TABLE1_SPECS["freebase_music"], nnz=3000, seed=0)
        csf = CsfTensor.from_coo(t)
        # Fibers barely compress: nearly every nnz is its own fiber chain.
        assert csf.fiber_counts[-2] > 0.5 * t.nnz


class TestHelpers:
    def test_random_tensor_shape_exact(self):
        t = random_tensor((10, 20, 30), nnz=100, seed=0)
        assert t.shape == (10, 20, 30)
        assert t.nnz <= 100

    def test_low_rank_tensor_values_follow_model(self):
        t, factors = low_rank_tensor(
            (12, 10, 8), rank=2, nnz=400, noise=0.0, seed=0, return_factors=True
        )
        expected = np.ones((t.nnz, 2))
        for m, A in enumerate(factors):
            expected *= A[t.indices[m]]
        assert np.allclose(t.values, expected.sum(axis=1))

    def test_low_rank_noise_changes_values(self):
        a = low_rank_tensor((8, 8, 8), rank=2, nnz=200, noise=0.0, seed=0)
        b = low_rank_tensor((8, 8, 8), rank=2, nnz=200, noise=1.0, seed=0)
        assert not np.allclose(a.values, b.values)

    def test_load_or_generate_prefers_file(self, tmp_path):
        from repro.tensor import write_tns

        spec = TABLE1_SPECS["uber"]
        real = random_tensor((5, 5, 5, 5), nnz=10, seed=0)
        write_tns(real, str(tmp_path / "uber.tns"))
        loaded = load_or_generate(spec, nnz=500, data_dir=str(tmp_path))
        assert loaded.nnz == real.nnz

    def test_load_or_generate_falls_back(self, tmp_path):
        spec = TABLE1_SPECS["uber"]
        t = load_or_generate(spec, nnz=300, seed=1, data_dir=str(tmp_path))
        assert t.nnz <= 300
