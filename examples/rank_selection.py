#!/usr/bin/env python
"""Choosing the decomposition rank with CORCONDIA and FMS.

A practical workflow on top of the library's diagnostics: decompose a
planted rank-3 tensor at several candidate ranks, and use

* the fit curve (always improves with rank — useless alone),
* CORCONDIA (collapses once the model over-factors),
* FMS against the planted components (ground truth, available here)

to pick the rank.  Demonstrates why fit alone over-selects and core
consistency does not.

Run:  python examples/rank_selection.py
"""

import numpy as np

from repro import cp_als, create_engine
from repro.cpd import KruskalTensor, corcondia, factor_match_score
from repro.tensor import CooTensor, low_rank_tensor


def main() -> None:
    true_rank = 3
    tensor, factors = low_rank_tensor(
        (14, 12, 10), rank=true_rank, nnz=5000, noise=0.3, seed=1,
        return_factors=True,
    )
    planted = KruskalTensor(np.ones(true_rank), factors)
    print(
        f"planted rank-{true_rank} tensor: shape={tensor.shape} "
        f"nnz={tensor.nnz} (dense-ish sample)"
    )
    print(f"\n{'rank':>5} {'fit':>8} {'corcondia':>11} {'FMS vs truth':>13}")

    best = None
    for rank in (1, 2, 3, 4, 5, 6):
        with create_engine("stef", tensor, rank, num_threads=4) as engine:
            res = cp_als(
                tensor, rank, engine=engine, max_iters=40, tol=1e-7,
                init="hosvd",
            )
        cc = corcondia(tensor, res.model)
        fms = (
            factor_match_score(planted, res.model)
            if rank >= true_rank
            else float("nan")
        )
        marker = ""
        if cc >= 99.0:
            best = rank
        elif best is not None and rank == best + 1:
            marker = "   <- core consistency degrades: over-factored"
        print(f"{rank:>5} {res.final_fit:>8.4f} {cc:>11.1f} {fms:>13.3f}{marker}")

    print(
        f"\nfit keeps improving with rank (it chases noise), but the "
        f"largest rank with near-perfect core consistency is {best} "
        f"(planted: {true_rank})"
    )


if __name__ == "__main__":
    main()
