"""Synthetic stand-ins for the Table I evaluation tensors.

The paper evaluates on 16 FROSTT/HaTen2 tensors (5M-144M non-zeros).  Those
files are not redistributable inside this repository and are far beyond
laptop-scale for pure-Python kernels, so this module generates *scaled*
synthetic tensors that preserve each dataset's relevant sparsity pathology:

* **mode-length profile** — dims are scaled by ``(nnz_target/nnz_paper)^(1/d)``
  with small "structural" modes (hour-of-day=24, vast's 2, nips' 17, ...)
  kept at their exact paper length, because those lengths *are* the
  pathology (e.g. vast's 2-slice root mode starves slice parallelism);
* **per-mode concentration** — a skew exponent per mode reproduces each
  tensor's fiber-length profile, including delicious-4d's inversion where
  the *longest* mode has the *shortest* average fibers (Section II-E);
* **slice imbalance** — explicit per-index probability overrides reproduce
  vast-2015's 1674% two-slice imbalance (Section II-D).

The substitution is documented in DESIGN.md §2.  Real tensors can still be
used: :func:`load_or_generate` prefers an on-disk FROSTT file when present.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .coo import CooTensor
from .io import read_tns

__all__ = [
    "TensorSpec",
    "TABLE1_SPECS",
    "generate",
    "load_or_generate",
    "low_rank_tensor",
    "random_tensor",
]

# Modes at or below this length are treated as structural and never scaled.
_STRUCTURAL_MODE_MAX = 1024
# Scaled mode lengths are capped so factor matrices stay laptop-sized.
_MAX_SCALED_DIM = 65536


@dataclass(frozen=True)
class TensorSpec:
    """Description of one Table-I tensor and how to imitate it.

    Attributes
    ----------
    name:
        Dataset name as it appears in Table I.
    paper_dims:
        Mode lengths reported in the paper.
    paper_nnz:
        Non-zero count reported in the paper.
    skews:
        Per-mode concentration exponents: an index is drawn as
        ``floor(n * u**skew)`` for ``u ~ U(0,1)``, so ``skew=1`` is uniform
        and larger values concentrate mass near low indices (long fibers).
    probs:
        Optional per-mode explicit categorical distributions, overriding
        the skew draw; used for pathological tiny modes (vast's length-2
        mode).
    burst_mode:
        Optional mode whose coordinates are drawn in *bursts*: a fiber
        prefix over the other modes is sampled once and then ``burst_mode``
        varies within it.  This controls the average fiber length along
        that mode independently of its length — the delicious-4d pathology
        where the 2M mode has ~3 non-zeros per fiber while the 17M mode
        has ~1.5.
    burst_mean:
        Mean burst length (geometric distribution).
    pathology:
        Human-readable note on what property this generator must preserve.
    """

    name: str
    paper_dims: Tuple[int, ...]
    paper_nnz: int
    skews: Tuple[float, ...]
    probs: Dict[int, Tuple[float, ...]] = field(default_factory=dict)
    burst_mode: Optional[int] = None
    burst_mean: float = 1.0
    pathology: str = ""

    @property
    def ndim(self) -> int:
        return len(self.paper_dims)

    def scaled_dims(self, nnz_target: int) -> Tuple[int, ...]:
        """Scale mode lengths for a target non-zero count.

        Dims shrink by ``(nnz_target / paper_nnz) ** (1/d)`` so the density
        regime is preserved; structural modes keep their exact length.
        When the largest scaled mode would exceed the cap, *all*
        non-structural modes shrink by the same extra factor so the
        mode-length *ratios* — which drive the ordering heuristics under
        study — are preserved.
        """
        ratio = (nnz_target / self.paper_nnz) ** (1.0 / self.ndim)
        raw = [
            n if n <= _STRUCTURAL_MODE_MAX else n * ratio
            for n in self.paper_dims
        ]
        biggest = max(
            (r for n, r in zip(self.paper_dims, raw) if n > _STRUCTURAL_MODE_MAX),
            default=0.0,
        )
        shrink = min(1.0, _MAX_SCALED_DIM / biggest) if biggest else 1.0
        dims = []
        for n, r in zip(self.paper_dims, raw):
            if n <= _STRUCTURAL_MODE_MAX:
                dims.append(n)
            else:
                dims.append(int(np.clip(round(r * shrink), 16, _MAX_SCALED_DIM)))
        return tuple(dims)


def _draw_mode(
    rng: np.random.Generator,
    n: int,
    count: int,
    skew: float,
    probs: Optional[Sequence[float]],
) -> np.ndarray:
    """Sample ``count`` indices in ``[0, n)`` with the spec's distribution."""
    if probs is not None:
        p = np.asarray(probs, dtype=np.float64)
        if p.size != n:
            # Re-normalize a prefix/extension so scaled dims still work.
            p = np.resize(p, n)
        p = p / p.sum()
        return rng.choice(n, size=count, p=p).astype(np.int64)
    u = rng.random(count)
    idx = np.floor(n * u ** skew).astype(np.int64)
    return np.minimum(idx, n - 1)


def generate(
    spec: TensorSpec,
    nnz: int = 5000,
    seed: int = 0,
) -> CooTensor:
    """Generate a scaled synthetic instance of ``spec`` with ~``nnz``
    non-zeros (post-deduplication the count may be slightly lower).

    Values are log-normal, imitating the count data (crime reports, taxi
    pickups, word co-occurrences) behind the FROSTT datasets.
    """
    dims = spec.scaled_dims(nnz)
    rng = np.random.default_rng(seed)
    # Oversample to survive deduplication, then trim.
    oversample = int(nnz * 1.3) + 16
    if spec.burst_mode is not None:
        # Sample fiber prefixes (all modes except burst_mode), then repeat
        # each prefix geometric(burst_mean) times with fresh burst_mode
        # coordinates — giving that mode its target average fiber length.
        n_prefix = max(1, int(oversample / spec.burst_mean))
        lengths = rng.geometric(1.0 / spec.burst_mean, size=n_prefix)
        total = int(lengths.sum())
        cols = []
        for m, n in enumerate(dims):
            if m == spec.burst_mode:
                cols.append(_draw_mode(rng, n, total, spec.skews[m], None))
            else:
                probs = spec.probs.get(m)
                prefix = _draw_mode(rng, n, n_prefix, spec.skews[m], probs)
                cols.append(np.repeat(prefix, lengths))
        indices = np.vstack(cols)
        oversample = total
    else:
        cols = []
        for m, n in enumerate(dims):
            probs = spec.probs.get(m)
            cols.append(_draw_mode(rng, n, oversample, spec.skews[m], probs))
        indices = np.vstack(cols)
    values = rng.lognormal(mean=0.0, sigma=1.0, size=oversample)
    tensor = CooTensor.from_arrays(indices, values, dims)
    if tensor.nnz > nnz:
        keep = rng.choice(tensor.nnz, size=nnz, replace=False)
        keep.sort()
        tensor = CooTensor.from_arrays(
            tensor.indices[:, keep], tensor.values[keep], dims,
            sum_duplicates=False,
        )
    return tensor


def load_or_generate(
    spec: TensorSpec,
    nnz: int = 5000,
    seed: int = 0,
    data_dir: Optional[str] = None,
) -> CooTensor:
    """Prefer a real FROSTT file (``<data_dir>/<name>.tns[.gz]``) when one is
    available; otherwise fall back to the synthetic generator."""
    data_dir = data_dir or os.environ.get("REPRO_TENSOR_DIR", "")
    if data_dir:
        for ext in (".tns", ".tns.gz"):
            path = os.path.join(data_dir, spec.name + ext)
            if os.path.exists(path):
                return read_tns(path)
    return generate(spec, nnz=nnz, seed=seed)


def random_tensor(
    shape: Sequence[int],
    nnz: int,
    seed: int = 0,
    skews: Optional[Sequence[float]] = None,
) -> CooTensor:
    """Uncorrelated random sparse tensor — the generic workload for unit and
    property tests."""
    shape = tuple(int(s) for s in shape)
    spec = TensorSpec(
        name="random",
        paper_dims=shape,
        paper_nnz=nnz,
        skews=tuple(skews) if skews is not None else tuple(1.0 for _ in shape),
    )
    # paper_nnz == nnz makes scaled_dims the identity for non-structural
    # modes; force exact dims by marking every mode structural via clamp.
    rng = np.random.default_rng(seed)
    oversample = int(nnz * 1.3) + 16
    cols = [
        _draw_mode(rng, n, oversample, spec.skews[m], None)
        for m, n in enumerate(shape)
    ]
    values = rng.standard_normal(oversample)
    tensor = CooTensor.from_arrays(np.vstack(cols), values, shape)
    if tensor.nnz > nnz:
        keep = rng.choice(tensor.nnz, size=nnz, replace=False)
        keep.sort()
        tensor = CooTensor.from_arrays(
            tensor.indices[:, keep], tensor.values[keep], shape,
            sum_duplicates=False,
        )
    return tensor


def low_rank_tensor(
    shape: Sequence[int],
    rank: int,
    nnz: int,
    noise: float = 0.0,
    seed: int = 0,
    return_factors: bool = False,
):
    """Sparse sample of a random rank-``rank`` Kruskal tensor plus noise.

    CP-ALS convergence tests need data with genuine low-rank structure;
    values at sampled coordinates follow the CP model
    ``sum_r prod_m A_m[i_m, r]`` with optional Gaussian noise.  With
    ``return_factors=True`` returns ``(tensor, factors)`` so tests can
    check the values against the generating model.
    """
    shape = tuple(int(s) for s in shape)
    rng = np.random.default_rng(seed)
    factors = [rng.standard_normal((n, rank)) for n in shape]
    base = random_tensor(shape, nnz, seed=seed + 1)
    acc = np.ones((base.nnz, rank))
    for m, A in enumerate(factors):
        acc *= A[base.indices[m]]
    vals = acc.sum(axis=1)
    if noise > 0:
        vals = vals + noise * rng.standard_normal(base.nnz)
    tensor = CooTensor.from_arrays(base.indices, vals, shape, sum_duplicates=False)
    if return_factors:
        return tensor, factors
    return tensor


def _spec(
    name: str,
    dims: Sequence[int],
    nnz: int,
    skews: Sequence[float],
    probs: Optional[Dict[int, Sequence[float]]] = None,
    burst_mode: Optional[int] = None,
    burst_mean: float = 1.0,
    pathology: str = "",
) -> TensorSpec:
    return TensorSpec(
        name=name,
        paper_dims=tuple(dims),
        paper_nnz=nnz,
        skews=tuple(skews),
        probs={k: tuple(v) for k, v in (probs or {}).items()},
        burst_mode=burst_mode,
        burst_mean=burst_mean,
        pathology=pathology,
    )


#: The 16 evaluation tensors of Table I.  ``skews``/``probs`` encode the
#: sparsity pathology each dataset contributes to the evaluation story.
TABLE1_SPECS: Dict[str, TensorSpec] = {
    s.name: s
    for s in [
        _spec(
            "chicago-crime-comm", (6_186, 24, 77, 32), 5_330_673,
            skews=(1.6, 1.2, 1.4, 1.2),
            pathology="small modes; factor fits in cache at R=32 but not 64",
        ),
        _spec(
            "chicago-crime-geo", (6_185, 24, 380, 395, 32), 6_327_013,
            skews=(1.6, 1.2, 1.5, 1.5, 1.2),
            pathology="5-D variant of chicago-crime",
        ),
        _spec(
            "delicious-3d", (532_924, 17_262_471, 2_480_308), 140_126_181,
            skews=(2.0, 1.05, 1.8),
            burst_mode=1, burst_mean=4.0,
            pathology="long middle mode; ~4 nnz per leaf fiber (Table II: "
            "P^(1) is 8.92 GB = 34.8M fibers at R=32)",
        ),
        _spec(
            "delicious-4d", (532_924, 17_262_471, 2_480_308, 1_443), 140_126_181,
            skews=(2.0, 1.05, 1.4, 1.3),
            burst_mode=2, burst_mean=3.0,
            pathology=(
                "average fiber length NOT monotone in mode length: the 17M "
                "mode averages ~1.5 while the 2M mode averages ~3 "
                "(Section II-E motivation for last-two-mode swap)"
            ),
        ),
        _spec(
            "enron", (6_066, 5_699, 244_268, 1_176), 54_202_099,
            skews=(2.2, 2.2, 1.3, 1.6),
            burst_mode=2, burst_mean=12.0,
            pathology="dense sender/receiver slices, long word-mode fibers",
        ),
        _spec(
            "flickr-3d", (319_686, 28_153_045, 1_607_191), 112_890_310,
            skews=(2.0, 1.05, 1.8),
            burst_mode=1, burst_mean=9.0,
            pathology="adequate root slices; heavy fiber compression "
            "(Table II: 3.18 GB of partials = avg fiber ~9)",
        ),
        _spec(
            "flickr-4d", (319_686, 28_153_045, 1_607_191, 731), 112_890_310,
            skews=(2.0, 1.05, 1.8, 1.4),
            burst_mode=1, burst_mean=6.0,
            pathology="4-D flickr; memoization pays off",
        ),
        _spec(
            "freebase_music", (23_344_784, 23_344_784, 166), 99_546_551,
            skews=(1.1, 1.1, 1.8),
            pathology="two huge symmetric modes; model chooses no memoization",
        ),
        _spec(
            "freebase_sampled", (38_955_429, 38_955_429, 532), 99_546_551,
            skews=(1.1, 1.1, 1.8),
            pathology="hyper-sparse; model chooses no memoization",
        ),
        _spec(
            "lbln-network", (1_605, 4_198, 1_631, 4_209, 868_131), 1_698_825,
            skews=(1.4, 1.4, 1.4, 1.4, 1.05),
            pathology="5-D network flows; tiny nnz, huge leaf mode",
        ),
        _spec(
            "nell-1", (2_902_330, 2_143_368, 25_495_389), 143_599_552,
            skews=(1.3, 1.3, 1.05),
            burst_mode=2, burst_mean=9.0,
            pathology="very disparate mode lengths; memoization gains small",
        ),
        _spec(
            "nell-2", (12_092, 9_184, 28_818), 76_879_419,
            skews=(1.6, 1.6, 1.4),
            burst_mode=2, burst_mean=12.0,
            pathology="dense small tensor with long fibers; leaf-mode MTTV "
            "is the bottleneck (STeF2's second CSF closes the gap)",
        ),
        _spec(
            "nips", (2_482, 2_862, 14_036, 17), 3_101_609,
            skews=(1.4, 1.4, 1.2, 1.1),
            pathology="tiny structural publication-year mode",
        ),
        _spec(
            "uber", (183, 24, 1_140, 1_717), 3_309_490,
            skews=(1.3, 1.1, 1.5, 1.5),
            pathology=(
                "memoizing the biggest partial result HURTS: saving all costs "
                "62M reads/22M writes vs 24M/238K without (Section IV-A)"
            ),
        ),
        _spec(
            "vast-2015-mc1-3d", (165_427, 11_374, 2), 26_021_854,
            skews=(1.2, 1.3, 1.0),
            probs={2: (0.947, 0.053)},
            pathology=(
                "mode-length-ordered CSF has only 2 root slices with a "
                "947/53 split: slice parallelism caps at 2 threads with "
                "~1674% imbalance (Section II-D)"
            ),
        ),
        _spec(
            "vast-2015-mc1-5d", (165_427, 11_374, 2, 100, 89), 26_021_854,
            skews=(1.2, 1.3, 1.0, 1.1, 1.1),
            probs={2: (0.947, 0.053)},
            pathology="5-D vast; same 2-slice root pathology",
        ),
    ]
}
