"""Shared-memory array plumbing for the ``processes`` execution backend.

A true process-parallel backend cannot rely on Python object sharing: each
worker is a separate interpreter.  What *can* be shared, zero-copy, is raw
array storage — ``multiprocessing.shared_memory`` segments that both the
coordinator and every worker map into their address space.  This module
provides the two halves of that contract:

* **coordinator side** — :class:`SharedArena` owns a set of segments,
  copies arrays into them (:meth:`SharedArena.share`) or allocates zeroed
  ones (:meth:`SharedArena.zeros`), and hands out :class:`ShmToken`
  descriptors.  Tokens are tiny picklable tuples, so shipping one to a
  worker costs a few bytes regardless of the array size.  The arena
  unlinks every segment when closed (or garbage-collected), so engines
  cannot leak ``/dev/shm`` space.

* **worker side** — :func:`attach` resolves a token to a NumPy view of the
  same physical pages.  Attachments are cached per process (keyed by the
  segment name, which the arena makes unique), so repeated kernel
  invocations against the same engine pay the ``shm_open``/``mmap`` cost
  once.  The cache is bounded: least-recently-used segments are dropped
  (their mappings die with the last array reference) so long-lived shared
  worker pools do not accumulate mappings across many engines.

The segments hold *storage*, not objects: the coordinator writes factor
matrices into pre-allocated slots before dispatching a kernel and workers
see the update with no serialization at all, which is what makes per-call
dispatch cheap enough for MTTKRP-sized work units.
"""

from __future__ import annotations

import secrets
import weakref
from collections import OrderedDict
from multiprocessing import shared_memory
from typing import Dict, List, NamedTuple, Tuple

import numpy as np

__all__ = ["ShmToken", "SharedArena", "attach", "attached_segment_count"]


class ShmToken(NamedTuple):
    """Picklable descriptor of one shared array: segment + layout."""

    name: str
    shape: Tuple[int, ...]
    dtype: str

    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def _as_ndarray(seg: shared_memory.SharedMemory, token: ShmToken) -> np.ndarray:
    return np.ndarray(token.shape, dtype=np.dtype(token.dtype), buffer=seg.buf)


class SharedArena:
    """Owns shared-memory segments for one engine's lifetime.

    Every :meth:`share`/:meth:`zeros` call creates one segment with a
    fresh, collision-free name.  The arena keeps the coordinator-side
    mapping alive (NumPy views returned by :meth:`array` borrow the
    segment's buffer) and tears everything down in :meth:`close` —
    registered as a GC finalizer as well, so an engine that is simply
    dropped still releases its ``/dev/shm`` space.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._finalizer = weakref.finalize(self, _close_segments, self._segments)

    # ------------------------------------------------------------------
    def share(self, array: np.ndarray) -> ShmToken:
        """Copy ``array`` into a fresh segment; returns its token."""
        arr = np.ascontiguousarray(array)
        token = self.zeros(arr.shape, arr.dtype)
        self.array(token)[...] = arr
        return token

    def zeros(self, shape: Tuple[int, ...], dtype=np.float64) -> ShmToken:
        """Allocate a zero-filled shared array; returns its token."""
        token = ShmToken(
            f"repro-{secrets.token_hex(8)}",
            tuple(int(s) for s in shape),
            np.dtype(dtype).str,
        )
        seg = shared_memory.SharedMemory(
            name=token.name, create=True, size=max(1, token.nbytes())
        )
        # Fresh POSIX shm is zero-filled; no explicit memset needed.
        self._segments[token.name] = seg
        return token

    def array(self, token: ShmToken) -> np.ndarray:
        """Coordinator-side view of a segment this arena owns."""
        return _as_ndarray(self._segments[token.name], token)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink and unmap every owned segment (idempotent)."""
        self._finalizer.detach()
        _close_segments(self._segments)

    def __len__(self) -> int:
        return len(self._segments)


def _close_segments(segments: Dict[str, shared_memory.SharedMemory]) -> None:
    for seg in segments.values():
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        try:
            seg.close()
        except BufferError:  # pragma: no cover - view outlives the arena
            # A live NumPy view still pins the mapping; the pages are
            # released when the last view dies, and the segment is
            # already unlinked, so nothing leaks either way.
            pass
    segments.clear()


# ----------------------------------------------------------------------
# worker-side attachment cache
# ----------------------------------------------------------------------

#: Max distinct segments kept mapped per worker process.  Evicted entries
#: merely drop the cache reference — the underlying mapping lives until
#: the last NumPy view of it dies, so eviction is always safe.
_ATTACH_CACHE_SIZE = 256

_attached: "OrderedDict[str, Tuple[shared_memory.SharedMemory, np.ndarray]]" = (
    OrderedDict()
)


def attach(token: ShmToken) -> np.ndarray:
    """Resolve a token to an array view, caching the segment mapping.

    Safe to call on the coordinator too (tests do); the arena's own
    segments resolve by name exactly like a worker's.
    """
    entry = _attached.get(token.name)
    if entry is not None:
        _attached.move_to_end(token.name)
        seg, arr = entry
        if arr.shape == token.shape and arr.dtype == np.dtype(token.dtype):
            return arr
        return _as_ndarray(seg, token)
    seg = shared_memory.SharedMemory(name=token.name)
    arr = _as_ndarray(seg, token)
    _attached[token.name] = (seg, arr)
    while len(_attached) > _ATTACH_CACHE_SIZE:
        _attached.popitem(last=False)
    return arr


def attached_segment_count() -> int:
    """Number of segments currently cached in this process (tests)."""
    return len(_attached)


def share_arrays(arena: SharedArena, arrays: List[np.ndarray]) -> List[ShmToken]:
    """Convenience: share a list of arrays, returning their tokens."""
    return [arena.share(a) for a in arrays]
