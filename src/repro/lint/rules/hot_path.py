"""``hot-path`` — kernel modules stay level-vectorized and copy-free.

The wall-clock story of this reproduction lives or dies on the kernels
being *level-vectorized*: one NumPy call per CSF level, never one Python
iteration (or one scalar scatter) per non-zero (DESIGN.md §2).  This rule
polices the kernel modules — ``core/csf_kernels.py``, ``core/mttkrp.py``,
everything under ``ops/`` and ``baselines/`` — for the idioms that
quietly reintroduce interpreter- or copy-bound inner loops:

1. ``np.add.at`` — the documented-slow buffered scatter; use
   :func:`repro.core.csf_kernels.scatter_add_rows` (sort + segmented
   ``reduceat``) instead;
2. ``.flatten()`` — always copies; ``.ravel()`` is view-returning;
3. array concatenation (``np.concatenate``/``append``/``vstack``/
   ``hstack``) *inside a loop* — quadratic reallocation; build a list and
   concatenate once, or preallocate;
4. Python ``for`` loops whose iterable is nnz-scale (mentions ``nnz`` or
   ``iter_entries``) — per-non-zero interpretation.

``ops/dense_ref.py`` is the deliberately-naive reference oracle and
carries a file-level allowlist pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutils import dotted_name, expr_text, walk_with_loop_depth
from ..framework import FileContext, Finding, Rule, register

#: Path fragments that mark a module as kernel (hot-path) code.
KERNEL_PATH_MARKERS = (
    "/repro/core/csf_kernels.py",
    "/repro/core/mttkrp.py",
    "/repro/ops/",
    "/repro/baselines/",
    "/lint_fixtures/ops/",  # test fixtures exercising this rule
)

_CONCAT_FUNCS = frozenset({"concatenate", "append", "vstack", "hstack"})
_NUMPY_NAMES = frozenset({"np", "numpy"})


def is_kernel_path(posix_path: str) -> bool:
    return any(marker in posix_path for marker in KERNEL_PATH_MARKERS)


def _is_np_attr(node: ast.AST, attr_chain: str) -> bool:
    """True when ``node`` is ``np.<attr_chain>`` / ``numpy.<attr_chain>``."""
    name = dotted_name(node)
    if name is None:
        return False
    parts = name.split(".", 1)
    return len(parts) == 2 and parts[0] in _NUMPY_NAMES and parts[1] == attr_chain


@register
class HotPathRule(Rule):
    id = "hot-path"
    description = (
        "kernel modules must stay level-vectorized: no np.add.at, no "
        ".flatten(), no concatenation in loops, no nnz-scale Python loops"
    )
    paper_ref = "DESIGN.md §2 (vectorized substrate substitution)"

    def applies_to(self, ctx: FileContext) -> bool:
        return is_kernel_path(ctx.posix_path)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node, loop_depth in walk_with_loop_depth(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, loop_depth)
            elif isinstance(node, ast.For):
                yield from self._check_for(ctx, node)

    def _check_call(
        self, ctx: FileContext, node: ast.Call, loop_depth: int
    ) -> Iterator[Finding]:
        if _is_np_attr(node.func, "add.at"):
            yield ctx.finding(
                self.id,
                node,
                "np.add.at is a buffered per-element scatter (orders of "
                "magnitude slower); use "
                "repro.core.csf_kernels.scatter_add_rows (sort + "
                "segmented reduceat)",
            )
            return
        if isinstance(node.func, ast.Attribute) and node.func.attr == "flatten":
            yield ctx.finding(
                self.id,
                node,
                f"`{expr_text(node.func)}()` always copies; "
                "use .ravel() (view when possible)",
            )
            return
        if loop_depth > 0 and any(
            _is_np_attr(node.func, fn) for fn in _CONCAT_FUNCS
        ):
            fn_name = dotted_name(node.func)
            yield ctx.finding(
                self.id,
                node,
                f"`{fn_name}` inside a loop reallocates the whole array "
                "each iteration (quadratic); collect parts and "
                "concatenate once, or preallocate",
            )

    def _check_for(self, ctx: FileContext, node: ast.For) -> Iterator[Finding]:
        iter_text = expr_text(node.iter)
        if "nnz" in iter_text or "iter_entries" in iter_text:
            yield ctx.finding(
                self.id,
                node,
                f"Python loop over nnz-scale iterable `{iter_text}` in a "
                "kernel module; re-express as a level-by-level vectorized "
                "sweep (see repro.core.csf_kernels)",
            )
