"""Static analysis for the repository's own kernel invariants.

The threads backend's race-freedom, the traffic channel's category
vocabulary, the kernels' level-vectorization, and the float64 buffer
discipline are all *conventions* — exactly the class of rule that rots
silently as the codebase grows.  This package checks them mechanically:

* :mod:`repro.lint.framework` — rule registry, per-file AST context,
  ``# lint: disable=<rule>`` suppressions, text/JSON reporters,
  exit codes;
* :mod:`repro.lint.rules` — the project-specific rule suite
  (``thread-body-safety``, ``counter-category``, ``hot-path``,
  ``dtype-discipline``);
* :mod:`repro.lint.flow` — interprocedural dataflow analyses over the
  project call graph (``flow.traffic-conformance``,
  ``flow.buffer-typestate``, ``flow.arena-typestate``,
  ``flow.jit-readiness``), run under ``repro lint --flow``;
* :mod:`repro.lint.sarif` / :mod:`repro.lint.baseline` — SARIF 2.1.0
  output and the known-debt baseline workflow;
* :mod:`repro.lint.cli` — ``python -m repro.lint`` / ``repro lint``.

See DESIGN.md §9 for the invariant ↔ paper-section mapping and
CONTRIBUTING.md for suppression etiquette.
"""

from .framework import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    FileContext,
    Finding,
    LintError,
    LintReport,
    ProjectContext,
    Rule,
    all_rules,
    format_json,
    format_text,
    get_rule,
    register,
    run_lint,
)
from .baseline import apply_baseline, baseline_key, load_baseline, write_baseline
from .sarif import format_sarif
from .cli import main

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "FileContext",
    "Finding",
    "LintError",
    "LintReport",
    "ProjectContext",
    "Rule",
    "all_rules",
    "apply_baseline",
    "baseline_key",
    "format_json",
    "format_sarif",
    "format_text",
    "get_rule",
    "load_baseline",
    "main",
    "register",
    "run_lint",
    "write_baseline",
]
