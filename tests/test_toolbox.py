"""Tests for the sparse tensor toolbox."""

import numpy as np
import pytest

from repro.tensor import CooTensor, random_tensor
from repro.tensor.toolbox import (
    add,
    extract_slice,
    frobenius_distance,
    hadamard_product,
    mode_marginals,
    subtract,
    top_slices,
)


@pytest.fixture
def pair():
    a = random_tensor((8, 7, 6), nnz=90, seed=31)
    b = random_tensor((8, 7, 6), nnz=90, seed=32)
    return a, b


class TestElementwise:
    def test_add_matches_dense(self, pair):
        a, b = pair
        c = add(a, b, alpha=2.0, beta=-0.5)
        assert np.allclose(c.to_dense(), 2.0 * a.to_dense() - 0.5 * b.to_dense())

    def test_subtract(self, pair):
        a, b = pair
        assert np.allclose(subtract(a, b).to_dense(), a.to_dense() - b.to_dense())

    def test_self_subtract_is_zero(self, pair):
        a, _ = pair
        diff = subtract(a, a)
        assert np.allclose(diff.to_dense(), 0.0)

    def test_hadamard_matches_dense(self, pair):
        a, b = pair
        h = hadamard_product(a, b)
        assert np.allclose(h.to_dense(), a.to_dense() * b.to_dense())

    def test_hadamard_disjoint_supports_empty(self):
        a = CooTensor.from_arrays(np.array([[0], [0]]), np.array([1.0]), (2, 2))
        b = CooTensor.from_arrays(np.array([[1], [1]]), np.array([1.0]), (2, 2))
        assert hadamard_product(a, b).nnz == 0

    def test_shape_mismatch_raises(self, pair):
        a, _ = pair
        other = random_tensor((8, 7, 5), nnz=10, seed=33)
        with pytest.raises(ValueError):
            add(a, other)

    def test_huge_index_space_path(self):
        """Shapes whose linearized space exceeds int64 use the structured
        fallback."""
        shape = (2**40, 2**40, 2**40)
        idx = np.array([[1, 2], [3, 4], [5, 6]], dtype=np.int64)
        a = CooTensor.from_arrays(idx, np.array([1.0, 2.0]), shape)
        b = CooTensor.from_arrays(idx[:, :1], np.array([3.0]), shape)
        h = hadamard_product(a, b)
        assert h.nnz == 1
        assert h.values[0] == 3.0


class TestDistance:
    def test_matches_dense(self, pair):
        a, b = pair
        expected = np.linalg.norm(a.to_dense() - b.to_dense())
        assert np.isclose(frobenius_distance(a, b), expected)

    def test_zero_for_identical(self, pair):
        a, _ = pair
        assert frobenius_distance(a, a) == pytest.approx(0.0, abs=1e-9)

    def test_triangle_inequality(self, pair):
        a, b = pair
        c = random_tensor((8, 7, 6), nnz=50, seed=34)
        assert frobenius_distance(a, c) <= (
            frobenius_distance(a, b) + frobenius_distance(b, c) + 1e-9
        )


class TestStructural:
    def test_mode_marginals_match_dense(self, pair):
        a, _ = pair
        dense = a.to_dense()
        for m in range(3):
            axes = tuple(x for x in range(3) if x != m)
            assert np.allclose(mode_marginals(a, m), dense.sum(axis=axes))

    def test_marginals_bad_mode(self, pair):
        with pytest.raises(ValueError):
            mode_marginals(pair[0], 5)

    def test_extract_slice_matches_dense(self, pair):
        a, _ = pair
        dense = a.to_dense()
        sl = extract_slice(a, 1, 3)
        assert sl.shape == (8, 6)
        assert np.allclose(sl.to_dense(), dense[:, 3, :])

    def test_extract_slice_bounds(self, pair):
        with pytest.raises(ValueError):
            extract_slice(pair[0], 0, 99)
        with pytest.raises(ValueError):
            extract_slice(pair[0], 9, 0)

    def test_top_slices(self):
        idx = np.array([[0, 0, 0, 2], [0, 1, 2, 0]])
        t = CooTensor.from_arrays(idx, np.array([5.0, 5.0, 5.0, 1.0]), (3, 3))
        top = top_slices(t, 0, k=2)
        assert top[0] == 0
        assert top[1] == 2

    def test_top_slices_k_clamped(self, pair):
        a, _ = pair
        assert len(top_slices(a, 0, k=100)) == a.shape[0]
