"""Job records, journal persistence, and the on-disk spool layout.

A job's full lifecycle lives in two places:

* in memory, as a :class:`Job` (the dispatcher's unit of work), and
* on disk, as an atomically-written JSON **journal** under the spool
  directory — the crash-recovery record.

Spool layout (one directory per server instance)::

    <spool>/jobs/<job_id>.json         -- journal (state + spec + result)
    <spool>/checkpoints/<job_id>.npz   -- cp_als checkpoint (resumable)
    <spool>/logs/<job_id>.jsonl        -- per-request trace record

On restart the server replays the journals: jobs that were ``queued``
or ``running`` when the previous process died are re-enqueued with
``resume`` semantics — the worker passes the job's checkpoint path to
``cp_als(resume=True)``, so a killed mid-run job continues from its last
complete checkpoint instead of starting over, and its cumulative
iteration count keeps climbing.  Journal writes use the same
tmp + ``os.replace`` discipline as the checkpoints, so a journal is
always a complete JSON document.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .protocol import JobSpec

__all__ = [
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "Job",
    "Spool",
]

#: Lifecycle: queued -> running -> done | failed | cancelled.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

ACTIVE_STATES = (QUEUED, RUNNING)
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


@dataclass
class Job:
    """One submitted decomposition request and everything known about it."""

    job_id: str
    spec: JobSpec
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    cache: Optional[str] = None      # "hit" | "miss" | "bypass"
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def summary(self) -> Dict[str, Any]:
        """The compact row ``repro jobs`` prints (no factor payload)."""
        out = {
            "job_id": self.job_id,
            "state": self.state,
            "client": self.spec.client,
            "engine": self.spec.engine,
            "tensor": self.spec.tensor or "<inline>",
            "rank": self.spec.rank,
            "exec_backend": self.spec.exec_backend,
            "priority": self.spec.priority,
            "attempts": self.attempts,
            "cache": self.cache,
            "error": self.error,
        }
        if self.result is not None:
            out["iterations"] = self.result.get("iterations")
            out["seconds"] = self.result.get("seconds")
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "cache": self.cache,
            "error": self.error,
            "result": self.result,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Job":
        data = dict(data)
        data["spec"] = JobSpec.from_dict(data["spec"])
        return cls(**data)


class Spool:
    """The server's on-disk state directory (journals, checkpoints, logs)."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        for sub in ("jobs", "checkpoints", "logs"):
            os.makedirs(os.path.join(self.root, sub), exist_ok=True)

    # -- paths ---------------------------------------------------------
    def journal_path(self, job_id: str) -> str:
        return os.path.join(self.root, "jobs", f"{job_id}.json")

    def checkpoint_path(self, job_id: str) -> str:
        return os.path.join(self.root, "checkpoints", f"{job_id}.npz")

    def log_path(self, job_id: str) -> str:
        return os.path.join(self.root, "logs", f"{job_id}.jsonl")

    # -- journal I/O ---------------------------------------------------
    def write_journal(self, job: Job) -> None:
        """Persist the job record atomically (tmp + rename)."""
        path = self.journal_path(job.job_id)
        tmp = f"{path}.tmp-{os.getpid()}"
        try:
            with open(tmp, "w") as fh:
                json.dump(job.to_dict(), fh)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)

    def load_jobs(self) -> List[Job]:
        """Every journaled job, oldest submission first."""
        jobs: List[Job] = []
        jobs_dir = os.path.join(self.root, "jobs")
        for name in os.listdir(jobs_dir):
            if not name.endswith(".json"):
                continue
            with open(os.path.join(jobs_dir, name)) as fh:
                jobs.append(Job.from_dict(json.load(fh)))
        jobs.sort(key=lambda j: j.submitted_at)
        return jobs

    def recoverable_jobs(self) -> List[Job]:
        """Jobs a previous server process left unfinished.

        ``queued`` jobs were accepted but never ran; ``running`` jobs
        died with the worker.  Both come back as ``queued`` (the
        dispatcher bumps ``attempts`` at every run start, so the journal's
        count already includes the dead attempt) — the worker's
        ``resume=True`` picks up whatever checkpoint the dead attempt
        managed to write.
        """
        recovered: List[Job] = []
        for job in self.load_jobs():
            if job.state in ACTIVE_STATES:
                job.state = QUEUED
                recovered.append(job)
        return recovered

    def clear_checkpoint(self, job_id: str) -> None:
        path = self.checkpoint_path(job_id)
        if os.path.exists(path):
            os.remove(path)
